#!/usr/bin/env python3
"""Benchmark regression gate over reconsume.bench.v1 JSON documents.

Two modes, composable in one invocation:

Drift mode (--baseline/--current): for every numeric key present in both
documents (optionally filtered by the --keys regex), fail if the current
value regressed by more than --max-drift (fraction, default 0.15). Keys are
latencies — larger is worse; improvements never fail. Use against a committed
baseline on a quiet, comparable machine.

Ratio mode (--ratio A.json:key B.json:key --min-ratio R): fail unless
value(A)/value(B) >= R. Because both values come from the same run on the
same machine (e.g. naive-vs-engine p99 from one bench invocation), this gate
is machine-independent and safe for shared CI runners.

Range mode (--range file.json:key MIN MAX, repeatable): fail unless
MIN <= value <= MAX. For rates and fractions that must land in a sane band
rather than merely not regress — the CI overload-smoke job pins the
bench_serve_load --overload shed_rate with it: a rate of 0 means admission
control never engaged (the overload was not an overload), a rate near 1
means the service shed everything instead of degrading (docs/serving.md
§8). Like ratio mode, machine-independent.

Exit status: 0 = all gates pass, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import re
import sys


def load_values(path):
    """Flattens a reconsume.bench.v1 document to {dataset/key: value}."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "reconsume.bench.v1":
        print(f"check_bench_regression: {path} is not reconsume.bench.v1",
              file=sys.stderr)
        sys.exit(2)
    values = {}
    for result in doc.get("results", []):
        dataset = result.get("dataset", "")
        for key, value in result.get("values", {}).items():
            if isinstance(value, (int, float)):
                values[f"{dataset}/{key}"] = float(value)
    return values


def check_drift(baseline_path, current_path, key_regex, max_drift):
    baseline = load_values(baseline_path)
    current = load_values(current_path)
    pattern = re.compile(key_regex)
    shared = [k for k in baseline if k in current and pattern.search(k)]
    if not shared:
        print(f"check_bench_regression: no shared keys match /{key_regex}/",
              file=sys.stderr)
        sys.exit(2)
    failures = 0
    for key in sorted(shared):
        base, cur = baseline[key], current[key]
        if base <= 0.0:
            continue  # counts/flags and degenerate timings: not a latency
        drift = (cur - base) / base
        status = "ok"
        if drift > max_drift:
            status = "REGRESSION"
            failures += 1
        print(f"  {key}: {base:.4g} -> {cur:.4g} "
              f"({drift:+.1%}, limit +{max_drift:.0%}) {status}")
    return failures


def parse_ref(ref):
    """Splits 'path.json:dataset/key' (or 'path.json:key') into parts."""
    path, sep, key = ref.rpartition(":")
    if not sep or not path:
        print(f"check_bench_regression: bad --ratio ref '{ref}' "
              "(want file.json:key)", file=sys.stderr)
        sys.exit(2)
    return path, key


def lookup(values, key, path):
    # Accept both bare keys and dataset-qualified ones.
    if key in values:
        return values[key]
    matches = [v for k, v in values.items() if k.endswith("/" + key)]
    if len(matches) != 1:
        print(f"check_bench_regression: key '{key}' is "
              f"{'ambiguous' if matches else 'missing'} in {path}",
              file=sys.stderr)
        sys.exit(2)
    return matches[0]


def check_ratio(num_ref, den_ref, min_ratio):
    num_path, num_key = parse_ref(num_ref)
    den_path, den_key = parse_ref(den_ref)
    num = lookup(load_values(num_path), num_key, num_path)
    den = lookup(load_values(den_path), den_key, den_path)
    if den <= 0.0:
        print(f"check_bench_regression: denominator {den_key} is {den}",
              file=sys.stderr)
        sys.exit(2)
    ratio = num / den
    ok = ratio >= min_ratio
    print(f"  {num_key} / {den_key} = {num:.4g} / {den:.4g} "
          f"= {ratio:.2f}x (floor {min_ratio:.2f}x) "
          f"{'ok' if ok else 'REGRESSION'}")
    return 0 if ok else 1


def check_range(ref, lo_text, hi_text):
    path, key = parse_ref(ref)
    try:
        lo, hi = float(lo_text), float(hi_text)
    except ValueError:
        print(f"check_bench_regression: bad --range bounds "
              f"'{lo_text}'/'{hi_text}' (want numbers)", file=sys.stderr)
        sys.exit(2)
    if lo > hi:
        print(f"check_bench_regression: --range bounds inverted "
              f"({lo} > {hi})", file=sys.stderr)
        sys.exit(2)
    value = lookup(load_values(path), key, path)
    ok = lo <= value <= hi
    print(f"  {key} = {value:.4g} (band [{lo:.4g}, {hi:.4g}]) "
          f"{'ok' if ok else 'OUT OF RANGE'}")
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", default=None,
                        help="committed baseline JSON (drift mode)")
    parser.add_argument("--current", default=None,
                        help="freshly measured JSON (drift mode)")
    parser.add_argument("--keys", default=".",
                        help="regex filtering which keys the drift gate "
                        "checks (default: all shared keys)")
    parser.add_argument("--max-drift", type=float, default=0.15,
                        help="max allowed fractional regression per key "
                        "(default 0.15 = +15%%)")
    parser.add_argument("--ratio", nargs=2, metavar=("NUM", "DEN"),
                        default=None,
                        help="ratio mode: two file.json:key refs; fails "
                        "unless NUM/DEN >= --min-ratio")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="floor for --ratio (default 2.0)")
    parser.add_argument("--range", dest="ranges", nargs=3, action="append",
                        metavar=("REF", "MIN", "MAX"), default=[],
                        help="range mode: file.json:key MIN MAX; fails "
                        "unless MIN <= value <= MAX (repeatable)")
    args = parser.parse_args()

    if (args.baseline is None) != (args.current is None):
        parser.error("--baseline and --current must be given together")
    if args.baseline is None and args.ratio is None and not args.ranges:
        parser.error("nothing to check: give --baseline/--current, "
                     "--ratio, and/or --range")

    failures = 0
    if args.baseline is not None:
        print(f"drift gate: {args.current} vs {args.baseline}")
        failures += check_drift(args.baseline, args.current, args.keys,
                                args.max_drift)
    if args.ratio is not None:
        print("ratio gate:")
        failures += check_ratio(args.ratio[0], args.ratio[1], args.min_ratio)
    if args.ranges:
        print("range gate:")
        for ref, lo, hi in args.ranges:
            failures += check_range(ref, lo, hi)
    if failures:
        print(f"check_bench_regression: {failures} gate(s) FAILED")
        return 1
    print("check_bench_regression: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
