#!/usr/bin/env python3
"""Critical-path analysis for request-scoped traces (docs/observability.md).

Reads a Chrome trace-event JSON file exported by TraceRecorder (the
--trace-out artifact of `reconsume_cli serve` or `bench_serve_load`),
reassembles each request's span tree from the trace_id/span_id/
parent_span_id args, and prints

  * a per-request critical-path breakdown for the slowest requests: each
    span's duration, its share of the request, and the self time (duration
    not covered by child spans) — i.e. where inside the serve pipeline the
    request actually aged, across every thread it touched;
  * an aggregate attribution table: total self time per span name across
    all requests, the fleet-level answer to "what is the pipeline spending
    its time on".

CI assertions (the trace-smoke job):

  --require-requests N    at least N reconstructed request trees
  --require-span NAME     some request tree contains a span NAME; repeatable
  --require-cross-thread  at least one request's tree spans >= 2 threads
                          (proves producer->worker stitching, not just
                          same-thread nesting)

Exit status: 0 when the trace parses and every assertion holds, 1 otherwise.

  tools/trace_analyze.py trace.json --top 3 \\
      --require-requests 1 --require-span serve/queue_wait \\
      --require-cross-thread
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_request_trees(path: Path, errors: list[str]) -> dict[int, dict]:
    """Returns {trace_id: {"spans": {span_id: span}, "root": span | None,
    "children": {span_id: [span_id, ...]}, "tids": set}}."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"{path}: {exc}")
        return {}
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append(f"{path}: missing 'traceEvents' list")
        return {}

    trees: dict[int, dict] = {}
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        trace_id = args.get("trace_id", 0)
        span_id = args.get("span_id", 0)
        if not isinstance(trace_id, int) or trace_id == 0 or not span_id:
            continue
        tree = trees.setdefault(
            trace_id, {"spans": {}, "root": None, "children": {}, "tids": set()})
        span = {
            "name": event.get("name", "?"),
            "tid": event.get("tid", 0),
            "ts": float(event.get("ts", 0.0)),
            "dur": float(event.get("dur", 0.0)),
            "span_id": span_id,
            "parent": args.get("parent_span_id", 0) or 0,
        }
        tree["spans"][span_id] = span
        tree["tids"].add(span["tid"])

    for trace_id, tree in trees.items():
        for span in tree["spans"].values():
            parent = span["parent"]
            if parent and parent in tree["spans"]:
                tree["children"].setdefault(parent, []).append(span["span_id"])
            elif not parent:
                if tree["root"] is not None:
                    errors.append(
                        f"{path}: trace {trace_id} has multiple root spans")
                tree["root"] = span
        if tree["root"] is None:
            errors.append(f"{path}: trace {trace_id} has no root span")
        for kids in tree["children"].values():
            kids.sort(key=lambda sid: (tree["spans"][sid]["ts"], sid))
    return trees


def self_time(tree: dict, span: dict) -> float:
    """Duration not covered by the span's direct children (its own cost)."""
    covered = sum(tree["spans"][kid]["dur"]
                  for kid in tree["children"].get(span["span_id"], []))
    return max(0.0, span["dur"] - covered)


def print_request(trace_id: int, tree: dict) -> None:
    root = tree["root"]
    total = root["dur"] if root["dur"] > 0 else 1.0

    def walk(span_id: int, depth: int) -> None:
        span = tree["spans"][span_id]
        own = self_time(tree, span)
        pad = max(1, 30 - 2 * depth)
        print(f"    {'  ' * depth}{span['name']:<{pad}} "
              f"{span['dur']:>10.1f}us {100.0 * span['dur'] / total:>5.1f}% "
              f"(self {own:>8.1f}us)  tid {span['tid']}")
        for kid in tree["children"].get(span_id, []):
            walk(kid, depth + 1)

    threads = ", ".join(str(t) for t in sorted(tree["tids"]))
    print(f"  request trace={trace_id} total {root['dur']:.1f}us "
          f"across threads [{threads}]")
    walk(root["span_id"], 0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path, help="Chrome trace JSON file")
    parser.add_argument("--top", type=int, default=5, metavar="N",
                        help="print the N slowest requests (default 5)")
    parser.add_argument("--require-requests", type=int, default=0,
                        metavar="N",
                        help="fail unless at least N request trees "
                             "reconstruct")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="fail unless some request tree contains a span "
                             "NAME; repeatable")
    parser.add_argument("--require-cross-thread", action="store_true",
                        help="fail unless at least one request tree spans "
                             ">= 2 threads")
    args = parser.parse_args()

    errors: list[str] = []
    trees = load_request_trees(args.trace, errors)
    complete = {tid: t for tid, t in trees.items() if t["root"] is not None}

    # Per-request critical paths: slowest first, the requests a tail-latency
    # investigation opens first.
    ranked = sorted(complete.items(),
                    key=lambda kv: kv[1]["root"]["dur"], reverse=True)
    print(f"trace_analyze: {len(complete)} request trees "
          f"({sum(len(t['spans']) for t in complete.values())} spans) "
          f"in {args.trace}")
    if ranked:
        print(f"slowest {min(args.top, len(ranked))} requests:")
        for trace_id, tree in ranked[:args.top]:
            print_request(trace_id, tree)

    # Aggregate attribution: self time per span name across every request —
    # where the pipeline as a whole spends its time.
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for tree in complete.values():
        for span in tree["spans"].values():
            totals[span["name"]] = totals.get(span["name"], 0.0) + \
                self_time(tree, span)
            counts[span["name"]] = counts.get(span["name"], 0) + 1
    grand = sum(totals.values()) or 1.0
    if totals:
        print("aggregate self-time attribution:")
        for name, total in sorted(totals.items(), key=lambda kv: -kv[1]):
            print(f"    {name:<28} {total:>12.1f}us {100.0 * total / grand:>5.1f}%"
                  f"  ({counts[name]} spans)")

    # CI assertions.
    if args.require_requests and len(complete) < args.require_requests:
        errors.append(f"expected >= {args.require_requests} request trees, "
                      f"found {len(complete)}")
    seen_names = {span["name"] for tree in complete.values()
                  for span in tree["spans"].values()}
    for name in args.require_span:
        if name not in seen_names:
            errors.append(f"no request tree contains a span '{name}'")
    if args.require_cross_thread and \
            not any(len(t["tids"]) >= 2 for t in complete.values()):
        errors.append("no request tree spans >= 2 threads — producer/worker "
                      "stitching is broken")

    if errors:
        print(f"trace_analyze: {len(errors)} error(s)")
        for error in errors:
            print("  " + error)
        return 1
    print("trace_analyze: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
