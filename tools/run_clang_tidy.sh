#!/usr/bin/env bash
# clang-tidy driver for the reconsume tree (static half of the analysis
# matrix; config lives in .clang-tidy, see docs/correctness_tooling.md).
#
# Generates a compile_commands.json build, then runs clang-tidy over every
# translation unit in src/ and tools/. Warnings are reported but non-fatal by
# default (readability-identifier-naming intentionally surfaces legacy
# spellings); pass --werror to turn any warning into a failure, which is what
# a strict pre-merge gate should use for new code.
#
# If clang-tidy is not installed, the script prints a notice and exits 0 so
# that environments with only a gcc toolchain (like the dev container) can
# still run the full tools/ suite; CI installs clang-tidy explicitly.
#
# Usage: tools/run_clang_tidy.sh [--werror] [build-dir]
#   default build dir: build-tidy

set -euo pipefail
cd "$(dirname "$0")/.."

WERROR=0
if [[ "${1:-}" == "--werror" ]]; then
  WERROR=1
  shift
fi
BUILD_DIR="${1:-build-tidy}"
JOBS="${JOBS:-$(nproc)}"

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY_BIN not found; skipping (install clang-tidy" \
       "to run the static-analysis half of the matrix)."
  exit 0
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DRECONSUME_BUILD_BENCHMARKS=OFF \
  -DRECONSUME_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

mapfile -t sources < <(find src tools -name '*.cc' | sort)
echo "run_clang_tidy: checking ${#sources[@]} translation units"

EXTRA_ARGS=()
if [[ "$WERROR" == 1 ]]; then
  EXTRA_ARGS+=("--warnings-as-errors=*")
fi

# run-clang-tidy parallelizes when available; fall back to a serial loop.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY_BIN" -p "$BUILD_DIR" \
    -j "$JOBS" "${EXTRA_ARGS[@]}" "${sources[@]}"
else
  for source in "${sources[@]}"; do
    "$TIDY_BIN" -p "$BUILD_DIR" "${EXTRA_ARGS[@]}" "$source"
  done
fi

echo "run_clang_tidy: done."
