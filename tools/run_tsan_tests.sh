#!/usr/bin/env bash
# Back-compat wrapper: the TSan run now lives in the unified sanitizer
# driver. See tools/run_sanitizers.sh (mode `tsan`).
#
# Usage: tools/run_tsan_tests.sh [build-dir]   (default: build-tsan)

set -euo pipefail
exec "$(dirname "$0")/run_sanitizers.sh" tsan "${1:-build-tsan}"
