#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer
# (-DRECONSUME_TSAN=ON) and runs them.
#
# The Hogwild trainer is written to be TSan-clean: worker-private parameters
# (user rows, A_u mappings) are plain memory touched by one thread, shared
# item factors are accessed only through relaxed std::atomic_ref, and the
# convergence checks read the model behind std::barrier synchronization. A
# TSan report from this script therefore indicates a genuine regression, not
# Hogwild-by-design noise.
#
# Usage: tools/run_tsan_tests.sh [build-dir]   (default: build-tsan)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . \
  -DRECONSUME_TSAN=ON \
  -DRECONSUME_BUILD_BENCHMARKS=OFF \
  -DRECONSUME_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target thread_pool_test parallel_trainer_test parallel_eval_test

# Fail on any race report even if the test would otherwise pass.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

"$BUILD_DIR/tests/thread_pool_test"
"$BUILD_DIR/tests/parallel_trainer_test"
"$BUILD_DIR/tests/parallel_eval_test"

echo "TSan concurrency tests passed."
