#!/usr/bin/env bash
# Back-compat wrapper: the TSan run now lives in the unified sanitizer
# driver. See tools/run_sanitizers.sh (mode `tsan`).
#
# TSan is the dynamic half; the static half is the clang thread-safety
# build (-DRECONSUME_THREAD_SAFETY=ON, docs/static_analysis.md), which
# proves the mutex discipline the annotations in util/sync.h declare.
#
# Usage: tools/run_tsan_tests.sh [build-dir]   (default: build-tsan)

set -euo pipefail
exec "$(dirname "$0")/run_sanitizers.sh" tsan "${1:-build-tsan}"
