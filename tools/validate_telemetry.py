#!/usr/bin/env python3
"""Validates the telemetry artifacts a reconsume run writes (CI smoke gate).

Checks three file kinds, any subset of which may be given:

  --events  e.jsonl   one JSON object per line with type/seq/t_ns/tid stamps;
                      seq must be unique and strictly increasing, and any
                      train_start/train_end pair must bracket the epoch events
  --metrics m.json    the MetricsRegistry export: counters/gauges/histograms
                      maps; histogram invariants (count == sum of bucket
                      counts, len(counts) == len(bounds) + 1) must hold
  --trace   t.json    Chrome trace-event JSON: a traceEvents list of "X"
                      events with numeric ts/dur and args.depth

--require-metric NAME (repeatable) additionally asserts that NAME exists in
the metrics file (as a counter, gauge, or histogram) and, for counters and
histograms, that it actually observed something — the CI telemetry-smoke job
uses this to pin the trainer/checkpoint instrumentation end to end.

--require-serve-events additionally asserts the serving layer's event
protocol inside --events (see docs/serving.md): exactly one serve_start per
service carrying its configuration, at least one request_done carrying the
per-request stamps (kind/user/cache_hit/degraded/served_by/epoch/
model_epoch/latency_us/ok), and every cache_evict naming the user and epoch
it dropped. The CI serve-smoke job uses this against a
`reconsume_cli serve --events-out=...` session.

--require-degrade-events additionally asserts the resilience protocol
(docs/serving.md §8) inside --events: at least one `degraded` event, each
carrying reason/tier/user with the tier one of stale_cache|fallback, and
every `request_shed` carrying user/reason. The CI overload-smoke job uses
this against a `bench_serve_load --overload` run with an injected scoring
failpoint — it proves the degradation ladder actually engaged under
overload rather than the service merely erroring fast.

--require-trace-integrity (needs both --events and --trace) additionally
asserts the request-tracing contract (docs/observability.md, "Request
tracing"): every traced span's parent resolves inside its own trace with no
parent cycles and exactly one root; every request_done with
trace_retained=true has its trace's spans present in --trace (and
trace_retained=false traces are absent — the tail sampler dropped them);
degraded and failed traced requests are always retained; and every flow
event binds threads of a trace that actually exists. The CI trace-smoke job
uses this against a `bench_serve_load --overload --trace-sample` run.

Exit status: 0 when every given artifact validates, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_EVENT_STAMPS = ("type", "seq", "t_ns", "tid")


def fail(errors: list[str], message: str) -> None:
    errors.append(message)


def validate_events(path: Path, errors: list[str]) -> None:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        fail(errors, f"{path}: unreadable: {exc}")
        return
    if not lines:
        fail(errors, f"{path}: event log is empty")
        return

    seqs: list[int] = []
    types: list[str] = []
    for lineno, line in enumerate(lines, start=1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(errors, f"{path}:{lineno}: not valid JSON: {exc}")
            continue
        if not isinstance(event, dict):
            fail(errors, f"{path}:{lineno}: line is not a JSON object")
            continue
        for key in REQUIRED_EVENT_STAMPS:
            if key not in event:
                fail(errors, f"{path}:{lineno}: missing stamp '{key}'")
        if isinstance(event.get("seq"), int):
            seqs.append(event["seq"])
        if isinstance(event.get("type"), str):
            types.append(event["type"])

    for i in range(1, len(seqs)):
        if seqs[i] <= seqs[i - 1]:
            fail(errors,
                 f"{path}: seq not strictly increasing at line {i + 1} "
                 f"({seqs[i - 1]} -> {seqs[i]})")
            break

    # When a training run is present, its lifecycle events must bracket the
    # epoch stream: train_start before the first epoch, train_end after the
    # last one.
    if "train_start" in types and "train_end" in types:
        first_epoch = types.index("epoch") if "epoch" in types else None
        if first_epoch is not None:
            if types.index("train_start") > first_epoch:
                fail(errors, f"{path}: epoch event before train_start")
            last_epoch = len(types) - 1 - types[::-1].index("epoch")
            last_end = len(types) - 1 - types[::-1].index("train_end")
            if last_end < last_epoch:
                fail(errors, f"{path}: epoch event after train_end")


def validate_serve_events(path: Path, errors: list[str]) -> None:
    """Checks the serve-layer event protocol (docs/serving.md §5)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        fail(errors, f"{path}: unreadable: {exc}")
        return
    events = []
    for line in lines:
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # validate_events already reports malformed lines
        if isinstance(event, dict):
            events.append(event)

    starts = [e for e in events if e.get("type") == "serve_start"]
    if len(starts) != 1:
        fail(errors, f"{path}: expected exactly one serve_start event, "
                     f"found {len(starts)}")
    for event in starts:
        for key in ("threads", "queue_capacity", "cache_capacity",
                    "window", "min_gap"):
            if key not in event:
                fail(errors, f"{path}: serve_start missing '{key}'")

    done = [e for e in events if e.get("type") == "request_done"]
    if not done:
        fail(errors, f"{path}: no request_done events — the serve session "
                     "handled no requests")
    for i, event in enumerate(done):
        for key in ("kind", "user", "cache_hit", "degraded", "served_by",
                    "epoch", "model_epoch", "latency_us", "ok"):
            if key not in event:
                fail(errors, f"{path}: request_done[{i}] missing '{key}'")
                break

    for i, event in enumerate(e for e in events
                              if e.get("type") == "cache_evict"):
        for key in ("user", "epoch"):
            if key not in event:
                fail(errors, f"{path}: cache_evict[{i}] missing '{key}'")


def validate_degrade_events(path: Path, errors: list[str]) -> None:
    """Checks the resilience event protocol (docs/serving.md §8)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        fail(errors, f"{path}: unreadable: {exc}")
        return
    events = []
    for line in lines:
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # validate_events already reports malformed lines
        if isinstance(event, dict):
            events.append(event)

    degraded = [e for e in events if e.get("type") == "degraded"]
    if not degraded:
        fail(errors, f"{path}: no 'degraded' events — the degradation "
                     "ladder never engaged (is the scoring failpoint armed "
                     "and the build configured with RECONSUME_FAILPOINTS?)")
    for i, event in enumerate(degraded):
        for key in ("reason", "tier", "user"):
            if key not in event:
                fail(errors, f"{path}: degraded[{i}] missing '{key}'")
        tier = event.get("tier")
        if tier is not None and tier not in ("stale_cache", "fallback"):
            fail(errors, f"{path}: degraded[{i}] has unknown tier '{tier}'")

    for i, event in enumerate(e for e in events
                              if e.get("type") == "request_shed"):
        for key in ("user", "reason"):
            if key not in event:
                fail(errors, f"{path}: request_shed[{i}] missing '{key}'")


def load_json(path: Path, errors: list[str]):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"{path}: {exc}")
        return None


def validate_metrics(path: Path, required: list[str],
                     errors: list[str]) -> None:
    doc = load_json(path, errors)
    if doc is None:
        return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(errors, f"{path}: missing '{section}' object")
            return

    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, f"{path}: counter '{name}' is not a non-negative int")
    for name, hist in doc["histograms"].items():
        if not isinstance(hist, dict):
            fail(errors, f"{path}: histogram '{name}' is not an object")
            continue
        bounds = hist.get("bounds")
        counts = hist.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            fail(errors, f"{path}: histogram '{name}' lacks bounds/counts")
            continue
        if len(counts) != len(bounds) + 1:
            fail(errors,
                 f"{path}: histogram '{name}': len(counts)={len(counts)} != "
                 f"len(bounds)+1={len(bounds) + 1}")
        if sum(counts) != hist.get("count"):
            fail(errors,
                 f"{path}: histogram '{name}': bucket counts sum to "
                 f"{sum(counts)} but count={hist.get('count')}")
        if list(bounds) != sorted(bounds):
            fail(errors, f"{path}: histogram '{name}': bounds not sorted")

    for name in required:
        if name in doc["counters"]:
            if doc["counters"][name] <= 0:
                fail(errors, f"{path}: required counter '{name}' is zero")
        elif name in doc["histograms"]:
            if doc["histograms"][name].get("count", 0) <= 0:
                fail(errors, f"{path}: required histogram '{name}' is empty")
        elif name not in doc["gauges"]:
            fail(errors, f"{path}: required metric '{name}' not present")


def validate_trace(path: Path, errors: list[str]) -> None:
    doc = load_json(path, errors)
    if doc is None:
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, f"{path}: missing 'traceEvents' list")
        return
    if not events:
        fail(errors, f"{path}: trace holds no spans")
        return
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(errors, f"{path}: traceEvents[{i}] is not an object")
            continue
        ph = event.get("ph")
        if ph in ("s", "f"):
            # Flow events stitch a trace's threads together; they carry an
            # id instead of dur/args.
            for key in ("name", "ts", "pid", "tid", "id"):
                if key not in event:
                    fail(errors,
                         f"{path}: traceEvents[{i}] (flow) missing '{key}'")
            continue
        if ph != "X":
            fail(errors, f"{path}: traceEvents[{i}] is not a complete event")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(errors, f"{path}: traceEvents[{i}] missing '{key}'")
        if not isinstance(event.get("ts"), (int, float)) or \
                not isinstance(event.get("dur"), (int, float)):
            fail(errors, f"{path}: traceEvents[{i}] ts/dur not numeric")
        args = event.get("args")
        if not isinstance(args, dict) or "depth" not in args:
            fail(errors, f"{path}: traceEvents[{i}] missing args.depth")


def load_trace_groups(path: Path, errors: list[str]):
    """Returns ({trace_id: [span, ...]}, [flow_event, ...]) from a trace
    file, where spans are the "X" events carrying args.trace_id != 0."""
    doc = load_json(path, errors)
    if doc is None:
        return None, None
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, f"{path}: missing 'traceEvents' list")
        return None, None
    groups: dict[int, list[dict]] = {}
    flows: list[dict] = []
    for event in events:
        if not isinstance(event, dict):
            continue
        if event.get("ph") in ("s", "f"):
            flows.append(event)
            continue
        if event.get("ph") != "X":
            continue
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        trace_id = args.get("trace_id", 0)
        if isinstance(trace_id, int) and trace_id != 0:
            groups.setdefault(trace_id, []).append(event)
    return groups, flows


def validate_trace_integrity(events_path: Path, trace_path: Path,
                             errors: list[str]) -> None:
    """Cross-checks the tail-sampled trace against the event stream
    (docs/observability.md, "Request tracing")."""
    groups, flows = load_trace_groups(trace_path, errors)
    if groups is None:
        return

    # 1. Structural integrity per trace: ids present, parents resolve
    #    in-trace, exactly one root, no parent cycles.
    for trace_id, spans in sorted(groups.items()):
        ids = set()
        parents = {}
        roots = []
        for span in spans:
            args = span["args"]
            span_id = args.get("span_id")
            parent = args.get("parent_span_id")
            if not isinstance(span_id, int) or span_id == 0:
                fail(errors, f"{trace_path}: trace {trace_id}: span "
                             f"'{span.get('name')}' has no span_id")
                continue
            if span_id in ids:
                fail(errors, f"{trace_path}: trace {trace_id}: duplicate "
                             f"span_id {span_id}")
            ids.add(span_id)
            parents[span_id] = parent if isinstance(parent, int) else 0
            if not parent:
                roots.append(span)
        for span_id, parent in sorted(parents.items()):
            if parent and parent not in ids:
                fail(errors, f"{trace_path}: trace {trace_id}: span "
                             f"{span_id} has unresolved parent {parent}")
        if len(roots) != 1:
            fail(errors, f"{trace_path}: trace {trace_id}: expected exactly "
                         f"one root span, found {len(roots)}")
        for span_id in parents:
            seen = set()
            node = span_id
            while node:
                if node in seen:
                    fail(errors, f"{trace_path}: trace {trace_id}: parent "
                                 f"cycle through span {node}")
                    break
                seen.add(node)
                node = parents.get(node, 0)

    # 2. Flow events must bind threads of traces that exist.
    for i, flow in enumerate(flows):
        if flow.get("id") not in groups:
            fail(errors, f"{trace_path}: flow[{i}] references absent trace "
                         f"{flow.get('id')}")

    # 3. Cross-check against request_done: retained traces present, dropped
    #    traces absent, degraded/failed traced requests always retained.
    try:
        lines = events_path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        fail(errors, f"{events_path}: unreadable: {exc}")
        return
    traced_done = 0
    for line in lines:
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # validate_events already reports malformed lines
        if not isinstance(event, dict) or event.get("type") != "request_done":
            continue
        trace_id = event.get("trace_id", 0)
        if not isinstance(trace_id, int) or trace_id == 0:
            continue
        traced_done += 1
        retained = bool(event.get("trace_retained"))
        interesting = bool(event.get("degraded")) or not event.get("ok", True)
        if interesting and not retained:
            fail(errors, f"{events_path}: trace {trace_id} is degraded or "
                         "failed but the tail sampler did not retain it")
        if retained and trace_id not in groups:
            fail(errors, f"{trace_path}: trace {trace_id} was retained but "
                         "its spans are missing from the trace")
        if not retained and trace_id in groups:
            fail(errors, f"{trace_path}: trace {trace_id} was dropped by "
                         "the tail sampler but its spans were exported")
    if traced_done == 0:
        fail(errors, f"{events_path}: no traced request_done events — was "
                     "the run started with tracing on (--trace-out + "
                     "--trace-sample)?")
    if not groups:
        fail(errors, f"{trace_path}: no traced spans in the trace file")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=Path, help="JSONL event log")
    parser.add_argument("--metrics", type=Path, help="metrics JSON export")
    parser.add_argument("--trace", type=Path, help="Chrome trace JSON")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME",
                        help="metric that must exist (and be non-empty) in "
                             "--metrics; repeatable")
    parser.add_argument("--require-serve-events", action="store_true",
                        help="assert the serve_start/request_done/cache_evict "
                             "protocol in --events (docs/serving.md)")
    parser.add_argument("--require-degrade-events", action="store_true",
                        help="assert the degraded/request_shed resilience "
                             "protocol in --events (docs/serving.md §8)")
    parser.add_argument("--require-trace-integrity", action="store_true",
                        help="cross-check --trace against --events: parents "
                             "resolve in-trace, one root per trace, retained "
                             "traces present / dropped traces absent, "
                             "degraded or failed requests always retained "
                             "(docs/observability.md)")
    args = parser.parse_args()
    if not (args.events or args.metrics or args.trace):
        parser.error("give at least one of --events/--metrics/--trace")
    if args.require_metric and not args.metrics:
        parser.error("--require-metric needs --metrics")
    if args.require_serve_events and not args.events:
        parser.error("--require-serve-events needs --events")
    if args.require_degrade_events and not args.events:
        parser.error("--require-degrade-events needs --events")
    if args.require_trace_integrity and not (args.events and args.trace):
        parser.error("--require-trace-integrity needs --events and --trace")

    errors: list[str] = []
    checked = []
    if args.events:
        validate_events(args.events, errors)
        if args.require_serve_events:
            validate_serve_events(args.events, errors)
        if args.require_degrade_events:
            validate_degrade_events(args.events, errors)
        checked.append(str(args.events))
    if args.metrics:
        validate_metrics(args.metrics, args.require_metric, errors)
        checked.append(str(args.metrics))
    if args.trace:
        validate_trace(args.trace, errors)
        checked.append(str(args.trace))
    if args.require_trace_integrity:
        validate_trace_integrity(args.events, args.trace, errors)

    if errors:
        print(f"validate_telemetry: {len(errors)} error(s)")
        for error in errors:
            print("  " + error)
        return 1
    print(f"validate_telemetry: OK ({', '.join(checked)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
