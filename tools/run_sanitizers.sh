#!/usr/bin/env bash
# Unified sanitizer driver for the reconsume tree (the dynamic half of the
# static/dynamic analysis matrix; see docs/correctness_tooling.md).
#
# Modes:
#   tsan   ThreadSanitizer over the concurrency-sensitive tests only
#          (thread_pool_test, parallel_trainer_test, parallel_eval_test,
#          the lock-free observability layer: obs_metrics_test,
#          obs_trace_test, telemetry_integration_test, plus the serving
#          layer: serve_queue_test, score_cache_test,
#          serve_integration_test, serve_resilience_test, serve_trace_test
#          — these cover the cache-epoch swap race, the degradation ladder /
#          hot-swap paths, and cross-thread trace stitching under concurrent
#          traffic; see docs/serving.md §8).
#          The Hogwild trainer is written to be TSan-clean: worker-private
#          parameters are plain memory touched by one thread, shared item
#          factors are accessed only through relaxed std::atomic_ref, and the
#          convergence checks read the model behind std::barrier
#          synchronization. A TSan report therefore indicates a genuine
#          regression, not Hogwild-by-design noise.
#   asan   AddressSanitizer (+LeakSanitizer) over the full ctest suite.
#   ubsan  UndefinedBehaviorSanitizer over the full ctest suite, with
#          recovery disabled so any report fails the run.
#   all    tsan, then asan, then ubsan.
#
# asan/ubsan configure with CMAKE_BUILD_TYPE=Debug so that the RC_DCHECK
# layer (debug-only contracts) is active under the sanitizers.
#
# The static counterpart to the tsan mode is the clang thread-safety build:
#   CC=clang CXX=clang++ cmake -B build-ts -S . -DRECONSUME_THREAD_SAFETY=ON
# which proves the lock discipline at compile time (docs/static_analysis.md).
# TSan catches what the annotations cannot see (the atomics/barrier paths);
# the annotations catch what TSan's schedules may miss.
#
# Usage: tools/run_sanitizers.sh [tsan|asan|ubsan|all] [build-dir]
#   default mode: all; default build dir: build-<mode>
# Env: JOBS=<n> overrides the build parallelism.

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
JOBS="${JOBS:-$(nproc)}"

run_tsan() {
  local build_dir="${1:-build-tsan}"
  cmake -B "$build_dir" -S . \
    -DRECONSUME_TSAN=ON \
    -DRECONSUME_BUILD_BENCHMARKS=OFF \
    -DRECONSUME_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  local tsan_tests=(thread_pool_test parallel_trainer_test parallel_eval_test
                    obs_metrics_test obs_trace_test telemetry_integration_test
                    serve_queue_test score_cache_test serve_integration_test
                    serve_resilience_test serve_trace_test kernels_test
                    scoring_engine_test)
  cmake --build "$build_dir" -j "$JOBS" --target "${tsan_tests[@]}"

  # Fail on any race report even if the test would otherwise pass.
  local test
  for test in "${tsan_tests[@]}"; do
    TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
      "$build_dir/tests/$test"
  done
  echo "TSan concurrency tests passed."
}

run_full_suite() {
  local option="$1" build_dir="$2" env_assign="$3"
  cmake -B "$build_dir" -S . \
    "-D${option}=ON" \
    -DRECONSUME_BUILD_BENCHMARKS=OFF \
    -DRECONSUME_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=Debug
  cmake --build "$build_dir" -j "$JOBS"
  (cd "$build_dir" && env "$env_assign" ctest --output-on-failure -j "$JOBS")
}

case "$MODE" in
  tsan)
    run_tsan "${2:-build-tsan}"
    ;;
  asan)
    # abort_on_error makes gtest death tests see a real abort, and
    # detect_leaks stays on by default on Linux.
    run_full_suite RECONSUME_ASAN "${2:-build-asan}" \
      "ASAN_OPTIONS=abort_on_error=1:${ASAN_OPTIONS:-}"
    echo "ASan suite passed."
    ;;
  ubsan)
    run_full_suite RECONSUME_UBSAN "${2:-build-ubsan}" \
      "UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"
    echo "UBSan suite passed."
    ;;
  all)
    run_tsan build-tsan
    run_full_suite RECONSUME_ASAN build-asan \
      "ASAN_OPTIONS=abort_on_error=1:${ASAN_OPTIONS:-}"
    run_full_suite RECONSUME_UBSAN build-ubsan \
      "UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"
    echo "Sanitizer matrix passed (tsan, asan, ubsan)."
    ;;
  *)
    echo "usage: $0 [tsan|asan|ubsan|all] [build-dir]" >&2
    exit 2
    ;;
esac
