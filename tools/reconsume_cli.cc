// reconsume_cli — command-line front end for the library.
//
//   reconsume_cli generate --profile=gowalla --scale=0.5 --out=trace.tsv
//   reconsume_cli stats    --data=trace.tsv [--window=100]
//   reconsume_cli train    --data=trace.tsv --model=tsppr.bin
//                          [--k=40 --gamma=0.05 --lambda=0.01 --omega=10
//                           --negatives=10 --window=100 --train-fraction=0.7
//                           --tolerance=1e-3 --threads=1
//                           --checkpoint-dir=ckpts --checkpoint-every=1
//                           --checkpoint-retention=2 --resume
//                           --max-recoveries=0 --lr-backoff=0.5]
//   reconsume_cli evaluate --data=trace.tsv --model=tsppr.bin
//                          [--omega=10 --window=100 --train-fraction=0.7]
//   reconsume_cli recommend --data=trace.tsv --model=tsppr.bin --user=<key>
//                          [--n=10 --omega=10 --window=100]
//   reconsume_cli serve    --data=trace.tsv --model=tsppr.bin
//                          [--serve-threads=4 --queue-capacity=1024
//                           --cache-capacity=4096 --omega=10 --window=100
//                           --train-fraction=0.7 --trace-sample=0.05]
//
// `serve` reads one request per line from stdin (see docs/serving.md):
//   recommend <user-key> [n]     rank the user's current top-n
//   observe <user-key> <item-key>  append one consumption event
//   stats                        print QPS counters, cache hit rate, and the
//                                SLO burn-rate dashboard
//   quit                         drain and exit (EOF works too)
//
// --trace-sample arms tail-based trace sampling (default comes from the
// RECONSUME_TRACE_SAMPLE environment variable; < 0 leaves sampling off) —
// see docs/observability.md, "Request tracing". Pair with --trace-out.
//
// The trace format is the TSV event file of data::SaveDatasetTsv
// ("user \t item \t time"); real Gowalla / Last.fm dumps load with
// --format=gowalla / --format=lastfm (optionally --max-bad-lines=N to
// tolerate up to N malformed rows; see docs/robustness.md).
//
// Every command additionally accepts the observability flags
// (docs/observability.md):
//   --metrics-out=m.json     metrics registry scrape, written at exit
//   --trace-out=t.json       Chrome/Perfetto trace of the run
//   --events-out=e.jsonl     structured JSONL telemetry stream
//   --progress-every=SECS    rate-limited stderr progress lines

#include <cstdio>
#include <string>

#include "baselines/simple_recommenders.h"
#include "core/checkpoint.h"
#include "core/model_io.h"
#include "core/ts_ppr.h"
#include "data/dataset_stats.h"
#include "data/loaders.h"
#include "data/serialization.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/significance.h"
#include "eval/table.h"
#include "obs/slo.h"
#include "obs/tail_sampler.h"
#include "obs/telemetry.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace reconsume;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: reconsume_cli <generate|stats|train|evaluate|"
               "recommend|serve|compare> [flags]\n(see the header of tools/reconsume_cli.cc"
               " for the full flag list)\n");
  return 2;
}

Result<data::Dataset> LoadData(const util::FlagSet& flags,
                               data::LoadReport* report = nullptr) {
  RECONSUME_ASSIGN_OR_RETURN(const std::string path,
                             flags.GetString("data", ""));
  if (path.empty()) {
    return Status::InvalidArgument("--data=<trace file> is required");
  }
  RECONSUME_ASSIGN_OR_RETURN(const std::string format,
                             flags.GetString("format", "tsv"));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t max_bad_lines,
                             flags.GetInt("max-bad-lines", 0));
  data::LoaderOptions options;
  options.max_bad_lines = max_bad_lines;
  if (format == "tsv") {
    if (max_bad_lines != 0) {
      return Status::InvalidArgument(
          "--max-bad-lines applies to --format=gowalla/lastfm only");
    }
    return data::LoadDatasetTsv(path);
  }
  if (format == "gowalla") {
    return data::GowallaLoader::Load(path, options, report);
  }
  if (format == "lastfm") {
    return data::LastfmLoader::Load(path, options, report);
  }
  return Status::InvalidArgument("--format must be tsv, gowalla, or lastfm");
}

Result<int> CmdGenerate(const util::FlagSet& flags) {
  RECONSUME_ASSIGN_OR_RETURN(const std::string profile_name,
                             flags.GetString("profile", "gowalla"));
  RECONSUME_ASSIGN_OR_RETURN(const double scale,
                             flags.GetDouble("scale", 0.5));
  RECONSUME_ASSIGN_OR_RETURN(const std::string out,
                             flags.GetString("out", ""));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t seed, flags.GetInt("seed", 0));
  if (out.empty()) return Status::InvalidArgument("--out=<file> is required");
  RECONSUME_RETURN_NOT_OK(flags.CheckNoUnusedFlags());

  data::SyntheticProfile profile;
  if (profile_name == "gowalla") {
    profile = data::GowallaLikeProfile(scale);
  } else if (profile_name == "lastfm") {
    profile = data::LastfmLikeProfile(scale);
  } else {
    return Status::InvalidArgument("--profile must be gowalla or lastfm");
  }
  if (seed != 0) profile.seed = static_cast<uint64_t>(seed);

  RECONSUME_ASSIGN_OR_RETURN(const data::Dataset dataset,
                             data::SyntheticTraceGenerator(profile).Generate());
  RECONSUME_RETURN_NOT_OK(data::SaveDatasetTsv(dataset, out));
  std::printf("wrote %s events for %s users to %s\n",
              util::FormatWithCommas(dataset.num_interactions()).c_str(),
              util::FormatWithCommas(
                  static_cast<int64_t>(dataset.num_users()))
                  .c_str(),
              out.c_str());
  return 0;
}

Result<int> CmdStats(const util::FlagSet& flags) {
  data::LoadReport load_report;
  RECONSUME_ASSIGN_OR_RETURN(const data::Dataset dataset,
                             LoadData(flags, &load_report));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t window,
                             flags.GetInt("window", 100));
  RECONSUME_RETURN_NOT_OK(flags.CheckNoUnusedFlags());
  data::DatasetStats stats =
      data::ComputeDatasetStats(dataset, static_cast<int>(window));
  stats.num_bad_lines = load_report.num_bad_lines;
  std::printf("%s\n", data::FormatDatasetStats("dataset", stats).c_str());
  return 0;
}

struct ProtocolFlags {
  int window = 100;
  int omega = 10;
  double train_fraction = 0.7;
};

Result<ProtocolFlags> ReadProtocolFlags(const util::FlagSet& flags) {
  ProtocolFlags out;
  RECONSUME_ASSIGN_OR_RETURN(const int64_t window,
                             flags.GetInt("window", out.window));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t omega,
                             flags.GetInt("omega", out.omega));
  RECONSUME_ASSIGN_OR_RETURN(
      out.train_fraction,
      flags.GetDouble("train-fraction", out.train_fraction));
  out.window = static_cast<int>(window);
  out.omega = static_cast<int>(omega);
  return out;
}

Result<int> CmdTrain(const util::FlagSet& flags) {
  RECONSUME_ASSIGN_OR_RETURN(const data::Dataset dataset, LoadData(flags));
  RECONSUME_ASSIGN_OR_RETURN(const std::string model_path,
                             flags.GetString("model", ""));
  if (model_path.empty()) {
    return Status::InvalidArgument("--model=<output file> is required");
  }
  RECONSUME_ASSIGN_OR_RETURN(const ProtocolFlags protocol,
                             ReadProtocolFlags(flags));

  core::TsPprPipelineConfig config;
  RECONSUME_ASSIGN_OR_RETURN(const int64_t k, flags.GetInt("k", 40));
  RECONSUME_ASSIGN_OR_RETURN(config.model.gamma,
                             flags.GetDouble("gamma", 0.05));
  RECONSUME_ASSIGN_OR_RETURN(config.model.lambda,
                             flags.GetDouble("lambda", 0.01));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t negatives,
                             flags.GetInt("negatives", 10));
  RECONSUME_ASSIGN_OR_RETURN(config.train.convergence_tolerance,
                             flags.GetDouble("tolerance", 1e-3));
  // Hogwild-parallel SGD workers; 1 = the paper's exact sequential loop
  // (see docs/training_internals.md).
  RECONSUME_ASSIGN_OR_RETURN(const int64_t threads,
                             flags.GetInt("threads", 1));
  if (threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }

  // Crash safety + divergence recovery (docs/robustness.md).
  RECONSUME_ASSIGN_OR_RETURN(config.train.checkpoint_dir,
                             flags.GetString("checkpoint-dir", ""));
  RECONSUME_ASSIGN_OR_RETURN(
      const int64_t checkpoint_every,
      flags.GetInt("checkpoint-every", config.train.checkpoint_every_checks));
  RECONSUME_ASSIGN_OR_RETURN(
      const int64_t checkpoint_retention,
      flags.GetInt("checkpoint-retention", config.train.checkpoint_retention));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t max_recoveries,
                             flags.GetInt("max-recoveries", 0));
  RECONSUME_ASSIGN_OR_RETURN(config.train.lr_backoff,
                             flags.GetDouble("lr-backoff", 0.5));
  RECONSUME_ASSIGN_OR_RETURN(const bool resume, flags.GetBool("resume", false));
  config.train.checkpoint_every_checks = static_cast<int>(checkpoint_every);
  config.train.checkpoint_retention = static_cast<int>(checkpoint_retention);
  config.train.max_recoveries = static_cast<int>(max_recoveries);
  if (resume) {
    if (config.train.checkpoint_dir.empty()) {
      return Status::InvalidArgument("--resume requires --checkpoint-dir");
    }
    // The same command line works for the first run and every restart: when
    // the directory holds no usable checkpoint yet, train from scratch.
    auto latest =
        core::FindLatestGoodCheckpoint(config.train.checkpoint_dir);
    if (latest.ok()) {
      config.resume_from = latest.ValueOrDie();
      std::printf("resuming from %s\n", config.resume_from.c_str());
    } else if (latest.status().code() == StatusCode::kNotFound) {
      std::printf("no checkpoint in %s yet; starting fresh\n",
                  config.train.checkpoint_dir.c_str());
    } else {
      return latest.status();
    }
  }
  RECONSUME_RETURN_NOT_OK(flags.CheckNoUnusedFlags());
  config.train.num_threads = static_cast<int>(threads);
  config.model.latent_dim = static_cast<int>(k);
  config.sampling.window_capacity = protocol.window;
  config.sampling.min_gap = protocol.omega;
  config.sampling.negatives_per_positive = static_cast<int>(negatives);

  RECONSUME_ASSIGN_OR_RETURN(
      const data::TrainTestSplit split,
      data::TrainTestSplit::Temporal(&dataset, protocol.train_fraction));
  RECONSUME_ASSIGN_OR_RETURN(core::TsPpr pipeline,
                             core::TsPpr::Fit(split, config));
  RECONSUME_RETURN_NOT_OK(core::SaveModel(pipeline.model(), model_path));
  const core::TrainReport& report = pipeline.train_report();
  std::printf("trained on %s quadruples, %s SGD steps (converged=%s, "
              "r~=%.4f, %.2fs); model -> %s\n",
              util::FormatWithCommas(pipeline.num_quadruples()).c_str(),
              util::FormatWithCommas(report.steps).c_str(),
              report.converged ? "yes" : "no", report.final_r_tilde,
              report.wall_seconds, model_path.c_str());
  if (report.resumed_from_step > 0) {
    std::printf("resumed at step %s\n",
                util::FormatWithCommas(report.resumed_from_step).c_str());
  }
  if (report.checkpoints_written > 0) {
    std::printf("wrote %d checkpoint(s) to %s\n", report.checkpoints_written,
                config.train.checkpoint_dir.c_str());
  }
  for (const core::RecoveryEvent& event : report.recovery_log) {
    std::printf("recovery: step %s failed (%s); rolled back to step %s, "
                "lr scale now %.4g\n",
                util::FormatWithCommas(event.failed_at_step).c_str(),
                event.reason.c_str(),
                util::FormatWithCommas(event.resumed_from_step).c_str(),
                event.lr_scale_after);
  }
  return 0;
}

Result<int> CmdEvaluate(const util::FlagSet& flags) {
  RECONSUME_ASSIGN_OR_RETURN(const data::Dataset dataset, LoadData(flags));
  RECONSUME_ASSIGN_OR_RETURN(const std::string model_path,
                             flags.GetString("model", ""));
  if (model_path.empty()) {
    return Status::InvalidArgument("--model=<model file> is required");
  }
  RECONSUME_ASSIGN_OR_RETURN(const ProtocolFlags protocol,
                             ReadProtocolFlags(flags));
  RECONSUME_RETURN_NOT_OK(flags.CheckNoUnusedFlags());

  RECONSUME_ASSIGN_OR_RETURN(const core::TsPprModel model,
                             core::LoadModel(model_path));
  if (model.num_users() != dataset.num_users() ||
      model.num_items() != dataset.num_items()) {
    return Status::InvalidArgument(util::StringPrintf(
        "model shape (%zu users, %zu items) does not match the dataset "
        "(%zu, %zu); was it trained on this trace?",
        model.num_users(), model.num_items(), dataset.num_users(),
        dataset.num_items()));
  }

  RECONSUME_ASSIGN_OR_RETURN(
      const data::TrainTestSplit split,
      data::TrainTestSplit::Temporal(&dataset, protocol.train_fraction));
  RECONSUME_ASSIGN_OR_RETURN(
      const features::StaticFeatureTable table,
      features::StaticFeatureTable::Compute(split, protocol.window));
  const features::FeatureExtractor extractor(
      &table, features::FeatureConfig::AllFeatures());
  if (extractor.dimension() != model.feature_dim()) {
    return Status::InvalidArgument("model feature_dim mismatch");
  }
  core::TsPprRecommender recommender(&model, &extractor);
  baselines::RandomRecommender random_rec;
  baselines::PopRecommender pop(&table);

  eval::EvalOptions options;
  options.window_capacity = protocol.window;
  options.min_gap = protocol.omega;
  eval::Evaluator evaluator(&split, options);

  eval::TextTable report({"method", "MaAP@1", "MaAP@5", "MaAP@10", "MiAP@10"});
  for (eval::Recommender* method :
       {static_cast<eval::Recommender*>(&random_rec),
        static_cast<eval::Recommender*>(&pop),
        static_cast<eval::Recommender*>(&recommender)}) {
    RECONSUME_ASSIGN_OR_RETURN(const eval::AccuracyResult acc,
                               evaluator.Evaluate(method));
    report.AddRow({acc.method, eval::TextTable::Cell(acc.MaapAt(1)),
                   eval::TextTable::Cell(acc.MaapAt(5)),
                   eval::TextTable::Cell(acc.MaapAt(10)),
                   eval::TextTable::Cell(acc.MiapAt(10))});
  }
  std::printf("%s", report.ToString().c_str());
  return 0;
}

Result<int> CmdRecommend(const util::FlagSet& flags) {
  RECONSUME_ASSIGN_OR_RETURN(const data::Dataset dataset, LoadData(flags));
  RECONSUME_ASSIGN_OR_RETURN(const std::string model_path,
                             flags.GetString("model", ""));
  RECONSUME_ASSIGN_OR_RETURN(const std::string user_key,
                             flags.GetString("user", ""));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t n, flags.GetInt("n", 10));
  RECONSUME_ASSIGN_OR_RETURN(const ProtocolFlags protocol,
                             ReadProtocolFlags(flags));
  RECONSUME_RETURN_NOT_OK(flags.CheckNoUnusedFlags());
  if (model_path.empty() || user_key.empty()) {
    return Status::InvalidArgument("--model and --user are required");
  }
  const data::UserId user = dataset.FindUser(user_key);
  if (user == data::kInvalidUser) {
    return Status::NotFound("user '" + user_key + "' not in the dataset");
  }

  RECONSUME_ASSIGN_OR_RETURN(const core::TsPprModel model,
                             core::LoadModel(model_path));
  RECONSUME_ASSIGN_OR_RETURN(
      const data::TrainTestSplit split,
      data::TrainTestSplit::Temporal(&dataset, protocol.train_fraction));
  RECONSUME_ASSIGN_OR_RETURN(
      const features::StaticFeatureTable table,
      features::StaticFeatureTable::Compute(split, protocol.window));
  const features::FeatureExtractor extractor(
      &table, features::FeatureConfig::AllFeatures());
  core::TsPprRecommender recommender(&model, &extractor);

  // Recommend at the end of the user's observed history.
  window::WindowWalker walker(&dataset.sequence(user), protocol.window);
  while (!walker.Done()) walker.Advance();
  std::vector<data::ItemId> candidates;
  walker.EligibleCandidates(protocol.omega, &candidates);
  if (candidates.empty()) {
    std::printf("no reconsumable candidates for user %s\n", user_key.c_str());
    return 0;
  }
  std::vector<double> scores(candidates.size());
  recommender.Score(user, walker, candidates, scores);
  std::vector<int> top;
  eval::SelectTopN(scores, static_cast<int>(n), &top);

  std::printf("top-%zu repeat recommendations for user %s (of %zu "
              "candidates):\n",
              top.size(), user_key.c_str(), candidates.size());
  for (size_t rank = 0; rank < top.size(); ++rank) {
    const data::ItemId item = candidates[static_cast<size_t>(top[rank])];
    std::printf("  %2zu. %-12s score %+.4f  (gap %d, %d in window)\n",
                rank + 1, dataset.item_key(item).c_str(),
                scores[static_cast<size_t>(top[rank])], walker.GapSince(item),
                walker.CountInWindow(item));
  }
  return 0;
}

void PrintRankedItems(const data::Dataset& dataset,
                      const std::vector<core::RankedItem>& items) {
  for (size_t rank = 0; rank < items.size(); ++rank) {
    const core::RankedItem& r = items[rank];
    std::printf("  %2zu. %-12s score %+.4f  (gap %d, %d in window)\n",
                rank + 1, dataset.item_key(r.item).c_str(), r.score, r.gap,
                r.count_in_window);
  }
}

void PrintServeStats(const serve::RecommendService& service) {
  const serve::ScoreCacheStats cache = service.cache_stats();
  const serve::ResilienceStats resilience = service.resilience_stats();
  const obs::HistogramSnapshot latency = service.LatencySnapshot();
  std::printf("served %s requests across %zu sessions (model epoch %lld)\n",
              util::FormatWithCommas(service.requests_served()).c_str(),
              service.num_sessions(),
              static_cast<long long>(service.model_epoch()));
  std::printf("cache: %s hits / %s misses (hit rate %.3f), %s evictions\n",
              util::FormatWithCommas(cache.hits).c_str(),
              util::FormatWithCommas(cache.misses).c_str(), cache.HitRate(),
              util::FormatWithCommas(cache.evictions).c_str());
  std::printf("resilience: %lld shed, %lld deadline, %lld degraded "
              "(%lld stale / %lld fallback), %lld breaker trips, "
              "%lld swaps / %lld rollbacks\n",
              static_cast<long long>(resilience.shed_enqueue +
                                     resilience.shed_queue_delay),
              static_cast<long long>(resilience.deadline_exceeded),
              static_cast<long long>(resilience.degraded_stale +
                                     resilience.degraded_fallback),
              static_cast<long long>(resilience.degraded_stale),
              static_cast<long long>(resilience.degraded_fallback),
              static_cast<long long>(resilience.breaker_trips),
              static_cast<long long>(resilience.model_swaps),
              static_cast<long long>(resilience.model_rollbacks));
  std::printf("latency us: p50 %.1f  p99 %.1f  p999 %.1f\n",
              latency.Quantile(0.5), latency.Quantile(0.99),
              latency.Quantile(0.999));
  const obs::TailSamplerStats traces = obs::TraceTailSampler::Global().stats();
  if (traces.considered > 0) {
    std::printf("tracing: %lld considered, %lld retained "
                "(%lld forced, %lld slow, %lld sampled), %lld dropped\n",
                static_cast<long long>(traces.considered),
                static_cast<long long>(traces.retained()),
                static_cast<long long>(traces.retained_forced),
                static_cast<long long>(traces.retained_slow),
                static_cast<long long>(traces.retained_sampled),
                static_cast<long long>(traces.dropped));
  }
  // The statusz-style SLO block (docs/observability.md, "Request tracing").
  std::printf("%s", obs::RenderSloDashboard(service.SloSnapshots()).c_str());
}

/// Keeps a hot-swapped model and its recommender alive together; the
/// registry's snapshot aliases into this holder.
struct SwappableModel {
  explicit SwappableModel(core::TsPprModel m) : model(std::move(m)) {}
  core::TsPprModel model;
  std::unique_ptr<core::TsPprRecommender> recommender;
};

Result<int> CmdServe(const util::FlagSet& flags) {
  RECONSUME_ASSIGN_OR_RETURN(const data::Dataset dataset, LoadData(flags));
  RECONSUME_ASSIGN_OR_RETURN(const std::string model_path,
                             flags.GetString("model", ""));
  RECONSUME_ASSIGN_OR_RETURN(const ProtocolFlags protocol,
                             ReadProtocolFlags(flags));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t serve_threads,
                             flags.GetInt("serve-threads", 4));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t queue_capacity,
                             flags.GetInt("queue-capacity", 1024));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t cache_capacity,
                             flags.GetInt("cache-capacity", 4096));
  RECONSUME_ASSIGN_OR_RETURN(
      const double trace_sample,
      flags.GetDouble("trace-sample", obs::TraceSampleRateFromEnv(-1.0)));
  RECONSUME_RETURN_NOT_OK(flags.CheckNoUnusedFlags());
  if (model_path.empty()) {
    return Status::InvalidArgument("--model=<model file> is required");
  }
  if (serve_threads < 1 || queue_capacity < 1 || cache_capacity < 1) {
    return Status::InvalidArgument(
        "--serve-threads, --queue-capacity, --cache-capacity must be >= 1");
  }

  RECONSUME_ASSIGN_OR_RETURN(const core::TsPprModel model,
                             core::LoadModel(model_path));
  RECONSUME_ASSIGN_OR_RETURN(
      const data::TrainTestSplit split,
      data::TrainTestSplit::Temporal(&dataset, protocol.train_fraction));
  RECONSUME_ASSIGN_OR_RETURN(
      const features::StaticFeatureTable table,
      features::StaticFeatureTable::Compute(split, protocol.window));
  const features::FeatureExtractor extractor(
      &table, features::FeatureConfig::AllFeatures());
  if (extractor.dimension() != model.feature_dim()) {
    return Status::InvalidArgument("model feature_dim mismatch");
  }
  core::TsPprRecommender recommender(&model, &extractor);

  serve::ServeConfig config;
  config.num_threads = static_cast<int>(serve_threads);
  config.queue_capacity = static_cast<size_t>(queue_capacity);
  config.cache_capacity = static_cast<size_t>(cache_capacity);
  config.window_capacity = protocol.window;
  config.min_gap = protocol.omega;
  config.trace_sample = trace_sample;
  // Non-owning view: the initial model and recommender live on this frame
  // for the whole serve loop; swapped-in models own themselves (see
  // SwappableModel below).
  serve::RecommendService service(
      &dataset,
      std::shared_ptr<eval::Recommender>(std::shared_ptr<void>(),
                                         &recommender),
      config);
  std::printf("serving %zu users on %d threads (queue %zu, cache %zu); "
              "reading requests from stdin\n",
              dataset.num_users(), config.num_threads, config.queue_capacity,
              config.cache_capacity);
  std::fflush(stdout);

  char line[4096];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    const std::vector<std::string_view> tokens =
        util::SplitWhitespace(util::Trim(line));
    if (tokens.empty()) continue;
    const std::string_view verb = tokens[0];
    if (verb == "quit" || verb == "exit") break;
    if (verb == "stats") {
      PrintServeStats(service);
      std::fflush(stdout);
      continue;
    }
    if (verb == "recommend" && (tokens.size() == 2 || tokens.size() == 3)) {
      const std::string user_key(tokens[1]);
      int64_t n = 10;
      if (tokens.size() == 3) {
        auto parsed = util::ParseInt64(tokens[2]);
        if (!parsed.ok() || parsed.ValueOrDie() < 1) {
          std::printf("error: bad top-n '%s'\n", std::string(tokens[2]).c_str());
          continue;
        }
        n = parsed.ValueOrDie();
      }
      const data::UserId user = dataset.FindUser(user_key);
      if (user == data::kInvalidUser) {
        std::printf("error: user '%s' not in the dataset\n", user_key.c_str());
        continue;
      }
      serve::ServeResponse response =
          service.Recommend(user, static_cast<int>(n)).get();
      if (!response.status.ok()) {
        std::printf("error: %s\n", response.status.ToString().c_str());
        continue;
      }
      std::printf("top-%zu for user %s (epoch %lld, model %lld%s%s):\n",
                  response.items.size(), user_key.c_str(),
                  static_cast<long long>(response.epoch),
                  static_cast<long long>(response.model_epoch),
                  response.cache_hit ? ", cached" : "",
                  response.degraded ? ", degraded" : "");
      PrintRankedItems(dataset, response.items);
      std::fflush(stdout);
      continue;
    }
    if (verb == "swap-model" && tokens.size() == 2) {
      const std::string path(tokens[1]);
      auto loaded = core::LoadModel(path);
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
        std::fflush(stdout);
        continue;
      }
      auto holder =
          std::make_shared<SwappableModel>(std::move(loaded).ValueOrDie());
      if (holder->model.feature_dim() != extractor.dimension()) {
        std::printf("error: model '%s' feature_dim mismatch\n", path.c_str());
        std::fflush(stdout);
        continue;
      }
      holder->recommender = std::make_unique<core::TsPprRecommender>(
          &holder->model, &extractor);
      std::shared_ptr<eval::Recommender> candidate(
          holder, holder->recommender.get());
      auto swapped = service.SwapModel(std::move(candidate), path);
      if (!swapped.ok()) {
        std::printf("error: %s\n", swapped.status().ToString().c_str());
      } else {
        std::printf("swapped to model '%s' (model epoch %lld)\n",
                    path.c_str(),
                    static_cast<long long>(swapped.ValueOrDie()));
      }
      std::fflush(stdout);
      continue;
    }
    if (verb == "observe" && tokens.size() == 3) {
      const std::string user_key(tokens[1]);
      const std::string item_key(tokens[2]);
      const data::UserId user = dataset.FindUser(user_key);
      const data::ItemId item = dataset.FindItem(item_key);
      if (user == data::kInvalidUser || item == data::kInvalidItem) {
        std::printf("error: unknown user '%s' or item '%s'\n",
                    user_key.c_str(), item_key.c_str());
        continue;
      }
      serve::ServeResponse response = service.Observe(user, item).get();
      if (!response.status.ok()) {
        std::printf("error: %s\n", response.status.ToString().c_str());
        continue;
      }
      std::printf("observed %s -> %s (epoch %lld)\n", user_key.c_str(),
                  item_key.c_str(), static_cast<long long>(response.epoch));
      std::fflush(stdout);
      continue;
    }
    std::printf("error: bad request '%s' (try: recommend <user> [n] | "
                "observe <user> <item> | swap-model <file> | stats | quit)\n",
                std::string(util::Trim(line)).c_str());
    std::fflush(stdout);
  }
  service.Shutdown();
  PrintServeStats(service);
  return 0;
}

Result<int> CmdCompare(const util::FlagSet& flags) {
  RECONSUME_ASSIGN_OR_RETURN(const data::Dataset dataset, LoadData(flags));
  RECONSUME_ASSIGN_OR_RETURN(const std::string model_path,
                             flags.GetString("model", ""));
  RECONSUME_ASSIGN_OR_RETURN(const ProtocolFlags protocol,
                             ReadProtocolFlags(flags));
  RECONSUME_RETURN_NOT_OK(flags.CheckNoUnusedFlags());
  if (model_path.empty()) {
    return Status::InvalidArgument("--model=<model file> is required");
  }

  RECONSUME_ASSIGN_OR_RETURN(const core::TsPprModel model,
                             core::LoadModel(model_path));
  RECONSUME_ASSIGN_OR_RETURN(
      const data::TrainTestSplit split,
      data::TrainTestSplit::Temporal(&dataset, protocol.train_fraction));
  RECONSUME_ASSIGN_OR_RETURN(
      const features::StaticFeatureTable table,
      features::StaticFeatureTable::Compute(split, protocol.window));
  const features::FeatureExtractor extractor(
      &table, features::FeatureConfig::AllFeatures());
  core::TsPprRecommender ts_ppr(&model, &extractor);

  baselines::PopRecommender pop(&table);
  baselines::RecencyRecommender recency;
  baselines::RandomRecommender random_rec;

  eval::EvalOptions options;
  options.window_capacity = protocol.window;
  options.min_gap = protocol.omega;

  eval::TextTable report({"baseline", "Top-N", "wins/losses/ties",
                          "mean dP(u)", "sign p", "wilcoxon p"});
  for (eval::Recommender* baseline :
       {static_cast<eval::Recommender*>(&random_rec),
        static_cast<eval::Recommender*>(&pop),
        static_cast<eval::Recommender*>(&recency)}) {
    RECONSUME_ASSIGN_OR_RETURN(
        const std::vector<eval::PairedComparison> comparisons,
        eval::ComparePaired(split, options, &ts_ppr, baseline));
    for (const auto& c : comparisons) {
      report.AddRow(
          {baseline->name(), std::to_string(c.top_n),
           util::StringPrintf("%d/%d/%d", c.wins_a, c.wins_b, c.ties),
           util::StringPrintf("%+.4f", c.mean_difference),
           util::StringPrintf("%.2e", c.sign_test_p),
           util::StringPrintf("%.2e", c.wilcoxon_p)});
    }
  }
  std::printf("paired TS-PPR-vs-baseline tests (positive dP = TS-PPR "
              "better):\n%s",
              report.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = util::FlagSet::Parse(argc, argv);
  if (!flags_result.ok()) return Fail(flags_result.status());
  const util::FlagSet& flags = flags_result.ValueOrDie();
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];

  // Telemetry wraps the whole command: flags are consumed here (before each
  // command's CheckNoUnusedFlags) and the outputs are written on the way out.
  auto telemetry_config = obs::TelemetryConfigFromFlags(flags);
  if (!telemetry_config.ok()) return Fail(telemetry_config.status());
  auto session =
      obs::TelemetrySession::Start(telemetry_config.ValueOrDie());
  if (!session.ok()) return Fail(session.status());

  Result<int> result = Status::InvalidArgument("unknown command");
  if (command == "generate") {
    result = CmdGenerate(flags);
  } else if (command == "stats") {
    result = CmdStats(flags);
  } else if (command == "train") {
    result = CmdTrain(flags);
  } else if (command == "evaluate") {
    result = CmdEvaluate(flags);
  } else if (command == "recommend") {
    result = CmdRecommend(flags);
  } else if (command == "serve") {
    result = CmdServe(flags);
  } else if (command == "compare") {
    result = CmdCompare(flags);
  } else {
    return Usage();
  }
  const Status finished = session.ValueOrDie().Finish();
  if (!result.ok()) return Fail(result.status());
  if (!finished.ok()) return Fail(finished);
  return result.ValueOrDie();
}
