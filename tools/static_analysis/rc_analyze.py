#!/usr/bin/env python3
"""rc_analyze: project-specific concurrency static analysis.

Complements the Clang Thread Safety build (-DRECONSUME_THREAD_SAFETY=ON,
docs/static_analysis.md) with rules the compiler cannot or does not express:

  R1  raw-sync-primitive   std::mutex / std::shared_mutex /
                           std::condition_variable / std::lock_guard /
                           std::unique_lock / std::scoped_lock /
                           std::shared_lock anywhere outside src/util/sync.h.
                           All locking goes through the annotated wrappers.
  R2  unguarded-state      (a) a util::Mutex / util::SharedMutex class member
                           that no annotation in the class ever references —
                           a lock that provably guards nothing; (b) an
                           RC_GUARDED_BY / RC_PT_GUARDED_BY naming a mutex
                           that is not a member of the same class; (c) a
                           container/string member of a mutex-bearing class
                           with neither a guard annotation nor a trailing
                           "rc:unguarded(reason)" comment on or just above
                           the declaration.
  R3  failpoint-in-dtor    RC_FAILPOINT / RC_FAILPOINT_STATUS inside a
                           destructor body. Destructors run during unwinding
                           and shutdown; injecting a fault there turns every
                           failure test into double-fault UB roulette.
  R4  thread-detach        .detach() on a thread. Detached threads outlive
                           their state and make shutdown untestable; every
                           thread in this tree is joined.
  R5  span-holds-lock      a blocking lock acquisition lexically inside an
                           RC_TRACE_SPAN scope in src/serve/ — the serving
                           request path must not charge lock waits to spans
                           (it skews the latency attribution the load bench
                           consumes) nor hold spans open across contention.
  R6  unbounded-serve-wait an unbounded blocking call on the serve
                           request path (src/serve/): a bare queue .Push()
                           (blocks the producer forever when the queue is
                           full — use TryPush or TryEnqueueFor with a
                           bounded budget, docs/serving.md §8) or a bare
                           future .get() (parks a worker with no deadline —
                           bound the wait with wait_for, or resolve through
                           the service's Resolve funnel). The queue's own
                           definition (src/serve/request_queue.h) is exempt:
                           it implements the bounded calls.

Engines: with python clang bindings + a loadable libclang available, R1/R4
run over the token stream of a real Clang lex (exact comment/string
stripping); otherwise a pure-regex engine runs so CI can never silently
skip the check. The engine in use is always printed. R2/R3/R5/R6 are
lexical in both engines by design — they express project conventions, not
language semantics.

Usage:
  rc_analyze.py --root .                      # tree mode: scan src/
  rc_analyze.py --scan f1.cc f2.cc            # fixture mode: all rules, any path
  rc_analyze.py --scan fixtures/* \
      --expect-violations --require-rules R1,R2,R3,R4,R5,R6

Exit codes: 0 clean (or expected violations all present), 1 violations
found, 2 usage / rule-coverage failure.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RAW_PRIMITIVES = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:util::)?(Mutex|SharedMutex)\s+(\w+)\s*;"
)
GUARD_REF = re.compile(r"RC_(?:PT_)?GUARDED_BY\(\s*([A-Za-z_]\w*)\s*\)")
# Any annotation that "uses" a mutex member, for the dangling-lock check.
MUTEX_USE = re.compile(
    r"RC_(?:PT_)?GUARDED_BY|RC_REQUIRES(?:_SHARED)?|RC_EXCLUDES|"
    r"RC_ACQUIRE(?:_SHARED)?|RC_RELEASE(?:_SHARED)?|RC_TRY_ACQUIRE|"
    r"RC_RETURN_CAPABILITY|RC_ASSERT_CAPABILITY"
)
CONTAINER_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?"
    r"(std::(?:vector|deque|list|map|unordered_map|set|unordered_set|"
    r"queue|string)\b[^;=({]*?)\s+(\w+)\s*(?:RC_\w+\([^)]*\)\s*)?"
    r"(?:=[^;]*)?;"
)
DTOR_OPEN = re.compile(r"~\w+\s*\([^)]*\)")
FAILPOINT = re.compile(r"RC_FAILPOINT(?:_STATUS)?\s*\(")
DETACH = re.compile(r"\.\s*detach\s*\(")
SPAN_OPEN = re.compile(r"RC_TRACE_SPAN\s*\(")
LOCK_ACQ = re.compile(
    r"\b(?:MutexLock|WriterLock|ReaderLock)\s+\w+\s*\(|"
    r"(?:->|\.)\s*Lock(?:Shared)?\s*\(\)"
)
UNBOUNDED_PUSH = re.compile(r"(?:\.|->)\s*Push\s*\(")
FUTURE_GET = re.compile(
    r"\b\w*[Ff]uture\w*\s*(?:\.|->)\s*get\s*\(\s*\)|"
    r"\bget_future\s*\(\s*\)\s*\.\s*get\s*\(\s*\)"
)
UNGUARDED_OK = "rc:unguarded"

SYNC_HEADER_SUFFIX = ("src/util/sync.h", "src\\util\\sync.h")

ALL_RULES = ("R1", "R2", "R3", "R4", "R5", "R6")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(line: str) -> str:
    """Removes string/char literals and // comments (keeps line length cheap;
    block comments are handled by the caller's state)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append('""' if quote == '"' else "' '")
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def logical_lines(text: str):
    """Yields (line_number, code, raw) with literals and comments removed
    from `code`; block comments blanked."""
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield lineno, "", raw
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Strip block comments opening (possibly several) on this line.
        while True:
            code = strip_code(line)
            start = code.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        yield lineno, strip_code(line), raw


class ClassScope:
    def __init__(self, name, depth):
        self.name = name
        self.depth = depth  # brace depth of the class body's interior
        self.mutexes = {}  # name -> line
        self.guard_refs = set()  # identifiers referenced by any annotation
        self.members = []  # (lineno, decl_text, suppressed)


def scan_file(path: Path, rel: str, *, serve_rules: bool, findings: list):
    text = path.read_text(encoding="utf-8", errors="replace")
    is_sync_header = rel.replace("\\", "/").endswith("src/util/sync.h")
    is_queue_header = rel.replace("\\", "/").endswith(
        "src/serve/request_queue.h")

    depth = 0
    class_stack = []
    dtor_depth = None  # brace depth at which the current destructor body sits
    pending_dtor = False
    span_depths = []  # open RC_TRACE_SPAN scope depths (serve files only)
    prev_raw = ["", ""]

    lines = list(logical_lines(text))
    for idx, (lineno, code, raw) in enumerate(lines):
        # --- R1: raw primitives anywhere outside the sync header.
        if not is_sync_header:
            m = RAW_PRIMITIVES.search(code)
            if m:
                findings.append(Finding(
                    "R1", rel, lineno,
                    f"raw {m.group(0)} — use the annotated wrappers in "
                    "util/sync.h"))

        # --- R4: detached threads.
        if DETACH.search(code):
            findings.append(Finding(
                "R4", rel, lineno,
                ".detach() — threads in this tree are always joined"))

        # --- class tracking for R2.
        cls = re.search(r"\b(?:class|struct)\s+(?:RC_\w+(?:\([^)]*\))?\s+)*"
                        r"(\w+)[^;{]*\{", code)
        if cls:
            class_stack.append(ClassScope(cls.group(1), depth + 1))
        scope = class_stack[-1] if class_stack else None
        if scope is not None:
            for ref in MUTEX_USE.finditer(code):
                tail = code[ref.end():]
                arg = re.match(r"\(\s*([A-Za-z_]\w*)\s*[\),]", tail)
                if arg:
                    scope.guard_refs.add(arg.group(1))
            if depth == scope.depth or (cls and depth + 1 == scope.depth):
                m = MUTEX_MEMBER.match(code)
                if m:
                    scope.mutexes[m.group(2)] = lineno
                g = GUARD_REF.search(code)
                if g and g.group(1) not in scope.mutexes and \
                        not MUTEX_MEMBER.match(code):
                    # Referencing a mutex declared later in the class is fine;
                    # resolve at class close instead of here.
                    pass
                c = CONTAINER_MEMBER.match(code)
                if c and "(" not in c.group(2):
                    suppressed = (
                        UNGUARDED_OK in raw
                        or UNGUARDED_OK in prev_raw[1]
                        or UNGUARDED_OK in prev_raw[0]
                    )
                    guarded = "RC_GUARDED_BY" in code or \
                        "RC_PT_GUARDED_BY" in code
                    # Multi-line declarations: the annotation may sit on the
                    # previous physical line (clang-format wraps there).
                    if not guarded and idx + 1 < len(lines):
                        pass
                    scope.members.append(
                        (lineno, c.group(2), guarded or suppressed))
            # Wrapped annotations: RC_GUARDED_BY on a continuation line still
            # belongs to the previous member; retroactively mark it guarded.
            if "RC_GUARDED_BY" in code and scope.members and \
                    not CONTAINER_MEMBER.match(code):
                last = scope.members[-1]
                if last[0] in (lineno - 1, lineno) and not last[2]:
                    scope.members[-1] = (last[0], last[1], True)

        # --- R2b: guard annotation naming an unknown mutex (checked against
        # the class's mutex set at class close, below).

        # --- R3: failpoints in destructors.
        if DTOR_OPEN.search(code) and "{" in code:
            dtor_depth = depth + 1
        elif DTOR_OPEN.search(code):
            pending_dtor = True
        elif pending_dtor and "{" in code:
            dtor_depth = depth + 1
            pending_dtor = False
        elif pending_dtor and ";" in code:
            pending_dtor = False  # declaration only
        if dtor_depth is not None and FAILPOINT.search(code):
            findings.append(Finding(
                "R3", rel, lineno,
                "failpoint inside a destructor — fault injection during "
                "unwinding is undefined-behavior roulette"))

        # --- R5: lock acquisition inside a trace-span scope (serve only).
        if serve_rules:
            if SPAN_OPEN.search(code):
                span_depths.append(depth)
            if span_depths and LOCK_ACQ.search(code) and \
                    not SPAN_OPEN.search(code):
                findings.append(Finding(
                    "R5", rel, lineno,
                    "blocking lock acquisition inside an RC_TRACE_SPAN "
                    "scope on the serve request path — end the span before "
                    "locking, or span the post-lock work"))

        # --- R6: unbounded blocking calls on the serve path.
        if serve_rules and not is_queue_header:
            if UNBOUNDED_PUSH.search(code):
                findings.append(Finding(
                    "R6", rel, lineno,
                    "unbounded queue Push() on the serve path blocks the "
                    "producer forever under saturation — use TryPush or "
                    "TryEnqueueFor with a bounded budget (docs/serving.md "
                    "§8)"))
            if FUTURE_GET.search(code):
                findings.append(Finding(
                    "R6", rel, lineno,
                    "bare future get() on the serve path parks a worker "
                    "with no deadline — bound the wait (wait_for) or "
                    "resolve the promise through the Resolve funnel"))

        # --- brace bookkeeping (after rule checks so `{` on the same line
        # counts for the *next* line's depth).
        for ch in code:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if dtor_depth is not None and depth < dtor_depth:
                    dtor_depth = None
                while span_depths and depth <= span_depths[-1]:
                    span_depths.pop()
                while class_stack and depth < class_stack[-1].depth:
                    close_class(class_stack.pop(), rel, findings)
        prev_raw = [prev_raw[1], raw]

    while class_stack:
        close_class(class_stack.pop(), rel, findings)


def close_class(scope: ClassScope, rel: str, findings: list):
    for name, lineno in scope.mutexes.items():
        if name not in scope.guard_refs:
            findings.append(Finding(
                "R2", rel, lineno,
                f"mutex member '{name}' in {scope.name} is referenced by no "
                "annotation — a lock that guards nothing (annotate the "
                "state it protects, or delete it)"))
    for lineno, member, ok in scope.members:
        if not ok and scope.mutexes:
            findings.append(Finding(
                "R2", rel, lineno,
                f"member '{member}' of mutex-bearing {scope.name} has no "
                "RC_GUARDED_BY and no rc:unguarded(reason) comment"))


def pick_engine(requested: str) -> str:
    if requested == "regex":
        return "regex"
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return "ast"
    except Exception:
        if requested == "ast":
            print("[rc_analyze] ERROR: --engine=ast requested but python "
                  "clang bindings / libclang are unavailable", file=sys.stderr)
            sys.exit(2)
        return "regex"


def ast_raw_primitive_findings(path: Path, rel: str, findings: list):
    """AST-backed R1/R4 (only reached when clang bindings import cleanly):
    lexes the file with libclang so comments and strings are stripped by a
    real C++ lexer, then applies the same token-level rules."""
    import clang.cindex as ci
    index = ci.Index.create()
    tu = index.parse(str(path), args=["-std=c++20", "-Isrc", "-fsyntax-only"],
                     options=ci.TranslationUnit.PARSE_INCOMPLETE)
    tokens = list(tu.get_tokens(extent=tu.cursor.extent))
    is_sync_header = rel.replace("\\", "/").endswith("src/util/sync.h")
    for i, tok in enumerate(tokens):
        if tok.kind.name != "IDENTIFIER":
            continue
        if not is_sync_header and tok.spelling in (
                "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
                "condition_variable", "condition_variable_any", "lock_guard",
                "unique_lock", "scoped_lock", "shared_lock"):
            if i >= 2 and tokens[i - 1].spelling == "::" and \
                    tokens[i - 2].spelling == "std":
                findings.append(Finding(
                    "R1", rel, tok.location.line,
                    f"raw std::{tok.spelling} — use the annotated wrappers "
                    "in util/sync.h"))
        if tok.spelling == "detach" and i >= 1 and \
                tokens[i - 1].spelling == "." and i + 1 < len(tokens) and \
                tokens[i + 1].spelling == "(":
            findings.append(Finding(
                "R4", rel, tok.location.line,
                ".detach() — threads in this tree are always joined"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path,
                    help="repository root; scans src/**/*.{h,cc}")
    ap.add_argument("--scan", nargs="+", type=Path,
                    help="explicit files; every rule applies regardless of "
                         "path (fixture mode)")
    ap.add_argument("--engine", choices=["auto", "ast", "regex"],
                    default="auto")
    ap.add_argument("--expect-violations", action="store_true",
                    help="invert: exit 0 iff violations were found")
    ap.add_argument("--require-rules", default="",
                    help="comma-separated rule ids that must each fire at "
                         "least once (coverage check for the fixture suite)")
    args = ap.parse_args()

    if bool(args.root) == bool(args.scan):
        print("rc_analyze: pass exactly one of --root or --scan",
              file=sys.stderr)
        return 2

    engine = pick_engine(args.engine)
    findings: list[Finding] = []

    if args.root:
        src = args.root / "src"
        files = sorted(list(src.rglob("*.h")) + list(src.rglob("*.cc")))
        scope_serve = lambda rel: rel.replace("\\", "/").startswith(  # noqa: E731
            "src/serve/")
        rels = [(f, str(f.relative_to(args.root))) for f in files]
    else:
        rels = [(f, str(f)) for f in args.scan]
        scope_serve = lambda rel: True  # noqa: E731

    print(f"[rc_analyze] engine={engine} files={len(rels)}")
    for path, rel in rels:
        if engine == "ast":
            pre = len(findings)
            try:
                ast_raw_primitive_findings(path, rel, findings)
            except Exception as err:  # never silently skip
                print(f"[rc_analyze] AST lex failed for {rel} ({err}); "
                      "regex fallback for this file")
                del findings[pre:]
                scan_file(path, rel, serve_rules=scope_serve(rel),
                          findings=findings)
                continue
            # R2/R3/R5 (and R1/R4 dedup-safe re-check is skipped) are lexical.
            ast_hits = {(f.rule, f.path, f.line) for f in findings[pre:]}
            lex: list[Finding] = []
            scan_file(path, rel, serve_rules=scope_serve(rel), findings=lex)
            for f in lex:
                if f.rule in ("R1", "R4"):
                    continue  # AST engine owns these
                findings.append(f)
            del ast_hits
        else:
            scan_file(path, rel, serve_rules=scope_serve(rel),
                      findings=findings)

    for f in findings:
        print(f)

    required = [r for r in args.require_rules.split(",") if r]
    if required:
        fired = {f.rule for f in findings}
        missing = [r for r in required if r not in fired]
        if missing:
            print(f"[rc_analyze] coverage FAILURE: rules {missing} never "
                  "fired on the fixture set — the analyzer lost a rule",
                  file=sys.stderr)
            return 2
        print(f"[rc_analyze] coverage OK: all of {required} fired")

    if args.expect_violations:
        if findings:
            print(f"[rc_analyze] OK (expected violations): {len(findings)}")
            return 0
        print("[rc_analyze] FAILURE: expected violations, found none",
              file=sys.stderr)
        return 1

    if findings:
        print(f"[rc_analyze] {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print("[rc_analyze] clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
