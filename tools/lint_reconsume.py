#!/usr/bin/env python3
"""Project-specific lint for the reconsume tree.

Enforces the conventions the RC_CHECK contract layer and the logging layer
rely on (see docs/correctness_tooling.md):

  * no naked assert(...) in src/ or tools/*.cc — invariants go through the
    RC_CHECK_* macros so they route through the pluggable failure handler
  * no std::cout / std::cerr in src/ — library code reports through
    RECONSUME_LOG or Status; printing is reserved for tools/, bench/, examples/
  * no rand()/srand() — all randomness flows through util::Rng so runs are
    seedable and reproducible
  * no raw std::ofstream in src/ outside util/fileio.cc — on-disk artifacts
    must go through util::AtomicWriteFile (temp + fsync + rename) so a crash
    mid-write never leaves a torn file (see docs/robustness.md)
  * no raw std::chrono clocks in src/ outside util/stopwatch.h and
    src/obs/trace.cc — timing goes through util::Stopwatch or
    obs::MonotonicNanos so every duration shares one time source and lands
    in the same telemetry (see docs/observability.md)
  * no <mutex> / <shared_mutex> / <condition_variable> includes in src/
    outside util/sync.h — locking goes through the annotated wrappers in
    util/sync.h so the Clang thread-safety build can prove the lock
    discipline (see docs/static_analysis.md)
  * every header in src/ starts with #pragma once
  * every --flag mentioned in docs/*.md or README.md is actually registered
    somewhere: by a FlagSet Get*/Has call site in C++ (src/, tools/, bench/)
    or an argparse add_argument in tools/**/*.py — documentation cannot drift
    ahead of (or behind) the CLI surface

Exit status: 0 when clean, 1 when any finding is reported.
Usage: tools/lint_reconsume.py [--root DIR]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# (name, regex, message). Patterns are applied line by line after comment and
# string stripping.
LINE_RULES = [
    (
        "naked-assert",
        re.compile(r"(?<![_\w])assert\s*\("),
        "use RC_CHECK / RC_DCHECK from util/check.h instead of assert()",
    ),
    (
        "std-cout",
        re.compile(r"std::c(out|err)\b"),
        "library code must not print; use RECONSUME_LOG or return a Status",
    ),
    (
        "libc-rand",
        re.compile(r"(?<![_\w])s?rand\s*\("),
        "use util::Rng (seedable, reproducible) instead of rand()/srand()",
    ),
    (
        "raw-ofstream",
        re.compile(r"std::ofstream\b"),
        "write files through util::AtomicWriteFile so crashes cannot leave "
        "torn output (see docs/robustness.md)",
    ),
    (
        "raw-clock",
        re.compile(r"std::chrono::(steady|system|high_resolution)_clock\b"),
        "time through util::Stopwatch or obs::MonotonicNanos so durations "
        "share one clock and reach telemetry (see docs/observability.md)",
    ),
    (
        "raw-sync-include",
        re.compile(r"#\s*include\s*<(mutex|shared_mutex|condition_variable)>"),
        "lock through the annotated wrappers in util/sync.h so the Clang "
        "thread-safety build can prove the discipline "
        "(see docs/static_analysis.md)",
    ),
]

# Files exempt from the raw-ofstream rule: the atomic-write helper itself.
RAW_OFSTREAM_ALLOWED = {"src/util/fileio.cc"}

# Files exempt from the raw-clock rule: the two sanctioned clock wrappers.
RAW_CLOCK_ALLOWED = {"src/util/stopwatch.h", "src/obs/trace.cc"}

# Files exempt from the raw-sync-include rule: the annotated wrappers
# themselves (the only place raw primitives may live).
RAW_SYNC_ALLOWED = {"src/util/sync.h"}

# --flags that belong to external tools the docs legitimately invoke (cmake,
# ctest, clang-tidy driver, google-benchmark), not to this repo's FlagSet.
EXTERNAL_FLAGS = {"build", "test-dir", "output-on-failure", "werror", "help"}

# FlagSet registration happens at the Get*/Has call site; these patterns are
# the harvest for "which flags exist".
CXX_FLAG_RE = re.compile(r'(?:Get(?:String|Int|Double|Bool)|Has)\s*\(\s*"([a-z0-9][a-z0-9-]*)"')
PY_FLAG_RE = re.compile(r'add_argument\(\s*"--([a-z0-9][a-z0-9-]*)"')
DOC_FLAG_RE = re.compile(r"--([A-Za-z0-9][A-Za-z0-9_-]*)")


def harvest_registered_flags(root: Path) -> set[str]:
    """Collects every flag name the tree can actually parse."""
    flags: set[str] = set()
    for pattern in ("src/**/*.h", "src/**/*.cc", "tools/**/*.cc",
                    "bench/**/*.h", "bench/**/*.cc"):
        for path in root.glob(pattern):
            flags.update(CXX_FLAG_RE.findall(path.read_text(encoding="utf-8")))
    for path in root.glob("tools/**/*.py"):
        flags.update(PY_FLAG_RE.findall(path.read_text(encoding="utf-8")))
    return flags


def lint_doc_flags(root: Path, findings: list[str]) -> int:
    """Flags --tokens in the docs that no CLI/bench/tool registers."""
    registered = harvest_registered_flags(root) | EXTERNAL_FLAGS
    docs = sorted(root.glob("docs/**/*.md")) + [root / "README.md"]
    checked = 0
    for path in docs:
        if not path.is_file():
            continue
        checked += 1
        rel = path.relative_to(root).as_posix()
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            for name in DOC_FLAG_RE.findall(line):
                if name in registered or name.startswith("benchmark_"):
                    continue
                findings.append(
                    f"{rel}:{lineno}: [docs-flag] '--{name}' is not a flag "
                    "any CLI/bench/tool registers — stale or misspelled docs")
    return checked

COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(line: str) -> str:
    """Drops string literals and // comments so rules see only code."""
    line = STRING_RE.sub('""', line)
    return COMMENT_RE.sub("", line)


def lint_file(path: Path, rel: str, require_pragma_once: bool,
              findings: list[str]) -> None:
    text = path.read_text(encoding="utf-8")
    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                line = line[:start]
            else:
                line = line[:start] + line[end + 2:]
        line = strip_noise(line)
        for name, pattern, message in LINE_RULES:
            if name == "std-cout" and not rel.startswith("src/"):
                continue  # tools/bench/examples may print
            if name == "raw-ofstream" and (not rel.startswith("src/") or
                                           rel in RAW_OFSTREAM_ALLOWED):
                continue  # library writes go through the atomic helper
            if name == "raw-clock" and (not rel.startswith("src/") or
                                        rel in RAW_CLOCK_ALLOWED):
                continue  # only the sanctioned wrappers touch the clock
            if name == "raw-sync-include" and (not rel.startswith("src/") or
                                               rel in RAW_SYNC_ALLOWED):
                continue  # only util/sync.h wraps the raw primitives
            if "static_assert" in line and name == "naked-assert":
                continue
            if pattern.search(line):
                findings.append(f"{rel}:{lineno}: [{name}] {message}")
    if require_pragma_once and "#pragma once" not in text:
        findings.append(f"{rel}:1: [pragma-once] header must use #pragma once")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: this script's parent)")
    args = parser.parse_args()
    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent

    targets: list[Path] = []
    for pattern in ("src/**/*.h", "src/**/*.cc", "tools/**/*.cc"):
        targets.extend(sorted(root.glob(pattern)))

    findings: list[str] = []
    for path in targets:
        rel = path.relative_to(root).as_posix()
        require_pragma_once = rel.startswith("src/") and rel.endswith(".h")
        lint_file(path, rel, require_pragma_once, findings)
    doc_count = lint_doc_flags(root, findings)

    if findings:
        print(f"lint_reconsume: {len(findings)} finding(s)")
        for finding in findings:
            print("  " + finding)
        return 1
    print(f"lint_reconsume: OK ({len(targets)} files, {doc_count} docs clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
