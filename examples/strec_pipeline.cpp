// Holistic repeat-consumption pipeline (paper §5.7): STREC decides at each
// step whether the user is about to repeat; when it says yes, TS-PPR ranks
// the reconsumable candidates. The joint accuracy is the product of the two
// stage accuracies (Table 5).

#include <cstdio>

#include "core/ts_ppr.h"
#include "data/dataset_stats.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/experiment_defaults.h"
#include "strec/combined_pipeline.h"
#include "strec/strec_classifier.h"
#include "util/logging.h"

using namespace reconsume;

int main() {
  const eval::ExperimentDefaults defaults = eval::ExperimentDefaults::Gowalla();

  auto generated =
      data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.5)).Generate();
  RECONSUME_CHECK(generated.ok()) << generated.status();
  const data::Dataset dataset =
      std::move(generated).ValueOrDie().FilterByMinTrainLength(
          defaults.train_fraction, defaults.min_train_events);

  auto split_result =
      data::TrainTestSplit::Temporal(&dataset, defaults.train_fraction);
  RECONSUME_CHECK(split_result.ok()) << split_result.status();
  const data::TrainTestSplit split = std::move(split_result).ValueOrDie();

  auto table_result =
      features::StaticFeatureTable::Compute(split, defaults.window_capacity);
  RECONSUME_CHECK(table_result.ok()) << table_result.status();
  const features::StaticFeatureTable table =
      std::move(table_result).ValueOrDie();

  // Stage 1: the STREC repeat/novel switch.
  strec::StrecOptions strec_options;
  strec_options.window_capacity = defaults.window_capacity;
  auto classifier_result = strec::StrecClassifier::Fit(split, &table,
                                                       strec_options);
  RECONSUME_CHECK(classifier_result.ok()) << classifier_result.status();
  const strec::StrecClassifier classifier =
      std::move(classifier_result).ValueOrDie();
  std::printf("STREC lasso weights:");
  for (double w : classifier.model().weights()) std::printf(" %+.3f", w);
  std::printf("  intercept %+.3f  (zeros: %d)\n",
              classifier.model().intercept(),
              classifier.model().NumZeroWeights());

  // Stage 2: TS-PPR for the flagged repeats.
  core::TsPprPipelineConfig config;
  config.model.latent_dim = defaults.latent_dim;
  config.model.gamma = defaults.gamma;
  config.model.lambda = defaults.lambda;
  config.sampling.window_capacity = defaults.window_capacity;
  config.sampling.min_gap = defaults.min_gap;
  auto ts_ppr_result = core::TsPpr::Fit(split, config);
  RECONSUME_CHECK(ts_ppr_result.ok()) << ts_ppr_result.status();
  core::TsPpr ts_ppr = std::move(ts_ppr_result).ValueOrDie();

  // Joint evaluation.
  eval::EvalOptions eval_options;
  eval_options.window_capacity = defaults.window_capacity;
  eval_options.min_gap = defaults.min_gap;
  auto combined_result =
      strec::EvaluateCombined(split, classifier, &ts_ppr, eval_options);
  RECONSUME_CHECK(combined_result.ok()) << combined_result.status();
  const strec::CombinedResult& combined = combined_result.ValueOrDie();

  std::printf("\nstage 1 (STREC): accuracy %.4f over %lld test steps\n",
              combined.classifier.accuracy(),
              static_cast<long long>(combined.classifier.num_instances));
  std::printf("stage 2 (TS-PPR on flagged repeats): MaAP@1 %.4f  MaAP@5 %.4f"
              "  MaAP@10 %.4f over %lld instances\n",
              combined.conditional.MaapAt(1), combined.conditional.MaapAt(5),
              combined.conditional.MaapAt(10),
              static_cast<long long>(combined.conditional.num_instances));
  std::printf("joint (Table 5 style): %.4f x %.4f = %.4f MaAP@10\n",
              combined.classifier.accuracy(), combined.conditional.MaapAt(10),
              combined.JointMaapAt(10));
  return 0;
}
