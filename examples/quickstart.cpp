// Quickstart: generate a synthetic check-in trace, fit TS-PPR, and compare
// it against the simple baselines on the repeat-consumption recommendation
// task. Mirrors the paper's default setup (|W|=100, Omega=10, S=10, K=40).

#include <cstdio>
#include <memory>

#include "baselines/simple_recommenders.h"
#include "core/ts_ppr.h"
#include "data/dataset_stats.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/experiment_defaults.h"
#include "eval/table.h"
#include "util/logging.h"

using namespace reconsume;

int main() {
  // 1. Data: a Gowalla-like synthetic trace (see DESIGN.md for why synthetic).
  data::SyntheticTraceGenerator generator(data::GowallaLikeProfile(0.5));
  auto dataset_result = generator.Generate();
  RECONSUME_CHECK(dataset_result.ok()) << dataset_result.status();
  const data::Dataset raw = std::move(dataset_result).ValueOrDie();

  // Paper filter: keep users whose 70% training prefix has >= 100 events.
  const data::Dataset dataset = raw.FilterByMinTrainLength(0.7, 100);
  std::printf("%s\n",
              data::FormatDatasetStats("gowalla-like",
                                       data::ComputeDatasetStats(dataset, 100))
                  .c_str());

  // 2. Temporal 70/30 split.
  auto split_result = data::TrainTestSplit::Temporal(&dataset, 0.7);
  RECONSUME_CHECK(split_result.ok()) << split_result.status();
  const data::TrainTestSplit split = std::move(split_result).ValueOrDie();

  // 3. Fit TS-PPR with the Table 4 defaults.
  const eval::ExperimentDefaults defaults = eval::ExperimentDefaults::Gowalla();
  core::TsPprPipelineConfig config;
  config.model.latent_dim = defaults.latent_dim;
  config.model.gamma = defaults.gamma;
  config.model.lambda = defaults.lambda;
  config.sampling.window_capacity = defaults.window_capacity;
  config.sampling.min_gap = defaults.min_gap;
  config.sampling.negatives_per_positive = defaults.negatives;
  // config.train.num_threads = N enables Hogwild-parallel SGD (kept at the
  // sequential default here so reruns print identical numbers; see
  // docs/training_internals.md and examples/checkin_rrc.cpp).

  auto fit_result = core::TsPpr::Fit(split, config);
  RECONSUME_CHECK(fit_result.ok()) << fit_result.status();
  core::TsPpr ts_ppr = std::move(fit_result).ValueOrDie();
  std::printf("TS-PPR: |D|=%lld quadruples, %lld SGD steps, converged=%d, "
              "r~=%.3f, %.1fs\n",
              static_cast<long long>(ts_ppr.num_quadruples()),
              static_cast<long long>(ts_ppr.train_report().steps),
              ts_ppr.train_report().converged,
              ts_ppr.train_report().final_r_tilde,
              ts_ppr.train_report().wall_seconds);

  // 4. Baselines share the static feature table computed on the same split.
  auto table_result =
      features::StaticFeatureTable::Compute(split, defaults.window_capacity);
  RECONSUME_CHECK(table_result.ok()) << table_result.status();
  const features::StaticFeatureTable table =
      std::move(table_result).ValueOrDie();

  baselines::RandomRecommender random_rec;
  baselines::PopRecommender pop_rec(&table);
  baselines::RecencyRecommender recency_rec;

  // 5. Evaluate everything under the same protocol.
  eval::EvalOptions eval_options;
  eval_options.window_capacity = defaults.window_capacity;
  eval_options.min_gap = defaults.min_gap;
  eval::Evaluator evaluator(&split, eval_options);

  eval::TextTable report({"method", "MaAP@1", "MaAP@5", "MaAP@10", "MiAP@1",
                          "MiAP@5", "MiAP@10"});
  eval::Recommender* methods[] = {&random_rec, &pop_rec, &recency_rec,
                                  ts_ppr.recommender()};
  for (eval::Recommender* method : methods) {
    auto r = evaluator.Evaluate(method);
    RECONSUME_CHECK(r.ok()) << r.status();
    const eval::AccuracyResult& acc = r.ValueOrDie();
    report.AddRow({acc.method, eval::TextTable::Cell(acc.MaapAt(1)),
                   eval::TextTable::Cell(acc.MaapAt(5)),
                   eval::TextTable::Cell(acc.MaapAt(10)),
                   eval::TextTable::Cell(acc.MiapAt(1)),
                   eval::TextTable::Cell(acc.MiapAt(5)),
                   eval::TextTable::Cell(acc.MiapAt(10))});
  }
  std::printf("\n%s\n", report.ToString().c_str());
  return 0;
}
