// Check-in scenario (the paper's Gowalla setting): recommend venues a user
// already visited — "which of my old places should I go back to tonight?"
//
// Demonstrates:
//   * loading a real Gowalla trace when a path is given
//     (./checkin_rrc /path/to/Gowalla_totalCheckins.txt), falling back to the
//     calibrated synthetic profile otherwise;
//   * fitting TS-PPR and all paper baselines;
//   * per-method accuracy under the paper's protocol;
//   * a Fig. 7-style feature ablation.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "baselines/dyrc.h"
#include "baselines/simple_recommenders.h"
#include "core/ts_ppr.h"
#include "data/dataset_stats.h"
#include "data/loaders.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/experiment_defaults.h"
#include "eval/table.h"
#include "util/logging.h"

using namespace reconsume;

namespace {

data::Dataset LoadOrGenerate(int argc, char** argv) {
  if (argc > 1) {
    std::printf("loading real Gowalla trace from %s ...\n", argv[1]);
    auto loaded = data::GowallaLoader::Load(argv[1]);
    RECONSUME_CHECK(loaded.ok()) << loaded.status();
    return std::move(loaded).ValueOrDie();
  }
  std::printf("no trace path given; generating the gowalla-like synthetic "
              "profile (see DESIGN.md section 1)\n");
  auto generated =
      data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.5)).Generate();
  RECONSUME_CHECK(generated.ok()) << generated.status();
  return std::move(generated).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  const eval::ExperimentDefaults defaults = eval::ExperimentDefaults::Gowalla();

  const data::Dataset dataset =
      LoadOrGenerate(argc, argv)
          .FilterByMinTrainLength(defaults.train_fraction,
                                  defaults.min_train_events);
  RECONSUME_CHECK(dataset.num_users() > 0)
      << "no users survive the 0.7|S_u| >= 100 filter";
  std::printf("%s\n\n",
              data::FormatDatasetStats(
                  "check-ins", data::ComputeDatasetStats(
                                   dataset, defaults.window_capacity))
                  .c_str());

  auto split_result =
      data::TrainTestSplit::Temporal(&dataset, defaults.train_fraction);
  RECONSUME_CHECK(split_result.ok()) << split_result.status();
  const data::TrainTestSplit split = std::move(split_result).ValueOrDie();

  auto table_result =
      features::StaticFeatureTable::Compute(split, defaults.window_capacity);
  RECONSUME_CHECK(table_result.ok()) << table_result.status();
  const features::StaticFeatureTable table =
      std::move(table_result).ValueOrDie();

  eval::EvalOptions eval_options;
  eval_options.window_capacity = defaults.window_capacity;
  eval_options.min_gap = defaults.min_gap;
  eval::Evaluator evaluator(&split, eval_options);

  auto evaluate = [&](eval::Recommender* method) {
    auto result = evaluator.Evaluate(method);
    RECONSUME_CHECK(result.ok()) << result.status();
    return std::move(result).ValueOrDie();
  };

  // --- method comparison -------------------------------------------------
  core::TsPprPipelineConfig config;
  config.model.latent_dim = defaults.latent_dim;
  config.model.gamma = defaults.gamma;
  config.model.lambda = defaults.lambda;
  config.sampling.window_capacity = defaults.window_capacity;
  config.sampling.min_gap = defaults.min_gap;
  config.sampling.negatives_per_positive = defaults.negatives;
  // Real check-in dumps are large, so train with Hogwild workers on every
  // available hardware thread (per-user sharding; docs/training_internals.md).
  config.train.num_threads =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  auto ts_ppr_result = core::TsPpr::Fit(split, config);
  RECONSUME_CHECK(ts_ppr_result.ok()) << ts_ppr_result.status();
  core::TsPpr ts_ppr = std::move(ts_ppr_result).ValueOrDie();

  baselines::RandomRecommender random_rec;
  baselines::PopRecommender pop(&table);
  baselines::RecencyRecommender recency;
  baselines::DyrcOptions dyrc_options;
  dyrc_options.window_capacity = defaults.window_capacity;
  dyrc_options.min_gap = defaults.min_gap;
  auto dyrc_result = baselines::DyrcRecommender::Fit(split, &table,
                                                     dyrc_options);
  RECONSUME_CHECK(dyrc_result.ok()) << dyrc_result.status();
  baselines::DyrcRecommender dyrc = std::move(dyrc_result).ValueOrDie();
  std::printf("DYRC fitted weights: quality=%.3f recency=%.3f\n\n",
              dyrc.quality_weight(), dyrc.recency_weight());

  eval::TextTable comparison({"method", "MaAP@1", "MaAP@5", "MaAP@10"});
  eval::Recommender* methods[] = {&random_rec, &pop, &recency, &dyrc,
                                  ts_ppr.recommender()};
  for (eval::Recommender* method : methods) {
    const auto acc = evaluate(method);
    comparison.AddRow({acc.method, eval::TextTable::Cell(acc.MaapAt(1)),
                       eval::TextTable::Cell(acc.MaapAt(5)),
                       eval::TextTable::Cell(acc.MaapAt(10))});
  }
  std::printf("%s\n", comparison.ToString().c_str());

  // --- feature ablation ---------------------------------------------------
  eval::TextTable ablation({"features", "MaAP@5", "MaAP@10"});
  for (const auto& feature_config :
       {features::FeatureConfig::AllFeatures(),
        features::FeatureConfig::WithoutItemQuality(),
        features::FeatureConfig::WithoutReconsumptionRatio(),
        features::FeatureConfig::WithoutRecency(),
        features::FeatureConfig::WithoutFamiliarity()}) {
    auto ablated_config = config;
    ablated_config.features = feature_config;
    auto ablated = core::TsPpr::Fit(split, ablated_config);
    RECONSUME_CHECK(ablated.ok()) << ablated.status();
    core::TsPpr model = std::move(ablated).ValueOrDie();
    const auto acc = evaluate(model.recommender());
    ablation.AddRow({feature_config.Label(),
                     eval::TextTable::Cell(acc.MaapAt(5)),
                     eval::TextTable::Cell(acc.MaapAt(10))});
  }
  std::printf("feature ablation (Fig. 7 style):\n%s\n",
              ablation.ToString().c_str());
  return 0;
}
