// Online-service scenario: train once, persist the model, reload it in a
// "serving process", and follow a live event stream with
// core::RecommendationSession — the embedding pattern an application uses.

#include <cstdio>
#include <filesystem>

#include "core/model_io.h"
#include "core/recommendation_session.h"
#include "core/ts_ppr.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "util/logging.h"

using namespace reconsume;

int main() {
  // --- offline: train and persist -----------------------------------------
  auto generated =
      data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.3)).Generate();
  RECONSUME_CHECK(generated.ok()) << generated.status();
  const data::Dataset dataset =
      std::move(generated).ValueOrDie().FilterByMinTrainLength(0.7, 100);
  auto split_result = data::TrainTestSplit::Temporal(&dataset, 0.7);
  RECONSUME_CHECK(split_result.ok()) << split_result.status();
  const data::TrainTestSplit split = std::move(split_result).ValueOrDie();

  core::TsPprPipelineConfig config;
  auto fitted = core::TsPpr::Fit(split, config);
  RECONSUME_CHECK(fitted.ok()) << fitted.status();

  const std::string model_path =
      (std::filesystem::temp_directory_path() / "reconsume_online_demo.bin")
          .string();
  RECONSUME_CHECK_OK(core::SaveModel(fitted.ValueOrDie().model(), model_path));
  std::printf("model persisted to %s\n", model_path.c_str());

  // --- serving: reload and follow a stream --------------------------------
  auto loaded = core::LoadModel(model_path);
  RECONSUME_CHECK(loaded.ok()) << loaded.status();
  const core::TsPprModel model = std::move(loaded).ValueOrDie();

  // The serving process recomputes the static feature table from the same
  // training data (or ships it alongside the model).
  auto table_result = features::StaticFeatureTable::Compute(split, 100);
  RECONSUME_CHECK(table_result.ok()) << table_result.status();
  const features::StaticFeatureTable table =
      std::move(table_result).ValueOrDie();
  const features::FeatureExtractor extractor(
      &table, features::FeatureConfig::AllFeatures());
  core::TsPprRecommender recommender(&model, &extractor);

  const data::UserId user = 0;
  core::RecommendationSession session(&recommender, user,
                                      dataset.sequence(user),
                                      /*window_capacity=*/100, /*min_gap=*/10);

  std::printf("\nuser %s: %lld historical events, %zu reconsumable "
              "candidates\n",
              dataset.user_key(user).c_str(),
              static_cast<long long>(session.num_events()),
              session.NumCandidates());

  for (int round = 0; round < 3; ++round) {
    const auto list = session.RecommendTopN(3);
    std::printf("round %d recommendations:\n", round + 1);
    for (size_t i = 0; i < list.size(); ++i) {
      std::printf("  %zu. %-10s score %+.3f (gap %d)\n", i + 1,
                  dataset.item_key(list[i].item).c_str(), list[i].score,
                  list[i].gap);
    }
    // Simulate the user consuming the top recommendation: the session
    // absorbs it and the next round's window reflects it.
    if (!list.empty()) {
      session.Observe(list[0].item);
      std::printf("  (user consumed %s)\n",
                  dataset.item_key(list[0].item).c_str());
    }
  }

  std::remove(model_path.c_str());
  return 0;
}
