// Music replay scenario (the paper's Last.fm setting): build a "songs to
// replay" list for a listener out of tracks they already played — the
// repeat-consumption analogue of a discovery playlist.
//
// Demonstrates the online recommendation API directly: walking a user's
// stream, asking the fitted model for a ranked top-N at chosen moments, and
// printing the actual item keys (what an application would surface).

#include <cstdio>
#include <vector>

#include "core/ts_ppr.h"
#include "data/dataset_stats.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/experiment_defaults.h"
#include "util/logging.h"

using namespace reconsume;

int main() {
  const eval::ExperimentDefaults defaults = eval::ExperimentDefaults::Lastfm();

  auto generated =
      data::SyntheticTraceGenerator(data::LastfmLikeProfile(0.4)).Generate();
  RECONSUME_CHECK(generated.ok()) << generated.status();
  const data::Dataset dataset =
      std::move(generated).ValueOrDie().FilterByMinTrainLength(
          defaults.train_fraction, defaults.min_train_events);
  std::printf("%s\n\n",
              data::FormatDatasetStats(
                  "listening", data::ComputeDatasetStats(
                                   dataset, defaults.window_capacity))
                  .c_str());

  auto split_result =
      data::TrainTestSplit::Temporal(&dataset, defaults.train_fraction);
  RECONSUME_CHECK(split_result.ok()) << split_result.status();
  const data::TrainTestSplit split = std::move(split_result).ValueOrDie();

  core::TsPprPipelineConfig config;
  config.model.latent_dim = defaults.latent_dim;
  config.model.gamma = defaults.gamma;
  config.model.lambda = defaults.lambda;
  config.sampling.window_capacity = defaults.window_capacity;
  config.sampling.min_gap = defaults.min_gap;
  auto fitted = core::TsPpr::Fit(split, config);
  RECONSUME_CHECK(fitted.ok()) << fitted.status();
  core::TsPpr ts_ppr = std::move(fitted).ValueOrDie();
  std::printf("trained on %lld quadruples in %.2fs (%lld SGD steps)\n\n",
              static_cast<long long>(ts_ppr.num_quadruples()),
              ts_ppr.train_report().wall_seconds,
              static_cast<long long>(ts_ppr.train_report().steps));

  // Produce actual replay lists for the first few listeners at the moment
  // their test segment starts.
  std::vector<data::ItemId> candidates;
  std::vector<double> scores;
  std::vector<int> top;
  const size_t num_show = std::min<size_t>(3, dataset.num_users());
  for (size_t u = 0; u < num_show; ++u) {
    const data::UserId user = static_cast<data::UserId>(u);
    const auto& seq = dataset.sequence(user);
    window::WindowWalker walker(&seq, defaults.window_capacity);
    while (static_cast<size_t>(walker.step()) < split.split_point(user)) {
      walker.Advance();
    }
    walker.EligibleCandidates(defaults.min_gap, &candidates);
    if (candidates.empty()) continue;
    scores.assign(candidates.size(), 0.0);
    ts_ppr.recommender()->Score(user, walker, candidates, scores);
    eval::SelectTopN(scores, 5, &top);

    std::printf("listener %s — %zu reconsumable tracks in window; replay "
                "list:\n",
                dataset.user_key(user).c_str(), candidates.size());
    for (size_t rank = 0; rank < top.size(); ++rank) {
      const data::ItemId item = candidates[static_cast<size_t>(top[rank])];
      std::printf("  %zu. track %-8s (score %+.3f, last played %d plays ago, "
                  "%d plays in window)\n",
                  rank + 1, dataset.item_key(item).c_str(),
                  scores[static_cast<size_t>(top[rank])],
                  walker.GapSince(item), walker.CountInWindow(item));
    }
    // What the listener actually played next:
    if (!walker.Done()) {
      std::printf("  actually played next: track %s\n\n",
                  dataset.item_key(walker.NextItem()).c_str());
    }
  }

  // Aggregate accuracy over the full test sweep, for context.
  eval::EvalOptions eval_options;
  eval_options.window_capacity = defaults.window_capacity;
  eval_options.min_gap = defaults.min_gap;
  eval::Evaluator evaluator(&split, eval_options);
  auto acc = evaluator.Evaluate(ts_ppr.recommender());
  RECONSUME_CHECK(acc.ok()) << acc.status();
  std::printf("TS-PPR on the whole test sweep: MaAP@1=%.4f MaAP@5=%.4f "
              "MaAP@10=%.4f over %lld instances\n",
              acc.ValueOrDie().MaapAt(1), acc.ValueOrDie().MaapAt(5),
              acc.ValueOrDie().MaapAt(10),
              static_cast<long long>(acc.ValueOrDie().num_instances));
  return 0;
}
