// Tests for the Hogwild-parallel training mode of TsPprTrainer:
//  - num_threads=1 is bit-identical to a verbatim reimplementation of the
//    original sequential Algorithm 1 loop (the parity oracle below);
//  - multi-thread training converges on a small synthetic trace under both
//    shard strategies;
//  - user sharding partitions users, and shard-restricted sampling stays
//    inside the shard;
//  - per-worker RNG streams are deterministically seeded.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/ts_ppr_trainer.h"
#include "data/synthetic.h"
#include "math/vector_ops.h"
#include "util/thread_pool.h"

namespace reconsume {
namespace core {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
  std::unique_ptr<features::FeatureExtractor> extractor;
  std::unique_ptr<sampling::TrainingSet> training_set;

  Fixture() {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.05))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
    extractor = std::make_unique<features::FeatureExtractor>(
        table.get(), features::FeatureConfig::AllFeatures());
    training_set = std::make_unique<sampling::TrainingSet>(
        sampling::TrainingSet::Build(*split, *extractor, {}).ValueOrDie());
  }

  TsPprModel MakeModel(TsPprConfig config = {}) const {
    return TsPprModel::Create(dataset.num_users(), dataset.num_items(), 4,
                              config)
        .ValueOrDie();
  }
};

double ReferencePreferenceDifference(const TsPprModel& model,
                                     const sampling::TrainingSet& data,
                                     uint32_t event_index, uint32_t neg_index,
                                     std::vector<double>* fdiff_scratch,
                                     std::vector<double>* d_scratch) {
  const sampling::PositiveEvent& event = data.events()[event_index];
  const sampling::NegativeSample& neg = data.negatives()[neg_index];
  const auto fi = data.feature(event.feature_offset);
  const auto fj = data.feature(neg.feature_offset);
  const auto u = model.user_factor(event.user);
  const auto vi = model.item_factor(event.item);
  const auto vj = model.item_factor(neg.item);

  auto& fdiff = *fdiff_scratch;
  auto& d = *d_scratch;
  math::Subtract(fi, fj, fdiff);
  math::Subtract(vi, vj, d);
  model.mapping(event.user).MultiplyVectorAccumulate(1.0, fdiff, d);
  return math::Dot(u, d);
}

// Verbatim reimplementation of the pre-Hogwild single-threaded
// TsPprTrainer::Train loop, kept as the bit-parity oracle: the shipped
// trainer with num_threads=1 must reproduce this exactly, float for float.
TrainReport ReferenceSequentialTrain(const TrainOptions& options,
                                     const sampling::TrainingSet& training_set,
                                     TsPprModel* model, util::Rng* rng) {
  const TsPprConfig& config = model->config();
  const double base_alpha = config.learning_rate;
  const double quadruples = static_cast<double>(training_set.num_quadruples());
  const size_t k = static_cast<size_t>(model->latent_dim());
  const size_t f = static_cast<size_t>(model->feature_dim());

  const auto small_batch = training_set.SmallBatch(options.small_batch_fraction);
  const int64_t check_every = std::max<int64_t>(
      1,
      static_cast<int64_t>(options.check_every_fraction *
                           static_cast<double>(training_set.num_quadruples())));

  std::vector<double> fdiff(f), d(k), u_old(k);

  auto compute_r_tilde = [&]() {
    double total = 0.0;
    for (const auto& [e, n] : small_batch) {
      total += ReferencePreferenceDifference(*model, training_set, e, n,
                                             &fdiff, &d);
    }
    return small_batch.empty()
               ? 0.0
               : total / static_cast<double>(small_batch.size());
  };

  TrainReport report;
  double prev_r_tilde = compute_r_tilde();
  report.curve.push_back({0, prev_r_tilde});
  int checks = 0;

  while (report.steps < options.max_steps) {
    const double alpha =
        options.schedule == LearningRateSchedule::kConstant
            ? base_alpha
            : base_alpha / (1.0 + options.decay_rate *
                                      static_cast<double>(report.steps) /
                                      quadruples);
    const double latent_decay = 1.0 - alpha * config.gamma;
    const double mapping_decay = 1.0 - alpha * config.lambda;

    const auto [event_index, neg_index] = training_set.SampleQuadruple(rng);
    const sampling::PositiveEvent& event = training_set.events()[event_index];
    const sampling::NegativeSample& neg = training_set.negatives()[neg_index];

    const auto fi = training_set.feature(event.feature_offset);
    const auto fj = training_set.feature(neg.feature_offset);
    auto u = model->user_factor(event.user);
    auto vi = model->item_factor(event.item);
    auto vj = model->item_factor(neg.item);
    math::Matrix& a = model->mapping(event.user);

    math::Subtract(fi, fj, fdiff);
    math::Subtract(vi, vj, d);
    a.MultiplyVectorAccumulate(1.0, fdiff, d);

    const double margin = math::Dot(u, d);
    const double g = alpha * (1.0 - math::Sigmoid(margin));

    std::copy(u.begin(), u.end(), u_old.begin());

    math::Scale(latent_decay, u);
    math::Axpy(g, d, u);

    math::Scale(latent_decay, vi);
    math::Axpy(g, u_old, vi);

    math::Scale(latent_decay, vj);
    math::Axpy(-g, u_old, vj);

    a.ScaleInPlace(mapping_decay);
    a.AddOuterProduct(g, u_old, fdiff);

    ++report.steps;

    if (report.steps % check_every == 0) {
      const double r_tilde = compute_r_tilde();
      report.curve.push_back({report.steps, r_tilde});
      ++checks;
      if (checks >= options.min_checks &&
          std::fabs(r_tilde - prev_r_tilde) <= options.convergence_tolerance) {
        prev_r_tilde = r_tilde;
        report.converged = true;
        break;
      }
      prev_r_tilde = r_tilde;
    }
  }

  report.final_r_tilde = prev_r_tilde;
  return report;
}

void ExpectModelsBitIdentical(const TsPprModel& a, const TsPprModel& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.latent_dim(), b.latent_dim());
  for (size_t u = 0; u < a.num_users(); ++u) {
    const auto ua = a.user_factor(static_cast<data::UserId>(u));
    const auto ub = b.user_factor(static_cast<data::UserId>(u));
    for (size_t c = 0; c < ua.size(); ++c) {
      ASSERT_EQ(ua[c], ub[c]) << "user " << u << " dim " << c;
    }
    ASSERT_TRUE(a.mapping(static_cast<data::UserId>(u)) ==
                b.mapping(static_cast<data::UserId>(u)))
        << "mapping of user " << u;
  }
  for (size_t v = 0; v < a.num_items(); ++v) {
    const auto va = a.item_factor(static_cast<data::ItemId>(v));
    const auto vb = b.item_factor(static_cast<data::ItemId>(v));
    for (size_t c = 0; c < va.size(); ++c) {
      ASSERT_EQ(va[c], vb[c]) << "item " << v << " dim " << c;
    }
  }
}

TEST(ParallelTrainerTest, OneThreadBitIdenticalToSequentialReference) {
  Fixture fixture;
  TrainOptions options;
  options.num_threads = 1;

  auto model_trainer = fixture.MakeModel();
  auto model_reference = fixture.MakeModel();
  util::Rng rng_trainer(17), rng_reference(17);

  const auto report = TsPprTrainer(options)
                          .Train(*fixture.training_set, &model_trainer,
                                 &rng_trainer)
                          .ValueOrDie();
  const auto reference = ReferenceSequentialTrain(
      options, *fixture.training_set, &model_reference, &rng_reference);

  EXPECT_EQ(report.steps, reference.steps);
  EXPECT_EQ(report.converged, reference.converged);
  ASSERT_EQ(report.curve.size(), reference.curve.size());
  for (size_t i = 0; i < report.curve.size(); ++i) {
    EXPECT_EQ(report.curve[i].step, reference.curve[i].step);
    EXPECT_EQ(report.curve[i].r_tilde, reference.curve[i].r_tilde)
        << "check point " << i;
  }
  EXPECT_EQ(report.final_r_tilde, reference.final_r_tilde);
  ExpectModelsBitIdentical(model_trainer, model_reference);
}

TEST(ParallelTrainerTest, NonPositiveThreadCountClampsToSequential) {
  Fixture fixture;
  TrainOptions one, zero;
  one.num_threads = 1;
  zero.num_threads = 0;

  auto model_one = fixture.MakeModel();
  auto model_zero = fixture.MakeModel();
  util::Rng rng_one(5), rng_zero(5);
  const auto report_one = TsPprTrainer(one)
                              .Train(*fixture.training_set, &model_one,
                                     &rng_one)
                              .ValueOrDie();
  const auto report_zero = TsPprTrainer(zero)
                               .Train(*fixture.training_set, &model_zero,
                                      &rng_zero)
                               .ValueOrDie();
  EXPECT_EQ(report_one.steps, report_zero.steps);
  EXPECT_EQ(report_one.final_r_tilde, report_zero.final_r_tilde);
  ExpectModelsBitIdentical(model_one, model_zero);
}

class ParallelTrainerStrategyTest
    : public ::testing::TestWithParam<sampling::ShardStrategy> {};

TEST_P(ParallelTrainerStrategyTest, MultiThreadConvergesOnSyntheticTrace) {
  Fixture fixture;
  TrainOptions options;
  options.num_threads = 4;
  options.shard_strategy = GetParam();

  auto model = fixture.MakeModel();
  util::Rng rng(7);
  const auto report =
      TsPprTrainer(options).Train(*fixture.training_set, &model, &rng)
          .ValueOrDie();

  ASSERT_GE(report.curve.size(), 2u);
  // Same learning-quality bar as the sequential TrainingIncreasesRTilde test:
  // training must separate positives from negatives.
  EXPECT_GT(report.final_r_tilde, report.curve.front().r_tilde);
  EXPECT_GT(report.final_r_tilde, 0.3);
  EXPECT_TRUE(model.IsFinite());
  EXPECT_GT(report.steps, 0);
  for (size_t i = 1; i < report.curve.size(); ++i) {
    EXPECT_GT(report.curve[i].step, report.curve[i - 1].step);
  }
  EXPECT_EQ(report.curve.back().r_tilde, report.final_r_tilde);
}

INSTANTIATE_TEST_SUITE_P(
    ShardStrategies, ParallelTrainerStrategyTest,
    ::testing::Values(sampling::ShardStrategy::kContiguous,
                      sampling::ShardStrategy::kInterleaved));

TEST(ParallelTrainerTest, MultiThreadRespectsMaxStepsExactly) {
  // The proportional round-quota split must account for every step: the
  // atomic step counter ends exactly at max_steps even with 3 uneven shards.
  Fixture fixture;
  TrainOptions options;
  options.num_threads = 3;
  options.convergence_tolerance = 0.0;  // never converge
  options.max_steps = 4000;

  auto model = fixture.MakeModel();
  util::Rng rng(7);
  const auto report =
      TsPprTrainer(options).Train(*fixture.training_set, &model, &rng)
          .ValueOrDie();
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.steps, 4000);
}

TEST(ParallelTrainerTest, MultiThreadSampleSequencesAreSeedDeterministic) {
  // The racy float updates are scheduling-dependent, but the *step counts*
  // per round and the per-worker draw sequences are pinned by the caller
  // seed; two runs must walk the same convergence-check grid.
  Fixture fixture;
  TrainOptions options;
  options.num_threads = 2;
  options.convergence_tolerance = 0.0;
  options.max_steps = 3000;

  auto model_a = fixture.MakeModel();
  auto model_b = fixture.MakeModel();
  util::Rng rng_a(23), rng_b(23);
  const auto ra = TsPprTrainer(options)
                      .Train(*fixture.training_set, &model_a, &rng_a)
                      .ValueOrDie();
  const auto rb = TsPprTrainer(options)
                      .Train(*fixture.training_set, &model_b, &rng_b)
                      .ValueOrDie();
  EXPECT_EQ(ra.steps, rb.steps);
  ASSERT_EQ(ra.curve.size(), rb.curve.size());
  for (size_t i = 0; i < ra.curve.size(); ++i) {
    EXPECT_EQ(ra.curve[i].step, rb.curve[i].step);
  }
}

TEST(ShardUsersTest, StrategiesPartitionUsersExactlyOnce) {
  Fixture fixture;
  const auto& all = fixture.training_set->users_with_events();
  for (const auto strategy : {sampling::ShardStrategy::kContiguous,
                              sampling::ShardStrategy::kInterleaved}) {
    for (int n : {1, 2, 3, 7}) {
      const auto shards = fixture.training_set->ShardUsers(n, strategy);
      ASSERT_LE(shards.size(),
                static_cast<size_t>(std::max<size_t>(1, all.size())));
      std::multiset<data::UserId> seen;
      for (const auto& shard : shards) {
        EXPECT_FALSE(shard.empty());
        seen.insert(shard.begin(), shard.end());
      }
      EXPECT_EQ(seen.size(), all.size());
      for (const data::UserId u : all) EXPECT_EQ(seen.count(u), 1u);
    }
  }
}

TEST(ShardUsersTest, SingleShardPreservesUserOrder) {
  Fixture fixture;
  const auto shards = fixture.training_set->ShardUsers(
      1, sampling::ShardStrategy::kInterleaved);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], fixture.training_set->users_with_events());
}

TEST(SampleQuadrupleFromTest, StaysInsideTheGivenUserSubset) {
  Fixture fixture;
  const auto& all = fixture.training_set->users_with_events();
  ASSERT_GE(all.size(), 2u);
  const std::vector<data::UserId> subset(all.begin(),
                                         all.begin() + all.size() / 2);
  const std::set<data::UserId> allowed(subset.begin(), subset.end());
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto [e, n] =
        fixture.training_set->SampleQuadrupleFrom(subset, &rng);
    const auto& event = fixture.training_set->events()[e];
    EXPECT_TRUE(allowed.count(event.user)) << "sampled foreign user";
    EXPECT_GE(n, event.negatives_begin);
    EXPECT_LT(n, event.negatives_begin + event.negatives_count);
  }
}

TEST(SampleQuadrupleFromTest, FullSetMatchesSampleQuadruple) {
  Fixture fixture;
  util::Rng rng_a(11), rng_b(11);
  for (int i = 0; i < 500; ++i) {
    const auto a = fixture.training_set->SampleQuadruple(&rng_a);
    const auto b = fixture.training_set->SampleQuadrupleFrom(
        fixture.training_set->users_with_events(), &rng_b);
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace core
}  // namespace reconsume
