#include "features/static_features.h"

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace reconsume {
namespace features {
namespace {

data::Dataset FromSequences(const std::vector<std::vector<int>>& sequences) {
  data::DatasetBuilder builder;
  for (size_t u = 0; u < sequences.size(); ++u) {
    for (size_t t = 0; t < sequences[u].size(); ++t) {
      EXPECT_TRUE(builder
                      .Add(static_cast<int64_t>(u), sequences[u][t],
                           static_cast<int64_t>(t))
                      .ok());
    }
  }
  return builder.Build().ValueOrDie();
}

TEST(StaticFeaturesTest, RejectsBadWindow) {
  const data::Dataset dataset = FromSequences({{1, 2, 3}});
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  EXPECT_EQ(StaticFeatureTable::Compute(split, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StaticFeaturesTest, FrequenciesCountTrainOnly) {
  // 10 events; split 0.7 -> first 7 are train.
  //   t:         0  1  2  3  4  5  6 | 7  8  9
  const data::Dataset dataset =
      FromSequences({{1, 1, 2, 1, 2, 3, 1, 9, 9, 9}});
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  const auto table = StaticFeatureTable::Compute(split, 5).ValueOrDie();
  const data::ItemId i1 = dataset.FindItem("1");
  const data::ItemId i2 = dataset.FindItem("2");
  const data::ItemId i3 = dataset.FindItem("3");
  const data::ItemId i9 = dataset.FindItem("9");
  EXPECT_EQ(table.frequency(i1), 4);
  EXPECT_EQ(table.frequency(i2), 2);
  EXPECT_EQ(table.frequency(i3), 1);
  EXPECT_EQ(table.frequency(i9), 0);  // test-only item: no leakage
}

TEST(StaticFeaturesTest, QualityIsMinMaxNormalized) {
  const data::Dataset dataset =
      FromSequences({{1, 1, 1, 1, 2, 2, 3, 0, 0, 0}});
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  const auto table = StaticFeatureTable::Compute(split, 5).ValueOrDie();
  // Train = first 7 events: freq(1)=4, freq(2)=2, freq(3)=1.
  const data::ItemId most = dataset.FindItem("1");
  const data::ItemId least = dataset.FindItem("3");
  EXPECT_DOUBLE_EQ(table.quality(most), 1.0);
  EXPECT_DOUBLE_EQ(table.quality(least), 0.0);
  const data::ItemId mid = dataset.FindItem("2");
  EXPECT_GT(table.quality(mid), 0.0);
  EXPECT_LT(table.quality(mid), 1.0);
  // Unseen-in-train item gets 0.
  EXPECT_DOUBLE_EQ(table.quality(dataset.FindItem("0")), 0.0);
}

TEST(StaticFeaturesTest, UniformFrequenciesGetQualityOne) {
  const data::Dataset dataset = FromSequences({{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}});
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  const auto table = StaticFeatureTable::Compute(split, 5).ValueOrDie();
  EXPECT_DOUBLE_EQ(table.quality(dataset.FindItem("1")), 1.0);
}

TEST(StaticFeaturesTest, ReconsumptionRatioHandComputed) {
  // Window 3. Sequence: a b a a b c (train = all 6 with fraction ~0.99).
  //  t=1: b, window{a}: novel.        obs(b)=1, rep(b)=0
  //  t=2: a, window{a,b}: repeat.     obs(a)=1, rep(a)=1
  //  t=3: a, window{a,b,a}: repeat.   obs(a)=2, rep(a)=2
  //  t=4: b, window{b,a,a}: repeat.   obs(b)=2, rep(b)=1
  //  t=5: c, window{a,a,b}: novel.    obs(c)=1, rep(c)=0
  data::DatasetBuilder builder;
  int t = 0;
  for (const char* item : {"a", "b", "a", "a", "b", "c"}) {
    ASSERT_TRUE(builder.Add(data::RawInteraction{"u", item, t++}).ok());
  }
  const data::Dataset dataset = builder.Build().ValueOrDie();
  const auto split =
      data::TrainTestSplit::Temporal(&dataset, 0.99).ValueOrDie();
  ASSERT_EQ(split.split_point(0), 5u);  // floor(0.99 * 6)
  // Use 0.999 to include all but... split at 5 means t=5 is test; adjust
  // expectations to train = first 5 events (t=0..4).
  const auto table = StaticFeatureTable::Compute(split, 3).ValueOrDie();
  const data::ItemId a = dataset.FindItem("a");
  const data::ItemId b = dataset.FindItem("b");
  const data::ItemId c = dataset.FindItem("c");
  EXPECT_DOUBLE_EQ(table.reconsumption_ratio(a), 1.0);        // 2/2
  EXPECT_DOUBLE_EQ(table.reconsumption_ratio(b), 0.5);        // 1/2
  EXPECT_DOUBLE_EQ(table.reconsumption_ratio(c), 0.0);        // unseen as next
}

TEST(StaticFeaturesTest, RatiosAreProbabilities) {
  const data::Dataset dataset =
      FromSequences({{1, 2, 1, 2, 1, 2, 3, 3, 3, 1},
                     {5, 5, 5, 5, 5, 6, 6, 6, 6, 6}});
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  const auto table = StaticFeatureTable::Compute(split, 4).ValueOrDie();
  for (size_t v = 0; v < table.num_items(); ++v) {
    const double r = table.reconsumption_ratio(static_cast<data::ItemId>(v));
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    const double q = table.quality(static_cast<data::ItemId>(v));
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

}  // namespace
}  // namespace features
}  // namespace reconsume
