#include "core/ts_ppr_trainer.h"

#include <gtest/gtest.h>

#include "core/ts_ppr.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace reconsume {
namespace core {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
  std::unique_ptr<features::FeatureExtractor> extractor;
  std::unique_ptr<sampling::TrainingSet> training_set;

  Fixture() {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.05))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
    extractor = std::make_unique<features::FeatureExtractor>(
        table.get(), features::FeatureConfig::AllFeatures());
    training_set = std::make_unique<sampling::TrainingSet>(
        sampling::TrainingSet::Build(*split, *extractor, {}).ValueOrDie());
  }

  TsPprModel MakeModel(TsPprConfig config = {}) const {
    return TsPprModel::Create(dataset.num_users(), dataset.num_items(), 4,
                              config)
        .ValueOrDie();
  }
};

TEST(TsPprTrainerTest, RejectsNullAndMismatch) {
  Fixture fixture;
  TsPprTrainer trainer;
  util::Rng rng(1);
  auto model = fixture.MakeModel();
  EXPECT_FALSE(trainer.Train(*fixture.training_set, nullptr, &rng).ok());
  EXPECT_FALSE(trainer.Train(*fixture.training_set, &model, nullptr).ok());

  TsPprConfig config;
  auto wrong_f =
      TsPprModel::Create(fixture.dataset.num_users(),
                         fixture.dataset.num_items(), 3, config)
          .ValueOrDie();
  EXPECT_EQ(trainer.Train(*fixture.training_set, &wrong_f, &rng)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(TsPprTrainerTest, TrainingIncreasesRTilde) {
  Fixture fixture;
  TrainOptions options;
  options.convergence_tolerance = 1e-3;
  TsPprTrainer trainer(options);
  auto model = fixture.MakeModel();
  util::Rng rng(7);
  const auto report =
      trainer.Train(*fixture.training_set, &model, &rng).ValueOrDie();
  ASSERT_GE(report.curve.size(), 2u);
  EXPECT_GT(report.final_r_tilde, report.curve.front().r_tilde);
  EXPECT_GT(report.final_r_tilde, 0.3);  // separates positives from negatives
  EXPECT_TRUE(model.IsFinite());
  EXPECT_GT(report.steps, 0);
}

TEST(TsPprTrainerTest, ConvergenceStopsTraining) {
  Fixture fixture;
  TrainOptions options;
  options.convergence_tolerance = 1e-2;  // loose: converge quickly
  options.max_steps = 100'000'000;
  TsPprTrainer trainer(options);
  auto model = fixture.MakeModel();
  util::Rng rng(7);
  const auto report =
      trainer.Train(*fixture.training_set, &model, &rng).ValueOrDie();
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.steps, options.max_steps);
}

TEST(TsPprTrainerTest, MaxStepsCapRespected) {
  Fixture fixture;
  TrainOptions options;
  options.convergence_tolerance = 0.0;  // never converge
  options.max_steps = 5000;
  TsPprTrainer trainer(options);
  auto model = fixture.MakeModel();
  util::Rng rng(7);
  const auto report =
      trainer.Train(*fixture.training_set, &model, &rng).ValueOrDie();
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.steps, 5000);
}

TEST(TsPprTrainerTest, CurveStepsAreMonotone) {
  Fixture fixture;
  TsPprTrainer trainer;
  auto model = fixture.MakeModel();
  util::Rng rng(3);
  const auto report =
      trainer.Train(*fixture.training_set, &model, &rng).ValueOrDie();
  for (size_t i = 1; i < report.curve.size(); ++i) {
    EXPECT_GT(report.curve[i].step, report.curve[i - 1].step);
  }
  EXPECT_DOUBLE_EQ(report.curve.back().r_tilde, report.final_r_tilde);
}

TEST(TsPprTrainerTest, HugeLearningRateDiverges) {
  Fixture fixture;
  TsPprConfig config;
  config.learning_rate = 1e6;
  config.gamma = 0.0;
  config.lambda = 0.0;
  auto model = fixture.MakeModel(config);
  TrainOptions options;
  options.max_steps = 200'000;
  options.convergence_tolerance = 0.0;
  TsPprTrainer trainer(options);
  util::Rng rng(7);
  const auto result = trainer.Train(*fixture.training_set, &model, &rng);
  // Either an explicit divergence error, or (rarely) survival — but a blowup
  // must never be reported as healthy convergence.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
  } else {
    EXPECT_FALSE(result.ValueOrDie().converged);
  }
}

TEST(TsPprTrainerTest, DeterministicGivenSeeds) {
  Fixture fixture;
  TsPprTrainer trainer;
  auto model_a = fixture.MakeModel();
  auto model_b = fixture.MakeModel();
  util::Rng rng_a(11), rng_b(11);
  const auto ra =
      trainer.Train(*fixture.training_set, &model_a, &rng_a).ValueOrDie();
  const auto rb =
      trainer.Train(*fixture.training_set, &model_b, &rng_b).ValueOrDie();
  EXPECT_EQ(ra.steps, rb.steps);
  EXPECT_DOUBLE_EQ(ra.final_r_tilde, rb.final_r_tilde);
  EXPECT_DOUBLE_EQ(model_a.user_factor(0)[0], model_b.user_factor(0)[0]);
}

TEST(TsPprTrainerTest, InverseDecayScheduleTrains) {
  Fixture fixture;
  TrainOptions options;
  options.schedule = LearningRateSchedule::kInverseDecay;
  options.decay_rate = 2.0;
  TsPprTrainer trainer(options);
  auto model = fixture.MakeModel();
  util::Rng rng(5);
  const auto report =
      trainer.Train(*fixture.training_set, &model, &rng).ValueOrDie();
  EXPECT_GT(report.final_r_tilde, report.curve.front().r_tilde);
  EXPECT_TRUE(model.IsFinite());
}

TEST(TsPprTrainerTest, PerUserPrecisionsAverageToMiap) {
  // collect_per_user: MiAP must equal the mean of per-user precisions and
  // MaAP the hit-weighted mean.
  Fixture fixture;
  TsPprTrainer trainer;
  auto model = fixture.MakeModel();
  util::Rng rng(5);
  ASSERT_TRUE(trainer.Train(*fixture.training_set, &model, &rng).ok());
  features::FeatureExtractor extractor(fixture.table.get(),
                                       features::FeatureConfig::AllFeatures());
  TsPprRecommender recommender(&model, &extractor);

  eval::EvalOptions options;
  options.window_capacity = 100;
  options.min_gap = 10;
  options.collect_per_user = true;
  eval::Evaluator evaluator(fixture.split.get(), options);
  const auto result = evaluator.Evaluate(&recommender).ValueOrDie();
  ASSERT_FALSE(result.per_user.empty());

  for (size_t c = 0; c < result.top_ns.size(); ++c) {
    double precision_sum = 0.0;
    int64_t hits = 0, instances = 0;
    for (const auto& user : result.per_user) {
      precision_sum += user.Precision(c);
      hits += user.hits[c];
      instances += user.instances;
    }
    EXPECT_NEAR(result.miap[c],
                precision_sum / static_cast<double>(result.per_user.size()),
                1e-12);
    EXPECT_NEAR(result.maap[c],
                static_cast<double>(hits) / static_cast<double>(instances),
                1e-12);
  }
}

TEST(TsPprPipelineTest, FitProducesWorkingRecommender) {
  Fixture fixture;
  TsPprPipelineConfig config;
  const auto pipeline = TsPpr::Fit(*fixture.split, config);
  ASSERT_TRUE(pipeline.ok());
}

}  // namespace
}  // namespace core
}  // namespace reconsume
