// Tests for the RCCK checkpoint layer: wire-format roundtrip, truncation and
// corruption detection, atomic file writes, the CheckpointManager retention
// policy, and fallback to the previous good snapshot when the newest file on
// disk is damaged.

#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/failpoint.h"
#include "util/fileio.h"
#include "util/random.h"

namespace reconsume {
namespace core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  std::string TempDir() {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("reconsume_ckpt_test_" + std::to_string(counter_++) + "_" +
          std::to_string(reinterpret_cast<uintptr_t>(this))))
            .string();
    dirs_.push_back(dir);
    return dir;
  }
  void TearDown() override {
    for (const auto& d : dirs_) std::filesystem::remove_all(d);
  }
  std::vector<std::string> dirs_;
  int counter_ = 0;
};

TsPprModel MakeModel() {
  TsPprConfig config;
  config.latent_dim = 3;
  return TsPprModel::Create(4, 5, 2, config).ValueOrDie();
}

TrainerCheckpoint MakeCheckpoint(int64_t steps) {
  TrainerCheckpoint ckpt;
  ckpt.steps = steps;
  ckpt.checks = 2;
  ckpt.prev_r_tilde = 0.375;
  ckpt.lr_scale = 0.25;
  ckpt.recoveries_used = 1;
  ckpt.curve = {{0, 0.1}, {100, 0.2}, {steps, 0.375}};
  RecoveryEvent event;
  event.failed_at_step = 150;
  event.resumed_from_step = 100;
  event.lr_scale_after = 0.25;
  event.reason = "injected divergence";
  ckpt.recovery_log = {event};
  util::Rng rng(steps == 0 ? 1 : static_cast<uint64_t>(steps));
  rng.NextGaussian();  // populate the Box-Muller cache
  ckpt.rng_state = rng.GetState();
  ckpt.num_workers = 2;
  ckpt.shard_strategy = sampling::ShardStrategy::kInterleaved;
  ckpt.hogwild_base_seed = 0xDEADBEEFULL;
  ckpt.worker_rng_states = {util::Rng(7).GetState(), util::Rng(8).GetState()};
  ckpt.model = MakeModel();
  return ckpt;
}

void ExpectCheckpointsEqual(const TrainerCheckpoint& a,
                            const TrainerCheckpoint& b) {
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.prev_r_tilde, b.prev_r_tilde);
  EXPECT_EQ(a.lr_scale, b.lr_scale);
  EXPECT_EQ(a.recoveries_used, b.recoveries_used);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].step, b.curve[i].step);
    EXPECT_EQ(a.curve[i].r_tilde, b.curve[i].r_tilde);
  }
  ASSERT_EQ(a.recovery_log.size(), b.recovery_log.size());
  for (size_t i = 0; i < a.recovery_log.size(); ++i) {
    EXPECT_EQ(a.recovery_log[i].failed_at_step,
              b.recovery_log[i].failed_at_step);
    EXPECT_EQ(a.recovery_log[i].resumed_from_step,
              b.recovery_log[i].resumed_from_step);
    EXPECT_EQ(a.recovery_log[i].lr_scale_after,
              b.recovery_log[i].lr_scale_after);
    EXPECT_EQ(a.recovery_log[i].reason, b.recovery_log[i].reason);
  }
  EXPECT_TRUE(a.rng_state == b.rng_state);
  EXPECT_EQ(a.num_workers, b.num_workers);
  EXPECT_EQ(a.shard_strategy, b.shard_strategy);
  EXPECT_EQ(a.hogwild_base_seed, b.hogwild_base_seed);
  ASSERT_EQ(a.worker_rng_states.size(), b.worker_rng_states.size());
  for (size_t i = 0; i < a.worker_rng_states.size(); ++i) {
    EXPECT_TRUE(a.worker_rng_states[i] == b.worker_rng_states[i]);
  }
  ASSERT_TRUE(a.model.has_value());
  ASSERT_TRUE(b.model.has_value());
  ASSERT_EQ(a.model->num_users(), b.model->num_users());
  ASSERT_EQ(a.model->num_items(), b.model->num_items());
  for (size_t u = 0; u < a.model->num_users(); ++u) {
    const auto ua = a.model->user_factor(static_cast<data::UserId>(u));
    const auto ub = b.model->user_factor(static_cast<data::UserId>(u));
    for (size_t c = 0; c < ua.size(); ++c) EXPECT_EQ(ua[c], ub[c]);
  }
  for (size_t v = 0; v < a.model->num_items(); ++v) {
    const auto va = a.model->item_factor(static_cast<data::ItemId>(v));
    const auto vb = b.model->item_factor(static_cast<data::ItemId>(v));
    for (size_t c = 0; c < va.size(); ++c) EXPECT_EQ(va[c], vb[c]);
  }
}

TEST_F(CheckpointTest, SerializeDeserializeRoundtrip) {
  const TrainerCheckpoint original = MakeCheckpoint(200);
  const std::string bytes = SerializeCheckpoint(original);
  const TrainerCheckpoint loaded = DeserializeCheckpoint(bytes).ValueOrDie();
  ExpectCheckpointsEqual(original, loaded);
}

TEST_F(CheckpointTest, SaveLoadFileRoundtrip) {
  const std::string dir = TempDir();
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  const std::string path = dir + "/snap.rck";
  const TrainerCheckpoint original = MakeCheckpoint(300);
  ASSERT_TRUE(SaveCheckpoint(original, path).ok());
  ExpectCheckpointsEqual(original, LoadCheckpoint(path).ValueOrDie());
}

TEST_F(CheckpointTest, TruncatedFileReportsByteOffset) {
  const std::string bytes = SerializeCheckpoint(MakeCheckpoint(100));
  for (const size_t keep :
       {bytes.size() / 2, bytes.size() - 1, size_t{20}}) {
    const auto result =
        DeserializeCheckpoint(std::string_view(bytes).substr(0, keep));
    ASSERT_FALSE(result.ok()) << "kept " << keep << " bytes";
    EXPECT_NE(result.status().message().find("truncated at byte"),
              std::string::npos)
        << result.status().message();
  }
}

TEST_F(CheckpointTest, FlippedByteFailsCrc) {
  std::string bytes = SerializeCheckpoint(MakeCheckpoint(100));
  bytes[bytes.size() / 2] ^= 0x40;
  const auto result = DeserializeCheckpoint(bytes);
  ASSERT_FALSE(result.ok());
}

TEST_F(CheckpointTest, WrongMagicRejected) {
  std::string bytes = SerializeCheckpoint(MakeCheckpoint(100));
  bytes[0] = 'X';
  const auto result = DeserializeCheckpoint(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("not a reconsume checkpoint"),
            std::string::npos);
}

TEST_F(CheckpointTest, ManagerCreatesDirectoryAndRejectsBadRetention) {
  const std::string dir = TempDir();
  EXPECT_FALSE(CheckpointManager::Create(dir, 0).ok());
  EXPECT_FALSE(CheckpointManager::Create("", 2).ok());
  auto manager = CheckpointManager::Create(dir + "/nested/deeper", 2);
  ASSERT_TRUE(manager.ok());
  EXPECT_TRUE(std::filesystem::is_directory(dir + "/nested/deeper"));
}

TEST_F(CheckpointTest, ManagerRetentionKeepsNewestFiles) {
  const std::string dir = TempDir();
  auto manager = CheckpointManager::Create(dir, 2).ValueOrDie();
  for (const int64_t steps : {100, 200, 300, 400}) {
    ASSERT_TRUE(manager.Write(MakeCheckpoint(steps)).ok());
  }
  EXPECT_EQ(manager.num_written(), 4);
  const auto files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(LoadCheckpoint(files[0]).ValueOrDie().steps, 300);
  EXPECT_EQ(LoadCheckpoint(files[1]).ValueOrDie().steps, 400);
  EXPECT_EQ(manager.LoadLatestGood().ValueOrDie().steps, 400);
}

TEST_F(CheckpointTest, LoadLatestGoodSkipsCorruptNewest) {
  const std::string dir = TempDir();
  auto manager = CheckpointManager::Create(dir, 3).ValueOrDie();
  ASSERT_TRUE(manager.Write(MakeCheckpoint(100)).ok());
  ASSERT_TRUE(manager.Write(MakeCheckpoint(200)).ok());
  const auto files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 2u);

  // Corrupt the newest file in place: resume must fall back to step 100.
  std::string bytes = util::ReadFileToString(files[1]).ValueOrDie();
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(util::WriteStringToFile(files[1], bytes).ok());

  EXPECT_EQ(manager.LoadLatestGood().ValueOrDie().steps, 100);
  EXPECT_EQ(FindLatestGoodCheckpoint(dir).ValueOrDie(), files[0]);
}

TEST_F(CheckpointTest, TruncatedNewestAlsoFallsBack) {
  const std::string dir = TempDir();
  auto manager = CheckpointManager::Create(dir, 3).ValueOrDie();
  ASSERT_TRUE(manager.Write(MakeCheckpoint(100)).ok());
  ASSERT_TRUE(manager.Write(MakeCheckpoint(200)).ok());
  const auto files = ListCheckpointFiles(dir);
  std::string bytes = util::ReadFileToString(files[1]).ValueOrDie();
  ASSERT_TRUE(
      util::WriteStringToFile(files[1], bytes.substr(0, bytes.size() / 3))
          .ok());
  EXPECT_EQ(manager.LoadLatestGood().ValueOrDie().steps, 100);
}

TEST_F(CheckpointTest, EmptyDirectoryIsNotFound) {
  const std::string dir = TempDir();
  auto manager = CheckpointManager::Create(dir, 2).ValueOrDie();
  EXPECT_EQ(manager.LoadLatestGood().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(FindLatestGoodCheckpoint(dir).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(ListCheckpointFiles(dir).empty());
  EXPECT_TRUE(ListCheckpointFiles(dir + "/does-not-exist").empty());
}

#if RECONSUME_FAILPOINTS_ENABLED

TEST_F(CheckpointTest, FailedWriteKeepsPreviousGoodCheckpoint) {
  const std::string dir = TempDir();
  auto manager = CheckpointManager::Create(dir, 2).ValueOrDie();
  ASSERT_TRUE(manager.Write(MakeCheckpoint(100)).ok());
  {
    util::ScopedFailpoint fp("checkpoint/write", "error-once");
    EXPECT_FALSE(manager.Write(MakeCheckpoint(200)).ok());
  }
  // The failed write must not have pruned or damaged the existing snapshot.
  EXPECT_EQ(manager.LoadLatestGood().ValueOrDie().steps, 100);
  ASSERT_TRUE(manager.Write(MakeCheckpoint(300)).ok());
  EXPECT_EQ(manager.LoadLatestGood().ValueOrDie().steps, 300);
}

#endif  // RECONSUME_FAILPOINTS_ENABLED

}  // namespace
}  // namespace core
}  // namespace reconsume
