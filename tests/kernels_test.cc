// Bit-exact parity tests for the SIMD kernel layer (math/kernels.h).
//
// The kernel contract pins the reduction shape (8-lane striped dot, in-order
// score_block accumulation), so for every size — including empty inputs,
// non-multiple-of-8 tails, and unaligned base pointers — the AVX2 tier must
// produce *bit-identical* doubles to the scalar tier, not merely close ones.

#include "math/kernels.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "math/simd.h"
#include "math/vector_ops.h"
#include "util/random.h"

namespace reconsume {
namespace math {
namespace {

// Awkward sizes: 0, 1, around the 8-lane boundary, and larger odd lengths.
constexpr size_t kSizes[] = {0, 1, 3, 7, 8, 9, 15, 31, 40, 63, 64, 65, 100, 128, 129};

std::vector<double> RandomVector(util::Rng* rng, size_t n) {
  std::vector<double> v(n);
  // Mixed magnitudes so reassociation would actually change the result:
  // a wrong reduction order fails these tests rather than passing by luck.
  for (auto& x : v) {
    x = (rng->NextDouble() - 0.5) * (rng->Uniform(4) == 0 ? 1e6 : 1.0);
  }
  return v;
}

bool HaveAvx2() { return DetectSimdLevel() == SimdLevel::kAvx2; }

TEST(KernelsTest, DotMatchesScalarBitExact) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const KernelOps& scalar = ScalarKernels();
  const KernelOps& avx2 = Avx2Kernels();
  util::Rng rng(123);
  for (size_t n : kSizes) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto x = RandomVector(&rng, n);
      const auto y = RandomVector(&rng, n);
      const double a = scalar.dot(x.data(), y.data(), n);
      const double b = avx2.dot(x.data(), y.data(), n);
      EXPECT_EQ(a, b) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(KernelsTest, DotUnalignedBaseMatches) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const KernelOps& scalar = ScalarKernels();
  const KernelOps& avx2 = Avx2Kernels();
  util::Rng rng(321);
  for (size_t n : kSizes) {
    // Offset the base pointer by one double so the AVX2 loads are unaligned;
    // the kernels use unaligned loads and must not care.
    const auto x = RandomVector(&rng, n + 1);
    const auto y = RandomVector(&rng, n + 1);
    EXPECT_EQ(scalar.dot(x.data() + 1, y.data() + 1, n),
              avx2.dot(x.data() + 1, y.data() + 1, n))
        << "n=" << n;
  }
}

TEST(KernelsTest, AxpyMatchesScalarBitExact) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const KernelOps& scalar = ScalarKernels();
  const KernelOps& avx2 = Avx2Kernels();
  util::Rng rng(7);
  for (size_t n : kSizes) {
    const auto x = RandomVector(&rng, n + 1);
    const auto base = RandomVector(&rng, n + 1);
    const double alpha = rng.NextDouble() * 3.0 - 1.5;
    auto y1 = base;
    auto y2 = base;
    scalar.axpy(alpha, x.data(), y1.data(), n);
    avx2.axpy(alpha, x.data(), y2.data(), n);
    EXPECT_EQ(y1, y2) << "n=" << n;
    // Unaligned tails: run on the +1-offset subspan as well.
    y1 = base;
    y2 = base;
    scalar.axpy(alpha, x.data() + 1, y1.data() + 1, n);
    avx2.axpy(alpha, x.data() + 1, y2.data() + 1, n);
    EXPECT_EQ(y1, y2) << "n=" << n << " (offset base)";
  }
}

TEST(KernelsTest, DotBatchMatchesScalarBitExact) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const KernelOps& scalar = ScalarKernels();
  const KernelOps& avx2 = Avx2Kernels();
  util::Rng rng(99);
  for (size_t k : {size_t{1}, size_t{4}, size_t{7}, size_t{40}, size_t{129}}) {
    for (size_t rows : {size_t{0}, size_t{1}, size_t{5}, size_t{64}}) {
      const auto q = RandomVector(&rng, k);
      // Stride > k exercises the padded-row case.
      const size_t stride = k + 3;
      const auto matrix = RandomVector(&rng, rows * stride + 1);
      std::vector<double> out1(rows, -1.0), out2(rows, -2.0);
      scalar.dot_batch(q.data(), matrix.data() + 1, rows, k, stride,
                       out1.data());
      avx2.dot_batch(q.data(), matrix.data() + 1, rows, k, stride,
                     out2.data());
      EXPECT_EQ(out1, out2) << "k=" << k << " rows=" << rows;
    }
  }
}

TEST(KernelsTest, ScoreBlockMatchesScalarBitExact) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const KernelOps& scalar = ScalarKernels();
  const KernelOps& avx2 = Avx2Kernels();
  util::Rng rng(2024);
  for (size_t k : {size_t{1}, size_t{3}, size_t{4}, size_t{40}, size_t{128}}) {
    const auto q = RandomVector(&rng, k);
    AlignedVector block(k * kBlockItems);
    for (auto& v : block) v = rng.NextDouble() - 0.5;
    AlignedVector out1(kBlockItems, -1.0), out2(kBlockItems, -2.0);
    scalar.score_block(q.data(), k, block.data(), out1.data());
    avx2.score_block(q.data(), k, block.data(), out2.data());
    for (size_t l = 0; l < kBlockItems; ++l) {
      EXPECT_EQ(out1[l], out2[l]) << "k=" << k << " lane=" << l;
    }
  }
}

TEST(KernelsTest, ScoreBlockMatchesInOrderDot) {
  // The engine's cross-tier bit-parity rests on score_block accumulating in
  // plain dimension order per item — i.e. exactly a sequential dot product.
  const KernelOps& ops = ActiveKernels();
  util::Rng rng(5);
  const size_t k = 40;
  const auto q = RandomVector(&rng, k);
  AlignedVector block(k * kBlockItems);
  for (auto& v : block) v = rng.NextDouble() - 0.5;
  AlignedVector out(kBlockItems, 0.0);
  ops.score_block(q.data(), k, block.data(), out.data());
  for (size_t lane = 0; lane < kBlockItems; ++lane) {
    double expect = 0.0;
    for (size_t d = 0; d < k; ++d) {
      expect += q[d] * block[d * kBlockItems + lane];
    }
    EXPECT_EQ(expect, out[lane]) << "lane=" << lane;
  }
}

TEST(KernelsTest, ScalarDotIsCloseToReferenceDot) {
  // The striped scalar dot may differ from vector_ops::Dot in the last ulps
  // (different association) but must agree to high relative precision.
  const KernelOps& ops = ScalarKernels();
  util::Rng rng(77);
  for (size_t n : kSizes) {
    const auto x = RandomVector(&rng, n);
    const auto y = RandomVector(&rng, n);
    const double reference = Dot(x, y);
    const double striped = ops.dot(x.data(), y.data(), n);
    EXPECT_NEAR(striped, reference,
                1e-9 * (1.0 + std::abs(reference)))
        << "n=" << n;
  }
}

TEST(KernelsTest, EmptyAndSingleElementEdges) {
  const KernelOps& ops = ActiveKernels();
  EXPECT_EQ(ops.dot(nullptr, nullptr, 0), 0.0);
  const double x = 3.0;
  double y = 4.0;
  ops.axpy(2.0, &x, &y, 1);
  EXPECT_EQ(y, 10.0);
  EXPECT_EQ(ops.dot(&x, &y, 1), 30.0);
}

TEST(KernelsTest, KernelsForSelectsTier) {
  EXPECT_STREQ(KernelsFor(SimdLevel::kScalar).name, ScalarKernels().name);
  if (HaveAvx2()) {
    EXPECT_STREQ(KernelsFor(SimdLevel::kAvx2).name, Avx2Kernels().name);
    EXPECT_STREQ(ActiveKernels().name, Avx2Kernels().name);
  }
}

TEST(SimdTest, LevelNameRoundTrips) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdTest, AlignedVectorIsAligned) {
  AlignedVector v(17, 0.0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kSimdAlignment, 0u);
}

}  // namespace
}  // namespace math
}  // namespace reconsume
