#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace reconsume {
namespace util {
namespace {

TEST(MutexTest, MutexLockSerializesIncrements) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  std::thread prober([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();  // keeps the analysis (and the test) honest
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  std::thread retaker([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  retaker.join();
  EXPECT_TRUE(acquired);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = 42;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& thread : waiters) thread.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  int value = 0;

  // Two readers hold the lock simultaneously: each waits for the other to
  // arrive before releasing, which only terminates if sharing works.
  std::atomic<int> readers_in{0};
  auto reader = [&] {
    ReaderLock lock(&mu);
    readers_in.fetch_add(1);
    while (readers_in.load() < 2) std::this_thread::yield();
    EXPECT_EQ(value, 0);
  };
  std::thread r1(reader);
  std::thread r2(reader);
  r1.join();
  r2.join();

  // Writers get exclusivity: concurrent increments never tear.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        WriterLock lock(&mu);
        ++value;
      }
    });
  }
  for (std::thread& thread : writers) thread.join();
  EXPECT_EQ(value, kThreads * kPerThread);
}

TEST(SharedMutexTest, TryLockRespectsReaders) {
  SharedMutex mu;
  mu.LockShared();
  bool got_exclusive = true;
  bool got_shared = false;
  std::thread prober([&] {
    got_exclusive = mu.TryLock();
    if (got_exclusive) mu.Unlock();
    got_shared = mu.TryLockShared();
    if (got_shared) mu.UnlockShared();
  });
  prober.join();
  EXPECT_FALSE(got_exclusive);  // a reader blocks writers...
  EXPECT_TRUE(got_shared);      // ...but not other readers
  mu.UnlockShared();
}

}  // namespace
}  // namespace util
}  // namespace reconsume
