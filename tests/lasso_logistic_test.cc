#include "math/lasso_logistic.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace reconsume {
namespace math {
namespace {

TEST(LassoLogisticTest, RejectsBadInput) {
  EXPECT_EQ(FitLassoLogistic({}, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FitLassoLogistic({{1.0}}, {0, 1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FitLassoLogistic({{1.0}, {1.0, 2.0}}, {0, 1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FitLassoLogistic({{1.0}}, {2}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LassoLogisticTest, LearnsThresholdRule) {
  // y = 1 iff x > 0.5, with margin.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  util::Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    const double v = rng.NextDouble();
    if (v > 0.4 && v < 0.6) continue;  // margin
    x.push_back({v});
    y.push_back(v > 0.5 ? 1 : 0);
  }
  LassoLogisticOptions options;
  options.l1_penalty = 1e-4;
  const auto model = FitLassoLogistic(x, y, options);
  ASSERT_TRUE(model.ok());
  const auto& m = model.ValueOrDie();
  EXPECT_GT(m.weights()[0], 0.0);
  EXPECT_TRUE(m.Predict({0.9}));
  EXPECT_FALSE(m.Predict({0.1}));
  EXPECT_GT(m.PredictProbability({0.99}), 0.8);
  EXPECT_LT(m.PredictProbability({0.01}), 0.2);
}

TEST(LassoLogisticTest, IrrelevantFeatureIsZeroedByL1) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  util::Rng rng(2);
  for (int i = 0; i < 600; ++i) {
    const double signal = rng.NextDouble();
    const double noise = rng.NextDouble();
    x.push_back({signal, noise});
    y.push_back(signal > 0.5 ? 1 : 0);
  }
  LassoLogisticOptions options;
  options.l1_penalty = 0.05;
  const auto model = FitLassoLogistic(x, y, options);
  ASSERT_TRUE(model.ok());
  const auto& m = model.ValueOrDie();
  EXPECT_GT(m.weights()[0], 0.1);
  EXPECT_EQ(m.weights()[1], 0.0);  // soft-thresholded away
  EXPECT_EQ(m.NumZeroWeights(), 1);
}

TEST(LassoLogisticTest, HugePenaltyZeroesEverythingButIntercept) {
  std::vector<std::vector<double>> x = {{0.1}, {0.9}, {0.2}, {0.8}};
  std::vector<int> y = {0, 1, 0, 1};
  LassoLogisticOptions options;
  options.l1_penalty = 100.0;
  const auto model = FitLassoLogistic(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.ValueOrDie().weights()[0], 0.0);
  // Balanced classes: intercept near 0, probability near 0.5.
  EXPECT_NEAR(model.ValueOrDie().PredictProbability({0.5}), 0.5, 0.05);
}

TEST(LassoLogisticTest, InterceptCapturesClassImbalance) {
  // All-positive data with useless feature: intercept must go positive.
  std::vector<std::vector<double>> x(50, {0.0});
  std::vector<int> y(50, 1);
  const auto model = FitLassoLogistic(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.ValueOrDie().intercept(), 1.0);
  EXPECT_GT(model.ValueOrDie().PredictProbability({0.0}), 0.8);
}

TEST(LassoLogisticTest, MulticlassWidthMismatchDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto model = FitLassoLogistic({{1.0, 2.0}}, {1});
  ASSERT_TRUE(model.ok());
  EXPECT_DEATH(model.ValueOrDie().PredictProbability({1.0}), "feature width");
}

}  // namespace
}  // namespace math
}  // namespace reconsume
