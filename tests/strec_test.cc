#include "strec/strec_classifier.h"

#include <gtest/gtest.h>

#include "core/ts_ppr.h"
#include "data/synthetic.h"
#include "strec/combined_pipeline.h"

namespace reconsume {
namespace strec {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;

  explicit Fixture(double scale = 0.05) {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(scale))
                  .Generate()
                  .ValueOrDie()
                  .FilterByMinTrainLength(0.7, 100);
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
  }
};

TEST(StrecClassifierTest, NullTableRejected) {
  Fixture fixture;
  EXPECT_EQ(StrecClassifier::Fit(*fixture.split, nullptr, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StrecClassifierTest, FeaturesAreBoundedProbLikeValues) {
  Fixture fixture;
  const auto classifier =
      StrecClassifier::Fit(*fixture.split, fixture.table.get(), {})
          .ValueOrDie();
  window::WindowWalker walker(&fixture.dataset.sequence(0), 100);
  for (int i = 0; i < 150; ++i) walker.Advance();
  const auto features = classifier.ExtractFeatures(0, walker);
  ASSERT_EQ(features.size(), 5u);
  for (double f : features) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  const double p = classifier.PredictRepeatProbability(0, walker);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(StrecClassifierTest, AccuracyAtLeastMajorityClass) {
  Fixture fixture(0.1);
  const auto classifier =
      StrecClassifier::Fit(*fixture.split, fixture.table.get(), {})
          .ValueOrDie();
  const StrecAccuracy accuracy = classifier.EvaluateOnTest(*fixture.split);
  ASSERT_GT(accuracy.num_instances, 0);
  // Majority-class rate on the test sweep:
  const double repeat_rate =
      static_cast<double>(accuracy.true_positives + accuracy.false_negatives) /
      static_cast<double>(accuracy.num_instances);
  const double majority = std::max(repeat_rate, 1.0 - repeat_rate);
  EXPECT_GE(accuracy.accuracy() + 1e-9, majority - 0.02);
  EXPECT_EQ(accuracy.correct,
            accuracy.true_positives + accuracy.true_negatives);
  EXPECT_EQ(accuracy.num_instances,
            accuracy.true_positives + accuracy.false_positives +
                accuracy.true_negatives + accuracy.false_negatives);
}

TEST(CombinedPipelineTest, ProducesConsistentTable5Numbers) {
  Fixture fixture(0.05);
  const auto classifier =
      StrecClassifier::Fit(*fixture.split, fixture.table.get(), {})
          .ValueOrDie();

  core::TsPprPipelineConfig config;
  auto ts_ppr = core::TsPpr::Fit(*fixture.split, config).ValueOrDie();

  eval::EvalOptions options;
  options.window_capacity = 100;
  options.min_gap = 10;
  const auto combined =
      EvaluateCombined(*fixture.split, classifier, &ts_ppr, options)
          .ValueOrDie();

  EXPECT_GT(combined.classifier.num_instances, 0);
  EXPECT_GE(combined.conditional.MaapAt(10), combined.conditional.MaapAt(5));
  EXPECT_GE(combined.conditional.MaapAt(5), combined.conditional.MaapAt(1));
  // Joint accuracy = product of the two stages.
  EXPECT_NEAR(combined.JointMaapAt(10),
              combined.classifier.accuracy() * combined.conditional.MaapAt(10),
              1e-12);
  // The gated evaluation can only shrink the instance set relative to an
  // ungated one.
  eval::Evaluator ungated(fixture.split.get(), options);
  const auto full = ungated.Evaluate(ts_ppr.recommender()).ValueOrDie();
  EXPECT_LE(combined.conditional.num_instances, full.num_instances);
}

TEST(CombinedPipelineTest, NullTsPprRejected) {
  Fixture fixture;
  const auto classifier =
      StrecClassifier::Fit(*fixture.split, fixture.table.get(), {})
          .ValueOrDie();
  eval::EvalOptions options;
  EXPECT_EQ(
      EvaluateCombined(*fixture.split, classifier, nullptr, options)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace strec
}  // namespace reconsume
