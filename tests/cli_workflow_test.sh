#!/usr/bin/env bash
# End-to-end CLI workflow: generate -> stats -> train -> evaluate -> recommend.
# Invoked by ctest with the path to the reconsume_cli binary as $1.
set -euo pipefail

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

"$CLI" generate --profile=gowalla --scale=0.1 --out="$WORKDIR/trace.tsv" \
    --seed=7 | grep -q "wrote"

"$CLI" stats --data="$WORKDIR/trace.tsv" | grep -q "users="

"$CLI" train --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model.bin" \
    --k=16 | grep -q "converged"
test -s "$WORKDIR/model.bin"

OUT=$("$CLI" evaluate --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model.bin")
echo "$OUT" | grep -q "TS-PPR"
echo "$OUT" | grep -q "Random"

"$CLI" recommend --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model.bin" \
    --user=0 --n=3 | grep -q "repeat recommendations"

"$CLI" compare --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model.bin" \
    | grep -q "wilcoxon"

# Crash-safe training: the same command line works for the first run (empty
# checkpoint directory -> fresh start) and for restarts (resumes the newest
# good snapshot).
"$CLI" train --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model_ck.bin" \
    --k=16 --checkpoint-dir="$WORKDIR/ckpt" --resume \
    | grep -q "starting fresh"
ls "$WORKDIR/ckpt" | grep -q '\.rck$'
"$CLI" train --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model_ck.bin" \
    --k=16 --checkpoint-dir="$WORKDIR/ckpt" --resume \
    | grep -q "resuming from"

# Error paths exercise the Status plumbing.
if "$CLI" evaluate --data=/nonexistent --model="$WORKDIR/model.bin" 2>/dev/null; then
  echo "expected failure on missing data" >&2
  exit 1
fi
if "$CLI" train --data="$WORKDIR/trace.tsv" --model="$WORKDIR/m2.bin" \
    --bogus-flag=1 2>/dev/null; then
  echo "expected failure on unknown flag" >&2
  exit 1
fi
if "$CLI" frobnicate 2>/dev/null; then
  echo "expected failure on unknown command" >&2
  exit 1
fi

echo "cli workflow OK"
