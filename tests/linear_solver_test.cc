#include "math/linear_solver.h"

#include <gtest/gtest.h>

#include "math/vector_ops.h"
#include "util/random.h"

namespace reconsume {
namespace math {
namespace {

Matrix RandomSpd(size_t n, util::Rng* rng) {
  // A = B B^T + n I is SPD.
  Matrix b(n, n);
  b.FillGaussian(rng, 0.0, 1.0);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = Dot(b.Row(i), b.Row(j));
    }
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

std::vector<double> Multiply(const Matrix& a, const std::vector<double>& x) {
  std::vector<double> out(a.rows());
  a.MultiplyVector(x, out);
  return out;
}

TEST(CholeskyTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const auto x = SolveCholesky(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  // Solution of [4 2; 2 3] x = [2, 3]: x = [0, 1].
  EXPECT_NEAR(x.ValueOrDie()[0], 0.0, 1e-12);
  EXPECT_NEAR(x.ValueOrDie()[1], 1.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  const auto x = SolveCholesky(a, {1.0, 1.0});
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(CholeskyTest, RejectsDimensionMismatch) {
  Matrix a(2, 3);
  EXPECT_EQ(SolveCholesky(a, {1.0, 1.0}).status().code(),
            StatusCode::kInvalidArgument);
  Matrix b(2, 2);
  EXPECT_EQ(SolveCholesky(b, {1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

class CholeskyPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskyPropertyTest, ResidualIsTinyOnRandomSpd) {
  util::Rng rng(GetParam() * 7 + 1);
  const size_t n = GetParam();
  const Matrix a = RandomSpd(n, &rng);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.Gaussian(0, 1);
  const auto x = SolveCholesky(a, b);
  ASSERT_TRUE(x.ok());
  const auto ax = Multiply(a, x.ValueOrDie());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25));

TEST(LuTest, SolvesNonSymmetricSystem) {
  Matrix a(2, 2);
  a(0, 0) = 0;  // forces pivoting
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 1;
  const auto x = SolveLu(a, {3.0, 4.0});
  ASSERT_TRUE(x.ok());
  // 0x + y = 3; 2x + y = 4 => x = 0.5, y = 3.
  EXPECT_NEAR(x.ValueOrDie()[0], 0.5, 1e-12);
  EXPECT_NEAR(x.ValueOrDie()[1], 3.0, 1e-12);
}

TEST(LuTest, DetectsSingularity) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;  // rank 1
  EXPECT_EQ(SolveLu(a, {1.0, 2.0}).status().code(),
            StatusCode::kNumericalError);
}

class LuPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LuPropertyTest, ResidualIsTinyOnRandomMatrices) {
  util::Rng rng(GetParam() * 13 + 3);
  const size_t n = GetParam();
  Matrix a(n, n);
  a.FillGaussian(&rng, 0.0, 1.0);
  for (size_t i = 0; i < n; ++i) a(i, i) += 2.0;  // keep well-conditioned
  std::vector<double> b(n);
  for (auto& v : b) v = rng.Gaussian(0, 1);
  const auto x = SolveLu(a, b);
  ASSERT_TRUE(x.ok());
  const auto ax = Multiply(a, x.ValueOrDie());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuPropertyTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(SolverAgreementTest, CholeskyAndLuAgreeOnSpd) {
  util::Rng rng(55);
  const Matrix a = RandomSpd(6, &rng);
  std::vector<double> b(6);
  for (auto& v : b) v = rng.Gaussian(0, 1);
  const auto x1 = SolveCholesky(a, b);
  const auto x2 = SolveLu(a, b);
  ASSERT_TRUE(x1.ok());
  ASSERT_TRUE(x2.ok());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(x1.ValueOrDie()[i], x2.ValueOrDie()[i], 1e-9);
  }
}

}  // namespace
}  // namespace math
}  // namespace reconsume
