// Serving resilience (docs/serving.md §8): deadline propagation, admission
// control, the circuit breaker + degradation ladder, and atomic model
// hot-swap — including the chaos contract that every request resolves
// (ok / degraded / shed / deadline) and never hangs, and the swap-under-load
// guarantee that each ranking reflects exactly one model epoch.

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ts_ppr.h"
#include "data/synthetic.h"
#include "serve/resilience.h"
#include "serve/server.h"
#include "util/failpoint.h"

namespace reconsume {
namespace serve {
namespace {

// --- policy units (no service) ---

TEST(AdmissionControllerTest, WatermarkDepthMath) {
  ResilienceConfig config;
  config.shed_watermark = 0.5;
  AdmissionController admission(config, /*queue_capacity=*/10);
  EXPECT_EQ(admission.watermark_depth(), 5u);
  EXPECT_FALSE(admission.ShouldShedAtEnqueue(4));
  EXPECT_TRUE(admission.ShouldShedAtEnqueue(5));
  EXPECT_TRUE(admission.ShouldShedAtEnqueue(10));
}

TEST(AdmissionControllerTest, WatermarkAtOneDisablesShedding) {
  ResilienceConfig config;
  config.shed_watermark = 1.0;
  AdmissionController admission(config, 10);
  EXPECT_FALSE(admission.ShouldShedAtEnqueue(10));  // full queue: still admit
}

TEST(AdmissionControllerTest, TinyWatermarkKeepsOneSlot) {
  ResilienceConfig config;
  config.shed_watermark = 0.0;
  AdmissionController admission(config, 10);
  EXPECT_EQ(admission.watermark_depth(), 1u);  // never sheds an empty queue
  EXPECT_FALSE(admission.ShouldShedAtEnqueue(0));
  EXPECT_TRUE(admission.ShouldShedAtEnqueue(1));
}

TEST(AdmissionControllerTest, QueueDelayShedding) {
  ResilienceConfig config;
  config.max_queue_delay_us = 100;
  AdmissionController admission(config, 10);
  EXPECT_FALSE(admission.ShouldShedAtDequeue(100000));  // exactly the limit
  EXPECT_TRUE(admission.ShouldShedAtDequeue(100001));
  config.max_queue_delay_us = 0;  // disabled
  AdmissionController off(config, 10);
  EXPECT_FALSE(off.ShouldShedAtDequeue(1e15));
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresOnly) {
  CircuitBreaker breaker(/*trip_failures=*/3, /*cooldown_ns=*/1000000000LL);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // resets the consecutive count
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();  // third consecutive: trips
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess) {
  CircuitBreaker breaker(/*trip_failures=*/1, /*cooldown_ns=*/1000000LL);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // Wait out the 1ms cooldown, then exactly one probe is admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest());  // probe already in flight
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpenProbeReopensOnFailure) {
  CircuitBreaker breaker(/*trip_failures=*/1, /*cooldown_ns=*/1000000LL);
  breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.trips(), 2);
}

TEST(BreakerPanelTest, ShardsIsolateUsers) {
  BreakerPanel panel(/*num_shards=*/4, /*trip_failures=*/1,
                     /*cooldown_ns=*/1000000000LL);
  EXPECT_EQ(panel.num_shards(), 4u);
  panel.For(0)->RecordFailure();  // trips shard 0 only
  EXPECT_EQ(panel.For(0)->state(), BreakerState::kOpen);
  EXPECT_EQ(panel.For(1)->state(), BreakerState::kClosed);
  EXPECT_EQ(panel.For(4), panel.For(0));  // 4 % 4 == 0: same shard
  EXPECT_EQ(panel.open_shards(), 1);
  EXPECT_EQ(panel.total_trips(), 1);
}

// --- service-level fixtures ---

struct ServeFixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<core::TsPpr> pipeline;

  explicit ServeFixture(double scale = 0.05) {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(scale))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    core::TsPprPipelineConfig config;
    pipeline = std::make_unique<core::TsPpr>(
        core::TsPpr::Fit(*split, config).ValueOrDie());
  }

  ServeConfig Config(int threads = 4) const {
    ServeConfig config;
    config.num_threads = threads;
    config.queue_capacity = 64;
    config.cache_capacity = 256;
    config.window_capacity = 100;
    config.min_gap = 10;
    return config;
  }

  std::shared_ptr<eval::Recommender> Model() const {
    return std::shared_ptr<eval::Recommender>(std::shared_ptr<void>(),
                                              pipeline->recommender());
  }
};

/// Scores every candidate as `direction * item id`: two directions give two
/// models whose rankings are reversals of each other, so a response reveals
/// which model produced it from the item order alone.
class DirectionalRecommender : public eval::Recommender {
 public:
  explicit DirectionalRecommender(double direction) : direction_(direction) {}
  std::string name() const override {
    return direction_ > 0 ? "ItemAsc" : "ItemDesc";
  }
  void Score(data::UserId /*user*/, const window::WindowWalker& /*walker*/,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override {
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] = direction_ * static_cast<double>(candidates[i]);
    }
  }
  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<DirectionalRecommender>(direction_);
  }

 private:
  double direction_;
};

/// direction > 0: items must be in strictly descending id order (higher id
/// scored higher); direction < 0: strictly ascending.
void ExpectDirectionalOrder(const std::vector<core::RankedItem>& items,
                            double direction, int64_t model_epoch) {
  for (size_t i = 1; i < items.size(); ++i) {
    if (direction > 0) {
      EXPECT_GT(items[i - 1].item, items[i].item)
          << "epoch " << model_epoch << " served a mixed-model ranking";
    } else {
      EXPECT_LT(items[i - 1].item, items[i].item)
          << "epoch " << model_epoch << " served a mixed-model ranking";
    }
  }
}

// --- deadlines & shedding ---

TEST(ServeResilienceTest, TinyDeadlinesResolveAsDeadlineExceeded) {
  ServeFixture fixture;
  ServeConfig config = fixture.Config(/*threads=*/1);
  RecommendService service(&fixture.dataset, fixture.Model(), config);

  RequestOptions options;
  options.timeout_us = 1;  // expires in the queue for all practical purposes
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(service.Recommend(0, 5, options));
  }
  int deadline = 0;
  for (auto& future : futures) {
    ServeResponse r = future.get();  // must resolve, never hang
    if (r.status.code() == StatusCode::kDeadlineExceeded) ++deadline;
  }
  EXPECT_GT(deadline, 0);
  EXPECT_EQ(service.resilience_stats().deadline_exceeded, deadline);
}

TEST(ServeResilienceTest, NoDeadlineMeansNoExpiry) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config());
  ServeResponse r = service.Recommend(0, 5).get();  // default: timeout_us=0
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(service.resilience_stats().deadline_exceeded, 0);
}

TEST(ServeResilienceTest, SaturationShedsInsteadOfBlocking) {
  ServeFixture fixture;
  ServeConfig config = fixture.Config(/*threads=*/1);
  config.queue_capacity = 4;
  config.resilience.shed_watermark = 0.5;
  config.resilience.enqueue_timeout_us = 100;
  RecommendService service(&fixture.dataset, fixture.Model(), config);

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 200; ++i) {
    // Distinct users defeat the cache, so each request costs real scoring
    // and the single worker falls behind immediately.
    futures.push_back(service.Recommend(
        static_cast<data::UserId>(
            i % static_cast<int>(fixture.dataset.num_users())),
        5));
  }
  int64_t shed = 0, ok = 0;
  for (auto& future : futures) {
    ServeResponse r = future.get();
    if (r.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kUnavailable)
          << r.status.ToString();
      ++shed;
    }
  }
  EXPECT_GT(shed, 0) << "a 4-deep queue under 200 requests must shed";
  EXPECT_GT(ok, 0) << "shedding must not starve admitted requests";
  const ResilienceStats stats = service.resilience_stats();
  EXPECT_EQ(stats.shed_enqueue + stats.shed_queue_delay, shed);
}

TEST(ServeResilienceTest, ObservesAreNeverWatermarkShed) {
  ServeFixture fixture;
  ServeConfig config = fixture.Config(/*threads=*/1);
  config.queue_capacity = 4;
  config.resilience.shed_watermark = 0.5;
  // Generous enqueue budget: observes wait for a slot instead of shedding.
  config.resilience.enqueue_timeout_us = 5000000;
  RecommendService service(&fixture.dataset, fixture.Model(), config);

  const auto& history = fixture.dataset.sequence(0);
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(service.Observe(0, history.back()));
  }
  for (auto& future : futures) {
    ServeResponse r = future.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
}

// --- hot-swap ---

TEST(ServeResilienceTest, SwapModelBumpsEpochAndInvalidatesCache) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config());
  EXPECT_EQ(service.model_epoch(), 1);

  ServeResponse before = service.Recommend(0, 5).get();
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.model_epoch, 1);

  auto swapped = service.SwapModel(
      std::make_shared<DirectionalRecommender>(+1.0), "asc");
  ASSERT_TRUE(swapped.ok()) << swapped.status();
  EXPECT_EQ(swapped.ValueOrDie(), 2);
  EXPECT_EQ(service.model_epoch(), 2);

  // The old model's cached ranking must not serve the new epoch: this is a
  // fresh scoring by the directional model, not a cache hit.
  ServeResponse after = service.Recommend(0, 5).get();
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.model_epoch, 2);
  ExpectDirectionalOrder(after.items, +1.0, 2);
  EXPECT_EQ(service.resilience_stats().model_swaps, 1);
}

TEST(ServeResilienceTest, NullCandidateIsRejected) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config());
  auto result = service.SwapModel(nullptr, "null");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(service.model_epoch(), 1);
}

TEST(ServeResilienceTest, SwapUnderLoadServesExactlyOneEpochPerRequest) {
  ServeFixture fixture;
  ServeConfig config = fixture.Config(/*threads=*/4);
  RecommendService service(
      &fixture.dataset, std::make_shared<DirectionalRecommender>(+1.0),
      config);

  const auto probe_users = std::min<data::UserId>(
      6, static_cast<data::UserId>(fixture.dataset.num_users()));
  std::atomic<bool> stop{false};
  std::atomic<int64_t> checked{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto user = static_cast<data::UserId>((c + i++) % probe_users);
        ServeResponse r = service.Recommend(user, 8).get();
        ASSERT_TRUE(r.status.ok()) << r.status.ToString();
        ASSERT_GE(r.model_epoch, 1);
        // Epoch parity identifies the model (swaps strictly alternate):
        // odd = ascending direction (+1), even = descending (-1). A ranking
        // mixing both directions, or cached under the wrong epoch, fails.
        const double direction = (r.model_epoch % 2 == 1) ? +1.0 : -1.0;
        ExpectDirectionalOrder(r.items, direction, r.model_epoch);
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Six swaps under full traffic, alternating the direction every time.
  for (int swap = 0; swap < 6; ++swap) {
    const double direction = (swap % 2 == 0) ? -1.0 : +1.0;  // epoch swap+2
    auto swapped = service.SwapModel(
        std::make_shared<DirectionalRecommender>(direction),
        direction > 0 ? "asc" : "desc");
    ASSERT_TRUE(swapped.ok()) << swapped.status();
    EXPECT_EQ(swapped.ValueOrDie(), swap + 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  service.Shutdown();
  EXPECT_GT(checked.load(), 0);
  EXPECT_EQ(service.model_epoch(), 7);
  EXPECT_EQ(service.resilience_stats().model_swaps, 6);
  // Rankings computed under superseded snapshots are dropped, not served.
  const ScoreCacheStats cache = service.cache_stats();
  EXPECT_GE(cache.rejected_inserts, 0);
}

#if RECONSUME_FAILPOINTS_ENABLED
TEST(ServeResilienceTest, FailedValidationRollsBackAndKeepsServing) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config());
  {
    util::ScopedFailpoint fp("serve/swap_validate", "error-once");
    auto result = service.SwapModel(
        std::make_shared<DirectionalRecommender>(+1.0), "rejected");
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  }
  // Rollback: the original model still serves at the original epoch.
  EXPECT_EQ(service.model_epoch(), 1);
  EXPECT_EQ(service.resilience_stats().model_rollbacks, 1);
  EXPECT_EQ(service.resilience_stats().model_swaps, 0);
  ServeResponse r = service.Recommend(0, 5).get();
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.model_epoch, 1);
}

// --- degradation ladder ---

TEST(ServeResilienceTest, ScoreFailureFallsBackToStaleCacheTier) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config(/*threads=*/1));
  // Prime the cache with a healthy top-3 for user 0.
  ServeResponse primed = service.Recommend(0, 3).get();
  ASSERT_TRUE(primed.status.ok());
  ASSERT_FALSE(primed.items.empty());

  // A top-8 request misses the fresh path (entry too narrow) and scoring
  // fails: the ladder serves the narrower cached ranking as stale.
  util::ScopedFailpoint fp("serve/score", "error-once");
  ServeResponse degraded = service.Recommend(0, 8).get();
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.served_by, ServedBy::kStaleCache);
  EXPECT_EQ(degraded.epoch, primed.epoch);
  EXPECT_EQ(degraded.items.size(), primed.items.size());
  EXPECT_EQ(service.resilience_stats().degraded_stale, 1);
  EXPECT_GT(service.cache_stats().stale_hits, 0);
}

TEST(ServeResilienceTest, ScoreFailureFallsBackToRepeatHistoryRanker) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config(/*threads=*/1));
  // Nothing cached for user 1: the ladder ends at the model-free ranker.
  util::ScopedFailpoint fp("serve/score", "error-once");
  ServeResponse r = service.Recommend(1, 5).get();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.served_by, ServedBy::kFallback);
  // Fallback ranks by repeat-history evidence: count desc, then gap asc.
  for (size_t i = 1; i < r.items.size(); ++i) {
    const auto& a = r.items[i - 1];
    const auto& b = r.items[i];
    EXPECT_TRUE(a.count_in_window > b.count_in_window ||
                (a.count_in_window == b.count_in_window && a.gap <= b.gap))
        << "fallback order violated at rank " << i;
  }
  EXPECT_EQ(service.resilience_stats().degraded_fallback, 1);
}

TEST(ServeResilienceTest, DisabledFallbackSurfacesUnavailable) {
  ServeFixture fixture;
  ServeConfig config = fixture.Config(/*threads=*/1);
  config.resilience.enable_fallback = false;
  RecommendService service(&fixture.dataset, fixture.Model(), config);
  util::ScopedFailpoint fp("serve/score", "error-once");
  ServeResponse r = service.Recommend(1, 5).get();
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
}

TEST(ServeResilienceTest, BreakerTripsAfterConsecutiveScoreFailures) {
  ServeFixture fixture;
  ServeConfig config = fixture.Config(/*threads=*/1);
  config.resilience.breaker_trip_failures = 3;
  config.resilience.breaker_cooldown_ms = 60000;  // stays open for the test
  config.resilience.breaker_shards = 1;           // one failure domain
  RecommendService service(&fixture.dataset, fixture.Model(), config);

  util::ScopedFailpoint fp("serve/score", "error-every(1)");  // always fail
  // Each request fails scoring and degrades; the third trips the breaker.
  // Distinct users dodge both cache tiers (nothing primed) so every request
  // reaches the scoring path while the breaker is closed.
  for (int i = 0; i < 3; ++i) {
    ServeResponse r = service.Recommend(static_cast<data::UserId>(i), 5)
                          .get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.degraded);
  }
  EXPECT_EQ(service.resilience_stats().breaker_trips, 1);
  EXPECT_EQ(service.resilience_stats().open_breaker_shards, 1);

  // Open breaker: requests degrade WITHOUT consuming scoring attempts —
  // the failpoint hit count stays where the trip left it.
  const int64_t fallbacks_before =
      service.resilience_stats().degraded_fallback;
  ServeResponse r = service.Recommend(5, 5).get();
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(service.resilience_stats().degraded_fallback,
            fallbacks_before + 1);
}

// The chaos drill: mixed traffic, random scoring failures, saturated queue,
// tiny deadlines, hot-swaps (one forced rollback) — every request resolves
// into exactly one of {ok, degraded, shed, deadline}; nothing hangs, no
// uncategorized errors escape.
TEST(ServeResilienceTest, ChaosEveryRequestResolves) {
  ServeFixture fixture;
  ServeConfig config = fixture.Config(/*threads=*/2);
  config.queue_capacity = 16;
  config.resilience.shed_watermark = 0.75;
  config.resilience.enqueue_timeout_us = 500;
  config.resilience.breaker_trip_failures = 2;
  config.resilience.breaker_cooldown_ms = 5;
  RecommendService service(&fixture.dataset, fixture.Model(), config);

  util::ScopedFailpoint fp("serve/score", "prob(0.3)");
  const auto num_users =
      static_cast<data::UserId>(fixture.dataset.num_users());

  std::atomic<int64_t> ok{0}, degraded{0}, shed{0}, deadline{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      std::deque<std::future<ServeResponse>> inflight;
      auto drain_one = [&](std::future<ServeResponse>& future) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "a request hung";
        ServeResponse r = future.get();
        if (r.status.ok()) {
          (r.degraded ? degraded : ok).fetch_add(1);
        } else if (r.status.code() == StatusCode::kUnavailable) {
          shed.fetch_add(1);
        } else if (r.status.code() == StatusCode::kDeadlineExceeded) {
          deadline.fetch_add(1);
        } else if (r.status.code() == StatusCode::kInvalidArgument) {
          ok.fetch_add(1);  // the deliberate bad request below
        } else {
          other.fetch_add(1);
        }
      };
      RequestOptions options;
      for (int i = 0; i < 150; ++i) {
        const auto user = static_cast<data::UserId>(
            (c * 31 + i) % std::min<data::UserId>(num_users, 12));
        options.timeout_us = (i % 3 == 0) ? 2000 : 0;
        std::future<ServeResponse> future;
        if (i % 9 == 4) {
          const auto& history = fixture.dataset.sequence(user);
          future = service.Observe(
              user, history[static_cast<size_t>(i) % history.size()],
              options);
        } else if (i % 40 == 13) {
          future = service.Recommend(user, 0, options);  // invalid top_n
        } else {
          future = service.Recommend(user, 5, options);
        }
        inflight.push_back(std::move(future));
        while (inflight.size() > 8) {
          drain_one(inflight.front());
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        drain_one(inflight.front());
        inflight.pop_front();
      }
    });
  }

  // Hot-swaps land while the chaos runs: one forced rollback, one real.
  {
    util::ScopedFailpoint swap_fp("serve/swap_validate", "error-once");
    auto rolled_back = service.SwapModel(
        std::make_shared<DirectionalRecommender>(+1.0), "chaos-reject");
    EXPECT_FALSE(rolled_back.ok());
  }
  auto swapped = service.SwapModel(
      std::make_shared<DirectionalRecommender>(+1.0), "chaos-v2");
  EXPECT_TRUE(swapped.ok()) << swapped.status();

  for (auto& t : clients) t.join();
  service.Shutdown();

  const int64_t total =
      ok.load() + degraded.load() + shed.load() + deadline.load();
  EXPECT_EQ(other.load(), 0) << "uncategorized failures escaped the ladder";
  EXPECT_EQ(total, 6 * 150);
  EXPECT_GT(degraded.load(), 0) << "prob(0.3) score failures must degrade";
  EXPECT_EQ(service.resilience_stats().model_rollbacks, 1);
  EXPECT_EQ(service.resilience_stats().model_swaps, 1);
}
#endif  // RECONSUME_FAILPOINTS_ENABLED

}  // namespace
}  // namespace serve
}  // namespace reconsume
