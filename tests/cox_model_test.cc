#include "survival/cox_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace reconsume {
namespace survival {
namespace {

TEST(CoxModelTest, RejectsBadInput) {
  EXPECT_FALSE(CoxModel::Fit({}).ok());
  EXPECT_FALSE(CoxModel::Fit({{1.0, true, {}}}).ok());  // zero-width
  EXPECT_FALSE(CoxModel::Fit({{0.0, true, {1.0}}}).ok());  // nonpositive time
  EXPECT_FALSE(CoxModel::Fit({{1.0, true, {1.0}}, {2.0, true, {1.0, 2.0}}})
                   .ok());  // ragged
  // All censored: no events to anchor the partial likelihood.
  EXPECT_EQ(CoxModel::Fit({{1.0, false, {1.0}}, {2.0, false, {0.5}}})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

std::vector<SurvivalRecord> TwoGroupData(double log_hazard_ratio,
                                         int per_group, uint64_t seed) {
  // Group x=1 has hazard exp(log_hazard_ratio) times group x=0's.
  util::Rng rng(seed);
  std::vector<SurvivalRecord> records;
  for (int g = 0; g < 2; ++g) {
    const double rate = g == 1 ? std::exp(log_hazard_ratio) : 1.0;
    for (int i = 0; i < per_group; ++i) {
      SurvivalRecord r;
      r.duration = rng.Exponential(rate) + 1e-9;
      r.event = true;
      r.covariates = {static_cast<double>(g)};
      records.push_back(std::move(r));
    }
  }
  return records;
}

class CoxRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(CoxRecoveryTest, RecoversLogHazardRatio) {
  const double beta_true = GetParam();
  const auto records = TwoGroupData(beta_true, 2000, 42);
  const auto model = CoxModel::Fit(records).ValueOrDie();
  ASSERT_EQ(model.coefficients().size(), 1u);
  EXPECT_NEAR(model.coefficients()[0], beta_true, 0.12) << "beta recovery";
}

INSTANTIATE_TEST_SUITE_P(Betas, CoxRecoveryTest,
                         ::testing::Values(-1.0, -0.5, 0.0, 0.5, 1.0, 2.0));

TEST(CoxModelTest, CensoringShrinksInformationNotSign) {
  auto records = TwoGroupData(1.0, 1500, 7);
  // Censor half the records at half their duration.
  util::Rng rng(3);
  for (auto& r : records) {
    if (rng.Bernoulli(0.5)) {
      r.duration *= 0.5;
      r.event = false;
    }
  }
  const auto model = CoxModel::Fit(records).ValueOrDie();
  EXPECT_GT(model.coefficients()[0], 0.5);
}

TEST(CoxModelTest, BaselineCumulativeHazardIsMonotone) {
  const auto records = TwoGroupData(0.5, 300, 5);
  const auto model = CoxModel::Fit(records).ValueOrDie();
  double prev = -1.0;
  for (double t = 0.0; t < 3.0; t += 0.05) {
    const double h = model.BaselineCumulativeHazard(t);
    EXPECT_GE(h, prev);
    prev = h;
  }
  EXPECT_DOUBLE_EQ(model.BaselineCumulativeHazard(0.0), 0.0);
}

TEST(CoxModelTest, SurvivalProbabilityBehaves) {
  const auto records = TwoGroupData(1.0, 1000, 9);
  const auto model = CoxModel::Fit(records).ValueOrDie();
  // S decreasing in t; S lower for the high-hazard group at fixed t.
  EXPECT_GT(model.SurvivalProbability(0.1, {0.0}),
            model.SurvivalProbability(1.0, {0.0}));
  EXPECT_GT(model.SurvivalProbability(0.5, {0.0}),
            model.SurvivalProbability(0.5, {1.0}));
  EXPECT_LE(model.SurvivalProbability(100.0, {0.0}), 1.0);
  EXPECT_GE(model.SurvivalProbability(100.0, {0.0}), 0.0);
}

TEST(CoxModelTest, MedianSurvivalOrdersByHazard) {
  const auto records = TwoGroupData(1.5, 1000, 13);
  const auto model = CoxModel::Fit(records).ValueOrDie();
  // Higher hazard => earlier median return.
  EXPECT_LT(model.MedianSurvivalTime({1.0}), model.MedianSurvivalTime({0.0}));
  // Exponential(1) has median ln 2 for the baseline group.
  EXPECT_NEAR(model.MedianSurvivalTime({0.0}), std::log(2.0), 0.15);
}

TEST(CoxModelTest, HazardRatioIsExpOfLinearPredictor) {
  const auto records = TwoGroupData(1.0, 500, 21);
  const auto model = CoxModel::Fit(records).ValueOrDie();
  const double beta = model.coefficients()[0];
  EXPECT_NEAR(model.HazardRatio({2.0}), std::exp(2.0 * beta), 1e-9);
  EXPECT_NEAR(model.LogHazardRatio({2.0}), 2.0 * beta, 1e-12);
}

TEST(CoxModelTest, TiedDurationsAreAccepted) {
  // Discrete durations with heavy ties (the RRC regime): must still fit.
  util::Rng rng(17);
  std::vector<SurvivalRecord> records;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.NextDouble();
    const double raw = rng.Exponential(std::exp(x));
    SurvivalRecord r;
    r.duration = std::max(1.0, std::ceil(raw * 5.0));  // discretized
    r.event = true;
    r.covariates = {x};
    records.push_back(std::move(r));
  }
  const auto model = CoxModel::Fit(records).ValueOrDie();
  EXPECT_GT(model.coefficients()[0], 0.3);  // sign and rough magnitude kept
}

TEST(CoxModelTest, ZeroEffectCovariateStaysNearZero) {
  util::Rng rng(23);
  std::vector<SurvivalRecord> records;
  for (int i = 0; i < 3000; ++i) {
    SurvivalRecord r;
    r.duration = rng.Exponential(1.0) + 1e-9;
    r.event = true;
    r.covariates = {rng.Gaussian(0, 1)};  // independent of duration
    records.push_back(std::move(r));
  }
  const auto model = CoxModel::Fit(records).ValueOrDie();
  EXPECT_NEAR(model.coefficients()[0], 0.0, 0.06);
}

TEST(CoxModelTest, MultivariateRecovery) {
  util::Rng rng(29);
  std::vector<SurvivalRecord> records;
  const std::vector<double> beta_true = {0.8, -0.5};
  for (int i = 0; i < 4000; ++i) {
    SurvivalRecord r;
    r.covariates = {rng.Gaussian(0, 1), rng.Gaussian(0, 1)};
    const double rate = std::exp(beta_true[0] * r.covariates[0] +
                                 beta_true[1] * r.covariates[1]);
    r.duration = rng.Exponential(rate) + 1e-9;
    r.event = true;
    records.push_back(std::move(r));
  }
  const auto model = CoxModel::Fit(records).ValueOrDie();
  EXPECT_NEAR(model.coefficients()[0], 0.8, 0.1);
  EXPECT_NEAR(model.coefficients()[1], -0.5, 0.1);
}

}  // namespace
}  // namespace survival
}  // namespace reconsume
