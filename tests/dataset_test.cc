#include "data/dataset.h"

#include <gtest/gtest.h>

namespace reconsume {
namespace data {
namespace {

TEST(DatasetBuilderTest, RejectsEmptyKeys) {
  DatasetBuilder builder;
  EXPECT_EQ(builder.Add(RawInteraction{"", "i", 0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.Add(RawInteraction{"u", "", 0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetBuilderTest, EmptyBuildFails) {
  DatasetBuilder builder;
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetBuilderTest, SortsByTimestamp) {
  DatasetBuilder builder;
  ASSERT_TRUE(builder.Add(RawInteraction{"u", "b", 20}).ok());
  ASSERT_TRUE(builder.Add(RawInteraction{"u", "a", 10}).ok());
  ASSERT_TRUE(builder.Add(RawInteraction{"u", "c", 30}).ok());
  const Dataset dataset = builder.Build().ValueOrDie();
  ASSERT_EQ(dataset.num_users(), 1u);
  const auto& seq = dataset.sequence(0);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(dataset.item_key(seq[0]), "a");
  EXPECT_EQ(dataset.item_key(seq[1]), "b");
  EXPECT_EQ(dataset.item_key(seq[2]), "c");
}

TEST(DatasetBuilderTest, TimestampTiesKeepInputOrder) {
  DatasetBuilder builder;
  ASSERT_TRUE(builder.Add(RawInteraction{"u", "first", 5}).ok());
  ASSERT_TRUE(builder.Add(RawInteraction{"u", "second", 5}).ok());
  ASSERT_TRUE(builder.Add(RawInteraction{"u", "third", 5}).ok());
  const Dataset dataset = builder.Build().ValueOrDie();
  const auto& seq = dataset.sequence(0);
  EXPECT_EQ(dataset.item_key(seq[0]), "first");
  EXPECT_EQ(dataset.item_key(seq[1]), "second");
  EXPECT_EQ(dataset.item_key(seq[2]), "third");
}

TEST(DatasetBuilderTest, CompactsIdsDensely) {
  DatasetBuilder builder;
  ASSERT_TRUE(builder.Add(1001, 50001, 0).ok());
  ASSERT_TRUE(builder.Add(1002, 50002, 0).ok());
  ASSERT_TRUE(builder.Add(1001, 50001, 1).ok());
  const Dataset dataset = builder.Build().ValueOrDie();
  EXPECT_EQ(dataset.num_users(), 2u);
  EXPECT_EQ(dataset.num_items(), 2u);
  EXPECT_EQ(dataset.num_interactions(), 3);
  EXPECT_EQ(dataset.FindUser("1001"), 0);
  EXPECT_EQ(dataset.FindUser("1002"), 1);
  EXPECT_EQ(dataset.FindItem("50001"), 0);
  EXPECT_EQ(dataset.FindUser("9999"), kInvalidUser);
  EXPECT_EQ(dataset.FindItem("9999"), kInvalidItem);
}

TEST(DatasetBuilderTest, RepetitionIsPreserved) {
  DatasetBuilder builder;
  for (int t = 0; t < 5; ++t) ASSERT_TRUE(builder.Add(0, 7, t).ok());
  const Dataset dataset = builder.Build().ValueOrDie();
  EXPECT_EQ(dataset.sequence(0).size(), 5u);
  EXPECT_EQ(dataset.num_items(), 1u);
}

TEST(DatasetBuilderTest, BuilderIsEmptyAfterBuild) {
  DatasetBuilder builder;
  ASSERT_TRUE(builder.Add(0, 0, 0).ok());
  ASSERT_TRUE(builder.Build().ok());
  EXPECT_EQ(builder.num_pending(), 0);
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kFailedPrecondition);
}

Dataset MakeThreeUserDataset() {
  DatasetBuilder builder;
  // user 0: 4 events over items {a, b}; user 1: 2 events {c}; user 2: 1 {a}.
  for (const char* item : {"a", "b", "a", "b"}) {
    EXPECT_TRUE(builder.Add(RawInteraction{"u0", item, 0}).ok());
  }
  EXPECT_TRUE(builder.Add(RawInteraction{"u1", "c", 0}).ok());
  EXPECT_TRUE(builder.Add(RawInteraction{"u1", "c", 1}).ok());
  EXPECT_TRUE(builder.Add(RawInteraction{"u2", "a", 0}).ok());
  return builder.Build().ValueOrDie();
}

TEST(DatasetFilterTest, FilterUsersDropsAndRecompacts) {
  const Dataset dataset = MakeThreeUserDataset();
  // Keep only users with at least 2 events: drops u2; item "a" survives via
  // u0, but ids must be recompacted densely.
  const Dataset filtered = dataset.FilterUsers(
      [](const ConsumptionSequence& seq) { return seq.size() >= 2; });
  EXPECT_EQ(filtered.num_users(), 2u);
  EXPECT_EQ(filtered.num_items(), 3u);  // a, b, c all still referenced
  EXPECT_EQ(filtered.FindUser("u2"), kInvalidUser);
  EXPECT_EQ(filtered.user_key(0), "u0");

  // Dropping u0 and u1 leaves only u2 and only item "a".
  const Dataset only_u2 = dataset.FilterUsers(
      [](const ConsumptionSequence& seq) { return seq.size() == 1; });
  EXPECT_EQ(only_u2.num_users(), 1u);
  EXPECT_EQ(only_u2.num_items(), 1u);
  EXPECT_EQ(only_u2.item_key(only_u2.sequence(0)[0]), "a");
}

TEST(DatasetFilterTest, SequencesRemapped) {
  const Dataset dataset = MakeThreeUserDataset();
  const Dataset filtered = dataset.FilterUsers(
      [](const ConsumptionSequence& seq) { return seq.size() == 2; });
  // Only u1 remains; its item "c" must be id 0 now.
  ASSERT_EQ(filtered.num_users(), 1u);
  ASSERT_EQ(filtered.num_items(), 1u);
  EXPECT_EQ(filtered.sequence(0), (ConsumptionSequence{0, 0}));
  EXPECT_EQ(filtered.item_key(0), "c");
}

TEST(DatasetFilterTest, MinTrainLengthMatchesPaperRule) {
  DatasetBuilder builder;
  for (int t = 0; t < 10; ++t) ASSERT_TRUE(builder.Add(0, t, t).ok());
  for (int t = 0; t < 20; ++t) ASSERT_TRUE(builder.Add(1, t, t).ok());
  const Dataset dataset = builder.Build().ValueOrDie();
  // Rule: |S_u| * 0.7 >= 10 -> needs |S_u| >= 14.29 -> only user "1".
  const Dataset filtered = dataset.FilterByMinTrainLength(0.7, 10);
  EXPECT_EQ(filtered.num_users(), 1u);
  EXPECT_EQ(filtered.user_key(0), "1");
}

TEST(DatasetFilterTest, KeepAllIsIdentityOnSequences) {
  const Dataset dataset = MakeThreeUserDataset();
  const Dataset filtered =
      dataset.FilterUsers([](const ConsumptionSequence&) { return true; });
  EXPECT_EQ(filtered.num_users(), dataset.num_users());
  EXPECT_EQ(filtered.num_items(), dataset.num_items());
  EXPECT_EQ(filtered.num_interactions(), dataset.num_interactions());
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& original = dataset.sequence(static_cast<UserId>(u));
    const auto& kept = filtered.sequence(static_cast<UserId>(u));
    ASSERT_EQ(original.size(), kept.size());
    for (size_t t = 0; t < original.size(); ++t) {
      EXPECT_EQ(dataset.item_key(original[t]), filtered.item_key(kept[t]));
    }
  }
}

}  // namespace
}  // namespace data
}  // namespace reconsume
