// Coverage for the smaller utilities: logging levels, stopwatch, the text
// table, experiment defaults, the power-law recency kernel, and window
// walker stress at extreme capacities.

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "data/split.h"
#include "eval/experiment_defaults.h"
#include "eval/table.h"
#include "features/feature_extractor.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "window/window_walker.h"

namespace reconsume {
namespace {

TEST(LoggingTest, LevelNamesAndThreshold) {
  EXPECT_STREQ(util::LogLevelName(util::LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(util::LogLevelName(util::LogLevel::kInfo), "INFO");
  EXPECT_STREQ(util::LogLevelName(util::LogLevel::kWarning), "WARN");
  EXPECT_STREQ(util::LogLevelName(util::LogLevel::kError), "ERROR");
  EXPECT_STREQ(util::LogLevelName(util::LogLevel::kFatal), "FATAL");

  const util::LogLevel original = util::GetLogLevel();
  util::SetLogLevel(util::LogLevel::kError);
  EXPECT_EQ(util::GetLogLevel(), util::LogLevel::kError);
  RECONSUME_LOG(Info) << "filtered out, must not crash";
  util::SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesQuietly) {
  RECONSUME_CHECK(1 + 1 == 2) << "never printed";
  RECONSUME_DCHECK(true) << "never printed";
  RECONSUME_CHECK_OK(Status::OK());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(RECONSUME_CHECK(false) << "ctx 42", "Check failed.*ctx 42");
  EXPECT_DEATH(RECONSUME_CHECK_OK(Status::IoError("gone")), "IOError: gone");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  util::Stopwatch stopwatch;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  const int64_t nanos = stopwatch.ElapsedNanos();
  EXPECT_GT(nanos, 0);
  EXPECT_NEAR(stopwatch.ElapsedMillis(), stopwatch.ElapsedNanos() / 1e6, 1.0);
  stopwatch.Restart();
  EXPECT_LT(stopwatch.ElapsedNanos(), nanos + 1000000000);
}

TEST(TextTableDeathTest, ArityMismatchDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  eval::TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "arity");
}

TEST(TextTableTest, ColumnsStartAtTheSameOffset) {
  eval::TextTable table({"x", "long-header"});
  table.AddRow({"longer-cell", "y"});
  const std::string out = table.ToString();
  // Three lines: header, underline, row; the second column must begin at the
  // same offset in the header and the data row (first column width + 2).
  const size_t header_end = out.find('\n');
  const std::string header = out.substr(0, header_end);
  const size_t row_start = out.rfind('\n', out.size() - 2) + 1;
  const std::string row = out.substr(row_start, out.size() - row_start - 1);
  EXPECT_EQ(header.find("long-header"), row.find("y"));
  // The underline spans at least the widest line.
  const size_t underline_start = header_end + 1;
  const size_t underline_end = out.find('\n', underline_start);
  EXPECT_GE(underline_end - underline_start, row.size());
}

TEST(ExperimentDefaultsTest, MatchTable4) {
  const auto gowalla = eval::ExperimentDefaults::Gowalla();
  EXPECT_DOUBLE_EQ(gowalla.lambda, 0.01);
  EXPECT_DOUBLE_EQ(gowalla.gamma, 0.05);
  const auto lastfm = eval::ExperimentDefaults::Lastfm();
  EXPECT_DOUBLE_EQ(lastfm.lambda, 0.001);
  EXPECT_DOUBLE_EQ(lastfm.gamma, 0.1);
  for (const auto& d : {gowalla, lastfm}) {
    EXPECT_EQ(d.latent_dim, 40);
    EXPECT_EQ(d.negatives, 10);
    EXPECT_EQ(d.min_gap, 10);
    EXPECT_EQ(d.window_capacity, 100);
    EXPECT_DOUBLE_EQ(d.train_fraction, 0.7);
    EXPECT_EQ(d.min_train_events, 100);
  }
}

struct KernelFixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;

  KernelFixture() {
    data::DatasetBuilder builder;
    const int items[] = {1, 2, 3, 1, 2, 3, 1, 2, 3, 1};
    for (int t = 0; t < 10; ++t) {
      EXPECT_TRUE(builder.Add(0, items[t], t).ok());
    }
    dataset = builder.Build().ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 5).ValueOrDie());
  }
};

TEST(PowerLawKernelTest, ExponentOneMatchesHyperbolic) {
  KernelFixture fixture;
  features::FeatureConfig power;
  power.recency_kernel = features::RecencyKernel::kPowerLaw;
  power.power_law_exponent = 1.0;
  features::FeatureExtractor power_extractor(fixture.table.get(), power);
  features::FeatureExtractor hyper_extractor(
      fixture.table.get(), features::FeatureConfig::AllFeatures());

  window::WindowWalker walker(&fixture.dataset.sequence(0), 5);
  for (int i = 0; i < 5; ++i) walker.Advance();
  for (const auto& [item, entry] : walker.window_counts()) {
    (void)entry;
    EXPECT_DOUBLE_EQ(power_extractor.Recency(walker, item),
                     hyper_extractor.Recency(walker, item));
  }
}

TEST(PowerLawKernelTest, LargerExponentDecaysFaster) {
  KernelFixture fixture;
  features::FeatureConfig steep;
  steep.recency_kernel = features::RecencyKernel::kPowerLaw;
  steep.power_law_exponent = 2.0;
  features::FeatureExtractor extractor(fixture.table.get(), steep);

  window::WindowWalker walker(&fixture.dataset.sequence(0), 5);
  for (int i = 0; i < 4; ++i) walker.Advance();
  // gap(item 1) = 1, gap(item 2) = 3 at t = 4 for the 1,2,3,1,... trace.
  const data::ItemId i1 = fixture.dataset.FindItem("1");
  const data::ItemId i2 = fixture.dataset.FindItem("2");
  EXPECT_DOUBLE_EQ(extractor.Recency(walker, i1), 1.0);
  EXPECT_DOUBLE_EQ(extractor.Recency(walker, i2), 1.0 / 9.0);
}

TEST(WindowWalkerStressTest, CapacityLargerThanSequence) {
  data::ConsumptionSequence seq(250);
  util::Rng rng(3);
  for (auto& v : seq) v = static_cast<data::ItemId>(rng.Uniform(5));
  window::WindowWalker walker(&seq, 100000);
  int64_t total = 0;
  while (!walker.Done()) {
    total += static_cast<int64_t>(walker.NumDistinctInWindow());
    walker.Advance();
  }
  EXPECT_EQ(walker.WindowSize(), 250);  // never evicted
  EXPECT_GT(total, 0);
}

TEST(WindowWalkerStressTest, LongHighChurnTrace) {
  data::ConsumptionSequence seq(50000);
  util::Rng rng(9);
  for (auto& v : seq) v = static_cast<data::ItemId>(rng.Uniform(2000));
  window::WindowWalker walker(&seq, 100);
  while (!walker.Done()) {
    RECONSUME_CHECK(walker.NumDistinctInWindow() <= 100u);
    walker.Advance();
  }
  EXPECT_EQ(walker.step(), 50000);
}

}  // namespace
}  // namespace reconsume
