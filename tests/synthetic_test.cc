#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/dataset_stats.h"

namespace reconsume {
namespace data {
namespace {

TEST(SyntheticProfileTest, ValidationCatchesBadKnobs) {
  auto check_invalid = [](SyntheticProfile p) {
    SyntheticTraceGenerator generator(std::move(p));
    EXPECT_EQ(generator.Generate().status().code(),
              StatusCode::kInvalidArgument);
  };
  SyntheticProfile base = GowallaLikeProfile(0.05);

  {
    auto p = base;
    p.num_users = 0;
    check_invalid(p);
  }
  {
    auto p = base;
    p.catalog_size = 1;
    check_invalid(p);
  }
  {
    auto p = base;
    p.min_sequence_length = 10;
    p.max_sequence_length = 5;
    check_invalid(p);
  }
  {
    auto p = base;
    p.user_pool_max = p.catalog_size + 1;
    check_invalid(p);
  }
  {
    auto p = base;
    p.repeat_probability = 1.5;
    check_invalid(p);
  }
  {
    auto p = base;
    p.softmax_temperature = 0.0;
    check_invalid(p);
  }
  {
    auto p = base;
    p.history_window = 0;
    check_invalid(p);
  }
}

TEST(SyntheticTest, DeterministicBySeed) {
  SyntheticTraceGenerator a(GowallaLikeProfile(0.05));
  SyntheticTraceGenerator b(GowallaLikeProfile(0.05));
  const Dataset da = a.Generate().ValueOrDie();
  const Dataset db = b.Generate().ValueOrDie();
  ASSERT_EQ(da.num_users(), db.num_users());
  for (size_t u = 0; u < da.num_users(); ++u) {
    EXPECT_EQ(da.sequence(static_cast<UserId>(u)),
              db.sequence(static_cast<UserId>(u)));
  }
}

TEST(SyntheticTest, DifferentSeedsProduceDifferentTraces) {
  auto profile_a = GowallaLikeProfile(0.05);
  auto profile_b = profile_a;
  profile_b.seed = profile_a.seed + 1;
  const Dataset da =
      SyntheticTraceGenerator(profile_a).Generate().ValueOrDie();
  const Dataset db =
      SyntheticTraceGenerator(profile_b).Generate().ValueOrDie();
  EXPECT_NE(da.sequence(0), db.sequence(0));
}

TEST(SyntheticTest, RespectsSequenceLengthBounds) {
  auto profile = GowallaLikeProfile(0.05);
  const Dataset dataset =
      SyntheticTraceGenerator(profile).Generate().ValueOrDie();
  EXPECT_EQ(static_cast<int>(dataset.num_users()), profile.num_users);
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto len = dataset.sequence(static_cast<UserId>(u)).size();
    EXPECT_GE(static_cast<int>(len), profile.min_sequence_length);
    EXPECT_LE(static_cast<int>(len), profile.max_sequence_length);
  }
}

TEST(SyntheticTest, PoolBoundsRespected) {
  auto profile = GowallaLikeProfile(0.05);
  const Dataset dataset =
      SyntheticTraceGenerator(profile).Generate().ValueOrDie();
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<UserId>(u));
    std::unordered_set<ItemId> pool(seq.begin(), seq.end());
    EXPECT_LE(static_cast<int>(pool.size()), profile.user_pool_max);
    EXPECT_GE(static_cast<int>(pool.size()), 1);
  }
}

TEST(SyntheticTest, WindowedRepeatFractionTracksProfile) {
  // The generator's repeat_probability should show up (within tolerance —
  // novel draws can still collide with the window when pools are tight).
  const Dataset gowalla =
      SyntheticTraceGenerator(GowallaLikeProfile(0.2)).Generate().ValueOrDie();
  const DatasetStats gowalla_stats = ComputeDatasetStats(gowalla, 100);
  EXPECT_GT(gowalla_stats.repeat_fraction, 0.40);
  EXPECT_LT(gowalla_stats.repeat_fraction, 0.80);

  const Dataset lastfm =
      SyntheticTraceGenerator(LastfmLikeProfile(0.3)).Generate().ValueOrDie();
  const DatasetStats lastfm_stats = ComputeDatasetStats(lastfm, 100);
  EXPECT_GT(lastfm_stats.repeat_fraction, 0.70);
  // The Last.fm regime must be more repeat-heavy than the Gowalla regime
  // (77% vs ~55% in the paper's framing).
  EXPECT_GT(lastfm_stats.repeat_fraction, gowalla_stats.repeat_fraction);
}

TEST(SyntheticTest, LastfmSequencesAreLonger) {
  const auto g = GowallaLikeProfile(1.0);
  const auto l = LastfmLikeProfile(1.0);
  EXPECT_GT(l.min_sequence_length, g.max_sequence_length / 2);
  EXPECT_GT(l.repeat_probability, g.repeat_probability);
  EXPECT_GT(l.softmax_temperature, g.softmax_temperature);  // noisier choices
}

TEST(SyntheticTest, ScaleShrinksUsersAndCatalog) {
  const auto big = GowallaLikeProfile(1.0);
  const auto small = GowallaLikeProfile(0.1);
  EXPECT_GT(big.num_users, small.num_users);
  EXPECT_GT(big.catalog_size, small.catalog_size);
  // Pool bounds stay consistent with the catalog at tiny scales.
  EXPECT_LE(small.user_pool_max, small.catalog_size);
  EXPECT_LE(small.user_pool_min, small.user_pool_max);
}

TEST(SyntheticTest, TinyScaleStillGenerates) {
  const Dataset dataset = SyntheticTraceGenerator(LastfmLikeProfile(0.01))
                              .Generate()
                              .ValueOrDie();
  EXPECT_GT(dataset.num_interactions(), 0);
}

TEST(SyntheticTest, SurvivesPaperFilter) {
  // Both default profiles must keep every generated user under the paper's
  // 0.7 |S_u| >= 100 filter (min length 150 guarantees it for Gowalla).
  const Dataset gowalla =
      SyntheticTraceGenerator(GowallaLikeProfile(0.1)).Generate().ValueOrDie();
  EXPECT_EQ(gowalla.FilterByMinTrainLength(0.7, 100).num_users(),
            gowalla.num_users());
}

}  // namespace
}  // namespace data
}  // namespace reconsume
