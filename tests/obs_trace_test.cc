#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "util/fileio.h"
#include "util/thread_pool.h"

namespace reconsume {
namespace obs {
namespace {

/// Tests share the global recorder; each starts from a clean, disabled slate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  {
    RC_TRACE_SPAN("ignored");
  }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(TraceTest, RecordsNestedSpansWithDepth) {
  TraceRecorder::Global().Enable();
  {
    RC_TRACE_SPAN("outer");
    {
      RC_TRACE_SPAN("inner");
    }
    {
      RC_TRACE_SPAN("inner2");
    }
  }
  TraceRecorder::Global().Disable();

  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Snapshot is ordered by start time: outer opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "inner2");
  EXPECT_EQ(events[2].depth, 1);
  for (const TraceEvent& event : events) {
    EXPECT_GE(event.duration_ns, 0);
    EXPECT_GE(event.start_ns, 0);
  }
  // The outer span encloses both inner spans.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].duration_ns,
            events[2].start_ns + events[2].duration_ns);
}

TEST_F(TraceTest, SpansNestAcrossParallelShards) {
  TraceRecorder::Global().Enable();
  constexpr size_t kShards = 4;
  util::ThreadPool::ParallelShards(kShards, /*seed=*/17,
                                   [](size_t, util::Rng*) {
                                     RC_TRACE_SPAN("shard");
                                     RC_TRACE_SPAN("shard_inner");
                                   });
  TraceRecorder::Global().Disable();

  const auto events = TraceRecorder::Global().Snapshot();
  size_t outer = 0;
  size_t inner = 0;
  std::set<int> tids;
  for (const TraceEvent& event : events) {
    if (event.name == "shard") {
      ++outer;
      EXPECT_EQ(event.depth, 0);
      tids.insert(event.tid);
    } else if (event.name == "shard_inner") {
      ++inner;
      EXPECT_EQ(event.depth, 1);
    }
  }
  EXPECT_EQ(outer, kShards);
  EXPECT_EQ(inner, kShards);
  // Shard 0 runs on the calling thread, the rest on pool threads; every span
  // carries its own thread's id.
  EXPECT_GE(tids.size(), 2u);
  EXPECT_LE(tids.size(), kShards);
}

TEST_F(TraceTest, ClearDropsSpansButKeepsRecording) {
  TraceRecorder::Global().Enable();
  {
    RC_TRACE_SPAN("before");
  }
  TraceRecorder::Global().Clear();
  {
    RC_TRACE_SPAN("after");
  }
  TraceRecorder::Global().Disable();
  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after");
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  TraceRecorder::Global().Enable();
  {
    RC_TRACE_SPAN("epoch \"quoted\"");
  }
  TraceRecorder::Global().Disable();

  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Names are JSON-escaped.
  EXPECT_NE(json.find("epoch \\\"quoted\\\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "/trace_test.json";
  ASSERT_TRUE(TraceRecorder::Global().WriteChromeTrace(path).ok());
  const auto written = util::ReadFileToString(path);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.ValueOrDie(), json);
}

}  // namespace
}  // namespace obs
}  // namespace reconsume
