#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "obs/tail_sampler.h"
#include "obs/trace_context.h"
#include "util/fileio.h"
#include "util/thread_pool.h"

namespace reconsume {
namespace obs {
namespace {

/// Tests share the global recorder and tail sampler; each starts from a
/// clean, disabled slate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
    TraceTailSampler::Global().Disable();
    TraceTailSampler::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
    TraceTailSampler::Global().Disable();
    TraceTailSampler::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  {
    RC_TRACE_SPAN("ignored");
  }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(TraceTest, RecordsNestedSpansWithDepth) {
  TraceRecorder::Global().Enable();
  {
    RC_TRACE_SPAN("outer");
    {
      RC_TRACE_SPAN("inner");
    }
    {
      RC_TRACE_SPAN("inner2");
    }
  }
  TraceRecorder::Global().Disable();

  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Snapshot is ordered by start time: outer opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "inner2");
  EXPECT_EQ(events[2].depth, 1);
  for (const TraceEvent& event : events) {
    EXPECT_GE(event.duration_ns, 0);
    EXPECT_GE(event.start_ns, 0);
  }
  // The outer span encloses both inner spans.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].duration_ns,
            events[2].start_ns + events[2].duration_ns);
}

TEST_F(TraceTest, SpansNestAcrossParallelShards) {
  TraceRecorder::Global().Enable();
  constexpr size_t kShards = 4;
  util::ThreadPool::ParallelShards(kShards, /*seed=*/17,
                                   [](size_t, util::Rng*) {
                                     RC_TRACE_SPAN("shard");
                                     RC_TRACE_SPAN("shard_inner");
                                   });
  TraceRecorder::Global().Disable();

  const auto events = TraceRecorder::Global().Snapshot();
  size_t outer = 0;
  size_t inner = 0;
  std::set<int> tids;
  for (const TraceEvent& event : events) {
    if (event.name == "shard") {
      ++outer;
      EXPECT_EQ(event.depth, 0);
      tids.insert(event.tid);
    } else if (event.name == "shard_inner") {
      ++inner;
      EXPECT_EQ(event.depth, 1);
    }
  }
  EXPECT_EQ(outer, kShards);
  EXPECT_EQ(inner, kShards);
  // Shard 0 runs on the calling thread, the rest on pool threads; every span
  // carries its own thread's id.
  EXPECT_GE(tids.size(), 2u);
  EXPECT_LE(tids.size(), kShards);
}

TEST_F(TraceTest, ClearDropsSpansButKeepsRecording) {
  TraceRecorder::Global().Enable();
  {
    RC_TRACE_SPAN("before");
  }
  TraceRecorder::Global().Clear();
  {
    RC_TRACE_SPAN("after");
  }
  TraceRecorder::Global().Disable();
  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after");
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  TraceRecorder::Global().Enable();
  {
    RC_TRACE_SPAN("epoch \"quoted\"");
  }
  TraceRecorder::Global().Disable();

  const std::string json = TraceRecorder::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Names are JSON-escaped.
  EXPECT_NE(json.find("epoch \\\"quoted\\\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "/trace_test.json";
  ASSERT_TRUE(TraceRecorder::Global().WriteChromeTrace(path).ok());
  const auto written = util::ReadFileToString(path);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.ValueOrDie(), json);
}

TEST(TraceContextTest, MintedIdsAreUniqueAndNonZero) {
  const TraceContext a = MintTraceContext();
  const TraceContext b = MintTraceContext();
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(a.span_id, 0u);
  EXPECT_EQ(a.parent_span_id, 0u);
  EXPECT_TRUE(a.traced());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
  EXPECT_NE(NextSpanId(), NextSpanId());
  EXPECT_FALSE(TraceContext().traced());
}

TEST(TraceContextTest, ScopedAdoptionRestoresPreviousContext) {
  const TraceContext before = CurrentTraceContext();
  const TraceContext minted = MintTraceContext();
  {
    ScopedTraceContext adopt(minted);
    EXPECT_EQ(CurrentTraceContext().trace_id, minted.trace_id);
    EXPECT_EQ(CurrentTraceContext().span_id, minted.span_id);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, before.trace_id);
  EXPECT_EQ(CurrentTraceContext().span_id, before.span_id);
}

// Satellite: snapshot-merge ordering must be a total, reproducible order even
// when spans tie on start_ns — (start_ns, trace_id, span_id).
TEST_F(TraceTest, SnapshotOrderIsStableUnderStartTimeTies) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  recorder.RecordSpan("b", /*trace_id=*/7, /*span_id=*/30,
                      /*parent_span_id=*/0, /*start_ns=*/1000,
                      /*duration_ns=*/10);
  recorder.RecordSpan("c", 9, 10, 0, 1000, 10);
  recorder.RecordSpan("a", 7, 20, 0, 1000, 10);
  recorder.RecordSpan("d", 2, 40, 0, 500, 10);
  recorder.Disable();

  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "d");  // earliest start_ns first
  EXPECT_EQ(events[1].name, "a");  // then trace_id 7, span_id 20
  EXPECT_EQ(events[2].name, "b");  // trace_id 7, span_id 30
  EXPECT_EQ(events[3].name, "c");  // trace_id 9
  // Reproducible: a second snapshot merges to the identical order.
  const auto again = recorder.Snapshot();
  ASSERT_EQ(again.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].span_id, events[i].span_id) << "index " << i;
  }
}

TEST_F(TraceTest, PlainSpansInheritTheCurrentContext) {
  TraceRecorder::Global().Enable();
  const TraceContext ctx = MintTraceContext();
  {
    ScopedTraceContext adopt(ctx);
    RC_TRACE_SPAN("parent");
    {
      RC_TRACE_SPAN("child");
    }
  }
  {
    RC_TRACE_SPAN("outside");
  }
  TraceRecorder::Global().Disable();

  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& event : TraceRecorder::Global().Snapshot()) {
    by_name[event.name] = event;
  }
  ASSERT_EQ(by_name.size(), 3u);
  const TraceEvent& parent = by_name.at("parent");
  const TraceEvent& child = by_name.at("child");
  const TraceEvent& outside = by_name.at("outside");

  EXPECT_EQ(parent.trace_id, ctx.trace_id);
  EXPECT_EQ(parent.parent_span_id, ctx.span_id);
  EXPECT_NE(parent.span_id, 0u);
  EXPECT_EQ(child.trace_id, ctx.trace_id);
  EXPECT_EQ(child.parent_span_id, parent.span_id);
  // Outside the adopted scope, spans carry no trace affiliation.
  EXPECT_EQ(outside.trace_id, 0u);
  EXPECT_EQ(outside.parent_span_id, 0u);
}

// The cross-thread hop: a context minted on this thread, adopted with
// RC_TRACE_SPAN_IN on another, reconstructs as one tree with the worker's
// nested span chained under the adopted span — and the export stitches the
// two threads with flow events.
TEST_F(TraceTest, SpanInStitchesAcrossThreads) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  const TraceContext ctx = MintTraceContext();
  {
    RC_TRACE_SPAN_IN(ctx, "producer");
  }
  std::thread worker([&ctx] {
    RC_TRACE_SPAN_IN(ctx, "worker");
    RC_TRACE_SPAN("worker_inner");
  });
  worker.join();
  // Close the root the way a service resolves a finished request.
  recorder.RecordSpan("request", ctx.trace_id, ctx.span_id,
                      /*parent_span_id=*/0, /*start_ns=*/0,
                      /*duration_ns=*/100);
  recorder.Disable();

  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& event : recorder.Snapshot()) {
    by_name[event.name] = event;
  }
  ASSERT_EQ(by_name.size(), 4u);
  for (const auto& [name, event] : by_name) {
    EXPECT_EQ(event.trace_id, ctx.trace_id) << name;
  }
  EXPECT_EQ(by_name.at("request").span_id, ctx.span_id);
  EXPECT_EQ(by_name.at("request").parent_span_id, 0u);
  EXPECT_EQ(by_name.at("producer").parent_span_id, ctx.span_id);
  EXPECT_EQ(by_name.at("worker").parent_span_id, ctx.span_id);
  EXPECT_EQ(by_name.at("worker_inner").parent_span_id,
            by_name.at("worker").span_id);
  EXPECT_NE(by_name.at("producer").tid, by_name.at("worker").tid);

  // The trace touches two threads, so the export carries flow events
  // binding them, and every traced span carries its ids as args.
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":"), std::string::npos);
}

TEST_F(TraceTest, ZeroContextSpanInBehavesLikePlainSpan) {
  TraceRecorder::Global().Enable();
  {
    RC_TRACE_SPAN_IN(TraceContext(), "plain");
  }
  TraceRecorder::Global().Disable();
  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 0u);
  EXPECT_EQ(events[0].parent_span_id, 0u);
}

TEST_F(TraceTest, RecordSpanInjectsPreTimedSpans) {
  TraceRecorder& recorder = TraceRecorder::Global();
  // No-op while disabled.
  recorder.RecordSpan("ignored", 1, 2, 3, 0, 10);
  EXPECT_TRUE(recorder.Snapshot().empty());

  recorder.Enable();
  recorder.RecordSpan("queue_wait", 11, 22, 33, 1234, 567);
  recorder.Disable();
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "queue_wait");
  EXPECT_EQ(events[0].trace_id, 11u);
  EXPECT_EQ(events[0].span_id, 22u);
  EXPECT_EQ(events[0].parent_span_id, 33u);
  EXPECT_EQ(events[0].start_ns, 1234);
  EXPECT_EQ(events[0].duration_ns, 567);
}

// Export-time filtering: while the sampler is active, dropped and
// still-undecided traces are omitted; retained traces and untraced spans
// survive.
TEST_F(TraceTest, ExportOmitsSamplerDroppedAndUndecidedTraces) {
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceTailSampler& sampler = TraceTailSampler::Global();
  recorder.Enable();
  TailSamplerConfig config;
  config.sample_rate = 0.0;
  config.min_slow_observations = 1000;  // slow class never engages here
  sampler.Enable(config);

  const TraceContext kept = MintTraceContext();
  const TraceContext dropped = MintTraceContext();
  const TraceContext inflight = MintTraceContext();
  {
    RC_TRACE_SPAN_IN(kept, "kept_child");
  }
  {
    RC_TRACE_SPAN_IN(dropped, "dropped_child");
  }
  {
    RC_TRACE_SPAN_IN(inflight, "inflight_child");
  }
  {
    RC_TRACE_SPAN("untraced");
  }
  EXPECT_EQ(sampler.RecordOutcome(kept.trace_id, 10.0, /*always_keep=*/true),
            TailSampleVerdict::kForced);
  EXPECT_EQ(
      sampler.RecordOutcome(dropped.trace_id, 10.0, /*always_keep=*/false),
      TailSampleVerdict::kDropped);
  recorder.Disable();

  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("kept_child"), std::string::npos);
  EXPECT_EQ(json.find("dropped_child"), std::string::npos);
  EXPECT_EQ(json.find("inflight_child"), std::string::npos);
  EXPECT_NE(json.find("untraced"), std::string::npos);
}

// Per-thread buffers compact sampler-dropped spans past the soft cap, so a
// long-running instrumented service is bounded by the retained set.
TEST_F(TraceTest, CompactionBoundsDroppedTraceSpans) {
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceTailSampler& sampler = TraceTailSampler::Global();
  recorder.Enable();
  TailSamplerConfig config;
  config.sample_rate = 0.0;
  config.min_slow_observations = 1000;
  sampler.Enable(config);

  const TraceContext victim = MintTraceContext();
  const TraceContext kept = MintTraceContext();
  EXPECT_EQ(
      sampler.RecordOutcome(victim.trace_id, 1.0, /*always_keep=*/false),
      TailSampleVerdict::kDropped);
  EXPECT_EQ(sampler.RecordOutcome(kept.trace_id, 1.0, /*always_keep=*/true),
            TailSampleVerdict::kForced);

  constexpr int kSpans = 9000;  // past the 8192 compaction watermark
  for (int i = 0; i < kSpans; ++i) {
    recorder.RecordSpan("victim_span", victim.trace_id, NextSpanId(),
                        victim.span_id, i, 1);
  }
  recorder.RecordSpan("kept_span", kept.trace_id, NextSpanId(), kept.span_id,
                      0, 1);
  recorder.Disable();

  const auto events = recorder.Snapshot();
  EXPECT_LT(events.size(), static_cast<size_t>(kSpans));
  bool kept_present = false;
  for (const TraceEvent& event : events) {
    if (event.name == "kept_span") kept_present = true;
  }
  EXPECT_TRUE(kept_present);
}

}  // namespace
}  // namespace obs
}  // namespace reconsume
