// rc_analyze fixture: R6 must flag unbounded blocking calls on the serve
// request path — a bare queue Push() that parks the producer forever when
// the queue is full, and a bare future get() that parks a worker with no
// deadline. The serving stack bounds both (TryEnqueueFor, the Resolve
// funnel); see docs/serving.md §8.

#include <future>

#include "serve/request_queue.h"

namespace fixture {

struct Request {
  int user = 0;
};

bool EnqueueForever(reconsume::serve::BoundedQueue<Request>* queue,
                    Request request) {
  return queue->Push(request);  // R6: unbounded producer block
}

int WaitForever(std::future<int> response_future) {
  return response_future.get();  // R6: worker parked with no deadline
}

}  // namespace fixture
