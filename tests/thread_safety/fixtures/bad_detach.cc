// rc_analyze fixture: R4 must flag detached threads. A detached thread
// outlives the state it touches and makes shutdown untestable; every
// thread in this tree is joined.

#include <thread>

namespace fixture {

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();
}

}  // namespace fixture
