// rc_analyze fixture: R3 must flag fault injection inside a destructor —
// destructors run during unwinding and shutdown, where an injected fault
// turns into double-fault undefined behavior.

#include "util/failpoint.h"

namespace fixture {

class Flusher {
 public:
  ~Flusher() {
    RC_FAILPOINT("flusher/dtor_flush");
  }
};

}  // namespace fixture
