// rc_analyze fixture: R1 must flag raw standard-library synchronization
// primitives used outside src/util/sync.h. Never built; fed to the analyzer.

#include <mutex>

namespace fixture {

class Account {
 public:
  void Deposit(int amount) {
    std::lock_guard<std::mutex> lock(mu_);
    balance_ += amount;
  }

 private:
  std::mutex mu_;
  int balance_ = 0;
};

}  // namespace fixture
