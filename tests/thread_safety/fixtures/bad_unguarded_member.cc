// rc_analyze fixture: R2 must flag (a) a mutex member no annotation ever
// references and (b) a container member of a mutex-bearing class with
// neither RC_GUARDED_BY nor an rc:unguarded(reason) comment.

#include <vector>

#include "util/sync.h"

namespace fixture {

class SessionTable {
 public:
  void Put(int key) {
    util::MutexLock lock(&mu_);
    rows_.push_back(key);
  }

 private:
  util::Mutex mu_;
  util::Mutex stats_mu_;
  std::vector<int> rows_;
};

}  // namespace fixture
