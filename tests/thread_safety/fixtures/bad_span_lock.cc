// rc_analyze fixture: R5 must flag a blocking lock acquisition lexically
// inside an RC_TRACE_SPAN scope on the serve request path — lock waits
// must not be charged to request spans.

#include "obs/trace.h"
#include "util/sync.h"

namespace fixture {

int HandleRequest(reconsume::util::Mutex* mu, const int* value) {
  RC_TRACE_SPAN("serve.handle");
  reconsume::util::MutexLock lock(mu);
  return *value;
}

}  // namespace fixture
