// Positive control for the negative-compilation harness: idiomatic use of
// every util/sync.h wrapper. This file MUST compile cleanly under
// -Wthread-safety -Werror=thread-safety-analysis — if it stops compiling,
// the wrappers (not the fixtures) regressed.

#include <deque>

#include "util/sync.h"

namespace reconsume {

class Mailbox {
 public:
  void Post(int message) RC_EXCLUDES(mu_) {
    {
      util::MutexLock lock(&mu_);
      messages_.push_back(message);
    }
    arrived_.NotifyOne();
  }

  int Take() RC_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    while (messages_.empty()) arrived_.Wait(&mu_);
    const int message = messages_.front();
    messages_.pop_front();
    return message;
  }

  bool TryPeek(int* out) RC_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    const bool any = !messages_.empty();
    if (any) *out = messages_.front();
    mu_.Unlock();
    return any;
  }

 private:
  util::Mutex mu_;
  util::CondVar arrived_;
  std::deque<int> messages_ RC_GUARDED_BY(mu_);
};

class Snapshot {
 public:
  int Read() const RC_EXCLUDES(state_mu_) {
    util::ReaderLock lock(&state_mu_);
    return state_;
  }

  void Update(int v) RC_EXCLUDES(state_mu_) {
    util::WriterLock lock(&state_mu_);
    state_ = v;
  }

 private:
  mutable util::SharedMutex state_mu_;
  int state_ RC_GUARDED_BY(state_mu_) = 0;
};

int Exercise() {
  Mailbox mailbox;
  mailbox.Post(1);
  int peeked = 0;
  mailbox.TryPeek(&peeked);
  Snapshot snapshot;
  snapshot.Update(mailbox.Take());
  return snapshot.Read() + peeked;
}

}  // namespace reconsume
