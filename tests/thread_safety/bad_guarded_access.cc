// Negative-compilation fixture: reading an RC_GUARDED_BY member without
// holding its mutex MUST be rejected by a Clang build with
// -Wthread-safety -Werror=thread-safety-analysis (the run_negative_compile
// harness asserts this file does not compile under the option).

#include "util/sync.h"

namespace reconsume {

class Box {
 public:
  int Read() const { return value_; }  // guarded read, no lock held

  void Write(int v) {
    util::MutexLock lock(&mu_);
    value_ = v;
  }

 private:
  mutable util::Mutex mu_;
  int value_ RC_GUARDED_BY(mu_) = 0;
};

int Touch() {
  Box box;
  box.Write(7);
  return box.Read();
}

}  // namespace reconsume
