// Negative-compilation fixture: calling an RC_REQUIRES(mu) method without
// holding mu MUST be rejected by a Clang build with
// -Wthread-safety -Werror=thread-safety-analysis (the run_negative_compile
// harness asserts this file does not compile under the option).

#include "util/sync.h"

namespace reconsume {

class Ledger {
 public:
  void Add(int v) RC_REQUIRES(mu_) { total_ += v; }

  void Unsafe(int v) {
    Add(v);  // requires mu_, which is not held here
  }

  util::Mutex mu_;

 private:
  int total_ RC_GUARDED_BY(mu_) = 0;
};

void Touch() {
  Ledger ledger;
  ledger.Unsafe(3);
}

}  // namespace reconsume
