// Tests for the online RecommendationSession, the nested-validation grid
// search, Dataset::TruncatePerUser, and the quadratic STREC variant.

#include <gtest/gtest.h>

#include "core/grid_search.h"
#include "core/recommendation_session.h"
#include "core/ts_ppr.h"
#include "data/synthetic.h"
#include "strec/strec_classifier.h"

namespace reconsume {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;

  explicit Fixture(double scale = 0.05) {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(scale))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
  }
};

TEST(TruncatePerUserTest, KeepsPrefixesAndRecompacts) {
  data::DatasetBuilder builder;
  for (int t = 0; t < 6; ++t) ASSERT_TRUE(builder.Add(0, t, t).ok());
  for (int t = 0; t < 4; ++t) ASSERT_TRUE(builder.Add(1, 100 + t, t).ok());
  const data::Dataset dataset = builder.Build().ValueOrDie();

  const data::Dataset truncated = dataset.TruncatePerUser({3, 0});
  EXPECT_EQ(truncated.num_users(), 1u);  // user 1 truncated to nothing
  EXPECT_EQ(truncated.num_items(), 3u);  // only items 0,1,2 survive
  EXPECT_EQ(truncated.sequence(0).size(), 3u);
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(truncated.item_key(truncated.sequence(0)[t]),
              std::to_string(t));
  }
}

TEST(TruncatePerUserTest, ClampsToSequenceLength) {
  data::DatasetBuilder builder;
  for (int t = 0; t < 3; ++t) ASSERT_TRUE(builder.Add(0, t, t).ok());
  const data::Dataset dataset = builder.Build().ValueOrDie();
  const data::Dataset truncated = dataset.TruncatePerUser({99});
  EXPECT_EQ(truncated.sequence(0).size(), 3u);
}

TEST(RecommendationSessionTest, ServesTopNAfterSeedHistory) {
  Fixture fixture;
  core::TsPprPipelineConfig config;
  auto ts_ppr = core::TsPpr::Fit(*fixture.split, config).ValueOrDie();

  core::RecommendationSession session(ts_ppr.recommender(), 0,
                                      fixture.dataset.sequence(0), 100, 10);
  EXPECT_EQ(session.num_events(),
            static_cast<int64_t>(fixture.dataset.sequence(0).size()));
  EXPECT_GT(session.NumCandidates(), 0u);

  const auto list = session.RecommendTopN(5);
  ASSERT_LE(list.size(), 5u);
  ASSERT_GE(list.size(), 1u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_GE(list[i - 1].score, list[i].score);  // descending
  }
  for (const auto& item : list) {
    EXPECT_GT(item.gap, 10);  // min_gap respected
    EXPECT_GE(item.count_in_window, 1);
  }
}

TEST(RecommendationSessionTest, ObserveShiftsTheWindow) {
  Fixture fixture;
  core::TsPprPipelineConfig config;
  auto ts_ppr = core::TsPpr::Fit(*fixture.split, config).ValueOrDie();
  const auto& seq = fixture.dataset.sequence(0);

  core::RecommendationSession session(
      ts_ppr.recommender(), 0,
      data::ConsumptionSequence(seq.begin(), seq.begin() + 150), 100, 10);
  const auto before = session.RecommendTopN(3);
  ASSERT_FALSE(before.empty());

  // Re-consume the current top item repeatedly: its gap drops below the
  // minimum and it must leave the candidate list.
  const data::ItemId star = before[0].item;
  for (int i = 0; i < 3; ++i) session.Observe(star);
  const auto after = session.RecommendTopN(10);
  for (const auto& item : after) EXPECT_NE(item.item, star);
  EXPECT_EQ(session.num_events(), 153);
}

TEST(RecommendationSessionTest, SurvivesManyObservationsAndReallocation) {
  Fixture fixture;
  core::TsPprPipelineConfig config;
  auto ts_ppr = core::TsPpr::Fit(*fixture.split, config).ValueOrDie();
  const auto& seq = fixture.dataset.sequence(0);

  core::RecommendationSession session(
      ts_ppr.recommender(), 0,
      data::ConsumptionSequence(seq.begin(), seq.begin() + 120), 100, 10);
  // Push far beyond the reserve headroom to force reallocation + rebuild.
  for (int round = 0; round < 3000; ++round) {
    session.Observe(seq[static_cast<size_t>(round) % seq.size()]);
  }
  const auto list = session.RecommendTopN(5);
  EXPECT_FALSE(list.empty());
  EXPECT_EQ(session.num_events(), 3120);
}

TEST(GridSearchTest, RejectsBadOptions) {
  Fixture fixture;
  core::TsPprPipelineConfig base;
  core::GridSearchOptions options;
  options.latent_dims.clear();
  EXPECT_FALSE(core::GridSearchTsPpr(*fixture.split, base, options).ok());
  options = core::GridSearchOptions();
  options.validation_fraction = 1.0;
  EXPECT_FALSE(core::GridSearchTsPpr(*fixture.split, base, options).ok());
}

TEST(GridSearchTest, PicksBestValidationTrial) {
  Fixture fixture(0.1);
  core::TsPprPipelineConfig base;
  core::GridSearchOptions options;
  options.latent_dims = {8, 40};
  options.gammas = {0.05, 2.0};  // 2.0 should clearly underfit
  options.lambdas = {0.01};
  const auto result =
      core::GridSearchTsPpr(*fixture.split, base, options).ValueOrDie();
  EXPECT_EQ(result.trials.size(), 4u);
  // Best trial matches the reported best metric and config.
  double best = -1.0;
  for (const auto& trial : result.trials) best = std::max(best, trial.validation_maap);
  EXPECT_DOUBLE_EQ(best, result.best_validation_maap);
  EXPECT_GT(result.best_validation_maap, 0.0);
  // The degenerate gamma must not win.
  EXPECT_NE(result.best_config.model.gamma, 2.0);
}

TEST(QuadraticStrecTest, ExpandsFeaturesAndStaysCalibrated) {
  Fixture fixture(0.1);
  strec::StrecOptions options;
  options.quadratic = true;
  const auto quadratic =
      strec::StrecClassifier::Fit(*fixture.split, fixture.table.get(), options)
          .ValueOrDie();
  window::WindowWalker walker(&fixture.dataset.sequence(0), 100);
  for (int i = 0; i < 150; ++i) walker.Advance();
  EXPECT_EQ(quadratic.ExtractFeatures(0, walker).size(), 20u);  // 5 + 15

  const auto linear =
      strec::StrecClassifier::Fit(*fixture.split, fixture.table.get(), {})
          .ValueOrDie();
  const auto quad_acc = quadratic.EvaluateOnTest(*fixture.split);
  const auto lin_acc = linear.EvaluateOnTest(*fixture.split);
  // The quadratic model has strictly more capacity; on this data it must be
  // at least close to the linear model (no catastrophic overfit).
  EXPECT_GE(quad_acc.accuracy(), lin_acc.accuracy() - 0.05);
}

}  // namespace
}  // namespace reconsume
