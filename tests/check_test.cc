// Death-style coverage of the RC_CHECK contract layer (util/check.h).
//
// Instead of forking a subprocess per assertion, most tests install a
// throwing failure handler via SetCheckFailureHandler and assert on the
// exception; one real EXPECT_DEATH pins the default handler's abort + stderr
// format. The DCHECK tests cover both build modes: with NDEBUG (the default
// RelWithDebInfo tier-1 build) they verify RC_DCHECK compiles to a no-op
// that does not evaluate its operands; in debug builds they verify it fires.

#include "util/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/status.h"

namespace reconsume {
namespace {

/// What the throwing handler raises; carries the formatted failure.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(std::string what) : std::runtime_error(std::move(what)) {}
};

[[noreturn]] void ThrowingHandler(const util::CheckFailure& failure) {
  throw CheckError(std::string(failure.expression) + " " + failure.message +
                   " (" + failure.file + ":" + std::to_string(failure.line) +
                   ")");
}

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = util::SetCheckFailureHandler(&ThrowingHandler);
  }
  void TearDown() override { util::SetCheckFailureHandler(previous_); }

 private:
  util::CheckFailureHandler previous_ = nullptr;
};

std::string FailureMessage(const std::function<void()>& body) {
  try {
    body();
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected the check to fail";
  return "";
}

TEST_F(CheckTest, CheckPassesSilently) {
  RC_CHECK(1 + 1 == 2);
  RC_CHECK(true) << "context is not evaluated on success";
}

TEST_F(CheckTest, CheckFailureCarriesExpressionAndContext) {
  const std::string what =
      FailureMessage([] { RC_CHECK(2 < 1) << "ctx " << 42; });
  EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
  EXPECT_NE(what.find("ctx 42"), std::string::npos) << what;
  EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
}

TEST_F(CheckTest, SuccessDoesNotEvaluateStreamedContext) {
  int evaluations = 0;
  RC_CHECK(true) << ++evaluations;
  EXPECT_EQ(evaluations, 0);
}

TEST_F(CheckTest, CheckOk) {
  RC_CHECK_OK(Status::OK());
  const std::string what =
      FailureMessage([] { RC_CHECK_OK(Status::IoError("gone")); });
  EXPECT_NE(what.find("IOError: gone"), std::string::npos) << what;
}

TEST_F(CheckTest, CheckFinite) {
  RC_CHECK_FINITE(0.0);
  RC_CHECK_FINITE(-123.5);
  RC_CHECK_FINITE(7);  // integral scalars work too
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(RC_CHECK_FINITE(nan), CheckError);
  EXPECT_THROW(RC_CHECK_FINITE(inf), CheckError);
  EXPECT_THROW(RC_CHECK_FINITE(-inf), CheckError);
  const std::string what = FailureMessage([&] { RC_CHECK_FINITE(inf); });
  EXPECT_NE(what.find("RC_CHECK_FINITE(inf)"), std::string::npos) << what;
}

TEST_F(CheckTest, CheckProb) {
  RC_CHECK_PROB(0.0);
  RC_CHECK_PROB(1.0);
  RC_CHECK_PROB(0.25);
  EXPECT_THROW(RC_CHECK_PROB(1.0000001), CheckError);
  EXPECT_THROW(RC_CHECK_PROB(-0.0001), CheckError);
  EXPECT_THROW(RC_CHECK_PROB(std::nan("")), CheckError);
  const std::string what = FailureMessage([] { RC_CHECK_PROB(1.5); });
  EXPECT_NE(what.find("value=1.5"), std::string::npos) << what;
}

TEST_F(CheckTest, CheckIndex) {
  std::vector<int> v(3);
  RC_CHECK_INDEX(0, v.size());
  RC_CHECK_INDEX(2, v.size());
  EXPECT_THROW(RC_CHECK_INDEX(3, v.size()), CheckError);
  // Sign-safe: a negative signed index never passes against an unsigned
  // size (the naive (size_t)(-1) < 3 comparison would).
  const int negative = -1;
  EXPECT_THROW(RC_CHECK_INDEX(negative, v.size()), CheckError);
  const std::string what =
      FailureMessage([&] { RC_CHECK_INDEX(negative, v.size()); });
  EXPECT_NE(what.find("index=-1 size=3"), std::string::npos) << what;
  // Mixed widths/signedness compare mathematically.
  RC_CHECK_INDEX(static_cast<size_t>(1), 2);
  RC_CHECK_INDEX(1, static_cast<size_t>(2));
}

TEST_F(CheckTest, CheckSorted) {
  const std::vector<int> sorted = {1, 2, 2, 5};
  RC_CHECK_SORTED(sorted);
  const std::vector<int> empty;
  RC_CHECK_SORTED(empty);
  const std::vector<double> unsorted = {1.0, 0.5};
  EXPECT_THROW(RC_CHECK_SORTED(unsorted), CheckError);
}

bool SideEffect(int* calls) {
  ++(*calls);
  return false;
}

TEST_F(CheckTest, DcheckMatchesBuildMode) {
#ifdef NDEBUG
  EXPECT_EQ(RC_DCHECK_IS_ON, 0);
#else
  EXPECT_EQ(RC_DCHECK_IS_ON, 1);
#endif

  int calls = 0;
#if RC_DCHECK_IS_ON
  EXPECT_THROW(RC_DCHECK(SideEffect(&calls)), CheckError);
  EXPECT_EQ(calls, 1);
  std::vector<int> unsorted = {2, 1};
  EXPECT_THROW(RC_DCHECK(false) << "dbg", CheckError);
  EXPECT_THROW(RC_DCHECK_FINITE(std::nan("")), CheckError);
  EXPECT_THROW(RC_DCHECK_PROB(2.0), CheckError);
  EXPECT_THROW(RC_DCHECK_INDEX(5, 3), CheckError);
  EXPECT_THROW(RC_DCHECK_SORTED(unsorted), CheckError);
#else
  // Release: RC_DCHECK compiles out entirely — the failing condition is
  // never evaluated, and failing domain checks are no-ops.
  RC_DCHECK(SideEffect(&calls));
  EXPECT_EQ(calls, 0);
  std::vector<int> unsorted = {2, 1};
  RC_DCHECK(false) << "dbg";
  RC_DCHECK_FINITE(std::nan(""));
  RC_DCHECK_PROB(2.0);
  RC_DCHECK_INDEX(5, 3);
  RC_DCHECK_SORTED(unsorted);
#endif
}

TEST_F(CheckTest, SetHandlerReturnsPrevious) {
  // SetUp installed ThrowingHandler; swapping it out hands it back.
  util::CheckFailureHandler prev = util::SetCheckFailureHandler(nullptr);
  EXPECT_EQ(prev, &ThrowingHandler);
  util::SetCheckFailureHandler(&ThrowingHandler);
}

TEST(CheckDeathTest, DefaultHandlerAbortsWithFileLineAndContext) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(RC_CHECK(false) << "boom " << 7,
               "Check failed: false boom 7");
  EXPECT_DEATH(RC_CHECK_OK(Status::InvalidArgument("bad omega")),
               "InvalidArgument: bad omega");
  EXPECT_DEATH(RC_CHECK_PROB(2.0), "value=2");
}

}  // namespace
}  // namespace reconsume
