#include "sampling/training_set.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/synthetic.h"
#include "window/window_walker.h"

namespace reconsume {
namespace sampling {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
  std::unique_ptr<features::FeatureExtractor> extractor;

  explicit Fixture(double scale = 0.05) {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(scale))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
    extractor = std::make_unique<features::FeatureExtractor>(
        table.get(), features::FeatureConfig::AllFeatures());
  }
};

TEST(TrainingSetTest, RejectsBadOptions) {
  Fixture fixture;
  TrainingSetOptions options;
  options.window_capacity = 1;
  EXPECT_FALSE(TrainingSet::Build(*fixture.split, *fixture.extractor, options)
                   .ok());
  options = {};
  options.min_gap = options.window_capacity;
  EXPECT_FALSE(TrainingSet::Build(*fixture.split, *fixture.extractor, options)
                   .ok());
  options = {};
  options.negatives_per_positive = 0;
  EXPECT_FALSE(TrainingSet::Build(*fixture.split, *fixture.extractor, options)
                   .ok());
}

TEST(TrainingSetTest, QuadruplesAreValid) {
  Fixture fixture;
  TrainingSetOptions options;
  const auto training_set =
      TrainingSet::Build(*fixture.split, *fixture.extractor, options)
          .ValueOrDie();

  EXPECT_GT(training_set.num_quadruples(), 0);
  EXPECT_EQ(training_set.feature_dim(), 4);

  // Replay the sequences and verify each stored event against ground truth:
  // positive is an eligible repeat, negatives come from the window, differ
  // from the positive, and the stored features match a fresh extraction.
  std::vector<double> fresh(4);
  size_t checked = 0;
  for (data::UserId u : training_set.users_with_events()) {
    const auto [begin, end] = training_set.user_events(u);
    const auto& seq = fixture.dataset.sequence(u);
    window::WindowWalker walker(&seq, options.window_capacity);
    for (uint32_t e = begin; e < end; ++e) {
      const PositiveEvent& event = training_set.events()[e];
      ASSERT_EQ(event.user, u);
      while (walker.step() < event.t) walker.Advance();
      ASSERT_EQ(seq[static_cast<size_t>(event.t)], event.item);
      ASSERT_TRUE(walker.Contains(event.item));
      ASSERT_GT(walker.GapSince(event.item), options.min_gap);

      fixture.extractor->Extract(walker, event.item, fresh);
      const auto stored = training_set.feature(event.feature_offset);
      for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(stored[i], fresh[i]);

      ASSERT_GE(event.negatives_count, 1u);
      ASSERT_LE(event.negatives_count,
                static_cast<uint32_t>(options.negatives_per_positive));
      std::set<data::ItemId> seen_negatives;
      for (uint32_t n = event.negatives_begin;
           n < event.negatives_begin + event.negatives_count; ++n) {
        const NegativeSample& neg = training_set.negatives()[n];
        EXPECT_NE(neg.item, event.item);
        EXPECT_TRUE(walker.Contains(neg.item));
        EXPECT_GT(walker.GapSince(neg.item), options.min_gap);
        EXPECT_TRUE(seen_negatives.insert(neg.item).second)
            << "duplicate negative";
        fixture.extractor->Extract(walker, neg.item, fresh);
        const auto neg_stored = training_set.feature(neg.feature_offset);
        for (size_t i = 0; i < 4; ++i) {
          EXPECT_DOUBLE_EQ(neg_stored[i], fresh[i]);
        }
      }
      ++checked;
      if (checked >= 500) return;  // plenty of coverage
    }
  }
}

TEST(TrainingSetTest, EventsStayInTrainingSegment) {
  Fixture fixture;
  const auto training_set =
      TrainingSet::Build(*fixture.split, *fixture.extractor, {}).ValueOrDie();
  for (const PositiveEvent& event : training_set.events()) {
    EXPECT_LT(static_cast<size_t>(event.t),
              fixture.split->split_point(event.user));
  }
}

TEST(TrainingSetTest, QuadrupleCountMatchesNegativeTotals) {
  Fixture fixture;
  const auto training_set =
      TrainingSet::Build(*fixture.split, *fixture.extractor, {}).ValueOrDie();
  int64_t total = 0;
  for (const PositiveEvent& event : training_set.events()) {
    total += event.negatives_count;
  }
  EXPECT_EQ(total, training_set.num_quadruples());
  EXPECT_EQ(training_set.negatives().size(), static_cast<size_t>(total));
}

TEST(TrainingSetTest, HierarchicalSamplingIsPerUserUniform) {
  Fixture fixture;
  const auto training_set =
      TrainingSet::Build(*fixture.split, *fixture.extractor, {}).ValueOrDie();
  util::Rng rng(5);
  std::map<data::UserId, int> user_draws;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const auto [e, n] = training_set.SampleQuadruple(&rng);
    ASSERT_LT(e, training_set.events().size());
    const PositiveEvent& event = training_set.events()[e];
    ASSERT_GE(n, event.negatives_begin);
    ASSERT_LT(n, event.negatives_begin + event.negatives_count);
    ++user_draws[event.user];
  }
  // Each user with events should be drawn ~uniformly (Algorithm 1 line 3):
  // expected kDraws / num_users regardless of event counts.
  const double expected = static_cast<double>(kDraws) /
                          static_cast<double>(
                              training_set.users_with_events().size());
  for (data::UserId u : training_set.users_with_events()) {
    EXPECT_NEAR(user_draws[u], expected, expected * 0.35) << "user " << u;
  }
}

TEST(TrainingSetTest, SmallBatchTakesLeadingEventsPerUser) {
  Fixture fixture;
  const auto training_set =
      TrainingSet::Build(*fixture.split, *fixture.extractor, {}).ValueOrDie();
  const auto batch = training_set.SmallBatch(0.1);
  EXPECT_FALSE(batch.empty());
  // Every user with events contributes at least one pair; pairs reference
  // that user's first events.
  std::set<data::UserId> covered;
  for (const auto& [e, n] : batch) {
    const PositiveEvent& event = training_set.events()[e];
    EXPECT_EQ(n, event.negatives_begin);  // first negative is the fixed one
    covered.insert(event.user);
    const auto [begin, end] = training_set.user_events(event.user);
    const uint32_t count = end - begin;
    const uint32_t take = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::ceil(0.1 * count)));
    EXPECT_LT(e - begin, take);
  }
  EXPECT_EQ(covered.size(), training_set.users_with_events().size());
}

TEST(TrainingSetTest, LargerSGrowsTrainingSet) {
  Fixture fixture;
  TrainingSetOptions s5;
  s5.negatives_per_positive = 5;
  TrainingSetOptions s20;
  s20.negatives_per_positive = 20;
  const auto small =
      TrainingSet::Build(*fixture.split, *fixture.extractor, s5).ValueOrDie();
  const auto large =
      TrainingSet::Build(*fixture.split, *fixture.extractor, s20).ValueOrDie();
  EXPECT_GT(large.num_quadruples(), small.num_quadruples());
  EXPECT_EQ(small.events().size(), large.events().size());  // same positives
}

TEST(TrainingSetTest, DeterministicBySeed) {
  Fixture fixture;
  TrainingSetOptions options;
  options.seed = 99;
  const auto a =
      TrainingSet::Build(*fixture.split, *fixture.extractor, options)
          .ValueOrDie();
  const auto b =
      TrainingSet::Build(*fixture.split, *fixture.extractor, options)
          .ValueOrDie();
  ASSERT_EQ(a.negatives().size(), b.negatives().size());
  for (size_t i = 0; i < a.negatives().size(); ++i) {
    EXPECT_EQ(a.negatives()[i].item, b.negatives()[i].item);
  }
}

}  // namespace
}  // namespace sampling
}  // namespace reconsume
