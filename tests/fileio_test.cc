// Tests for the whole-file I/O helpers, in particular the crash-safety
// contract of AtomicWriteFile: a failed write never disturbs an existing
// file, and no temporary is left behind.

#include "util/fileio.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/failpoint.h"

namespace reconsume {
namespace util {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  std::string TempPath() {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("reconsume_fileio_test_" + std::to_string(counter_++) + "_" +
          std::to_string(reinterpret_cast<uintptr_t>(this))))
            .string();
    paths_.push_back(path);
    return path;
  }
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::vector<std::string> paths_;
  int counter_ = 0;
};

TEST_F(FileIoTest, WriteAndReadRoundtrip) {
  const std::string path = TempPath();
  const std::string contents = std::string("binary\0payload\nline", 19);
  ASSERT_TRUE(WriteStringToFile(path, contents).ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), contents);
}

TEST_F(FileIoTest, ReadMissingFileIsIoError) {
  EXPECT_EQ(ReadFileToString("/no/such/file.bin").status().code(),
            StatusCode::kIoError);
}

TEST_F(FileIoTest, AtomicWriteCreatesFile) {
  const std::string path = TempPath();
  ASSERT_TRUE(AtomicWriteFile(path, "payload").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "payload");
}

TEST_F(FileIoTest, AtomicWriteReplacesExistingFile) {
  const std::string path = TempPath();
  ASSERT_TRUE(AtomicWriteFile(path, "old").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "new contents").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "new contents");
}

TEST_F(FileIoTest, AtomicWriteLeavesNoTemporaryBehind) {
  const std::string path = TempPath();
  ASSERT_TRUE(AtomicWriteFile(path, "x").ok());
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  const std::string base = std::filesystem::path(path).filename().string();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_FALSE(name != base && name.rfind(base, 0) == 0)
        << "leftover temporary " << name;
  }
}

TEST_F(FileIoTest, AtomicWriteToBadDirectoryFails) {
  EXPECT_FALSE(AtomicWriteFile("/no/such/dir/file.bin", "x").ok());
}

#if RECONSUME_FAILPOINTS_ENABLED

TEST_F(FileIoTest, InjectedWriteFailureLeavesOldFileIntact) {
  const std::string path = TempPath();
  ASSERT_TRUE(AtomicWriteFile(path, "good old contents").ok());
  {
    ScopedFailpoint fp("util/atomic_write", "error-once");
    EXPECT_FALSE(AtomicWriteFile(path, "never lands").ok());
  }
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "good old contents");
}

TEST_F(FileIoTest, InjectedRenameFailureLeavesOldFileAndNoTemporary) {
  const std::string path = TempPath();
  ASSERT_TRUE(AtomicWriteFile(path, "good old contents").ok());
  {
    // Fires after the temp file is fully written — the exact window the
    // rename protects; the helper must clean the temp up and report failure.
    ScopedFailpoint fp("util/atomic_write/rename", "error-once");
    EXPECT_FALSE(AtomicWriteFile(path, "never lands").ok());
  }
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "good old contents");
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  const std::string base = std::filesystem::path(path).filename().string();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_FALSE(name != base && name.rfind(base, 0) == 0)
        << "leftover temporary " << name;
  }
}

#endif  // RECONSUME_FAILPOINTS_ENABLED

}  // namespace
}  // namespace util
}  // namespace reconsume
