#include "math/newton.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/vector_ops.h"

namespace reconsume {
namespace math {
namespace {

// f(x) = 0.5 (x - c)^T A (x - c) with SPD A: one Newton step solves exactly.
SecondOrderObjective Quadratic(Matrix a, std::vector<double> c) {
  return [a = std::move(a), c = std::move(c)](const std::vector<double>& x)
             -> Result<ObjectiveEvaluation> {
    const size_t n = x.size();
    ObjectiveEvaluation eval;
    std::vector<double> d(n);
    Subtract(x, c, d);
    std::vector<double> ad(n);
    a.MultiplyVector(d, ad);
    eval.value = 0.5 * Dot(d, ad);
    eval.gradient = ad;
    eval.hessian = a;
    return eval;
  };
}

TEST(NewtonTest, QuadraticConvergesToCenter) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  const auto report =
      MinimizeNewton(Quadratic(a, {1.0, -2.0}), {10.0, 10.0});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.ValueOrDie().converged);
  EXPECT_NEAR(report.ValueOrDie().solution[0], 1.0, 1e-7);
  EXPECT_NEAR(report.ValueOrDie().solution[1], -2.0, 1e-7);
  EXPECT_NEAR(report.ValueOrDie().objective_value, 0.0, 1e-12);
  EXPECT_LE(report.ValueOrDie().iterations, 3);
}

TEST(NewtonTest, HandlesSemiDefiniteHessianViaRidge) {
  // f(x, y) = 0.5 x^2 (flat in y): Hessian singular, ridge must rescue it.
  auto objective = [](const std::vector<double>& x)
      -> Result<ObjectiveEvaluation> {
    ObjectiveEvaluation eval;
    eval.value = 0.5 * x[0] * x[0];
    eval.gradient = {x[0], 0.0};
    eval.hessian = Matrix(2, 2);
    eval.hessian(0, 0) = 1.0;
    return eval;
  };
  const auto report = MinimizeNewton(objective, {5.0, 3.0});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report.ValueOrDie().solution[0], 0.0, 1e-6);
}

TEST(NewtonTest, SmoothConvexNonQuadratic) {
  // f(x) = log(1 + e^x) + log(1 + e^{-x}) minimized at 0.
  auto objective = [](const std::vector<double>& x)
      -> Result<ObjectiveEvaluation> {
    ObjectiveEvaluation eval;
    eval.value = Log1pExp(x[0]) + Log1pExp(-x[0]);
    const double p = Sigmoid(x[0]);
    eval.gradient = {2.0 * p - 1.0};
    eval.hessian = Matrix(1, 1);
    eval.hessian(0, 0) = 2.0 * p * (1.0 - p);
    return eval;
  };
  const auto report = MinimizeNewton(objective, {4.0});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report.ValueOrDie().solution[0], 0.0, 1e-6);
}

TEST(NewtonTest, NonFiniteStartIsError) {
  auto objective = [](const std::vector<double>&)
      -> Result<ObjectiveEvaluation> {
    ObjectiveEvaluation eval;
    eval.value = std::numeric_limits<double>::quiet_NaN();
    eval.gradient = {0.0};
    eval.hessian = Matrix(1, 1, 1.0);
    return eval;
  };
  EXPECT_EQ(MinimizeNewton(objective, {0.0}).status().code(),
            StatusCode::kNumericalError);
}

TEST(NewtonTest, RespectsIterationLimit) {
  Matrix a(1, 1);
  a(0, 0) = 1.0;
  NewtonOptions options;
  options.max_iterations = 0;
  const auto report =
      MinimizeNewton(Quadratic(a, {3.0}), {0.0}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.ValueOrDie().converged);
  EXPECT_NEAR(report.ValueOrDie().solution[0], 0.0, 1e-12);  // unmoved
}

TEST(NewtonTest, AlreadyAtOptimumConvergesImmediately) {
  Matrix a(1, 1);
  a(0, 0) = 2.0;
  const auto report = MinimizeNewton(Quadratic(a, {1.5}), {1.5});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.ValueOrDie().converged);
  EXPECT_EQ(report.ValueOrDie().iterations, 0);
}

}  // namespace
}  // namespace math
}  // namespace reconsume
