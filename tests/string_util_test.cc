#include "util/string_util.h"

#include <gtest/gtest.h>

namespace reconsume {
namespace util {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  const auto parts = Split("a\tb\t\tc", '\t');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitTest, NoDelimiterYieldsWhole) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, TrailingDelimiter) {
  const auto parts = Split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(SplitWhitespaceTest, DropsRuns) {
  const auto parts = SplitWhitespace("  a \t b\n\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespaceTest, AllWhitespaceIsEmpty) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(TrimTest, Cases) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(PrefixSuffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("gowalla.txt", "gow"));
  EXPECT_FALSE(StartsWith("go", "gow"));
  EXPECT_TRUE(EndsWith("trace.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("tsv", ".tsv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

struct IntCase {
  const char* input;
  bool ok;
  int64_t value;
};

class ParseInt64Test : public ::testing::TestWithParam<IntCase> {};

TEST_P(ParseInt64Test, Parses) {
  const auto& c = GetParam();
  const auto r = ParseInt64(c.input);
  EXPECT_EQ(r.ok(), c.ok) << c.input;
  if (c.ok) {
    EXPECT_EQ(r.ValueOrDie(), c.value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseInt64Test,
    ::testing::Values(IntCase{"0", true, 0}, IntCase{"42", true, 42},
                      IntCase{"-17", true, -17},
                      IntCase{"  99 ", true, 99},  // trimmed
                      IntCase{"9223372036854775807", true,
                              9223372036854775807LL},
                      IntCase{"", false, 0}, IntCase{"abc", false, 0},
                      IntCase{"12x", false, 0}, IntCase{"1.5", false, 0},
                      IntCase{"9223372036854775808", false, 0}));

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").ValueOrDie(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").ValueOrDie(), -1e-3);
  EXPECT_DOUBLE_EQ(ParseDouble(" 7 ").ValueOrDie(), 7.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
}

TEST(JoinTest, Cases) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("GoWaLLa-42"), "gowalla-42");
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d/%s/%.2f", 3, "x", 1.5), "3/x/1.50");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(StringPrintfTest, LongOutput) {
  const std::string long_arg(500, 'y');
  const std::string out = StringPrintf("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

struct CommaCase {
  int64_t value;
  const char* expected;
};

class FormatWithCommasTest : public ::testing::TestWithParam<CommaCase> {};

TEST_P(FormatWithCommasTest, Formats) {
  EXPECT_EQ(FormatWithCommas(GetParam().value), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FormatWithCommasTest,
    ::testing::Values(CommaCase{0, "0"}, CommaCase{7, "7"},
                      CommaCase{999, "999"}, CommaCase{1000, "1,000"},
                      CommaCase{4031705, "4,031,705"},
                      CommaCase{16318704, "16,318,704"},
                      CommaCase{-1234567, "-1,234,567"}));

}  // namespace
}  // namespace util
}  // namespace reconsume
