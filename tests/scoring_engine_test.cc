// Parity and correctness tests for the batched scoring engine
// (core/scoring_view.h + core/ts_ppr_recommender.h).
//
// Contract under test:
//   * scalar-tier and SIMD-tier engine scores are bit-identical;
//   * engine vs naive scores agree to high relative precision (the w_u
//     algebra reassociates one sum) and produce identical rankings here;
//   * the window index, the packed-tile path, and the full-catalog iota path
//     all yield the same scores;
//   * the per-user w_u cache stays correct across interleaved users.

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "core/ts_ppr.h"
#include "core/ts_ppr_recommender.h"
#include "data/dataset.h"
#include "data/split.h"
#include "eval/recommender.h"
#include "features/feature_extractor.h"
#include "features/static_features.h"
#include "gtest/gtest.h"
#include "util/random.h"
#include "window/window_walker.h"

namespace reconsume {
namespace core {
namespace {

struct EngineFixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
  std::unique_ptr<features::FeatureExtractor> extractor;
  std::unique_ptr<TsPprModel> model;

  EngineFixture(size_t num_items = 37, int latent_dim = 40) {
    util::Rng rng(42);
    data::DatasetBuilder builder;
    // Three users with repeat-heavy traces over a small catalog.
    for (int64_t u = 0; u < 3; ++u) {
      for (int64_t t = 0; t < 160; ++t) {
        const int item = static_cast<int>(
            rng.Uniform(static_cast<uint64_t>(num_items)));
        EXPECT_TRUE(builder.Add(u, item, t).ok());
      }
    }
    dataset = builder.Build().ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 50).ValueOrDie());
    extractor = std::make_unique<features::FeatureExtractor>(
        table.get(), features::FeatureConfig::AllFeatures());
    TsPprConfig config;
    config.latent_dim = latent_dim;
    model = std::make_unique<TsPprModel>(
        TsPprModel::Create(dataset.num_users(), dataset.num_items(),
                           extractor->dimension(), config)
            .ValueOrDie());
    // Random non-trivial parameters: Create() seeds factors but leaves the
    // mappings near zero, which would make the w_u term vacuous here.
    for (size_t u = 0; u < model->num_users(); ++u) {
      for (double& x : model->user_factor(static_cast<data::UserId>(u))) {
        x = rng.NextDouble() - 0.5;
      }
      math::Matrix& a = model->mapping(static_cast<data::UserId>(u));
      for (size_t r = 0; r < a.rows(); ++r) {
        for (double& x : a.Row(r)) x = rng.NextDouble() - 0.5;
      }
    }
    for (size_t v = 0; v < model->num_items(); ++v) {
      for (double& x : model->item_factor(static_cast<data::ItemId>(v))) {
        x = rng.NextDouble() - 0.5;
      }
    }
  }

  /// A warmed walker for `user` plus its eligible candidates.
  window::WindowWalker MakeWalker(data::UserId user,
                                  std::vector<data::ItemId>* candidates,
                                  int steps = 120) const {
    window::WindowWalker walker(&dataset.sequence(user), 100);
    while (walker.step() < steps) walker.Advance();
    if (candidates != nullptr) walker.EligibleCandidates(5, candidates);
    return walker;
  }

  std::vector<double> ScoresFor(ScoringMode mode, data::UserId user,
                                const window::WindowWalker& walker,
                                std::span<const data::ItemId> candidates) const {
    TsPprRecommender recommender(model.get(), extractor.get(), "TS-PPR", mode);
    std::vector<double> scores(candidates.size(), 0.0);
    recommender.Score(user, walker, candidates, scores);
    return scores;
  }
};

TEST(ScoringEngineTest, ScalarAndSimdTiersBitIdentical) {
  EngineFixture fixture;
  std::vector<data::ItemId> candidates;
  const auto walker = fixture.MakeWalker(0, &candidates);
  ASSERT_GE(candidates.size(), 8u);
  const auto scalar = fixture.ScoresFor(ScoringMode::kScalar, 0, walker,
                                        candidates);
  const auto simd = fixture.ScoresFor(ScoringMode::kSimd, 0, walker,
                                      candidates);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(scalar[i], simd[i]) << "candidate " << i;
  }
}

TEST(ScoringEngineTest, EngineMatchesNaiveScoresAndRanking) {
  EngineFixture fixture;
  for (data::UserId user = 0; user < 3; ++user) {
    std::vector<data::ItemId> candidates;
    const auto walker = fixture.MakeWalker(user, &candidates);
    ASSERT_FALSE(candidates.empty());
    const auto naive = fixture.ScoresFor(ScoringMode::kNaive, user, walker,
                                         candidates);
    const auto engine = fixture.ScoresFor(ScoringMode::kSimd, user, walker,
                                          candidates);
    for (size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_NEAR(naive[i], engine[i],
                  1e-12 * (1.0 + std::abs(naive[i])))
          << "candidate " << i;
    }
    std::vector<int> top_naive, top_engine;
    eval::SelectTopNHeap(naive, static_cast<int>(candidates.size()),
                         &top_naive);
    eval::SelectTopNHeap(engine, static_cast<int>(candidates.size()),
                         &top_engine);
    EXPECT_EQ(top_naive, top_engine) << "user " << user;
  }
}

TEST(ScoringEngineTest, IotaAndPackedPathsBitIdentical) {
  EngineFixture fixture;
  const auto walker = fixture.MakeWalker(1, nullptr);
  // Full-catalog candidates as an iota list (fast path) ...
  std::vector<data::ItemId> iota(fixture.model->num_items());
  std::iota(iota.begin(), iota.end(), 0);
  const auto fast = fixture.ScoresFor(ScoringMode::kSimd, 1, walker, iota);
  // ... and as a rotated list, which falls back to the packed-tile path.
  std::vector<data::ItemId> rotated(iota.begin() + 1, iota.end());
  rotated.push_back(0);
  const auto packed = fixture.ScoresFor(ScoringMode::kSimd, 1, walker,
                                        rotated);
  for (size_t i = 0; i < rotated.size(); ++i) {
    EXPECT_EQ(packed[i], fast[static_cast<size_t>(rotated[i])])
        << "item " << rotated[i];
  }
}

TEST(ScoringEngineTest, WindowIndexMatchesWalkerExtraction) {
  // Tiny candidate lists skip the window index (the build pass would cost
  // more than it saves); both routes must score identically.
  EngineFixture fixture;
  std::vector<data::ItemId> candidates;
  const auto walker = fixture.MakeWalker(2, &candidates);
  ASSERT_GE(candidates.size(), 3u);
  const auto full = fixture.ScoresFor(ScoringMode::kSimd, 2, walker,
                                      candidates);
  for (size_t i = 0; i < 3; ++i) {
    const std::vector<data::ItemId> single{candidates[i]};
    const auto one = fixture.ScoresFor(ScoringMode::kSimd, 2, walker, single);
    EXPECT_EQ(one[0], full[i]) << "candidate " << i;
  }
}

TEST(ScoringEngineTest, UserWeightCacheSurvivesInterleaving) {
  EngineFixture fixture;
  TsPprRecommender recommender(fixture.model.get(), fixture.extractor.get(),
                               "TS-PPR", ScoringMode::kSimd);
  std::vector<std::vector<data::ItemId>> candidates(3);
  std::vector<window::WindowWalker> walkers;
  for (data::UserId u = 0; u < 3; ++u) {
    walkers.push_back(fixture.MakeWalker(u, &candidates[u]));
  }
  // Reference: one fresh recommender per (user, request).
  std::vector<std::vector<double>> expected;
  for (data::UserId u = 0; u < 3; ++u) {
    expected.push_back(fixture.ScoresFor(ScoringMode::kSimd, u, walkers[u],
                                         candidates[u]));
  }
  // Interleave users through the one shared (cached) engine, twice over.
  for (int round = 0; round < 2; ++round) {
    for (data::UserId u = 0; u < 3; ++u) {
      std::vector<double> scores(candidates[u].size(), 0.0);
      recommender.Score(u, walkers[u], candidates[u], scores);
      EXPECT_EQ(scores, expected[static_cast<size_t>(u)])
          << "user " << u << " round " << round;
    }
  }
}

TEST(ScoringEngineTest, CloneSharesBlocksAndScoresIdentically) {
  EngineFixture fixture;
  TsPprRecommender recommender(fixture.model.get(), fixture.extractor.get(),
                               "TS-PPR", ScoringMode::kSimd);
  auto clone = recommender.Clone();
  std::vector<data::ItemId> candidates;
  const auto walker = fixture.MakeWalker(0, &candidates);
  std::vector<double> a(candidates.size(), 0.0), b(candidates.size(), 0.0);
  recommender.Score(0, walker, candidates, a);
  clone->Score(0, walker, candidates, b);
  EXPECT_EQ(a, b);
}

TEST(ScoringEngineTest, NaiveModeMatchesModelScoreExactly) {
  EngineFixture fixture;
  std::vector<data::ItemId> candidates;
  const auto walker = fixture.MakeWalker(0, &candidates);
  const auto naive = fixture.ScoresFor(ScoringMode::kNaive, 0, walker,
                                       candidates);
  std::vector<double> f(static_cast<size_t>(fixture.extractor->dimension()));
  for (size_t i = 0; i < candidates.size(); ++i) {
    fixture.extractor->Extract(walker, candidates[i], f);
    EXPECT_EQ(naive[i], fixture.model->Score(0, candidates[i], f));
  }
}

TEST(ScoringEngineTest, ExtractFromWindowStateMatchesExtract) {
  EngineFixture fixture;
  const auto walker = fixture.MakeWalker(0, nullptr);
  const auto& extractor = *fixture.extractor;
  const size_t f = static_cast<size_t>(extractor.dimension());
  std::vector<double> a(f), b(f);
  for (const auto& [item, entry] : walker.window_counts()) {
    extractor.Extract(walker, item, a);
    extractor.ExtractFromWindowState(item, walker.step() - entry.last_seen,
                                     entry.count, walker.WindowSize(), b);
    EXPECT_EQ(a, b) << "item " << item;
  }
  // Never-seen item: gap < 0 encodes "no recency signal".
  const data::ItemId unseen = 0;
  if (walker.LastSeenStep(unseen) < 0) {
    extractor.Extract(walker, unseen, a);
    extractor.ExtractFromWindowState(unseen, -1, 0, walker.WindowSize(), b);
    EXPECT_EQ(a, b);
  }
}

TEST(ScoringEngineTest, ScoringModeEnvOverrideParses) {
  EXPECT_EQ(ResolveScoringMode(ScoringMode::kNaive), ScoringMode::kNaive);
  EXPECT_EQ(ResolveScoringMode(ScoringMode::kScalar), ScoringMode::kScalar);
  EXPECT_EQ(ResolveScoringMode(ScoringMode::kSimd), ScoringMode::kSimd);
}

}  // namespace
}  // namespace core
}  // namespace reconsume
