#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace reconsume {
namespace util {
namespace {

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReSeedRestartsStream) {
  Rng rng(7);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(7);
  EXPECT_EQ(rng.Next(), first);
}

class RngUniformBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformBoundTest, StaysBelowBound) {
  Rng rng(GetParam() * 31 + 1);
  const uint64_t bound = GetParam();
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.Uniform(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformBoundTest,
                         ::testing::Values(1, 2, 3, 7, 10, 100, 1000,
                                           1ull << 32, (1ull << 63) + 5));

TEST(RngTest, UniformCoversAllBuckets) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(4242);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  // Chi-squared with 9 dof; 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(2024);
  constexpr int kDraws = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.Gaussian(3.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(77);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(31);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(SplitMix64Test, KnownFirstOutputsDiffer) {
  SplitMix64 a(0), b(1);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(1);
  AliasSampler sampler({1.0, 2.0, 7.0});
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.7, 0.01);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(2);
  AliasSampler sampler({0.0, 1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) {
    const size_t s = sampler.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleBucket) {
  Rng rng(3);
  AliasSampler sampler({5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(AliasSamplerDeathTest, RejectsEmptyAndNonPositive) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(AliasSampler({}), "at least one weight");
  EXPECT_DEATH(AliasSampler({0.0, 0.0}), "positive sum");
  EXPECT_DEATH(AliasSampler({1.0, -0.5}), "negative weight");
}

}  // namespace
}  // namespace util
}  // namespace reconsume
