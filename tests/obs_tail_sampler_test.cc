// TraceTailSampler unit tests: verdict classes (forced / slow / sampled /
// dropped), deterministic sampling rates, the rolling slow threshold,
// Clear() semantics, and RECONSUME_TRACE_SAMPLE parsing.

#include "obs/tail_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

namespace reconsume {
namespace obs {
namespace {

/// Tests share the global sampler; each starts from a clean, disabled slate.
class TailSamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceTailSampler::Global().Disable();
    TraceTailSampler::Global().Clear();
  }
  void TearDown() override {
    TraceTailSampler::Global().Disable();
    TraceTailSampler::Global().Clear();
  }

  /// Slow class disarmed: the threshold needs more observations than any
  /// test here produces.
  static TailSamplerConfig NoSlowConfig(double sample_rate) {
    TailSamplerConfig config;
    config.sample_rate = sample_rate;
    config.min_slow_observations = 1 << 20;
    return config;
  }
};

TEST_F(TailSamplerTest, DisabledTreatsEverythingAsRetained) {
  TraceTailSampler& sampler = TraceTailSampler::Global();
  EXPECT_FALSE(sampler.enabled());
  EXPECT_EQ(sampler.RecordOutcome(1, 1.0, /*always_keep=*/false),
            TailSampleVerdict::kSampled);
  // A disabled sampler records nothing and never becomes active, so the
  // export-time filter stays off.
  EXPECT_FALSE(sampler.active());
  EXPECT_EQ(sampler.stats().considered, 0);
}

TEST_F(TailSamplerTest, ForcedOutcomesAlwaysRetained) {
  TraceTailSampler& sampler = TraceTailSampler::Global();
  sampler.Enable(NoSlowConfig(/*sample_rate=*/0.0));
  EXPECT_EQ(sampler.RecordOutcome(7, 5.0, /*always_keep=*/true),
            TailSampleVerdict::kForced);
  EXPECT_EQ(sampler.RecordOutcome(8, 5.0, /*always_keep=*/false),
            TailSampleVerdict::kDropped);
  EXPECT_TRUE(sampler.active());
  EXPECT_TRUE(sampler.IsRetained(7));
  EXPECT_FALSE(sampler.IsDropped(7));
  EXPECT_TRUE(sampler.IsDropped(8));
  EXPECT_FALSE(sampler.IsRetained(8));
  const TailSamplerStats stats = sampler.stats();
  EXPECT_EQ(stats.considered, 2);
  EXPECT_EQ(stats.retained_forced, 1);
  EXPECT_EQ(stats.dropped, 1);
  EXPECT_EQ(stats.retained(), 1);
}

TEST_F(TailSamplerTest, SamplingIsDeterministicAtTheConfiguredRate) {
  TraceTailSampler& sampler = TraceTailSampler::Global();
  sampler.Enable(NoSlowConfig(/*sample_rate=*/0.5));
  int sampled = 0;
  for (uint64_t trace = 1; trace <= 10; ++trace) {
    if (sampler.RecordOutcome(trace, 1.0, /*always_keep=*/false) ==
        TailSampleVerdict::kSampled) {
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 5);

  sampler.Clear();
  sampler.Enable(NoSlowConfig(/*sample_rate=*/1.0));
  for (uint64_t trace = 1; trace <= 10; ++trace) {
    EXPECT_EQ(sampler.RecordOutcome(trace, 1.0, /*always_keep=*/false),
              TailSampleVerdict::kSampled);
  }

  sampler.Clear();
  sampler.Enable(NoSlowConfig(/*sample_rate=*/0.0));
  for (uint64_t trace = 1; trace <= 10; ++trace) {
    EXPECT_EQ(sampler.RecordOutcome(trace, 1.0, /*always_keep=*/false),
              TailSampleVerdict::kDropped);
  }
}

TEST_F(TailSamplerTest, SlowOutliersRetainedOnceThresholdEngages) {
  TraceTailSampler& sampler = TraceTailSampler::Global();
  TailSamplerConfig config;
  config.sample_rate = 0.0;
  config.latency_window = 8;
  config.slow_quantile = 0.5;
  config.min_slow_observations = 8;
  sampler.Enable(config);
  EXPECT_TRUE(std::isinf(sampler.slow_threshold_us()));

  // Uniform 10us traffic: the first 7 requests precede the threshold; the
  // 8th activates it at the window median (10us) and, at >= threshold,
  // lands in the slow class itself.
  for (uint64_t trace = 1; trace <= 7; ++trace) {
    EXPECT_EQ(sampler.RecordOutcome(trace, 10.0, /*always_keep=*/false),
              TailSampleVerdict::kDropped);
  }
  EXPECT_EQ(sampler.RecordOutcome(8, 10.0, /*always_keep=*/false),
            TailSampleVerdict::kSlow);
  EXPECT_DOUBLE_EQ(sampler.slow_threshold_us(), 10.0);

  // Fast requests drop; a tail outlier is retained as slow.
  EXPECT_EQ(sampler.RecordOutcome(9, 1.0, /*always_keep=*/false),
            TailSampleVerdict::kDropped);
  EXPECT_EQ(sampler.RecordOutcome(10, 50.0, /*always_keep=*/false),
            TailSampleVerdict::kSlow);
  EXPECT_TRUE(sampler.IsRetained(10));
  EXPECT_EQ(sampler.stats().retained_slow, 2);
}

TEST_F(TailSamplerTest, ClearForgetsDecisionsButStaysEnabled) {
  TraceTailSampler& sampler = TraceTailSampler::Global();
  sampler.Enable(NoSlowConfig(/*sample_rate=*/1.0));
  EXPECT_EQ(sampler.RecordOutcome(5, 1.0, /*always_keep=*/false),
            TailSampleVerdict::kSampled);
  EXPECT_TRUE(sampler.active());
  EXPECT_TRUE(sampler.IsRetained(5));

  sampler.Clear();
  EXPECT_TRUE(sampler.enabled());
  EXPECT_FALSE(sampler.active());
  EXPECT_FALSE(sampler.IsRetained(5));
  EXPECT_EQ(sampler.stats().considered, 0);
}

TEST_F(TailSamplerTest, VerdictNames) {
  EXPECT_STREQ(TailSampleVerdictName(TailSampleVerdict::kDropped), "dropped");
  EXPECT_STREQ(TailSampleVerdictName(TailSampleVerdict::kForced), "forced");
  EXPECT_STREQ(TailSampleVerdictName(TailSampleVerdict::kSlow), "slow");
  EXPECT_STREQ(TailSampleVerdictName(TailSampleVerdict::kSampled), "sampled");
}

TEST(TraceSampleRateFromEnvTest, ParsesOverridesAndFallsBack) {
  ::unsetenv("RECONSUME_TRACE_SAMPLE");
  EXPECT_DOUBLE_EQ(TraceSampleRateFromEnv(-1.0), -1.0);

  ::setenv("RECONSUME_TRACE_SAMPLE", "0.25", 1);
  EXPECT_DOUBLE_EQ(TraceSampleRateFromEnv(-1.0), 0.25);

  ::setenv("RECONSUME_TRACE_SAMPLE", "garbage", 1);
  EXPECT_DOUBLE_EQ(TraceSampleRateFromEnv(-1.0), -1.0);

  ::setenv("RECONSUME_TRACE_SAMPLE", "", 1);
  EXPECT_DOUBLE_EQ(TraceSampleRateFromEnv(0.5), 0.5);

  ::unsetenv("RECONSUME_TRACE_SAMPLE");
}

}  // namespace
}  // namespace obs
}  // namespace reconsume
