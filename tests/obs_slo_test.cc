// SloMonitor unit tests with an explicit deterministic clock: burn-rate
// math over short and long windows, window expiry and gap resets, the
// edge-triggered slo_burn alert latch, gauge mirroring, and the text
// dashboard.

#include "obs/slo.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/event.h"
#include "obs/metrics.h"

namespace reconsume {
namespace obs {
namespace {

constexpr int64_t kSecond = 1000000000;

SloConfig Config(const std::string& name, double objective, int window_s,
                 int short_window_s, double alert_burn_rate) {
  SloConfig config;
  config.name = name;
  config.objective = objective;
  config.window_seconds = window_s;
  config.short_window_seconds = short_window_s;
  config.alert_burn_rate = alert_burn_rate;
  return config;
}

TEST(SloMonitorTest, BurnRateMathOverWindows) {
  // objective 0.9 => error budget 10%; burn = bad_fraction / 0.1.
  SloMonitor monitor(Config("slo_test_math", 0.9, /*window_s=*/10,
                            /*short_window_s=*/2, /*alert=*/0.0));

  // Second 0: 9 good + 1 bad — bad fraction exactly the budget, burn 1.0.
  for (int i = 0; i < 9; ++i) monitor.Record(true, /*now_ns=*/0);
  monitor.Record(false, /*now_ns=*/0);
  SloSnapshot snap = monitor.snapshot(/*now_ns=*/0);
  EXPECT_EQ(snap.good, 9);
  EXPECT_EQ(snap.bad, 1);
  EXPECT_DOUBLE_EQ(snap.compliance, 0.9);
  EXPECT_DOUBLE_EQ(snap.burn_short, 1.0);
  EXPECT_DOUBLE_EQ(snap.burn_long, 1.0);
  EXPECT_DOUBLE_EQ(snap.budget_remaining, 0.0);

  // Second 1: 10 good. Both windows now hold 19 good + 1 bad => burn 0.5.
  for (int i = 0; i < 10; ++i) monitor.Record(true, 1 * kSecond);
  snap = monitor.snapshot(1 * kSecond);
  EXPECT_EQ(snap.good, 19);
  EXPECT_EQ(snap.bad, 1);
  EXPECT_DOUBLE_EQ(snap.burn_short, 0.5);
  EXPECT_DOUBLE_EQ(snap.burn_long, 0.5);
  EXPECT_DOUBLE_EQ(snap.budget_remaining, 0.5);

  // Second 2: the short window (seconds 1-2) no longer sees the bad event,
  // the long window still does.
  monitor.Record(true, 2 * kSecond);
  snap = monitor.snapshot(2 * kSecond);
  EXPECT_DOUBLE_EQ(snap.burn_short, 0.0);
  EXPECT_DOUBLE_EQ(snap.burn_long, static_cast<double>(1) / 21 / 0.1);
}

TEST(SloMonitorTest, EventsExpireFromTheLongWindow) {
  SloMonitor monitor(
      Config("slo_test_expiry", 0.9, /*window_s=*/5, /*short_window_s=*/1,
             /*alert=*/0.0));
  monitor.Record(false, /*now_ns=*/0);
  EXPECT_EQ(monitor.snapshot(0).bad, 1);
  // A gap wider than the ring resets every bucket: the old bad event is gone.
  monitor.Record(true, 6 * kSecond);
  const SloSnapshot snap = monitor.snapshot(6 * kSecond);
  EXPECT_EQ(snap.good, 1);
  EXPECT_EQ(snap.bad, 0);
  EXPECT_DOUBLE_EQ(snap.compliance, 1.0);
  EXPECT_DOUBLE_EQ(snap.burn_long, 0.0);
}

TEST(SloMonitorTest, IdleMonitorReportsFullCompliance) {
  SloMonitor monitor(
      Config("slo_test_idle", 0.999, 300, 60, /*alert=*/1.0));
  const SloSnapshot snap = monitor.snapshot(0);
  EXPECT_EQ(snap.good, 0);
  EXPECT_EQ(snap.bad, 0);
  EXPECT_DOUBLE_EQ(snap.compliance, 1.0);
  EXPECT_DOUBLE_EQ(snap.budget_remaining, 1.0);
  EXPECT_EQ(monitor.alerts(), 0);
}

// The alert is edge-triggered: one slo_burn event per excursion above the
// threshold, re-armed only after the short-window burn recovers.
TEST(SloMonitorTest, AlertLatchesPerExcursion) {
  CaptureSink sink;
  EventStream::Global().Attach(&sink);
  SloMonitor monitor(Config("slo_test_alert", 0.9, /*window_s=*/10,
                            /*short_window_s=*/2, /*alert=*/2.0));

  // Burn is recomputed on bucket rotation only: after the first (rotating)
  // record, the bad events piling into second 0 cannot alert until the
  // rotation into second 1.
  monitor.Record(true, 0);
  for (int i = 0; i < 10; ++i) monitor.Record(false, 0);
  EXPECT_EQ(monitor.alerts(), 0);
  monitor.Record(false, 1 * kSecond);  // burn_short = (11/12)/0.1 >= 2.0
  EXPECT_EQ(monitor.alerts(), 1);
  // Still burning across further rotations: latched, no duplicate alert.
  monitor.Record(false, 2 * kSecond);
  EXPECT_EQ(monitor.alerts(), 1);

  // Recovery: all-good seconds push the short-window burn under the
  // threshold, clearing the latch.
  for (int s = 3; s <= 14; ++s) {
    for (int i = 0; i < 50; ++i) monitor.Record(true, s * kSecond);
  }
  EXPECT_EQ(monitor.alerts(), 1);

  // A fresh incident re-alerts once.
  for (int i = 0; i < 50; ++i) monitor.Record(false, 15 * kSecond);
  monitor.Record(false, 16 * kSecond);
  EXPECT_EQ(monitor.alerts(), 2);
  EventStream::Global().Detach(&sink);

  int burn_events = 0;
  for (const Event& event : sink.events()) {
    if (event.type() != "slo_burn") continue;
    const Event::Field* slo = event.Find("slo");
    if (slo == nullptr) continue;
    ++burn_events;
    EXPECT_GE(event.Number("burn_rate_short"), 2.0);
    EXPECT_DOUBLE_EQ(event.Number("objective"), 0.9);
    EXPECT_EQ(event.Number("short_window_s"), 2.0);
    EXPECT_EQ(event.Number("window_s"), 10.0);
  }
  EXPECT_EQ(burn_events, 2);
}

TEST(SloMonitorTest, MirrorsBurnIntoGauges) {
  SloMonitor monitor(Config("slo_test_gauge", 0.9, /*window_s=*/10,
                            /*short_window_s=*/2, /*alert=*/0.0));
  monitor.Record(false, 0);
  monitor.Record(false, 1 * kSecond);  // rotation publishes the gauges
  Gauge* burn_short =
      MetricsRegistry::Global().GetGauge("slo.slo_test_gauge.burn_short");
  Gauge* burn_long =
      MetricsRegistry::Global().GetGauge("slo.slo_test_gauge.burn_long");
  EXPECT_DOUBLE_EQ(burn_short->Value(), 10.0);
  EXPECT_DOUBLE_EQ(burn_long->Value(), 10.0);
}

TEST(SloDashboardTest, RendersOneBlockPerObjective) {
  SloMonitor monitor(Config("availability", 0.999, 300, 60, 1.0));
  monitor.Record(true, 0);
  const std::string dashboard =
      RenderSloDashboard({monitor.snapshot(0), SloSnapshot{.name = "latency"}});
  EXPECT_NE(dashboard.find("availability"), std::string::npos);
  EXPECT_NE(dashboard.find("latency"), std::string::npos);
  EXPECT_NE(dashboard.find("budget left"), std::string::npos);
  EXPECT_NE(dashboard.find("99.900%"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace reconsume
