// Request-scoped tracing through the serve pipeline (docs/observability.md,
// "Request tracing"): under concurrent traffic with the recorder and tail
// sampler armed, every request's spans reconstruct as exactly one rooted
// causal tree — one serve/request root, every parent resolving inside the
// trace, no cycles — spanning the producer and worker threads. This is the
// TSan target for the tracing layer (tools/run_sanitizers.sh).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/ts_ppr.h"
#include "data/synthetic.h"
#include "obs/tail_sampler.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace reconsume {
namespace serve {
namespace {

struct ServeFixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<core::TsPpr> pipeline;

  explicit ServeFixture(double scale = 0.05) {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(scale))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    core::TsPprPipelineConfig config;
    pipeline = std::make_unique<core::TsPpr>(
        core::TsPpr::Fit(*split, config).ValueOrDie());
  }

  ServeConfig Config(int threads = 4) const {
    ServeConfig config;
    config.num_threads = threads;
    config.queue_capacity = 64;
    config.cache_capacity = 256;
    config.window_capacity = 100;
    config.min_gap = 10;
    return config;
  }

  /// Non-owning shared_ptr view: the pipeline outlives the service here.
  std::shared_ptr<eval::Recommender> Model() const {
    return std::shared_ptr<eval::Recommender>(std::shared_ptr<void>(),
                                              pipeline->recommender());
  }
};

class ServeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetGlobals(); }
  void TearDown() override { ResetGlobals(); }

  static void ResetGlobals() {
    obs::TraceRecorder::Global().Disable();
    obs::TraceRecorder::Global().Clear();
    obs::TraceTailSampler::Global().Disable();
    obs::TraceTailSampler::Global().Clear();
  }
};

/// One request's spans, grouped for tree checks.
struct TraceGroup {
  std::map<uint64_t, obs::TraceEvent> spans;  // span_id -> span
  std::vector<uint64_t> roots;                // parent_span_id == 0
  std::set<int> tids;
};

std::map<uint64_t, TraceGroup> GroupByTrace(
    const std::vector<obs::TraceEvent>& events) {
  std::map<uint64_t, TraceGroup> groups;
  for (const obs::TraceEvent& event : events) {
    if (event.trace_id == 0) continue;
    TraceGroup& group = groups[event.trace_id];
    EXPECT_NE(event.span_id, 0u) << event.name;
    EXPECT_TRUE(group.spans.emplace(event.span_id, event).second)
        << "duplicate span_id in trace " << event.trace_id;
    group.tids.insert(event.tid);
    if (event.parent_span_id == 0) group.roots.push_back(event.span_id);
  }
  return groups;
}

// The TSan + integrity target: concurrent mixed traffic, then every traced
// request must form exactly one rooted span tree.
TEST_F(ServeTraceTest, EachRequestFormsOneRootedTreeUnderConcurrency) {
  ServeFixture fixture;
  ServeConfig config = fixture.Config(/*threads=*/4);
  config.trace_sample = 1.0;  // retain every ordinary request too
  obs::TraceRecorder::Global().Enable();

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 25;
  {
    RecommendService service(&fixture.dataset, fixture.Model(), config);
    const auto num_users =
        static_cast<data::UserId>(fixture.dataset.num_users());
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const auto user = static_cast<data::UserId>(
              (c + i) % std::min<data::UserId>(num_users, 6));
          if (i % 5 == 3) {
            const auto& history = fixture.dataset.sequence(user);
            ServeResponse r =
                service
                    .Observe(user, history[static_cast<size_t>(i) %
                                           history.size()])
                    .get();
            EXPECT_TRUE(r.status.ok()) << r.status.ToString();
          } else {
            ServeResponse r = service.Recommend(user, 5).get();
            EXPECT_TRUE(r.status.ok()) << r.status.ToString();
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    service.Shutdown();
    EXPECT_EQ(service.requests_served(), kClients * kRequestsPerClient);
  }
  obs::TraceRecorder::Global().Disable();

  const auto groups = GroupByTrace(obs::TraceRecorder::Global().Snapshot());
  ASSERT_EQ(groups.size(),
            static_cast<size_t>(kClients * kRequestsPerClient));

  size_t cross_thread_traces = 0;
  for (const auto& [trace_id, group] : groups) {
    // Exactly one root, and it is the request span closed at resolution.
    ASSERT_EQ(group.roots.size(), 1u) << "trace " << trace_id;
    const obs::TraceEvent& root = group.spans.at(group.roots[0]);
    EXPECT_EQ(root.name, "serve/request") << "trace " << trace_id;

    // Every parent resolves inside the trace, and walking parent links from
    // any span reaches the root without a cycle.
    for (const auto& [span_id, span] : group.spans) {
      uint64_t cursor = span_id;
      std::set<uint64_t> seen;
      while (cursor != 0) {
        ASSERT_TRUE(seen.insert(cursor).second)
            << "parent cycle in trace " << trace_id;
        const auto it = group.spans.find(cursor);
        ASSERT_NE(it, group.spans.end())
            << "dangling parent " << cursor << " in trace " << trace_id;
        cursor = it->second.parent_span_id;
      }
      EXPECT_TRUE(seen.count(root.span_id)) << "trace " << trace_id;
    }

    // The pipeline spans are present and stitched across threads: the
    // enqueue span runs on the client thread, the handle span on a worker.
    std::set<std::string> names;
    for (const auto& [span_id, span] : group.spans) names.insert(span.name);
    EXPECT_TRUE(names.count("serve/enqueue")) << "trace " << trace_id;
    EXPECT_TRUE(names.count("serve/handle")) << "trace " << trace_id;
    EXPECT_TRUE(names.count("serve/queue_wait")) << "trace " << trace_id;
    if (group.tids.size() >= 2) ++cross_thread_traces;

    // At rate 1.0 every finished request is retained, so the tree survives
    // the export filter.
    EXPECT_TRUE(obs::TraceTailSampler::Global().IsRetained(trace_id));
  }
  // Producer and worker are distinct threads for every request; allow the
  // rare scheduling fluke but require stitching overall.
  EXPECT_GT(cross_thread_traces, groups.size() / 2);
}

TEST_F(ServeTraceTest, TracingDisabledMintsNoContexts) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config(/*threads=*/2));
  ASSERT_TRUE(service.Recommend(0, 5).get().status.ok());
  service.Shutdown();
  EXPECT_TRUE(obs::TraceRecorder::Global().Snapshot().empty());
  EXPECT_FALSE(obs::TraceTailSampler::Global().active());
}

}  // namespace
}  // namespace serve
}  // namespace reconsume
