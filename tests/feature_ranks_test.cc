#include "features/feature_ranks.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace reconsume {
namespace features {
namespace {

TEST(FeatureRanksTest, RejectsBadGap) {
  const data::Dataset dataset = data::SyntheticTraceGenerator(
                                    data::GowallaLikeProfile(0.05))
                                    .Generate()
                                    .ValueOrDie();
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  EXPECT_FALSE(ComputeFeatureRanks(split, 100, 100).ok());
  EXPECT_FALSE(ComputeFeatureRanks(split, 100, -1).ok());
}

TEST(FeatureRanksTest, HistogramTotalsMatchEventCount) {
  const data::Dataset dataset = data::SyntheticTraceGenerator(
                                    data::GowallaLikeProfile(0.05))
                                    .Generate()
                                    .ValueOrDie();
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  const auto report = ComputeFeatureRanks(split, 100, 10).ValueOrDie();
  EXPECT_GT(report.num_events, 0);
  for (int f = 0; f < 4; ++f) {
    EXPECT_EQ(report.histograms[static_cast<size_t>(f)].total(),
              report.num_events)
        << FeatureRankReport::FeatureName(f);
    EXPECT_GE(report.top10_fraction[static_cast<size_t>(f)], 0.0);
    EXPECT_LE(report.top10_fraction[static_cast<size_t>(f)], 1.0);
  }
}

TEST(FeatureRanksTest, FeaturesBeatUniformRandomBaseline) {
  // On generator data, a top-10 share under each feature should exceed the
  // share a uniform ranker would get (10 / mean candidate count, roughly).
  const data::Dataset dataset = data::SyntheticTraceGenerator(
                                    data::GowallaLikeProfile(0.1))
                                    .Generate()
                                    .ValueOrDie();
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  const auto report = ComputeFeatureRanks(split, 100, 10).ValueOrDie();
  for (int f = 0; f < 4; ++f) {
    EXPECT_GT(report.top10_fraction[static_cast<size_t>(f)], 0.2)
        << FeatureRankReport::FeatureName(f);
  }
}

TEST(FeatureRanksTest, GowallaProfileIsSteeperThanLastfm) {
  // The paper's Fig. 4 contrast: Gowalla's curves are steeper. Compare the
  // strongest feature's top-10 share across profiles.
  const auto rank_report = [](const data::SyntheticProfile& profile) {
    static std::vector<std::unique_ptr<data::Dataset>> keep_alive;
    keep_alive.push_back(std::make_unique<data::Dataset>(
        data::SyntheticTraceGenerator(profile).Generate().ValueOrDie()));
    const auto split =
        data::TrainTestSplit::Temporal(keep_alive.back().get(), 0.7)
            .ValueOrDie();
    return ComputeFeatureRanks(split, 100, 10).ValueOrDie();
  };
  const auto gowalla = rank_report(data::GowallaLikeProfile(0.2));
  const auto lastfm = rank_report(data::LastfmLikeProfile(0.3));
  double gowalla_best = 0, lastfm_best = 0;
  for (int f = 0; f < 4; ++f) {
    gowalla_best =
        std::max(gowalla_best, gowalla.top10_fraction[static_cast<size_t>(f)]);
    lastfm_best =
        std::max(lastfm_best, lastfm.top10_fraction[static_cast<size_t>(f)]);
  }
  EXPECT_GT(gowalla_best, lastfm_best);
}

TEST(FeatureRanksTest, FormatProducesHumanReadableChart) {
  const data::Dataset dataset = data::SyntheticTraceGenerator(
                                    data::GowallaLikeProfile(0.05))
                                    .Generate()
                                    .ValueOrDie();
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  const auto report = ComputeFeatureRanks(split, 100, 10).ValueOrDie();
  const std::string chart = FormatRankHistogram(report, kRecency, 5);
  EXPECT_NE(chart.find("recency"), std::string::npos);
  EXPECT_NE(chart.find("rank   1"), std::string::npos);
}

}  // namespace
}  // namespace features
}  // namespace reconsume
