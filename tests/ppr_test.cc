#include "core/ppr.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "features/feature_extractor.h"
#include "sampling/training_set.h"

namespace reconsume {
namespace core {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
  std::unique_ptr<features::FeatureExtractor> extractor;
  std::unique_ptr<sampling::TrainingSet> training_set;

  Fixture() {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.05))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
    extractor = std::make_unique<features::FeatureExtractor>(
        table.get(), features::FeatureConfig::AllFeatures());
    training_set = std::make_unique<sampling::TrainingSet>(
        sampling::TrainingSet::Build(*split, *extractor, {}).ValueOrDie());
  }
};

TEST(PprTest, ValidatesConfig) {
  Fixture fixture;
  PprConfig config;
  config.latent_dim = 0;
  EXPECT_FALSE(PprModel::Fit(*fixture.training_set,
                             fixture.dataset.num_users(),
                             fixture.dataset.num_items(), config)
                   .ok());
}

TEST(PprTest, LearnsPreferenceSeparation) {
  Fixture fixture;
  PprConfig config;
  auto model = PprModel::Fit(*fixture.training_set,
                             fixture.dataset.num_users(),
                             fixture.dataset.num_items(), config)
                   .ValueOrDie();
  EXPECT_GT(model.steps_trained(), 0);

  // Positives should on average outscore their pre-sampled negatives.
  double margin_sum = 0;
  int64_t count = 0;
  for (const auto& event : fixture.training_set->events()) {
    for (uint32_t n = event.negatives_begin;
         n < event.negatives_begin + event.negatives_count; ++n) {
      const auto& neg = fixture.training_set->negatives()[n];
      margin_sum += model.ScorePair(event.user, event.item) -
                    model.ScorePair(event.user, neg.item);
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(margin_sum / static_cast<double>(count), 0.1);
}

TEST(PprTest, ScoreIgnoresWindowState) {
  Fixture fixture;
  PprConfig config;
  config.max_steps = 10000;
  auto model = PprModel::Fit(*fixture.training_set,
                             fixture.dataset.num_users(),
                             fixture.dataset.num_items(), config)
                   .ValueOrDie();
  const auto& seq = fixture.dataset.sequence(0);
  window::WindowWalker early(&seq, 100), late(&seq, 100);
  for (int i = 0; i < 110; ++i) early.Advance();
  for (int i = 0; i < 150; ++i) late.Advance();
  const std::vector<data::ItemId> candidates = {seq[0], seq[1]};
  std::vector<double> s_early(2), s_late(2);
  model.Score(0, early, candidates, s_early);
  model.Score(0, late, candidates, s_late);
  EXPECT_EQ(s_early, s_late);  // static model: time cannot change the order
}

}  // namespace
}  // namespace core
}  // namespace reconsume
