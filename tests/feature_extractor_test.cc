#include "features/feature_extractor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "data/split.h"

namespace reconsume {
namespace features {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<StaticFeatureTable> table;

  explicit Fixture(const std::vector<int>& events) {
    data::DatasetBuilder builder;
    for (size_t t = 0; t < events.size(); ++t) {
      EXPECT_TRUE(
          builder.Add(0, events[t], static_cast<int64_t>(t)).ok());
    }
    dataset = builder.Build().ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<StaticFeatureTable>(
        StaticFeatureTable::Compute(*split, 5).ValueOrDie());
  }
};

TEST(FeatureConfigTest, DimensionsAndLabels) {
  EXPECT_EQ(FeatureConfig::AllFeatures().dimension(), 4);
  EXPECT_EQ(FeatureConfig::WithoutItemQuality().dimension(), 3);
  EXPECT_EQ(FeatureConfig::AllFeatures().Label(), "All");
  EXPECT_EQ(FeatureConfig::WithoutItemQuality().Label(), "-IP");
  EXPECT_EQ(FeatureConfig::WithoutReconsumptionRatio().Label(), "-IR");
  EXPECT_EQ(FeatureConfig::WithoutRecency().Label(), "-RE");
  EXPECT_EQ(FeatureConfig::WithoutFamiliarity().Label(), "-DF");

  FeatureConfig only_recency;
  only_recency.use_item_quality = false;
  only_recency.use_reconsumption_ratio = false;
  only_recency.use_familiarity = false;
  EXPECT_EQ(only_recency.dimension(), 1);
  EXPECT_EQ(only_recency.Label(), "-IP-IR-DF");
}

TEST(FeatureExtractorTest, RecencyKernels) {
  //                   t: 0  1  2  3
  Fixture fixture({1, 2, 3, 1, 2, 3, 1, 2, 3, 1});
  FeatureConfig config;
  FeatureExtractor extractor(fixture.table.get(), config);
  window::WindowWalker walker(&fixture.dataset.sequence(0), 5);
  for (int i = 0; i < 4; ++i) walker.Advance();
  // Item 1 last consumed at t=3, now t=4 -> gap 1. Item 2 at t=1 -> gap 3.
  EXPECT_DOUBLE_EQ(extractor.Recency(walker, 0), 1.0);        // item "1"
  EXPECT_DOUBLE_EQ(extractor.Recency(walker, 1), 1.0 / 3.0);  // item "2"

  FeatureConfig exp_config;
  exp_config.recency_kernel = RecencyKernel::kExponential;
  FeatureExtractor exp_extractor(fixture.table.get(), exp_config);
  EXPECT_DOUBLE_EQ(exp_extractor.Recency(walker, 0), std::exp(-1.0));
  EXPECT_DOUBLE_EQ(exp_extractor.Recency(walker, 1), std::exp(-3.0));
}

TEST(FeatureExtractorTest, FamiliarityIsWindowFraction) {
  Fixture fixture({1, 1, 1, 2, 2, 3, 1, 2, 3, 1});
  FeatureExtractor extractor(fixture.table.get(), FeatureConfig());
  window::WindowWalker walker(&fixture.dataset.sequence(0), 5);
  for (int i = 0; i < 5; ++i) walker.Advance();
  // Window (capacity 5) holds t=0..4: items 1,1,1,2,2.
  EXPECT_DOUBLE_EQ(extractor.Familiarity(walker, 0), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(extractor.Familiarity(walker, 1), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(extractor.Familiarity(walker, 2), 0.0);  // "3" not yet seen
}

TEST(FeatureExtractorTest, ExtractOrderAndMasking) {
  Fixture fixture({1, 2, 1, 2, 1, 2, 1, 2, 1, 2});
  FeatureExtractor all(fixture.table.get(), FeatureConfig::AllFeatures());
  window::WindowWalker walker(&fixture.dataset.sequence(0), 5);
  for (int i = 0; i < 4; ++i) walker.Advance();

  const auto f = all.Extract(walker, 0);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0], all.ItemQuality(0));
  EXPECT_DOUBLE_EQ(f[1], all.ReconsumptionRatio(0));
  EXPECT_DOUBLE_EQ(f[2], all.Recency(walker, 0));
  EXPECT_DOUBLE_EQ(f[3], all.Familiarity(walker, 0));

  FeatureExtractor no_recency(fixture.table.get(),
                              FeatureConfig::WithoutRecency());
  const auto f3 = no_recency.Extract(walker, 0);
  ASSERT_EQ(f3.size(), 3u);
  EXPECT_DOUBLE_EQ(f3[0], f[0]);
  EXPECT_DOUBLE_EQ(f3[1], f[1]);
  EXPECT_DOUBLE_EQ(f3[2], f[3]);  // familiarity shifts into slot 2
}

TEST(FeatureExtractorTest, AllFeaturesInUnitInterval) {
  Fixture fixture({1, 2, 3, 1, 2, 1, 1, 3, 2, 1, 2, 3, 1, 1});
  FeatureExtractor extractor(fixture.table.get(),
                             FeatureConfig::AllFeatures());
  window::WindowWalker walker(&fixture.dataset.sequence(0), 5);
  walker.Advance();
  while (!walker.Done()) {
    for (const auto& [item, entry] : walker.window_counts()) {
      (void)entry;
      const auto f = extractor.Extract(walker, item);
      for (double v : f) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
    walker.Advance();
  }
}

TEST(FeatureExtractorDeathTest, RequiresActiveFeature) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fixture fixture({1, 2, 1, 2, 1, 2, 1, 2, 1, 2});
  FeatureConfig none;
  none.use_item_quality = none.use_reconsumption_ratio = none.use_recency =
      none.use_familiarity = false;
  EXPECT_DEATH(FeatureExtractor(fixture.table.get(), none),
               "no active features");
}

}  // namespace
}  // namespace features
}  // namespace reconsume
