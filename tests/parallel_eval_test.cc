// Parallel evaluation: clones must produce aggregate metrics identical to
// the serial run for deterministic recommenders, across thread counts.

#include <gtest/gtest.h>

#include "baselines/simple_recommenders.h"
#include "core/ts_ppr.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "strec/mixture_recommender.h"
#include "strec/strec_classifier.h"

namespace reconsume {
namespace eval {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;

  Fixture() {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.1))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
  }

  AccuracyResult Evaluate(Recommender* method, int threads) const {
    EvalOptions options;
    options.window_capacity = 100;
    options.min_gap = 10;
    options.num_threads = threads;
    options.collect_per_user = true;
    Evaluator evaluator(split.get(), options);
    return evaluator.Evaluate(method).ValueOrDie();
  }
};

class ParallelEvalTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEvalTest, PopMatchesSerialExactly) {
  Fixture fixture;
  baselines::PopRecommender pop(fixture.table.get());
  const auto serial = fixture.Evaluate(&pop, 1);
  const auto parallel = fixture.Evaluate(&pop, GetParam());
  EXPECT_EQ(serial.num_instances, parallel.num_instances);
  EXPECT_EQ(serial.num_users_evaluated, parallel.num_users_evaluated);
  for (size_t c = 0; c < serial.top_ns.size(); ++c) {
    EXPECT_DOUBLE_EQ(serial.maap[c], parallel.maap[c]);
    EXPECT_NEAR(serial.miap[c], parallel.miap[c], 1e-12);
  }
  ASSERT_EQ(serial.per_user.size(), parallel.per_user.size());
  for (size_t u = 0; u < serial.per_user.size(); ++u) {
    EXPECT_EQ(serial.per_user[u].user, parallel.per_user[u].user);
    EXPECT_EQ(serial.per_user[u].instances, parallel.per_user[u].instances);
    EXPECT_EQ(serial.per_user[u].hits, parallel.per_user[u].hits);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEvalTest,
                         ::testing::Values(2, 3, 4, 8));

TEST(ParallelEvalTest2, TsPprMatchesSerial) {
  Fixture fixture;
  core::TsPprPipelineConfig config;
  auto ts_ppr = core::TsPpr::Fit(*fixture.split, config).ValueOrDie();
  const auto serial = fixture.Evaluate(ts_ppr.recommender(), 1);
  const auto parallel = fixture.Evaluate(ts_ppr.recommender(), 4);
  for (size_t c = 0; c < serial.top_ns.size(); ++c) {
    EXPECT_DOUBLE_EQ(serial.maap[c], parallel.maap[c]);
  }
}

TEST(ParallelEvalTest2, MixtureCloneWorks) {
  Fixture fixture;
  core::TsPprPipelineConfig repeat_config;
  auto repeat_model =
      core::TsPpr::Fit(*fixture.split, repeat_config).ValueOrDie();
  core::TsPprPipelineConfig novel_config;
  novel_config.sampling.task = sampling::TrainingTask::kNovel;
  auto novel_model =
      core::TsPpr::Fit(*fixture.split, novel_config).ValueOrDie();
  const auto classifier =
      strec::StrecClassifier::Fit(*fixture.split, fixture.table.get(), {})
          .ValueOrDie();
  strec::MixtureRecommender mixture(&classifier, repeat_model.recommender(),
                                    novel_model.recommender());
  auto clone = mixture.Clone();
  ASSERT_NE(clone, nullptr);

  const auto serial = fixture.Evaluate(&mixture, 1);
  const auto parallel = fixture.Evaluate(&mixture, 4);
  for (size_t c = 0; c < serial.top_ns.size(); ++c) {
    EXPECT_DOUBLE_EQ(serial.maap[c], parallel.maap[c]);
  }
}

TEST(ParallelEvalTest2, UnclonableFallsBackToSerial) {
  // A recommender without Clone support must still evaluate correctly.
  class Unclonable : public Recommender {
   public:
    std::string name() const override { return "Unclonable"; }
    void Score(data::UserId, const window::WindowWalker&,
               std::span<const data::ItemId> candidates,
               std::span<double> scores) override {
      for (size_t i = 0; i < candidates.size(); ++i) {
        scores[i] = -static_cast<double>(candidates[i]);
      }
    }
  };
  Fixture fixture;
  Unclonable method;
  const auto serial = fixture.Evaluate(&method, 1);
  const auto parallel = fixture.Evaluate(&method, 4);  // silently serial
  EXPECT_EQ(serial.num_instances, parallel.num_instances);
  EXPECT_DOUBLE_EQ(serial.maap[0], parallel.maap[0]);
}

}  // namespace
}  // namespace eval
}  // namespace reconsume
