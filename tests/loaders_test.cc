#include "data/loaders.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/failpoint.h"

namespace reconsume {
namespace data {
namespace {

struct TsCase {
  const char* text;
  bool ok;
};

class ParseIso8601Test : public ::testing::TestWithParam<TsCase> {};

TEST_P(ParseIso8601Test, Validity) {
  EXPECT_EQ(ParseIso8601(GetParam().text).ok(), GetParam().ok)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseIso8601Test,
    ::testing::Values(TsCase{"2010-10-19T23:55:27Z", true},
                      TsCase{"2010-10-19 23:55:27", true},
                      TsCase{"1970-01-01T00:00:00Z", true},
                      TsCase{"1969-12-31T23:59:59Z", true},  // pre-epoch
                      TsCase{"2012-02-29T12:00:00Z", true},  // leap day
                      TsCase{"2010-13-19T23:55:27Z", false}, // month 13
                      TsCase{"2010-10-19", false},           // too short
                      TsCase{"2010/10/19T23:55:27Z", false}, // wrong seps
                      TsCase{"2010-10-19T23:65:27Z", false}, // minute 65
                      TsCase{"abcd-10-19T23:55:27Z", false}));

TEST(ParseIso8601Test, OrderingIsMonotone) {
  const int64_t a = ParseIso8601("2010-10-19T23:55:27Z").ValueOrDie();
  const int64_t b = ParseIso8601("2010-10-19T23:55:28Z").ValueOrDie();
  const int64_t c = ParseIso8601("2010-10-20T00:00:00Z").ValueOrDie();
  const int64_t d = ParseIso8601("2011-01-01T00:00:00Z").ValueOrDie();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_EQ(b - a, 1);
}

TEST(ParseIso8601Test, EpochAndLeapYearArithmetic) {
  EXPECT_EQ(ParseIso8601("1970-01-01T00:00:00Z").ValueOrDie(), 0);
  EXPECT_EQ(ParseIso8601("1970-01-02T00:00:00Z").ValueOrDie(), 86400);
  // 2012-03-01 minus 2012-02-28 is two days (leap year).
  const int64_t feb28 = ParseIso8601("2012-02-28T00:00:00Z").ValueOrDie();
  const int64_t mar01 = ParseIso8601("2012-03-01T00:00:00Z").ValueOrDie();
  EXPECT_EQ(mar01 - feb28, 2 * 86400);
}

class LoaderTest : public ::testing::Test {
 protected:
  std::string WriteTemp(const std::string& contents) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("reconsume_loader_test_" + std::to_string(counter_++) + "_" +
          std::to_string(reinterpret_cast<uintptr_t>(this))))
            .string();
    std::ofstream out(path, std::ios::binary);
    out << contents;
    paths_.push_back(path);
    return path;
  }
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::vector<std::string> paths_;
  int counter_ = 0;
};

TEST_F(LoaderTest, GowallaBasicLoad) {
  const std::string path = WriteTemp(
      "0\t2010-10-19T23:55:27Z\t30.23\t-97.79\t22847\n"
      "0\t2010-10-18T22:17:43Z\t30.26\t-97.76\t420315\n"
      "1\t2010-10-17T23:42:03Z\t30.25\t-97.75\t316637\n");
  const Dataset dataset = GowallaLoader::Load(path).ValueOrDie();
  EXPECT_EQ(dataset.num_users(), 2u);
  EXPECT_EQ(dataset.num_items(), 3u);
  // User "0" events must be time-sorted: 420315 (Oct 18) before 22847.
  const auto& seq = dataset.sequence(dataset.FindUser("0"));
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(dataset.item_key(seq[0]), "420315");
  EXPECT_EQ(dataset.item_key(seq[1]), "22847");
}

TEST_F(LoaderTest, GowallaRejectsWrongArity) {
  const std::string path = WriteTemp("0\t2010-10-19T23:55:27Z\t30.23\n");
  const auto result = GowallaLoader::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":1:"), std::string::npos);
}

TEST_F(LoaderTest, GowallaRejectsBadTimestamp) {
  const std::string path = WriteTemp("0\tnot-a-time\t1\t2\t3\n");
  EXPECT_FALSE(GowallaLoader::Load(path).ok());
}

TEST_F(LoaderTest, GowallaMaxEventsTruncates) {
  const std::string path = WriteTemp(
      "0\t2010-10-19T23:55:27Z\t1\t2\tA\n"
      "0\t2010-10-19T23:55:28Z\t1\t2\tB\n"
      "0\t2010-10-19T23:55:29Z\t1\t2\tC\n");
  const Dataset dataset = GowallaLoader::Load(path, 2).ValueOrDie();
  EXPECT_EQ(dataset.num_interactions(), 2);
}

TEST_F(LoaderTest, MissingGowallaFileIsIoError) {
  EXPECT_EQ(GowallaLoader::Load("/no/such/trace.txt").status().code(),
            StatusCode::kIoError);
}

TEST_F(LoaderTest, LastfmBasicLoadUsesTrackId) {
  const std::string path = WriteTemp(
      "user_000001\t2009-05-04T23:08:57Z\tart-id-1\tDeep Dish\ttrack-id-1\t"
      "Fuchsia\n"
      "user_000001\t2009-05-04T23:01:00Z\tart-id-1\tDeep Dish\ttrack-id-2\t"
      "Flashdance\n");
  const Dataset dataset = LastfmLoader::Load(path).ValueOrDie();
  EXPECT_EQ(dataset.num_users(), 1u);
  EXPECT_EQ(dataset.num_items(), 2u);
  const auto& seq = dataset.sequence(0);
  EXPECT_EQ(dataset.item_key(seq[0]), "track-id-2");  // earlier timestamp
}

TEST_F(LoaderTest, LastfmFallsBackToNamesWithoutTrackId) {
  const std::string path = WriteTemp(
      "u\t2009-05-04T23:08:57Z\taid\tArtist\t\tSong Name\n");
  const Dataset dataset = LastfmLoader::Load(path).ValueOrDie();
  EXPECT_EQ(dataset.item_key(0), "Artist||Song Name");
}

TEST_F(LoaderTest, LastfmRejectsRowWithNoIdentity) {
  const std::string path = WriteTemp("u\t2009-05-04T23:08:57Z\taid\t\t\t\n");
  EXPECT_FALSE(LastfmLoader::Load(path).ok());
}

TEST_F(LoaderTest, LastfmRejectsWrongArity) {
  const std::string path = WriteTemp("u\t2009-05-04T23:08:57Z\taid\tArtist\n");
  EXPECT_FALSE(LastfmLoader::Load(path).ok());
}

TEST_F(LoaderTest, EmptyFileFails) {
  const std::string path = WriteTemp("");
  EXPECT_FALSE(GowallaLoader::Load(path).ok());
  EXPECT_FALSE(LastfmLoader::Load(path).ok());
}

// --- LoaderOptions hardening (docs/robustness.md) ---

TEST_F(LoaderTest, StrictModeFailsWithLineNumberOfFirstBadLine) {
  const std::string path = WriteTemp(
      "0\t2010-10-19T23:55:27Z\t1\t2\tA\n"
      "0\tnot-a-time\t1\t2\tB\n"
      "1\t2010-10-19T23:55:29Z\t1\t2\tC\n");
  const auto result = GowallaLoader::Load(path, LoaderOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":2:"), std::string::npos)
      << result.status().message();
}

TEST_F(LoaderTest, MaxBadLinesSkipsAndCountsDirt) {
  const std::string path = WriteTemp(
      "0\t2010-10-19T23:55:27Z\t1\t2\tA\n"
      "0\tnot-a-time\t1\t2\tB\n"        // bad timestamp
      "0\t2010-10-19T23:55:28Z\t1\n"    // wrong arity
      "1\t2010-10-19T23:55:29Z\t1\t2\tC\n");
  LoaderOptions options;
  options.max_bad_lines = 2;
  LoadReport report;
  const Dataset dataset =
      GowallaLoader::Load(path, options, &report).ValueOrDie();
  EXPECT_EQ(dataset.num_interactions(), 2);
  EXPECT_EQ(report.num_lines, 4);
  EXPECT_EQ(report.num_bad_lines, 2);
  EXPECT_EQ(report.num_events, 2);
}

TEST_F(LoaderTest, BadLinesBeyondBudgetFailTheLoad) {
  const std::string path = WriteTemp(
      "0\t2010-10-19T23:55:27Z\t1\t2\tA\n"
      "0\tnot-a-time\t1\t2\tB\n"
      "0\talso-not-a-time\t1\t2\tC\n");
  LoaderOptions options;
  options.max_bad_lines = 1;
  LoadReport report;
  const auto result = GowallaLoader::Load(path, options, &report);
  ASSERT_FALSE(result.ok());
  // The failing line's number is reported, and the report is filled even on
  // failure.
  EXPECT_NE(result.status().message().find(":3:"), std::string::npos)
      << result.status().message();
  EXPECT_EQ(report.num_bad_lines, 2);
}

TEST_F(LoaderTest, NegativeBadLineBudgetIsRejected) {
  const std::string path = WriteTemp("0\t2010-10-19T23:55:27Z\t1\t2\tA\n");
  LoaderOptions options;
  options.max_bad_lines = -1;
  EXPECT_FALSE(GowallaLoader::Load(path, options).ok());
}

TEST_F(LoaderTest, TimestampOrderViolationCountsAsBadLine) {
  // Descending per-user timestamps (the SNAP dump order), with one line out
  // of order.
  const std::string contents =
      "0\t2010-10-19T23:55:29Z\t1\t2\tA\n"
      "0\t2010-10-19T23:55:27Z\t1\t2\tB\n"
      "0\t2010-10-19T23:55:28Z\t1\t2\tC\n";  // later than the previous line
  const std::string path = WriteTemp(contents);

  LoaderOptions strict;
  strict.timestamp_order = TimestampOrder::kDescending;
  const auto rejected = GowallaLoader::Load(path, strict);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find(":3:"), std::string::npos);

  LoaderOptions tolerant = strict;
  tolerant.max_bad_lines = 1;
  LoadReport report;
  const Dataset dataset =
      GowallaLoader::Load(path, tolerant, &report).ValueOrDie();
  EXPECT_EQ(report.num_bad_lines, 1);
  EXPECT_EQ(dataset.num_interactions(), 2);

  // The same file is clean under kAny (the builder sorts).
  LoaderOptions any;
  EXPECT_TRUE(GowallaLoader::Load(path, any).ok());
}

TEST_F(LoaderTest, AscendingOrderAcceptsSortedInput) {
  const std::string path = WriteTemp(
      "0\t2010-10-19T23:55:27Z\t1\t2\tA\n"
      "0\t2010-10-19T23:55:27Z\t1\t2\tB\n"  // ties are in order
      "0\t2010-10-19T23:55:29Z\t1\t2\tC\n");
  LoaderOptions options;
  options.timestamp_order = TimestampOrder::kAscending;
  EXPECT_TRUE(GowallaLoader::Load(path, options).ok());
}

TEST_F(LoaderTest, LastfmRespectsBadLineBudgetToo) {
  const std::string path = WriteTemp(
      "u\t2009-05-04T23:08:57Z\taid\tArtist\ttid\tSong\n"
      "u\t2009-05-04T23:09:57Z\taid\t\t\t\n");  // no identity
  LoaderOptions options;
  options.max_bad_lines = 1;
  LoadReport report;
  const Dataset dataset =
      LastfmLoader::Load(path, options, &report).ValueOrDie();
  EXPECT_EQ(dataset.num_interactions(), 1);
  EXPECT_EQ(report.num_bad_lines, 1);
}

#if RECONSUME_FAILPOINTS_ENABLED

TEST_F(LoaderTest, InjectedLineFaultsConsumeTheBadLineBudget) {
  const std::string path = WriteTemp(
      "0\t2010-10-19T23:55:27Z\t1\t2\tA\n"
      "0\t2010-10-19T23:55:28Z\t1\t2\tB\n"
      "0\t2010-10-19T23:55:29Z\t1\t2\tC\n"
      "0\t2010-10-19T23:55:30Z\t1\t2\tD\n");
  util::ScopedFailpoint fp("data/loaders/line", "error-every(2)");
  LoaderOptions options;
  options.max_bad_lines = 2;
  LoadReport report;
  const Dataset dataset =
      GowallaLoader::Load(path, options, &report).ValueOrDie();
  // Every second line fails by injection; the budget absorbs both.
  EXPECT_EQ(report.num_bad_lines, 2);
  EXPECT_EQ(dataset.num_interactions(), 2);

  // Strict loads fail on the first injected fault.
  util::FailpointRegistry::Global().Clear();
  util::ScopedFailpoint strict_fp("data/loaders/line", "error-once");
  EXPECT_FALSE(GowallaLoader::Load(path, LoaderOptions{}).ok());
}

#endif  // RECONSUME_FAILPOINTS_ENABLED

}  // namespace
}  // namespace data
}  // namespace reconsume
