#include "core/ts_ppr_model.h"

#include <gtest/gtest.h>

#include "math/vector_ops.h"

namespace reconsume {
namespace core {
namespace {

TEST(TsPprModelTest, CreateValidatesArguments) {
  TsPprConfig config;
  EXPECT_FALSE(TsPprModel::Create(0, 5, 4, config).ok());
  EXPECT_FALSE(TsPprModel::Create(5, 0, 4, config).ok());
  EXPECT_FALSE(TsPprModel::Create(5, 5, 0, config).ok());
  config.latent_dim = 0;
  EXPECT_FALSE(TsPprModel::Create(5, 5, 4, config).ok());
  config = TsPprConfig();
  config.gamma = -1;
  EXPECT_FALSE(TsPprModel::Create(5, 5, 4, config).ok());
  config = TsPprConfig();
  config.learning_rate = 0;
  EXPECT_FALSE(TsPprModel::Create(5, 5, 4, config).ok());
}

TEST(TsPprModelTest, ShapesMatchConfig) {
  TsPprConfig config;
  config.latent_dim = 7;
  const auto model = TsPprModel::Create(3, 11, 4, config).ValueOrDie();
  EXPECT_EQ(model.num_users(), 3u);
  EXPECT_EQ(model.num_items(), 11u);
  EXPECT_EQ(model.latent_dim(), 7);
  EXPECT_EQ(model.feature_dim(), 4);
  EXPECT_EQ(model.user_factor(0).size(), 7u);
  EXPECT_EQ(model.item_factor(10).size(), 7u);
  EXPECT_EQ(model.mapping(2).rows(), 7u);
  EXPECT_EQ(model.mapping(2).cols(), 4u);
  EXPECT_TRUE(model.IsFinite());
}

TEST(TsPprModelTest, ScoreMatchesEquationFive) {
  TsPprConfig config;
  config.latent_dim = 3;
  auto model = TsPprModel::Create(1, 2, 2, config).ValueOrDie();
  // Set parameters by hand.
  auto u = model.user_factor(0);
  u[0] = 1.0;
  u[1] = -1.0;
  u[2] = 2.0;
  auto v = model.item_factor(1);
  v[0] = 0.5;
  v[1] = 0.5;
  v[2] = 0.0;
  math::Matrix& a = model.mapping(0);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) a(r, c) = 0.1 * (r + 1) * (c + 1);
  }
  const std::vector<double> f = {1.0, 2.0};
  // u^T v = 0.5 - 0.5 + 0 = 0. A f = [0.1+0.4, 0.2+0.8, 0.3+1.2].
  // u^T (A f) = 0.5 - 1.0 + 3.0 = 2.5.
  EXPECT_NEAR(model.Score(0, 1, f), 2.5, 1e-12);
  EXPECT_NEAR(model.StaticScore(0, 1), 0.0, 1e-12);
}

TEST(TsPprModelTest, IdentityMappingWhenSquare) {
  TsPprConfig config;
  config.latent_dim = 4;
  config.identity_mapping_when_square = true;
  const auto model = TsPprModel::Create(2, 2, 4, config).ValueOrDie();
  EXPECT_EQ(model.mapping(0), math::Matrix::Identity(4));
  EXPECT_EQ(model.mapping(1), math::Matrix::Identity(4));
}

TEST(TsPprModelTest, IdentityIgnoredWhenNotSquare) {
  TsPprConfig config;
  config.latent_dim = 5;
  config.identity_mapping_when_square = true;
  const auto model = TsPprModel::Create(2, 2, 4, config).ValueOrDie();
  EXPECT_EQ(model.mapping(0).rows(), 5u);
  EXPECT_EQ(model.mapping(0).cols(), 4u);
}

TEST(TsPprModelTest, SeedControlsInitialization) {
  TsPprConfig config;
  const auto a = TsPprModel::Create(2, 3, 4, config).ValueOrDie();
  const auto b = TsPprModel::Create(2, 3, 4, config).ValueOrDie();
  config.seed += 1;
  const auto c = TsPprModel::Create(2, 3, 4, config).ValueOrDie();
  EXPECT_DOUBLE_EQ(a.user_factor(0)[0], b.user_factor(0)[0]);
  EXPECT_NE(a.user_factor(0)[0], c.user_factor(0)[0]);
}

TEST(TsPprModelTest, NormsArePositiveAfterInit) {
  TsPprConfig config;
  const auto model = TsPprModel::Create(3, 3, 4, config).ValueOrDie();
  EXPECT_GT(model.SquaredNormU(), 0.0);
  EXPECT_GT(model.SquaredNormV(), 0.0);
  EXPECT_GT(model.SquaredNormMappings(), 0.0);
}

}  // namespace
}  // namespace core
}  // namespace reconsume
