#include "util/flags.h"

#include <gtest/gtest.h>

namespace reconsume {
namespace util {
namespace {

FlagSet Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagSet::Parse(static_cast<int>(args.size()), args.data())
      .ValueOrDie();
}

TEST(FlagsTest, PositionalAndKeyValue) {
  const FlagSet flags = Parse({"train", "--data=x.tsv", "--k=40"});
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "train");
  EXPECT_EQ(flags.GetString("data", "").ValueOrDie(), "x.tsv");
  EXPECT_EQ(flags.GetInt("k", 0).ValueOrDie(), 40);
}

TEST(FlagsTest, SpaceSeparatedValue) {
  const FlagSet flags = Parse({"--data", "x.tsv", "cmd"});
  EXPECT_EQ(flags.GetString("data", "").ValueOrDie(), "x.tsv");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "cmd");
}

TEST(FlagsTest, BareFlagIsTrue) {
  const FlagSet flags = Parse({"--verbose", "--dry-run"});
  EXPECT_TRUE(flags.GetBool("verbose", false).ValueOrDie());
  EXPECT_TRUE(flags.GetBool("dry-run", false).ValueOrDie());
  EXPECT_FALSE(flags.GetBool("absent", false).ValueOrDie());
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  const FlagSet flags = Parse({"--a=1", "--", "--not-a-flag"});
  EXPECT_EQ(flags.GetInt("a", 0).ValueOrDie(), 1);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--not-a-flag");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const FlagSet flags = Parse({});
  EXPECT_EQ(flags.GetString("s", "fallback").ValueOrDie(), "fallback");
  EXPECT_EQ(flags.GetInt("i", -5).ValueOrDie(), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 2.5).ValueOrDie(), 2.5);
  EXPECT_TRUE(flags.GetBool("b", true).ValueOrDie());
}

TEST(FlagsTest, TypeErrorsAreReported) {
  const FlagSet flags = Parse({"--k=notanint", "--rate=xyz", "--flag=maybe"});
  EXPECT_FALSE(flags.GetInt("k", 0).ok());
  EXPECT_FALSE(flags.GetDouble("rate", 0).ok());
  EXPECT_FALSE(flags.GetBool("flag", false).ok());
}

TEST(FlagsTest, BooleanSpellings) {
  const FlagSet flags =
      Parse({"--a=TRUE", "--b=0", "--c=Yes", "--d=no", "--e=1"});
  EXPECT_TRUE(flags.GetBool("a", false).ValueOrDie());
  EXPECT_FALSE(flags.GetBool("b", true).ValueOrDie());
  EXPECT_TRUE(flags.GetBool("c", false).ValueOrDie());
  EXPECT_FALSE(flags.GetBool("d", true).ValueOrDie());
  EXPECT_TRUE(flags.GetBool("e", false).ValueOrDie());
}

TEST(FlagsTest, MalformedFlagRejected) {
  const char* args[] = {"prog", "--=value"};
  EXPECT_FALSE(FlagSet::Parse(2, args).ok());
}

TEST(FlagsTest, UnusedFlagsDetected) {
  const FlagSet flags = Parse({"--known=1", "--typo=2"});
  EXPECT_EQ(flags.GetInt("known", 0).ValueOrDie(), 1);
  const Status status = flags.CheckNoUnusedFlags();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("--typo"), std::string::npos);
  EXPECT_EQ(status.message().find("--known"), std::string::npos);
}

TEST(FlagsTest, AllUsedPasses) {
  const FlagSet flags = Parse({"--a=1"});
  EXPECT_EQ(flags.GetInt("a", 0).ValueOrDie(), 1);
  EXPECT_TRUE(flags.CheckNoUnusedFlags().ok());
}

TEST(FlagsTest, LastValueWins) {
  const FlagSet flags = Parse({"--k=1", "--k=2"});
  EXPECT_EQ(flags.GetInt("k", 0).ValueOrDie(), 2);
}

}  // namespace
}  // namespace util
}  // namespace reconsume
