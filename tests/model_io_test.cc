#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace reconsume {
namespace core {
namespace {

TsPprModel MakeModel(uint64_t seed = 3, int k = 6, int f = 4) {
  TsPprConfig config;
  config.latent_dim = k;
  config.seed = seed;
  config.learning_rate = 0.07;
  config.gamma = 0.03;
  config.lambda = 0.004;
  return TsPprModel::Create(5, 9, f, config).ValueOrDie();
}

void ExpectModelsEqual(const TsPprModel& a, const TsPprModel& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.latent_dim(), b.latent_dim());
  ASSERT_EQ(a.feature_dim(), b.feature_dim());
  for (size_t u = 0; u < a.num_users(); ++u) {
    const auto ua = a.user_factor(static_cast<data::UserId>(u));
    const auto ub = b.user_factor(static_cast<data::UserId>(u));
    for (size_t i = 0; i < ua.size(); ++i) EXPECT_DOUBLE_EQ(ua[i], ub[i]);
    EXPECT_EQ(a.mapping(static_cast<data::UserId>(u)),
              b.mapping(static_cast<data::UserId>(u)));
  }
  for (size_t v = 0; v < a.num_items(); ++v) {
    const auto va = a.item_factor(static_cast<data::ItemId>(v));
    const auto vb = b.item_factor(static_cast<data::ItemId>(v));
    for (size_t i = 0; i < va.size(); ++i) EXPECT_DOUBLE_EQ(va[i], vb[i]);
  }
}

TEST(ModelIoTest, InMemoryRoundtrip) {
  const TsPprModel model = MakeModel();
  const std::string bytes = SerializeModel(model);
  const TsPprModel loaded = DeserializeModel(bytes).ValueOrDie();
  ExpectModelsEqual(model, loaded);
  EXPECT_DOUBLE_EQ(loaded.config().learning_rate, 0.07);
  EXPECT_DOUBLE_EQ(loaded.config().gamma, 0.03);
  EXPECT_DOUBLE_EQ(loaded.config().lambda, 0.004);
}

TEST(ModelIoTest, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "reconsume_model_io_test.bin")
          .string();
  const TsPprModel model = MakeModel(77);
  ASSERT_TRUE(SaveModel(model, path).ok());
  const TsPprModel loaded = LoadModel(path).ValueOrDie();
  ExpectModelsEqual(model, loaded);
  std::remove(path.c_str());
}

TEST(ModelIoTest, ScoresSurviveRoundtrip) {
  const TsPprModel model = MakeModel(5);
  const TsPprModel loaded =
      DeserializeModel(SerializeModel(model)).ValueOrDie();
  const std::vector<double> f = {0.1, 0.9, 0.5, 0.0};
  for (data::UserId u = 0; u < 5; ++u) {
    for (data::ItemId v = 0; v < 9; ++v) {
      EXPECT_DOUBLE_EQ(model.Score(u, v, f), loaded.Score(u, v, f));
    }
  }
}

TEST(ModelIoTest, DetectsCorruption) {
  std::string bytes = SerializeModel(MakeModel());
  bytes[bytes.size() / 2] ^= 0x5A;
  const auto result = DeserializeModel(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST(ModelIoTest, DetectsTruncation) {
  const std::string bytes = SerializeModel(MakeModel());
  EXPECT_FALSE(DeserializeModel(bytes.substr(0, bytes.size() - 20)).ok());
  EXPECT_FALSE(DeserializeModel(bytes.substr(0, 10)).ok());
  EXPECT_FALSE(DeserializeModel("").ok());
}

TEST(ModelIoTest, TruncationReportsByteOffsetAsInvalidArgument) {
  const std::string bytes = SerializeModel(MakeModel());
  // Cut past the header so the size field is intact and the report names the
  // byte count actually present in the file.
  const auto result = DeserializeModel(bytes.substr(0, bytes.size() - 20));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("truncated at byte " +
                                           std::to_string(bytes.size() - 20)),
            std::string::npos)
      << result.status().message();
}

TEST(ModelIoTest, WrongMagicNamesTheFormat) {
  std::string bytes = SerializeModel(MakeModel());
  bytes[0] = 'X';
  const auto result = DeserializeModel(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("not a reconsume model file"),
            std::string::npos);
}

TEST(ModelIoTest, CorruptionNamesChecksumMismatch) {
  std::string bytes = SerializeModel(MakeModel());
  bytes[bytes.size() - 12] ^= 0x08;  // flip a payload byte near the tail
  const auto result = DeserializeModel(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum mismatch"),
            std::string::npos)
      << result.status().message();
}

TEST(ModelIoTest, DetectsTrailingGarbage) {
  std::string bytes = SerializeModel(MakeModel());
  bytes += "extra";
  EXPECT_FALSE(DeserializeModel(bytes).ok());  // checksum now mismatches
}

TEST(ModelIoTest, RejectsWrongMagic) {
  std::string bytes = SerializeModel(MakeModel());
  bytes[0] = 'X';
  EXPECT_FALSE(DeserializeModel(bytes).ok());
}

TEST(ModelIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadModel("/no/such/model.bin").status().code(),
            StatusCode::kIoError);
}

TEST(ModelIoTest, EffectiveFeatureWeightsMatchScoreDifference) {
  // u^T A_u f == (A_u^T u) . f for arbitrary f.
  const TsPprModel model = MakeModel(9);
  const std::vector<double> weights = model.EffectiveFeatureWeights(2);
  ASSERT_EQ(weights.size(), 4u);
  const std::vector<double> f = {0.3, -0.2, 0.7, 1.1};
  const std::vector<double> zero(4, 0.0);
  const double dynamic_part = model.Score(2, 0, f) - model.Score(2, 0, zero);
  double expected = 0.0;
  for (size_t i = 0; i < 4; ++i) expected += weights[i] * f[i];
  EXPECT_NEAR(dynamic_part, expected, 1e-10);
}

}  // namespace
}  // namespace core
}  // namespace reconsume
