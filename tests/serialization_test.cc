#include "data/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/synthetic.h"
#include "util/csv.h"
#include "util/fileio.h"

namespace reconsume {
namespace data {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  std::string TempPath() {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("reconsume_ser_test_" + std::to_string(counter_++) + "_" +
          std::to_string(reinterpret_cast<uintptr_t>(this))))
            .string();
    paths_.push_back(path);
    return path;
  }
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::vector<std::string> paths_;
  int counter_ = 0;
};

TEST_F(SerializationTest, RoundtripPreservesSequences) {
  const Dataset original = SyntheticTraceGenerator(GowallaLikeProfile(0.03))
                               .Generate()
                               .ValueOrDie();
  const std::string path = TempPath();
  ASSERT_TRUE(SaveDatasetTsv(original, path).ok());
  const Dataset loaded = LoadDatasetTsv(path).ValueOrDie();

  ASSERT_EQ(loaded.num_users(), original.num_users());
  ASSERT_EQ(loaded.num_items(), original.num_items());
  ASSERT_EQ(loaded.num_interactions(), original.num_interactions());
  for (size_t u = 0; u < original.num_users(); ++u) {
    const auto& a = original.sequence(static_cast<UserId>(u));
    // User ids may be permuted; match through external keys.
    const UserId lu = loaded.FindUser(original.user_key(static_cast<UserId>(u)));
    ASSERT_NE(lu, kInvalidUser);
    const auto& b = loaded.sequence(lu);
    ASSERT_EQ(a.size(), b.size());
    for (size_t t = 0; t < a.size(); ++t) {
      EXPECT_EQ(original.item_key(a[t]), loaded.item_key(b[t]));
    }
  }
}

TEST_F(SerializationTest, LoadRejectsMalformedRows) {
  const std::string path = TempPath();
  ASSERT_TRUE(util::WriteStringToFile(path, "only\ttwo\n").ok());
  EXPECT_FALSE(LoadDatasetTsv(path).ok());

  ASSERT_TRUE(util::WriteStringToFile(path, "u\ti\tnot-a-number\n").ok());
  EXPECT_FALSE(LoadDatasetTsv(path).ok());
}

TEST_F(SerializationTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadDatasetTsv("/no/such/file.tsv").status().code(),
            StatusCode::kIoError);
}

TEST_F(SerializationTest, EmptyFileFails) {
  const std::string path = TempPath();
  ASSERT_TRUE(util::WriteStringToFile(path, "").ok());
  EXPECT_FALSE(LoadDatasetTsv(path).ok());
}

}  // namespace
}  // namespace data
}  // namespace reconsume
