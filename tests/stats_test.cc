#include "math/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace reconsume {
namespace math {
namespace {

TEST(OnlineMomentsTest, EmptyIsZeroed) {
  OnlineMoments m;
  EXPECT_EQ(m.count(), 0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(OnlineMomentsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineMoments m;
  for (double x : xs) m.Add(x);
  EXPECT_EQ(m.count(), 8);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(OnlineMomentsTest, SingleValueHasZeroVariance) {
  OnlineMoments m;
  m.Add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.stddev(), 0.0);
}

TEST(OnlineMomentsTest, NumericallyStableOnShiftedData) {
  OnlineMoments m;
  for (int i = 0; i < 1000; ++i) m.Add(1e9 + (i % 2));
  EXPECT_NEAR(m.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(m.variance(), 0.25 * 1000 / 999, 1e-3);
}

TEST(CountHistogramTest, AddAndClamp) {
  CountHistogram h(3);
  h.Add(0);
  h.Add(1);
  h.Add(1);
  h.Add(2);
  h.Add(99);  // clamps into last bucket
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 2);
  EXPECT_EQ(h.count(2), 2);
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.num_buckets(), 3u);
}

TEST(QuantileTest, Basics) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3, 4, 5}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3, 4, 5}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3, 4, 5}, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({5, 1, 4, 2, 3}, 0.5), 3.0);  // unsorted input
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3}, 2.0), 3.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> z = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // monotone but nonlinear
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTiesWithAverageRanks) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace math
}  // namespace reconsume
