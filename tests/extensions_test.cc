// Tests of the paper's §4.3 / §6 extensions: the novel-item task, the
// STREC-gated mixture recommender, and trait recovery by the personalized
// mappings.

#include <gtest/gtest.h>

#include "baselines/simple_recommenders.h"
#include "core/ts_ppr.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "math/stats.h"
#include "strec/mixture_recommender.h"
#include "strec/strec_classifier.h"

namespace reconsume {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::vector<data::UserTraits> traits;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;

  explicit Fixture(double scale = 0.1) {
    data::SyntheticTraceGenerator generator(data::GowallaLikeProfile(scale));
    dataset = generator.Generate(&traits).ValueOrDie();
    // No filtering: keeps traits index-aligned with dense user ids.
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
  }

  eval::AccuracyResult Evaluate(eval::Recommender* method,
                                eval::EvalTask task) const {
    eval::EvalOptions options;
    options.window_capacity = 100;
    options.min_gap = 10;
    options.task = task;
    eval::Evaluator evaluator(split.get(), options);
    return evaluator.Evaluate(method).ValueOrDie();
  }
};

TEST(NovelTaskTest, TrainingSetHoldsOutOfWindowPositives) {
  Fixture fixture(0.05);
  features::FeatureExtractor extractor(fixture.table.get(),
                                       features::FeatureConfig::AllFeatures());
  sampling::TrainingSetOptions options;
  options.task = sampling::TrainingTask::kNovel;
  const auto training_set =
      sampling::TrainingSet::Build(*fixture.split, extractor, options)
          .ValueOrDie();
  EXPECT_GT(training_set.num_quadruples(), 0);

  // Verify positives are out-of-window and negatives out-of-window too.
  size_t checked = 0;
  for (data::UserId u : training_set.users_with_events()) {
    const auto [begin, end] = training_set.user_events(u);
    const auto& seq = fixture.dataset.sequence(u);
    window::WindowWalker walker(&seq, options.window_capacity);
    for (uint32_t e = begin; e < end && checked < 300; ++e, ++checked) {
      const auto& event = training_set.events()[e];
      while (walker.step() < event.t) walker.Advance();
      EXPECT_FALSE(walker.Contains(event.item));
      for (uint32_t n = event.negatives_begin;
           n < event.negatives_begin + event.negatives_count; ++n) {
        const auto& neg = training_set.negatives()[n];
        EXPECT_FALSE(walker.Contains(neg.item));
        EXPECT_NE(neg.item, event.item);
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(NovelTaskTest, TsPprBeatsRandomOnNovelTask) {
  Fixture fixture(0.1);
  core::TsPprPipelineConfig config;
  config.sampling.task = sampling::TrainingTask::kNovel;
  auto ts_ppr = core::TsPpr::Fit(*fixture.split, config).ValueOrDie();
  baselines::RandomRecommender random_rec;

  const auto ts_acc =
      fixture.Evaluate(ts_ppr.recommender(), eval::EvalTask::kNovel);
  const auto random_acc =
      fixture.Evaluate(&random_rec, eval::EvalTask::kNovel);
  ASSERT_GT(ts_acc.num_instances, 0);
  EXPECT_GT(ts_acc.MaapAt(10), 2.0 * random_acc.MaapAt(10));
}

TEST(NovelTaskTest, NovelCandidatesExcludeWindow) {
  // Instance counts differ between tasks, and the novel task's candidate
  // sets are catalog-sized.
  Fixture fixture(0.05);
  baselines::PopRecommender pop(fixture.table.get());
  const auto repeat_acc = fixture.Evaluate(&pop, eval::EvalTask::kRepeat);
  const auto novel_acc = fixture.Evaluate(&pop, eval::EvalTask::kNovel);
  EXPECT_GT(novel_acc.mean_candidates, repeat_acc.mean_candidates);
  EXPECT_LT(novel_acc.mean_candidates,
            static_cast<double>(fixture.dataset.num_items()));
}

TEST(UnifiedTaskTest, EveryStepIsAnInstance) {
  Fixture fixture(0.05);
  baselines::PopRecommender pop(fixture.table.get());
  const auto unified = fixture.Evaluate(&pop, eval::EvalTask::kUnified);
  EXPECT_EQ(unified.num_instances, fixture.split->total_test_events());
  EXPECT_DOUBLE_EQ(unified.mean_candidates,
                   static_cast<double>(fixture.dataset.num_items()));
}

TEST(MixtureTest, BeatsBothSpecialistsOnUnifiedTask) {
  Fixture fixture(0.1);

  // Repeat specialist.
  core::TsPprPipelineConfig repeat_config;
  auto repeat_model =
      core::TsPpr::Fit(*fixture.split, repeat_config).ValueOrDie();
  // Novel specialist.
  core::TsPprPipelineConfig novel_config;
  novel_config.sampling.task = sampling::TrainingTask::kNovel;
  auto novel_model =
      core::TsPpr::Fit(*fixture.split, novel_config).ValueOrDie();
  // Gate.
  const auto classifier =
      strec::StrecClassifier::Fit(*fixture.split, fixture.table.get(), {})
          .ValueOrDie();

  strec::MixtureRecommender mixture(&classifier, repeat_model.recommender(),
                                    novel_model.recommender());

  const auto mixture_acc =
      fixture.Evaluate(&mixture, eval::EvalTask::kUnified);
  const auto repeat_acc =
      fixture.Evaluate(repeat_model.recommender(), eval::EvalTask::kUnified);
  const auto novel_acc =
      fixture.Evaluate(novel_model.recommender(), eval::EvalTask::kUnified);

  // The mixture must beat each specialist on the blended stream.
  EXPECT_GT(mixture_acc.MaapAt(10), novel_acc.MaapAt(10));
  EXPECT_GE(mixture_acc.MaapAt(10), repeat_acc.MaapAt(10) * 0.95);
  EXPECT_GT(mixture_acc.MaapAt(10), 0.1);
}

TEST(TraitRecoveryTest, EffectiveWeightsCorrelateWithGeneratorTraits) {
  // The central personalization claim, made testable: A_u^T u should order
  // users the same way the generator's hidden per-user weights do.
  Fixture fixture(0.3);
  core::TsPprPipelineConfig config;
  config.train.convergence_tolerance = 1e-4;
  // Train with Omega = 1: the paper's default Omega = 10 excludes exactly the
  // recency-driven repeats from the training quadruples, which censors the
  // recency trait (and can even flip its apparent sign — a selection effect
  // worth knowing about; see bench_ext_trait_recovery).
  config.sampling.min_gap = 1;
  auto ts_ppr = core::TsPpr::Fit(*fixture.split, config).ValueOrDie();

  std::vector<double> learned_recency, learned_quality, learned_familiarity;
  std::vector<double> true_recency, true_quality, true_familiarity;
  for (size_t u = 0; u < fixture.dataset.num_users(); ++u) {
    const auto w = ts_ppr.model().EffectiveFeatureWeights(
        static_cast<data::UserId>(u));
    // Feature order: IP quality, IR, RE recency, DF familiarity.
    learned_quality.push_back(w[0]);
    learned_recency.push_back(w[2]);
    learned_familiarity.push_back(w[3]);
    true_quality.push_back(fixture.traits[u].quality_weight);
    true_recency.push_back(fixture.traits[u].recency_weight);
    true_familiarity.push_back(fixture.traits[u].familiarity_weight);
  }
  EXPECT_GT(math::SpearmanCorrelation(learned_recency, true_recency), 0.3);
  EXPECT_GT(math::SpearmanCorrelation(learned_quality, true_quality), 0.3);
  // Familiarity is the weakest signal (it correlates with recency); only
  // require non-negative association.
  EXPECT_GT(math::SpearmanCorrelation(learned_familiarity, true_familiarity),
            0.0);
}

}  // namespace
}  // namespace reconsume
