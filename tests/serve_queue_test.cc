// BoundedQueue: FIFO order, backpressure on the full queue, and the
// shutdown-drain contract the serve workers depend on.

#include "serve/request_queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace reconsume {
namespace serve {
namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, TryPushRefusesWhenFull) {
  BoundedQueue<int> queue(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(queue.TryPush(a));
  EXPECT_TRUE(queue.TryPush(b));
  EXPECT_FALSE(queue.TryPush(c));
  EXPECT_EQ(c, 3);  // rejected item is left intact
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    int item = 2;
    EXPECT_TRUE(queue.Push(item));  // blocks: the queue is full
    pushed.store(true);
  });

  // The producer cannot finish while the queue stays full. A short sleep is
  // not proof, but a regression here turns it into a reliable failure below.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());

  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, ShutdownDrainsRemainingItems) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Shutdown();

  int rejected = 3;
  EXPECT_FALSE(queue.Push(rejected));
  EXPECT_EQ(rejected, 3);  // failed Push leaves the item with the caller
  EXPECT_FALSE(queue.TryPush(rejected));

  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // drained: every later Pop fails fast
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_TRUE(queue.shut_down());
}

TEST(BoundedQueueTest, ShutdownWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int out = -1;
    EXPECT_FALSE(queue.Pop(&out));  // blocks on the empty queue
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  queue.Shutdown();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, ShutdownWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::thread producer([&] {
    int item = 2;
    EXPECT_FALSE(queue.Push(item));  // blocks full, then fails on shutdown
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Shutdown();
  producer.join();
}

TEST(BoundedQueueTest, TryEnqueueForSucceedsWithoutWaitingWhenRoom) {
  BoundedQueue<int> queue(2);
  int a = 1;
  EXPECT_TRUE(queue.TryEnqueueFor(a, /*timeout_ns=*/0));  // immediate TryPush
  int b = 2;
  EXPECT_TRUE(queue.TryEnqueueFor(b, 1000000));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, TryEnqueueForTimesOutOnFullQueue) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  int rejected = 7;
  // 2ms budget against a queue nobody drains: must return false within the
  // timeout (plus scheduling noise) and leave the item untouched.
  EXPECT_FALSE(queue.TryEnqueueFor(rejected, 2000000));
  EXPECT_EQ(rejected, 7);
  EXPECT_EQ(queue.size(), 1u);

  // A non-positive timeout degenerates to TryPush.
  EXPECT_FALSE(queue.TryEnqueueFor(rejected, 0));
  EXPECT_FALSE(queue.TryEnqueueFor(rejected, -5));
  EXPECT_EQ(rejected, 7);
}

TEST(BoundedQueueTest, TryEnqueueForSucceedsWhenConsumerMakesRoom) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    int item = 2;
    // Generous timeout: the pop below lands long before 5s.
    EXPECT_TRUE(queue.TryEnqueueFor(item, 5000000000LL));
    enqueued.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(enqueued.load());
  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));
  producer.join();
  EXPECT_TRUE(enqueued.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, ShutdownWakesTimedProducerPromptly) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    int item = 2;
    // Would park for 30s if Shutdown failed to wake timed waiters.
    EXPECT_FALSE(queue.TryEnqueueFor(item, 30000000000LL));
    EXPECT_EQ(item, 2);  // untouched on the false return
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  queue.Shutdown();
  producer.join();  // promptness: the join returns in ms, not 30s
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, TryEnqueueForAfterShutdownFailsFast) {
  BoundedQueue<int> queue(4);
  queue.Shutdown();
  int item = 9;
  EXPECT_FALSE(queue.TryEnqueueFor(item, 1000000000LL));
  EXPECT_EQ(item, 9);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> queue(16);  // small: forces constant backpressure

  std::atomic<int64_t> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int out = -1;
      while (queue.Pop(&out)) {
        sum.fetch_add(out, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        ASSERT_TRUE(queue.Push(item));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Shutdown();
  for (auto& t : threads) t.join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), static_cast<int64_t>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace serve
}  // namespace reconsume
