#!/usr/bin/env bash
# Serve-path smoke test: `reconsume_cli serve` must return the same ranked
# items as the offline `recommend` command for the same user, the second
# identical query must come from the score cache, and observe must bump the
# epoch. Invoked by ctest with the path to the reconsume_cli binary as $1.
set -euo pipefail

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

"$CLI" generate --profile=gowalla --scale=0.1 --out="$WORKDIR/trace.tsv" \
    --seed=7 | grep -q "wrote"
"$CLI" train --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model.bin" \
    --k=16 | grep -q "converged"

# Ground truth: the offline recommend command for the same user (item lines
# are the two-space-indented "  1. <item> score ..." rows).
"$CLI" recommend --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model.bin" \
    --user=0 --n=5 | grep '^  ' > "$WORKDIR/expected.txt"
test -s "$WORKDIR/expected.txt"

# An item user 0 verifiably consumed: the top-ranked repeat recommendation.
ITEM=$(awk 'NR==1{print $2}' "$WORKDIR/expected.txt")

# The same query through the serving layer, twice (second must be cached),
# then an observe and a fresh query at the new epoch.
"$CLI" serve --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model.bin" \
    --serve-threads=2 --cache-capacity=16 > "$WORKDIR/serve_out.txt" <<EOF
recommend 0 5
recommend 0 5
observe 0 $ITEM
recommend 0 5
stats
quit
EOF

grep -q "^serving " "$WORKDIR/serve_out.txt"
# The first serve response must rank exactly what offline recommend ranked.
grep '^  ' "$WORKDIR/serve_out.txt" > "$WORKDIR/all_served.txt"
head -n "$(wc -l < "$WORKDIR/expected.txt")" "$WORKDIR/all_served.txt" \
    > "$WORKDIR/served.txt"
diff -u "$WORKDIR/expected.txt" "$WORKDIR/served.txt"

# Exactly one of the three recommends is served from cache (the repeat at the
# unchanged epoch; the post-observe query re-scores at the new epoch).
test "$(grep -c ', cached)' "$WORKDIR/serve_out.txt")" -eq 1
grep -q "^observed 0 -> $ITEM" "$WORKDIR/serve_out.txt"
grep -q "hit rate" "$WORKDIR/serve_out.txt"
grep -q "latency us:" "$WORKDIR/serve_out.txt"

# Epochs: the observe line's epoch is one past the first recommend's.
FIRST_EPOCH=$(grep -m1 '^top-' "$WORKDIR/serve_out.txt" \
    | sed 's/.*epoch \([0-9]*\).*/\1/')
OBS_EPOCH=$(sed -n 's/^observed .*epoch \([0-9]*\).*/\1/p' "$WORKDIR/serve_out.txt")
test "$OBS_EPOCH" -eq $((FIRST_EPOCH + 1))

# Unknown users/items report errors without killing the loop.
printf 'recommend nosuchuser 3\nstats\nquit\n' | \
    "$CLI" serve --data="$WORKDIR/trace.tsv" --model="$WORKDIR/model.bin" \
    > "$WORKDIR/errors_out.txt"
grep -q "error: user 'nosuchuser'" "$WORKDIR/errors_out.txt"

echo "serve smoke OK"
