#include "util/csv.h"

#include "util/fileio.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace reconsume {
namespace util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string WriteTemp(const std::string& contents) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("reconsume_csv_test_" +
          std::to_string(reinterpret_cast<uintptr_t>(this)) + "_" +
          std::to_string(counter_++)))
            .string();
    std::ofstream out(path, std::ios::binary);
    out << contents;
    out.close();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
  int counter_ = 0;
};

TEST_F(CsvTest, ReadsTabSeparatedRecords) {
  const std::string path = WriteTemp("a\tb\tc\n1\t2\t3\n");
  auto reader = DelimitedReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto r = std::move(reader).ValueOrDie();
  std::vector<std::string_view> fields;
  ASSERT_TRUE(r.Next(&fields));
  EXPECT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(r.line_number(), 1);
  ASSERT_TRUE(r.Next(&fields));
  EXPECT_EQ(fields[2], "3");
  EXPECT_EQ(r.line_number(), 2);
  EXPECT_FALSE(r.Next(&fields));
}

TEST_F(CsvTest, CustomDelimiter) {
  const std::string path = WriteTemp("x,y\n");
  auto r = DelimitedReader::Open(path, {.delimiter = ','}).ValueOrDie();
  std::vector<std::string_view> fields;
  ASSERT_TRUE(r.Next(&fields));
  EXPECT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "y");
}

TEST_F(CsvTest, SkipsBlankLinesAndComments) {
  const std::string path = WriteTemp("# header comment\n\n  \na\tb\n\n");
  auto r = DelimitedReader::Open(path).ValueOrDie();
  std::vector<std::string_view> fields;
  ASSERT_TRUE(r.Next(&fields));
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(r.line_number(), 4);  // 1-based, counting skipped lines
  EXPECT_FALSE(r.Next(&fields));
}

TEST_F(CsvTest, StripsCarriageReturns) {
  const std::string path = WriteTemp("a\tb\r\nc\td\r\n");
  auto r = DelimitedReader::Open(path).ValueOrDie();
  std::vector<std::string_view> fields;
  ASSERT_TRUE(r.Next(&fields));
  EXPECT_EQ(fields[1], "b");  // no trailing \r
  ASSERT_TRUE(r.Next(&fields));
  EXPECT_EQ(fields[1], "d");
}

TEST_F(CsvTest, MissingFileIsIoError) {
  auto r = DelimitedReader::Open("/nonexistent/path/file.tsv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, ErrorIncludesPathAndLine) {
  const std::string path = WriteTemp("a\tb\n");
  auto r = DelimitedReader::Open(path).ValueOrDie();
  std::vector<std::string_view> fields;
  ASSERT_TRUE(r.Next(&fields));
  const Status err = r.Error("bad field");
  EXPECT_NE(err.message().find(path), std::string::npos);
  EXPECT_NE(err.message().find(":1:"), std::string::npos);
  EXPECT_NE(err.message().find("bad field"), std::string::npos);
}

TEST_F(CsvTest, CommentCharCanBeDisabled) {
  const std::string path = WriteTemp("#not-a-comment\tb\n");
  DelimitedReader::Options options;
  options.comment_char = 0;
  auto r = DelimitedReader::Open(path, options).ValueOrDie();
  std::vector<std::string_view> fields;
  ASSERT_TRUE(r.Next(&fields));
  EXPECT_EQ(fields[0], "#not-a-comment");
}

TEST_F(CsvTest, ReadWriteRoundtrip) {
  const std::string path = WriteTemp("");
  ASSERT_TRUE(WriteStringToFile(path, "payload\nline2").ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.ValueOrDie(), "payload\nline2");
}

TEST_F(CsvTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadFileToString("/no/such/file").status().code(),
            StatusCode::kIoError);
}

TEST_F(CsvTest, WriteToBadPathFails) {
  EXPECT_EQ(WriteStringToFile("/no/such/dir/file", "x").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace util
}  // namespace reconsume
