// Finite-difference verification of the TS-PPR gradients (Eqs. 11-15).
//
// The per-quadruple loss is l = -ln sigmoid(m) with
//   m = u^T (v_i - v_j + A_u (f_i - f_j)).
// Algorithm 1 ascends ln p, i.e. descends l, with analytic partials
//   dl/du   = -(1 - sigmoid(m)) * (v_i - v_j + A (f_i - f_j))
//   dl/dv_i = -(1 - sigmoid(m)) * u
//   dl/dv_j = +(1 - sigmoid(m)) * u
//   dl/dA   = -(1 - sigmoid(m)) * u (f_i - f_j)^T
// Each partial is checked coordinate-wise against central differences.

#include <gtest/gtest.h>

#include <cmath>

#include "math/matrix.h"
#include "math/vector_ops.h"
#include "util/random.h"

namespace reconsume {
namespace core {
namespace {

struct Point {
  std::vector<double> u, vi, vj, fi, fj;
  math::Matrix a;
};

double Loss(const Point& p) {
  const size_t k = p.u.size();
  std::vector<double> fdiff(p.fi.size());
  math::Subtract(p.fi, p.fj, fdiff);
  std::vector<double> d(k);
  math::Subtract(p.vi, p.vj, d);
  p.a.MultiplyVectorAccumulate(1.0, fdiff, d);
  return math::Log1pExp(-math::Dot(p.u, d));
}

Point RandomPoint(uint64_t seed, size_t k, size_t f) {
  util::Rng rng(seed);
  Point p;
  auto fill = [&](std::vector<double>& v, size_t n) {
    v.resize(n);
    for (auto& x : v) x = rng.Gaussian(0.0, 1.0);
  };
  fill(p.u, k);
  fill(p.vi, k);
  fill(p.vj, k);
  fill(p.fi, f);
  fill(p.fj, f);
  p.a = math::Matrix(k, f);
  p.a.FillGaussian(&rng, 0.0, 1.0);
  return p;
}

constexpr double kEps = 1e-6;
constexpr double kTol = 1e-5;

class GradientCheckTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GradientCheckTest, AllPartialsMatchCentralDifferences) {
  const size_t k = 5, f = 3;
  Point p = RandomPoint(GetParam(), k, f);

  // Shared quantities for the analytic forms.
  std::vector<double> fdiff(f);
  math::Subtract(p.fi, p.fj, fdiff);
  std::vector<double> d(k);
  math::Subtract(p.vi, p.vj, d);
  p.a.MultiplyVectorAccumulate(1.0, fdiff, d);
  const double m = math::Dot(p.u, d);
  const double coeff = -(1.0 - math::Sigmoid(m));

  // dl/du.
  for (size_t i = 0; i < k; ++i) {
    Point plus = p, minus = p;
    plus.u[i] += kEps;
    minus.u[i] -= kEps;
    const double numeric = (Loss(plus) - Loss(minus)) / (2 * kEps);
    EXPECT_NEAR(numeric, coeff * d[i], kTol) << "du[" << i << "]";
  }
  // dl/dv_i and dl/dv_j (Eqs. 13-14).
  for (size_t i = 0; i < k; ++i) {
    Point plus = p, minus = p;
    plus.vi[i] += kEps;
    minus.vi[i] -= kEps;
    EXPECT_NEAR((Loss(plus) - Loss(minus)) / (2 * kEps), coeff * p.u[i], kTol)
        << "dvi[" << i << "]";
    plus = p;
    minus = p;
    plus.vj[i] += kEps;
    minus.vj[i] -= kEps;
    EXPECT_NEAR((Loss(plus) - Loss(minus)) / (2 * kEps), -coeff * p.u[i], kTol)
        << "dvj[" << i << "]";
  }
  // dl/dA: outer product u (f_i - f_j)^T (Eq. 15).
  for (size_t r = 0; r < k; ++r) {
    for (size_t c = 0; c < f; ++c) {
      Point plus = p, minus = p;
      plus.a(r, c) += kEps;
      minus.a(r, c) -= kEps;
      const double numeric = (Loss(plus) - Loss(minus)) / (2 * kEps);
      EXPECT_NEAR(numeric, coeff * p.u[r] * fdiff[c], kTol)
          << "dA(" << r << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPoints, GradientCheckTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(GradientCheckTest, LossIsConvexAlongDescentDirection) {
  // Stepping against the gradient must reduce the loss for a small step.
  Point p = RandomPoint(99, 6, 4);
  std::vector<double> fdiff(4);
  math::Subtract(p.fi, p.fj, fdiff);
  std::vector<double> d(6);
  math::Subtract(p.vi, p.vj, d);
  p.a.MultiplyVectorAccumulate(1.0, fdiff, d);
  const double m = math::Dot(p.u, d);
  const double g = 1.0 - math::Sigmoid(m);  // descent multiplier

  const double before = Loss(p);
  Point stepped = p;
  math::Axpy(0.01 * g, d, stepped.u);
  math::Axpy(0.01 * g, p.u, stepped.vi);
  math::Axpy(-0.01 * g, p.u, stepped.vj);
  stepped.a.AddOuterProduct(0.01 * g, p.u, fdiff);
  EXPECT_LT(Loss(stepped), before);
}

}  // namespace
}  // namespace core
}  // namespace reconsume
