#include "util/status.h"

#include <gtest/gtest.h>

namespace reconsume {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesMapToCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  const Status a = Status::IoError("disk gone");
  const Status b = a;  // shares the payload
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "disk gone");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_FALSE(Status::IoError("a") == Status::IoError("b"));
  EXPECT_FALSE(Status::IoError("a") == Status::Internal("a"));
  EXPECT_EQ(Status::IoError("a"), Status::IoError("a"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericalError),
               "NumericalError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no such user");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallback) {
  EXPECT_EQ((Result<int>(7)).ValueOr(-1), 7);
  EXPECT_EQ((Result<int>(Status::Internal("x"))).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 9);
}

TEST(ResultTest, OkStatusIsRejected) {
  // Constructing a Result from an OK status is a bug; it is normalized to an
  // Internal error rather than a silently empty value.
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  RECONSUME_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kOutOfRange);
}

Result<int> Doubled(Result<int> input) {
  RECONSUME_ASSIGN_OR_RETURN(const int v, std::move(input));
  return 2 * v;
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsAndPropagates) {
  EXPECT_EQ(Doubled(21).ValueOrDie(), 42);
  EXPECT_EQ(Doubled(Status::IoError("x")).status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace reconsume
