// End-to-end tests of the crash-safety and divergence-recovery layer of
// TsPprTrainer (docs/robustness.md):
//  - checkpointed runs write RCCK files at convergence-check boundaries;
//  - a run killed between rounds (injected "trainer/round" crash) resumes
//    from its latest checkpoint bit-identically to the uninterrupted run;
//  - a corrupt newest checkpoint falls back to the previous good one;
//  - an injected non-finite SGD step triggers rollback + learning-rate
//    backoff and the run still completes;
//  - resume topology validation (worker count / shard strategy).

#include <gtest/gtest.h>

#include <filesystem>

#include "core/checkpoint.h"
#include "core/ts_ppr_trainer.h"
#include "data/synthetic.h"
#include "util/failpoint.h"
#include "util/fileio.h"

namespace reconsume {
namespace core {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
  std::unique_ptr<features::FeatureExtractor> extractor;
  std::unique_ptr<sampling::TrainingSet> training_set;

  Fixture() {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.05))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
    extractor = std::make_unique<features::FeatureExtractor>(
        table.get(), features::FeatureConfig::AllFeatures());
    training_set = std::make_unique<sampling::TrainingSet>(
        sampling::TrainingSet::Build(*split, *extractor, {}).ValueOrDie());
  }

  TsPprModel MakeModel(TsPprConfig config = {}) const {
    return TsPprModel::Create(dataset.num_users(), dataset.num_items(), 4,
                              config)
        .ValueOrDie();
  }
};

class TrainerRecoveryTest : public ::testing::Test {
 protected:
  std::string TempDir() {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("reconsume_recovery_test_" + std::to_string(counter_++) + "_" +
          std::to_string(reinterpret_cast<uintptr_t>(this))))
            .string();
    dirs_.push_back(dir);
    return dir;
  }
  void TearDown() override {
    util::FailpointRegistry::Global().Clear();
    for (const auto& d : dirs_) std::filesystem::remove_all(d);
  }
  std::vector<std::string> dirs_;
  int counter_ = 0;
};

void ExpectModelsBitIdentical(const TsPprModel& a, const TsPprModel& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_items(), b.num_items());
  for (size_t u = 0; u < a.num_users(); ++u) {
    const auto ua = a.user_factor(static_cast<data::UserId>(u));
    const auto ub = b.user_factor(static_cast<data::UserId>(u));
    for (size_t c = 0; c < ua.size(); ++c) {
      ASSERT_EQ(ua[c], ub[c]) << "user " << u << " dim " << c;
    }
    ASSERT_TRUE(a.mapping(static_cast<data::UserId>(u)) ==
                b.mapping(static_cast<data::UserId>(u)))
        << "mapping of user " << u;
  }
  for (size_t v = 0; v < a.num_items(); ++v) {
    const auto va = a.item_factor(static_cast<data::ItemId>(v));
    const auto vb = b.item_factor(static_cast<data::ItemId>(v));
    for (size_t c = 0; c < va.size(); ++c) {
      ASSERT_EQ(va[c], vb[c]) << "item " << v << " dim " << c;
    }
  }
}

TEST_F(TrainerRecoveryTest, CheckpointedRunWritesSnapshots) {
  Fixture fixture;
  TrainOptions options;
  // Small rounds so every short run crosses several check boundaries
  // regardless of the synthetic |D|.
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;  // never converge
  options.max_steps = 3000;
  options.checkpoint_dir = TempDir();
  options.checkpoint_retention = 2;

  auto model = fixture.MakeModel();
  util::Rng rng(17);
  const auto report = TsPprTrainer(options)
                          .Train(*fixture.training_set, &model, &rng)
                          .ValueOrDie();
  EXPECT_GT(report.checkpoints_written, 0);
  const auto files = ListCheckpointFiles(options.checkpoint_dir);
  ASSERT_FALSE(files.empty());
  EXPECT_LE(files.size(), 2u);
  const auto latest = LoadCheckpoint(files.back()).ValueOrDie();
  EXPECT_GT(latest.steps, 0);
  EXPECT_EQ(latest.num_workers, 1);
  ASSERT_TRUE(latest.model.has_value());
  EXPECT_TRUE(latest.model->IsFinite());
}

TEST_F(TrainerRecoveryTest, CheckpointCadenceHonorsEveryChecks) {
  Fixture fixture;
  TrainOptions options;
  // Small rounds so every short run crosses several check boundaries
  // regardless of the synthetic |D|.
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;
  options.max_steps = 3000;
  options.checkpoint_dir = TempDir();
  options.checkpoint_every_checks = 2;
  options.checkpoint_retention = 100;

  auto model = fixture.MakeModel();
  util::Rng rng(17);
  const auto report = TsPprTrainer(options)
                          .Train(*fixture.training_set, &model, &rng)
                          .ValueOrDie();
  // One snapshot per two convergence checks.
  const int64_t checks = static_cast<int64_t>(report.curve.size()) - 1;
  EXPECT_EQ(report.checkpoints_written, checks / 2);
}

TEST_F(TrainerRecoveryTest, ResumeRejectsMissingAndGarbageFiles) {
  Fixture fixture;
  TsPprTrainer trainer{TrainOptions{}};
  auto model = fixture.MakeModel();
  util::Rng rng(1);
  EXPECT_FALSE(trainer
                   .ResumeFrom("/no/such/ckpt.rck", *fixture.training_set,
                               &model, &rng)
                   .ok());
  const std::string dir = TempDir();
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  const std::string garbage = dir + "/garbage.rck";
  ASSERT_TRUE(util::WriteStringToFile(garbage, "not a checkpoint").ok());
  EXPECT_FALSE(
      trainer.ResumeFrom(garbage, *fixture.training_set, &model, &rng).ok());
}

#if RECONSUME_FAILPOINTS_ENABLED

TEST_F(TrainerRecoveryTest, KillAndResumeIsBitIdenticalSequentially) {
  Fixture fixture;
  TrainOptions options;
  // Small rounds so every short run crosses several check boundaries
  // regardless of the synthetic |D|.
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;  // pin the step count to max_steps
  options.max_steps = 3000;

  // Reference: one uninterrupted run.
  auto model_full = fixture.MakeModel();
  util::Rng rng_full(17);
  const auto report_full = TsPprTrainer(options)
                               .Train(*fixture.training_set, &model_full,
                                      &rng_full)
                               .ValueOrDie();
  ASSERT_EQ(report_full.steps, 3000);

  // Crashed run: dies right after writing its first checkpoint (the
  // "trainer/round" point fires between rounds, like a process kill).
  TrainOptions crashed = options;
  crashed.checkpoint_dir = TempDir();
  auto model_crashed = fixture.MakeModel();
  util::Rng rng_crashed(17);
  {
    util::ScopedFailpoint fp("trainer/round", "error-once");
    const auto result = TsPprTrainer(crashed).Train(
        *fixture.training_set, &model_crashed, &rng_crashed);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("trainer/round"),
              std::string::npos);
  }
  const auto ckpt_path =
      FindLatestGoodCheckpoint(crashed.checkpoint_dir).ValueOrDie();

  // Resume with a fresh model and an unrelated RNG seed: both are overwritten
  // from the snapshot, so the continuation must be bit-identical.
  auto model_resumed = fixture.MakeModel();
  util::Rng rng_resumed(999);
  const auto report_resumed =
      TsPprTrainer(options)
          .ResumeFrom(ckpt_path, *fixture.training_set, &model_resumed,
                      &rng_resumed)
          .ValueOrDie();

  EXPECT_GT(report_resumed.resumed_from_step, 0);
  EXPECT_EQ(report_resumed.steps, report_full.steps);
  EXPECT_EQ(report_resumed.converged, report_full.converged);
  ASSERT_EQ(report_resumed.curve.size(), report_full.curve.size());
  for (size_t i = 0; i < report_full.curve.size(); ++i) {
    EXPECT_EQ(report_resumed.curve[i].step, report_full.curve[i].step);
    EXPECT_EQ(report_resumed.curve[i].r_tilde, report_full.curve[i].r_tilde)
        << "check point " << i;
  }
  EXPECT_EQ(report_resumed.final_r_tilde, report_full.final_r_tilde);
  ExpectModelsBitIdentical(model_resumed, model_full);
}

TEST_F(TrainerRecoveryTest, ResumeAfterLaterCrashUsesNewestCheckpoint) {
  Fixture fixture;
  TrainOptions options;
  // Small rounds so every short run crosses several check boundaries
  // regardless of the synthetic |D|.
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;
  options.max_steps = 3000;
  options.checkpoint_dir = TempDir();
  options.checkpoint_retention = 2;

  auto model = fixture.MakeModel();
  util::Rng rng(17);
  {
    util::ScopedFailpoint fp("trainer/round", "error-every(3)");
    ASSERT_FALSE(TsPprTrainer(options)
                     .Train(*fixture.training_set, &model, &rng)
                     .ok());
  }
  const auto files = ListCheckpointFiles(options.checkpoint_dir);
  ASSERT_FALSE(files.empty());
  const auto newest = LoadCheckpoint(files.back()).ValueOrDie();

  auto model_resumed = fixture.MakeModel();
  util::Rng rng_resumed(2);
  const auto report = TsPprTrainer(options)
                          .ResumeFrom(files.back(), *fixture.training_set,
                                      &model_resumed, &rng_resumed)
                          .ValueOrDie();
  EXPECT_EQ(report.resumed_from_step, newest.steps);
  EXPECT_EQ(report.steps, 3000);
}

TEST_F(TrainerRecoveryTest, CorruptNewestCheckpointFallsBackOnResume) {
  Fixture fixture;
  TrainOptions options;
  // Small rounds so every short run crosses several check boundaries
  // regardless of the synthetic |D|.
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;
  options.max_steps = 3000;
  options.checkpoint_dir = TempDir();
  options.checkpoint_retention = 10;

  auto model = fixture.MakeModel();
  util::Rng rng(17);
  ASSERT_TRUE(TsPprTrainer(options)
                  .Train(*fixture.training_set, &model, &rng)
                  .ok());
  auto files = ListCheckpointFiles(options.checkpoint_dir);
  ASSERT_GE(files.size(), 2u);

  // Flip a byte in the newest file: discovery must fall back to the previous
  // snapshot, and resuming from it must work.
  std::string bytes = util::ReadFileToString(files.back()).ValueOrDie();
  bytes[bytes.size() / 2] ^= 0x10;
  ASSERT_TRUE(util::WriteStringToFile(files.back(), bytes).ok());

  const std::string good =
      FindLatestGoodCheckpoint(options.checkpoint_dir).ValueOrDie();
  EXPECT_EQ(good, files[files.size() - 2]);

  auto model_resumed = fixture.MakeModel();
  util::Rng rng_resumed(3);
  EXPECT_TRUE(TsPprTrainer(options)
                  .ResumeFrom(good, *fixture.training_set, &model_resumed,
                              &rng_resumed)
                  .ok());
}

TEST_F(TrainerRecoveryTest, InjectedDivergenceRollsBackAndBacksOffLr) {
  Fixture fixture;
  TrainOptions options;
  // Small rounds so every short run crosses several check boundaries
  // regardless of the synthetic |D|.
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;
  options.max_steps = 2000;
  options.max_recoveries = 2;
  options.lr_backoff = 0.5;

  auto model = fixture.MakeModel();
  util::Rng rng(17);
  util::ScopedFailpoint fp("trainer/sgd_step_diverge", "error-once");
  const auto report = TsPprTrainer(options)
                          .Train(*fixture.training_set, &model, &rng)
                          .ValueOrDie();
  // The injected non-finite step must have been recovered from — training
  // completes, with the rollback recorded and the learning rate halved.
  EXPECT_EQ(report.steps, 2000);
  ASSERT_EQ(report.recovery_log.size(), 1u);
  EXPECT_EQ(report.recovery_log[0].lr_scale_after, 0.5);
  EXPECT_NE(report.recovery_log[0].reason.find("diverged"),
            std::string::npos);
  EXPECT_EQ(report.final_lr_scale, 0.5);
  EXPECT_TRUE(model.IsFinite());
}

TEST_F(TrainerRecoveryTest, DivergenceWithoutRecoveryBudgetFailsFast) {
  Fixture fixture;
  TrainOptions options;
  // Small rounds so every short run crosses several check boundaries
  // regardless of the synthetic |D|.
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;
  options.max_steps = 2000;
  options.max_recoveries = 0;  // the original fail-fast behavior

  auto model = fixture.MakeModel();
  util::Rng rng(17);
  util::ScopedFailpoint fp("trainer/sgd_step_diverge", "error-once");
  const auto result =
      TsPprTrainer(options).Train(*fixture.training_set, &model, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
}

TEST_F(TrainerRecoveryTest, RecoveryBudgetExhaustionPropagatesFailure) {
  Fixture fixture;
  TrainOptions options;
  // Small rounds so every short run crosses several check boundaries
  // regardless of the synthetic |D|.
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;
  options.max_steps = 2000;
  options.max_recoveries = 2;

  auto model = fixture.MakeModel();
  util::Rng rng(17);
  // Fires on every hit: each retry diverges again until the budget runs out.
  util::ScopedFailpoint fp("trainer/sgd_step_diverge", "error-every(1)");
  const auto result =
      TsPprTrainer(options).Train(*fixture.training_set, &model, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
}

TEST_F(TrainerRecoveryTest, HogwildKillAndResumeCompletesTheRun) {
  Fixture fixture;
  TrainOptions options;
  options.num_threads = 2;
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;
  options.max_steps = 3000;
  options.checkpoint_dir = TempDir();

  auto model = fixture.MakeModel();
  util::Rng rng(23);
  {
    util::ScopedFailpoint fp("trainer/round", "error-once");
    ASSERT_FALSE(TsPprTrainer(options)
                     .Train(*fixture.training_set, &model, &rng)
                     .ok());
  }
  const auto ckpt_path =
      FindLatestGoodCheckpoint(options.checkpoint_dir).ValueOrDie();
  const auto snapshot = LoadCheckpoint(ckpt_path).ValueOrDie();
  EXPECT_EQ(snapshot.num_workers, 2);
  ASSERT_EQ(snapshot.worker_rng_states.size(), 2u);

  auto model_resumed = fixture.MakeModel();
  util::Rng rng_resumed(4);
  const auto report = TsPprTrainer(options)
                          .ResumeFrom(ckpt_path, *fixture.training_set,
                                      &model_resumed, &rng_resumed)
                          .ValueOrDie();
  EXPECT_EQ(report.resumed_from_step, snapshot.steps);
  EXPECT_EQ(report.steps, 3000);
  EXPECT_TRUE(model_resumed.IsFinite());
  // The convergence-check grid continues on the same step boundaries as an
  // uninterrupted run (per-worker sample streams are restored exactly).
  for (size_t i = 1; i < report.curve.size(); ++i) {
    EXPECT_GT(report.curve[i].step, report.curve[i - 1].step);
  }
}

TEST_F(TrainerRecoveryTest, ParallelResumeRequiresSameTopology) {
  Fixture fixture;
  TrainOptions options;
  options.num_threads = 2;
  options.check_every_fraction = 0.001;
  options.convergence_tolerance = 0.0;
  options.max_steps = 3000;
  options.checkpoint_dir = TempDir();

  auto model = fixture.MakeModel();
  util::Rng rng(23);
  {
    util::ScopedFailpoint fp("trainer/round", "error-once");
    ASSERT_FALSE(TsPprTrainer(options)
                     .Train(*fixture.training_set, &model, &rng)
                     .ok());
  }
  const auto ckpt_path =
      FindLatestGoodCheckpoint(options.checkpoint_dir).ValueOrDie();

  // Different worker count: per-user ownership would move across workers.
  TrainOptions wrong_workers = options;
  wrong_workers.num_threads = 3;
  auto model2 = fixture.MakeModel();
  util::Rng rng2(5);
  auto result = TsPprTrainer(wrong_workers)
                    .ResumeFrom(ckpt_path, *fixture.training_set, &model2,
                                &rng2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);

  // Different shard strategy: same problem.
  TrainOptions wrong_strategy = options;
  wrong_strategy.shard_strategy = sampling::ShardStrategy::kInterleaved;
  auto result2 = TsPprTrainer(wrong_strategy)
                     .ResumeFrom(ckpt_path, *fixture.training_set, &model2,
                                 &rng2);
  ASSERT_FALSE(result2.ok());
  EXPECT_EQ(result2.status().code(), StatusCode::kFailedPrecondition);
}

#endif  // RECONSUME_FAILPOINTS_ENABLED

}  // namespace
}  // namespace core
}  // namespace reconsume
