#include "data/dataset_stats.h"

#include <gtest/gtest.h>

namespace reconsume {
namespace data {
namespace {

Dataset FromSequences(const std::vector<std::vector<int>>& sequences) {
  DatasetBuilder builder;
  for (size_t u = 0; u < sequences.size(); ++u) {
    for (size_t t = 0; t < sequences[u].size(); ++t) {
      EXPECT_TRUE(builder
                      .Add(static_cast<int64_t>(u), sequences[u][t],
                           static_cast<int64_t>(t))
                      .ok());
    }
  }
  return builder.Build().ValueOrDie();
}

TEST(DatasetStatsTest, CountsAndLengths) {
  const Dataset dataset = FromSequences({{1, 2, 3}, {1, 1, 1, 1, 1}});
  const DatasetStats stats = ComputeDatasetStats(dataset, 0);
  EXPECT_EQ(stats.num_users, 2);
  EXPECT_EQ(stats.num_items, 3);
  EXPECT_EQ(stats.num_interactions, 8);
  EXPECT_DOUBLE_EQ(stats.mean_sequence_length, 4.0);
  EXPECT_EQ(stats.min_sequence_length, 3);
  EXPECT_EQ(stats.max_sequence_length, 5);
  EXPECT_DOUBLE_EQ(stats.mean_user_item_pool, 2.0);  // {1,2,3} and {1}
}

TEST(DatasetStatsTest, UnwindowedRepeatFraction) {
  // Sequence 1,2,1,2: steps 2,3 are repeats among 3 considered (t=1,2,3).
  const Dataset dataset = FromSequences({{1, 2, 1, 2}});
  const DatasetStats stats = ComputeDatasetStats(dataset, 0);
  EXPECT_NEAR(stats.repeat_fraction, 2.0 / 3.0, 1e-12);
}

TEST(DatasetStatsTest, WindowedRepeatFractionShrinksWithWindow) {
  // 1, 2, 3, 1: with window 3 the last event repeats; with window 2 not.
  const Dataset dataset = FromSequences({{1, 2, 3, 1}});
  EXPECT_NEAR(ComputeDatasetStats(dataset, 3).repeat_fraction, 1.0 / 3.0,
              1e-12);
  EXPECT_NEAR(ComputeDatasetStats(dataset, 2).repeat_fraction, 0.0, 1e-12);
}

TEST(DatasetStatsTest, AllRepeatsSequence) {
  const Dataset dataset = FromSequences({{7, 7, 7, 7}});
  EXPECT_DOUBLE_EQ(ComputeDatasetStats(dataset, 1).repeat_fraction, 1.0);
}

TEST(DatasetStatsTest, FormatContainsHeadlineNumbers) {
  const Dataset dataset = FromSequences({{1, 2, 3}});
  const std::string text =
      FormatDatasetStats("demo", ComputeDatasetStats(dataset, 10));
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("users=1"), std::string::npos);
  EXPECT_NE(text.find("items=3"), std::string::npos);
}

}  // namespace
}  // namespace data
}  // namespace reconsume
