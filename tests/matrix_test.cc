#include "math/matrix.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace reconsume {
namespace math {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, RowViewIsMutable) {
  Matrix m(2, 2);
  auto row = m.Row(1);
  row[0] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  const Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, MultiplyVector) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1, 0, -1] = [-2, -2]
  double vals[] = {1, 2, 3, 4, 5, 6};
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m(r, c) = vals[r * 3 + c];
  }
  const std::vector<double> x = {1, 0, -1};
  std::vector<double> out(2);
  m.MultiplyVector(x, out);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);

  std::vector<double> acc = {10, 10};
  m.MultiplyVectorAccumulate(0.5, x, acc);
  EXPECT_DOUBLE_EQ(acc[0], 9.0);
  EXPECT_DOUBLE_EQ(acc[1], 9.0);
}

TEST(MatrixTest, IdentityMultiplyIsIdentity) {
  const Matrix id = Matrix::Identity(4);
  const std::vector<double> x = {1, -2, 3, -4};
  std::vector<double> out(4);
  id.MultiplyVector(x, out);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out[i], x[i]);
}

TEST(MatrixTest, AddOuterProductMatchesNaive) {
  util::Rng rng(3);
  Matrix m(5, 3);
  m.FillGaussian(&rng, 0.0, 1.0);
  const Matrix before = m;
  std::vector<double> u(5), f(3);
  for (auto& v : u) v = rng.Gaussian(0, 1);
  for (auto& v : f) v = rng.Gaussian(0, 1);

  m.AddOuterProduct(0.3, u, f);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(m(r, c), before(r, c) + 0.3 * u[r] * f[c], 1e-12);
    }
  }
}

TEST(MatrixTest, SquaredFrobeniusNorm) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = -2;
  m(1, 1) = 1;
  EXPECT_DOUBLE_EQ(m.SquaredFrobeniusNorm(), 1 + 4 + 4 + 1);
}

TEST(MatrixTest, ScaleInPlace) {
  Matrix m(1, 2, 4.0);
  m.ScaleInPlace(0.25);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
}

TEST(MatrixTest, FillGaussianIsSeededDeterministically) {
  util::Rng rng_a(5), rng_b(5);
  Matrix a(10, 10), b(10, 10);
  a.FillGaussian(&rng_a, 0.0, 0.1);
  b.FillGaussian(&rng_b, 0.0, 0.1);
  EXPECT_EQ(a, b);
}

TEST(MatrixTest, OuterProductThenMultiplyConsistency) {
  // (A + alpha u f^T) x == A x + alpha (f·x) u — checks the two kernels agree.
  util::Rng rng(11);
  Matrix a(4, 6);
  a.FillGaussian(&rng, 0.0, 1.0);
  std::vector<double> u(4), f(6), x(6);
  for (auto& v : u) v = rng.Gaussian(0, 1);
  for (auto& v : f) v = rng.Gaussian(0, 1);
  for (auto& v : x) v = rng.Gaussian(0, 1);

  std::vector<double> ax(4);
  a.MultiplyVector(x, ax);
  const double fx = Dot(f, x);

  a.AddOuterProduct(0.7, u, f);
  std::vector<double> ax_updated(4);
  a.MultiplyVector(x, ax_updated);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(ax_updated[r], ax[r] + 0.7 * fx * u[r], 1e-10);
  }
}

}  // namespace
}  // namespace math
}  // namespace reconsume
