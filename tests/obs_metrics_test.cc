#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace reconsume {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter->Value(), 0);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 42);
}

TEST(CounterTest, SameNameSameObject) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
}

TEST(CounterTest, ConcurrentShardedIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  EXPECT_EQ(gauge->Value(), 0.0);
  gauge->Set(3.25);
  EXPECT_EQ(gauge->Value(), 3.25);
  gauge->Set(-1.0);
  EXPECT_EQ(gauge->Value(), -1.0);
}

TEST(HistogramTest, BucketRuleFirstBoundAtLeastValue) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.hist", {1.0, 2.0, 4.0});
  hist->Observe(0.5);  // <= 1.0  -> bucket 0
  hist->Observe(1.0);  // <= 1.0  -> bucket 0 (inclusive upper bound)
  hist->Observe(1.5);  // <= 2.0  -> bucket 1
  hist->Observe(4.0);  // <= 4.0  -> bucket 2
  hist->Observe(9.0);  // > 4.0   -> overflow bucket
  const HistogramSnapshot snapshot = hist->Snapshot();
  ASSERT_EQ(snapshot.bounds.size(), 3u);
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2);
  EXPECT_EQ(snapshot.counts[1], 1);
  EXPECT_EQ(snapshot.counts[2], 1);
  EXPECT_EQ(snapshot.counts[3], 1);
  EXPECT_EQ(snapshot.count, 5);
  EXPECT_DOUBLE_EQ(snapshot.sum, 16.0);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.max, 9.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 3.2);
}

TEST(HistogramTest, NanDroppedInfinityLandsInOverflow) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.nan", {1.0});
  hist->Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(hist->Snapshot().count, 0);
  hist->Observe(std::numeric_limits<double>::infinity());
  const HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count, 1);
  EXPECT_EQ(snapshot.counts[1], 1);
}

TEST(HistogramTest, ConcurrentShardWritesMergeExactly) {
  MetricsRegistry registry;
  Histogram* hist =
      registry.GetHistogram("test.merge", LinearBuckets(0.0, 1.0, 8));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Observe(static_cast<double>(t % 4));  // values 0..3
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count, int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : snapshot.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snapshot.count);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 3.0);
  // Sum of 0+1+2+3 per 4 threads' worth of writes, kPerThread each, twice
  // (8 threads cover the residues 0..3 twice).
  EXPECT_DOUBLE_EQ(snapshot.sum, 2.0 * kPerThread * (0 + 1 + 2 + 3));
}

TEST(HistogramTest, ExemplarsLinkBucketsToTraces) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.exemplar", {1.0, 2.0});
  hist->Observe(0.5, /*exemplar_trace_id=*/101);
  hist->Observe(0.7, /*exemplar_trace_id=*/102);  // same bucket: last wins
  hist->Observe(5.0, /*exemplar_trace_id=*/999);  // overflow bucket
  hist->Observe(1.5);                             // no exemplar attached
  hist->Observe(1.7, /*exemplar_trace_id=*/0);    // zero id: not recorded

  const HistogramSnapshot snapshot = hist->Snapshot();
  ASSERT_EQ(snapshot.exemplars.size(), snapshot.counts.size());
  EXPECT_EQ(snapshot.exemplars[0], 102u);
  EXPECT_EQ(snapshot.exemplars[1], 0u);
  EXPECT_EQ(snapshot.exemplars[2], 999u);
  // The exemplar overload still counts the observation itself.
  EXPECT_EQ(snapshot.counts[0], 2);
  EXPECT_EQ(snapshot.counts[1], 2);
  EXPECT_EQ(snapshot.counts[2], 1);
  EXPECT_EQ(snapshot.count, 5);
}

TEST(HistogramTest, ExemplarNanObservationDropped) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.exemplar_nan", {1.0});
  hist->Observe(std::numeric_limits<double>::quiet_NaN(),
                /*exemplar_trace_id=*/55);
  const HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count, 0);
  for (uint64_t exemplar : snapshot.exemplars) EXPECT_EQ(exemplar, 0u);
}

TEST(HistogramTest, ExemplarsAppearInJsonScrape) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.exemplar_json", {1.0});
  hist->Observe(0.5, /*exemplar_trace_id=*/77);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find("77"), std::string::npos);
}

TEST(HistogramTest, QuantileExactAtExtremes) {
  MetricsRegistry registry;
  Histogram* hist =
      registry.GetHistogram("test.quantile", LinearBuckets(0.0, 10.0, 10));
  for (int i = 1; i <= 100; ++i) hist->Observe(static_cast<double>(i));
  const HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 100.0);
  const double median = snapshot.Quantile(0.5);
  EXPECT_GE(median, 40.0);
  EXPECT_LE(median, 60.0);
}

TEST(BucketHelpersTest, LinearAndExponential) {
  const std::vector<double> linear = LinearBuckets(0.0, 0.5, 4);
  ASSERT_EQ(linear.size(), 4u);
  EXPECT_DOUBLE_EQ(linear[0], 0.5);
  EXPECT_DOUBLE_EQ(linear[3], 2.0);

  const std::vector<double> expo = ExponentialBuckets(1.0, 2.0, 5);
  ASSERT_EQ(expo.size(), 5u);
  EXPECT_DOUBLE_EQ(expo[0], 1.0);
  EXPECT_DOUBLE_EQ(expo[4], 16.0);
}

TEST(MetricsRegistryTest, HistogramBoundsOnlyUsedOnFirstCreation) {
  MetricsRegistry registry;
  Histogram* first = registry.GetHistogram("test.once", {1.0, 2.0});
  Histogram* second = registry.GetHistogram("test.once", {9.0});
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->bounds().size(), 2u);
}

TEST(MetricsRegistryTest, JsonAndTextScrape) {
  MetricsRegistry registry;
  registry.GetCounter("zz.counter")->Increment(7);
  registry.GetGauge("aa.gauge")->Set(1.5);
  registry.GetHistogram("mm.hist", {1.0})->Observe(0.5);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"zz.counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"aa.gauge\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"mm.hist\""), std::string::npos);
  // Deterministic: same registry scrapes identically.
  EXPECT_EQ(json, registry.ToJson());

  const std::string text = registry.ToText();
  EXPECT_NE(text.find("zz.counter"), std::string::npos);
  EXPECT_NE(text.find("mm.hist"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.GetCounter("gone")->Increment();
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("gone")->Value(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace reconsume
