#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace reconsume {
namespace util {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();  // must not hang
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ThreadPool::ParallelFor(hits.size(), 4,
                          [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(5, 1, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // sequential: no data race
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  ThreadPool::ParallelFor(0, 4, [](size_t) { FAIL(); });
}

TEST(ParallelForTest, ComputesCorrectSum) {
  constexpr size_t kN = 10000;
  std::vector<int64_t> values(kN);
  ThreadPool::ParallelFor(kN, 8, [&](size_t i) {
    values[i] = static_cast<int64_t>(i) * 2;
  });
  const int64_t total = std::accumulate(values.begin(), values.end(),
                                        static_cast<int64_t>(0));
  EXPECT_EQ(total, static_cast<int64_t>(kN) * (kN - 1));
}

}  // namespace
}  // namespace util
}  // namespace reconsume
