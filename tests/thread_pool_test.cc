#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <numeric>
#include <thread>
#include <vector>

namespace reconsume {
namespace util {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();  // must not hang
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ThreadPool::ParallelFor(hits.size(), 4,
                          [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(5, 1, [&](size_t i) {
    order.push_back(static_cast<int>(i));  // sequential: no data race
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  ThreadPool::ParallelFor(0, 4, [](size_t) { FAIL(); });
}

TEST(ParallelShardsTest, RunsEveryShardExactlyOnce) {
  std::vector<std::atomic<int>> hits(8);
  ThreadPool::ParallelShards(hits.size(), /*base_seed=*/1,
                             [&](size_t shard, Rng*) {
                               hits[shard].fetch_add(1);
                             });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelShardsTest, ZeroShardsIsNoop) {
  ThreadPool::ParallelShards(0, 1, [](size_t, Rng*) { FAIL(); });
}

TEST(ParallelShardsTest, SingleShardRunsOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  ThreadPool::ParallelShards(1, 1, [&](size_t, Rng*) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ParallelShardsTest, WorkerRngStreamsAreDeterministic) {
  constexpr size_t kShards = 4;
  constexpr int kDraws = 5;
  auto collect = [&](uint64_t base_seed) {
    std::vector<std::vector<uint64_t>> draws(kShards);
    ThreadPool::ParallelShards(kShards, base_seed,
                               [&](size_t shard, Rng* rng) {
                                 for (int i = 0; i < kDraws; ++i) {
                                   draws[shard].push_back(rng->Next());
                                 }
                               });
    return draws;
  };
  const auto first = collect(42);
  const auto second = collect(42);
  // Reproducible: shard w's stream depends only on (base_seed, w).
  EXPECT_EQ(first, second);
  // Distinct across shards and across base seeds.
  for (size_t a = 0; a < kShards; ++a) {
    for (size_t b = a + 1; b < kShards; ++b) {
      EXPECT_NE(first[a], first[b]);
    }
  }
  EXPECT_NE(collect(43), first);
}

TEST(ParallelShardsTest, SupportsBarriersAcrossShards) {
  // Unlike ParallelFor, every shard gets a live concurrent thread, so a
  // barrier all shards must reach cannot deadlock — the property the Hogwild
  // trainer's convergence rounds rely on.
  constexpr size_t kShards = 3;
  std::barrier<> sync(kShards);
  std::atomic<int> before{0}, after{0};
  ThreadPool::ParallelShards(kShards, 9, [&](size_t, Rng*) {
    before.fetch_add(1);
    sync.arrive_and_wait();
    EXPECT_EQ(before.load(), static_cast<int>(kShards));
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), static_cast<int>(kShards));
}

TEST(ParallelForTest, ComputesCorrectSum) {
  constexpr size_t kN = 10000;
  std::vector<int64_t> values(kN);
  ThreadPool::ParallelFor(kN, 8, [&](size_t i) {
    values[i] = static_cast<int64_t>(i) * 2;
  });
  const int64_t total = std::accumulate(values.begin(), values.end(),
                                        static_cast<int64_t>(0));
  EXPECT_EQ(total, static_cast<int64_t>(kN) * (kN - 1));
}

}  // namespace
}  // namespace util
}  // namespace reconsume
