// End-to-end checks that the trainer, evaluator, and checkpoint manager emit
// the documented telemetry (docs/observability.md): event order over a real
// training run, metrics counters that reconcile with the TrainReport, resume
// and failpoint events, and TelemetrySession writing its configured outputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/simple_recommenders.h"
#include "core/checkpoint.h"
#include "core/ts_ppr.h"
#include "core/ts_ppr_trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/fileio.h"

namespace reconsume {
namespace core {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;
  std::unique_ptr<features::FeatureExtractor> extractor;
  std::unique_ptr<sampling::TrainingSet> training_set;

  Fixture() {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.05))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
    extractor = std::make_unique<features::FeatureExtractor>(
        table.get(), features::FeatureConfig::AllFeatures());
    training_set = std::make_unique<sampling::TrainingSet>(
        sampling::TrainingSet::Build(*split, *extractor, {}).ValueOrDie());
  }

  TsPprModel MakeModel(TsPprConfig config = {}) const {
    return TsPprModel::Create(dataset.num_users(), dataset.num_items(), 4,
                              config)
        .ValueOrDie();
  }
};

std::vector<const obs::Event*> OfType(const std::vector<obs::Event>& events,
                                      const std::string& type) {
  std::vector<const obs::Event*> out;
  for (const obs::Event& event : events) {
    if (event.type() == type) out.push_back(&event);
  }
  return out;
}

TEST(TelemetryIntegrationTest, TrainerEmitsOrderedEventsAndExactStepCounter) {
  Fixture fixture;
  TrainOptions options;
  options.checkpoint_dir = ::testing::TempDir() + "/telemetry_ckpt_order";
  options.checkpoint_every_checks = 1;
  TsPprTrainer trainer(options);
  auto model = fixture.MakeModel();
  util::Rng rng(7);

  obs::MetricsRegistry::Global().Reset();
  obs::CaptureSink sink;
  obs::EventStream::Global().Attach(&sink);
  const auto report =
      trainer.Train(*fixture.training_set, &model, &rng).ValueOrDie();
  obs::EventStream::Global().Detach(&sink);

  const std::vector<obs::Event> events = sink.events();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().type(), "train_start");
  EXPECT_EQ(events.back().type(), "train_end");
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);  // stream stamping is ordered
  }

  // One epoch event per convergence check, steps matching the Fig. 12 curve
  // (curve[0] is the pre-training baseline at step 0, which has no event).
  const auto epochs = OfType(events, "epoch");
  ASSERT_EQ(epochs.size() + 1, report.curve.size());
  for (size_t i = 0; i < epochs.size(); ++i) {
    EXPECT_EQ(static_cast<int64_t>(epochs[i]->Number("step")),
              report.curve[i + 1].step);
    EXPECT_DOUBLE_EQ(epochs[i]->Number("r_tilde"),
                     report.curve[i + 1].r_tilde);
    EXPECT_GT(epochs[i]->Number("quadruples_per_sec"), 0.0);
  }

  // Checkpoint writes reconcile with the report and land mid-run.
  const auto writes = OfType(events, "checkpoint_write");
  EXPECT_EQ(writes.size(), static_cast<size_t>(report.checkpoints_written));
  ASSERT_GE(writes.size(), 1u);
  for (const obs::Event* write : writes) {
    EXPECT_GT(write->Number("step"), 0.0);
    EXPECT_LE(write->Number("step"), static_cast<double>(report.steps));
  }

  // train_start/train_end fields mirror the report.
  EXPECT_EQ(static_cast<int64_t>(events.front().Number("start_step")), 0);
  EXPECT_EQ(static_cast<int64_t>(events.back().Number("steps")), report.steps);
  EXPECT_EQ(events.back().Number("converged") != 0.0, report.converged);

  // The steps counter, reset before the run, counts exactly the SGD steps.
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("trainer.steps")->Value(),
      report.steps);
  const obs::HistogramSnapshot r_tilde =
      obs::MetricsRegistry::Global()
          .GetHistogram("trainer.epoch_r_tilde", {})
          ->Snapshot();
  EXPECT_EQ(r_tilde.count, static_cast<int64_t>(report.curve.size()) - 1);
}

TEST(TelemetryIntegrationTest, ResumeEmitsCheckpointRestoreEvent) {
  Fixture fixture;
  TrainOptions options;
  options.checkpoint_dir = ::testing::TempDir() + "/telemetry_ckpt_resume";
  options.checkpoint_every_checks = 1;
  TsPprTrainer trainer(options);
  auto model = fixture.MakeModel();
  util::Rng rng(7);
  const auto first =
      trainer.Train(*fixture.training_set, &model, &rng).ValueOrDie();
  ASSERT_GE(first.checkpoints_written, 1);
  const std::string path =
      FindLatestGoodCheckpoint(options.checkpoint_dir).ValueOrDie();

  obs::CaptureSink sink;
  obs::EventStream::Global().Attach(&sink);
  auto resumed_model = fixture.MakeModel();
  util::Rng resume_rng(99);  // ignored: the snapshot re-synchronizes it
  const auto resumed =
      trainer.ResumeFrom(path, *fixture.training_set, &resumed_model,
                         &resume_rng)
          .ValueOrDie();
  obs::EventStream::Global().Detach(&sink);

  const std::vector<obs::Event> events = sink.events();
  const auto restores = OfType(events, "checkpoint_restore");
  ASSERT_EQ(restores.size(), 1u);
  EXPECT_EQ(restores[0]->Find("path")->s, path);
  EXPECT_EQ(static_cast<int64_t>(restores[0]->Number("step")),
            resumed.resumed_from_step);
  EXPECT_GT(resumed.resumed_from_step, 0);

  const auto starts = OfType(events, "train_start");
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0]->Number("resumed"), 1.0);
  EXPECT_EQ(static_cast<int64_t>(starts[0]->Number("start_step")),
            resumed.resumed_from_step);
}

TEST(TelemetryIntegrationTest, ParallelTrainerEmitsSameEventShape) {
  Fixture fixture;
  TrainOptions options;
  options.num_threads = 2;
  TsPprTrainer trainer(options);
  auto model = fixture.MakeModel();
  util::Rng rng(7);

  obs::CaptureSink sink;
  obs::EventStream::Global().Attach(&sink);
  const auto report =
      trainer.Train(*fixture.training_set, &model, &rng).ValueOrDie();
  obs::EventStream::Global().Detach(&sink);

  const std::vector<obs::Event> events = sink.events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front().type(), "train_start");
  EXPECT_EQ(static_cast<int64_t>(events.front().Number("num_workers")), 2);
  EXPECT_EQ(events.back().type(), "train_end");
  EXPECT_EQ(OfType(events, "epoch").size() + 1, report.curve.size());
}

TEST(TelemetryIntegrationTest, SessionWritesConfiguredOutputs) {
  Fixture fixture;
  obs::TelemetryConfig config;
  config.metrics_path = ::testing::TempDir() + "/telemetry_m.json";
  config.trace_path = ::testing::TempDir() + "/telemetry_t.json";
  config.events_path = ::testing::TempDir() + "/telemetry_e.jsonl";
  auto session = obs::TelemetrySession::Start(config).ValueOrDie();
  ASSERT_TRUE(session.active());

  TsPprTrainer trainer;
  auto model = fixture.MakeModel();
  util::Rng rng(7);
  ASSERT_TRUE(trainer.Train(*fixture.training_set, &model, &rng).ok());
  ASSERT_TRUE(session.Finish().ok());
  EXPECT_FALSE(obs::EventStream::Global().enabled());
  EXPECT_FALSE(obs::TraceRecorder::Global().enabled());

  const std::string metrics =
      util::ReadFileToString(config.metrics_path).ValueOrDie();
  EXPECT_NE(metrics.find("trainer.steps"), std::string::npos);
  EXPECT_NE(metrics.find("trainer.epoch_r_tilde"), std::string::npos);
  EXPECT_NE(metrics.find("trainer.quadruples_per_sec"), std::string::npos);

  const std::string events =
      util::ReadFileToString(config.events_path).ValueOrDie();
  EXPECT_NE(events.find("\"type\":\"train_start\""), std::string::npos);
  EXPECT_NE(events.find("\"type\":\"epoch\""), std::string::npos);
  EXPECT_NE(events.find("\"type\":\"train_end\""), std::string::npos);

  const std::string trace =
      util::ReadFileToString(config.trace_path).ValueOrDie();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("trainer/train"), std::string::npos);
  EXPECT_NE(trace.find("trainer/check"), std::string::npos);

  // Finish is idempotent and the session is now inactive.
  EXPECT_TRUE(session.Finish().ok());
  EXPECT_FALSE(session.active());
}

TEST(TelemetryIntegrationTest, EvaluatorEmitsEvalEvents) {
  Fixture fixture;
  baselines::RandomRecommender recommender;
  eval::EvalOptions options;
  options.window_capacity = 100;
  options.min_gap = 10;
  eval::Evaluator evaluator(fixture.split.get(), options);

  obs::CaptureSink sink;
  obs::EventStream::Global().Attach(&sink);
  const auto result = evaluator.Evaluate(&recommender).ValueOrDie();
  obs::EventStream::Global().Detach(&sink);

  const std::vector<obs::Event> events = sink.events();
  const auto starts = OfType(events, "eval_start");
  const auto ends = OfType(events, "eval_end");
  ASSERT_EQ(starts.size(), 1u);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(starts[0]->Find("method")->s, "Random");
  EXPECT_EQ(static_cast<int64_t>(ends[0]->Number("num_instances")),
            result.num_instances);
  ASSERT_FALSE(result.maap.empty());
  EXPECT_DOUBLE_EQ(ends[0]->Number("maap@1"), result.maap[0]);
}

#if RECONSUME_FAILPOINTS_ENABLED
TEST(TelemetryIntegrationTest, FailpointTripsSurfaceInEventStream) {
  Fixture fixture;
  obs::TelemetryConfig config;
  config.events_path = ::testing::TempDir() + "/telemetry_fp.jsonl";
  auto session = obs::TelemetrySession::Start(config).ValueOrDie();

  baselines::RandomRecommender recommender;
  eval::EvalOptions options;
  options.window_capacity = 100;
  options.min_gap = 10;
  options.skip_invalid_users = true;
  eval::Evaluator evaluator(fixture.split.get(), options);
  {
    util::ScopedFailpoint fp("eval/user", "error-once");
    const auto result = evaluator.Evaluate(&recommender).ValueOrDie();
    EXPECT_EQ(result.num_users_skipped, 1);
  }
  ASSERT_TRUE(session.Finish().ok());

  const std::string events =
      util::ReadFileToString(config.events_path).ValueOrDie();
  EXPECT_NE(events.find("\"type\":\"failpoint_fired\""), std::string::npos);
  EXPECT_NE(events.find("eval/user"), std::string::npos);
}
#endif  // RECONSUME_FAILPOINTS_ENABLED

}  // namespace
}  // namespace core
}  // namespace reconsume
