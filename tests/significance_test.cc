#include "eval/significance.h"

#include <gtest/gtest.h>

#include "baselines/simple_recommenders.h"
#include "core/ts_ppr.h"
#include "data/synthetic.h"

namespace reconsume {
namespace eval {
namespace {

TEST(SignTestTest, KnownValues) {
  EXPECT_DOUBLE_EQ(SignTestPValue(0, 0), 1.0);
  // 5 wins out of 5: 2 * (1/32) = 0.0625.
  EXPECT_NEAR(SignTestPValue(5, 5), 0.0625, 1e-12);
  EXPECT_NEAR(SignTestPValue(0, 5), 0.0625, 1e-12);
  // Balanced split has p ~ 1.
  EXPECT_NEAR(SignTestPValue(5, 10), 1.0, 1e-9);
  // 9/10: two-sided p = 2 * (C(10,0)+C(10,1)) / 1024 = 22/1024.
  EXPECT_NEAR(SignTestPValue(9, 10), 22.0 / 1024.0, 1e-12);
  // Symmetry.
  EXPECT_NEAR(SignTestPValue(3, 20), SignTestPValue(17, 20), 1e-12);
}

TEST(SignTestTest, LargeCountsStayFinite) {
  const double p = SignTestPValue(600, 1000);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1e-8);  // 60/40 split over 1000 users is decisive
}

TEST(WilcoxonTest, TooFewSamplesReturnsOne) {
  EXPECT_DOUBLE_EQ(WilcoxonSignedRankPValue({1.0, -1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(WilcoxonSignedRankPValue({}), 1.0);
  // All zeros: nothing non-tied.
  EXPECT_DOUBLE_EQ(WilcoxonSignedRankPValue(std::vector<double>(50, 0.0)),
                   1.0);
}

TEST(WilcoxonTest, StrongOneSidedEffectIsSignificant) {
  std::vector<double> diffs;
  for (int i = 1; i <= 30; ++i) diffs.push_back(0.01 * i);
  EXPECT_LT(WilcoxonSignedRankPValue(diffs), 1e-5);
}

TEST(WilcoxonTest, SymmetricNoiseIsNot) {
  std::vector<double> diffs;
  for (int i = 1; i <= 15; ++i) {
    diffs.push_back(0.01 * i);
    diffs.push_back(-0.01 * i);
  }
  EXPECT_GT(WilcoxonSignedRankPValue(diffs), 0.5);
}

TEST(ComparePairedTest, TsPprBeatsRandomSignificantly) {
  data::Dataset dataset =
      data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.3))
          .Generate()
          .ValueOrDie()
          .FilterByMinTrainLength(0.7, 100);
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();

  core::TsPprPipelineConfig config;
  auto ts_ppr = core::TsPpr::Fit(split, config).ValueOrDie();
  baselines::RandomRecommender random_rec;

  EvalOptions options;
  options.window_capacity = 100;
  options.min_gap = 10;
  const auto comparisons =
      ComparePaired(split, options, ts_ppr.recommender(), &random_rec)
          .ValueOrDie();
  ASSERT_EQ(comparisons.size(), 3u);  // top 1, 5, 10
  for (const auto& c : comparisons) {
    EXPECT_GT(c.num_users, 0);
    EXPECT_GT(c.wins_a, c.wins_b) << "Top-" << c.top_n;
    EXPECT_GT(c.mean_difference, 0.0);
    EXPECT_EQ(c.wins_a + c.wins_b + c.ties, c.num_users);
  }
  // At Top-10 the win should be decisive across ~45 users.
  EXPECT_LT(comparisons[2].sign_test_p, 0.01);
  EXPECT_LT(comparisons[2].wilcoxon_p, 0.01);
}

TEST(ComparePairedTest, SelfComparisonIsAllTies) {
  data::Dataset dataset =
      data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.05))
          .Generate()
          .ValueOrDie();
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  features::StaticFeatureTable table =
      features::StaticFeatureTable::Compute(split, 100).ValueOrDie();
  baselines::PopRecommender pop_a(&table), pop_b(&table);

  EvalOptions options;
  options.window_capacity = 100;
  options.min_gap = 10;
  const auto comparisons =
      ComparePaired(split, options, &pop_a, &pop_b).ValueOrDie();
  for (const auto& c : comparisons) {
    EXPECT_EQ(c.wins_a, 0);
    EXPECT_EQ(c.wins_b, 0);
    EXPECT_EQ(c.ties, c.num_users);
    EXPECT_DOUBLE_EQ(c.mean_difference, 0.0);
    EXPECT_DOUBLE_EQ(c.sign_test_p, 1.0);
    EXPECT_DOUBLE_EQ(c.wilcoxon_p, 1.0);
  }
}

TEST(ComparePairedTest, NullRecommenderRejected) {
  data::Dataset dataset =
      data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.05))
          .Generate()
          .ValueOrDie();
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  baselines::RandomRecommender random_rec;
  EvalOptions options;
  EXPECT_FALSE(ComparePaired(split, options, &random_rec, nullptr).ok());
  EXPECT_FALSE(ComparePaired(split, options, nullptr, &random_rec).ok());
}

}  // namespace
}  // namespace eval
}  // namespace reconsume
