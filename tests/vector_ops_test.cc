#include "math/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/random.h"

namespace reconsume {
namespace math {
namespace {

TEST(VectorOpsTest, DotBasic) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(x, y), 4 - 10 + 18);
}

TEST(VectorOpsTest, DotEmptyIsZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Dot(empty, empty), 0.0);
}

TEST(VectorOpsTest, AxpyAccumulates) {
  const std::vector<double> x = {1, 2};
  std::vector<double> y = {10, 20};
  Axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
  EXPECT_DOUBLE_EQ(y[1], 21.0);
}

TEST(VectorOpsTest, ScaleInPlace) {
  std::vector<double> x = {2, -4};
  Scale(-0.5, x);
  EXPECT_DOUBLE_EQ(x[0], -1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(VectorOpsTest, SubtractIntoThirdAndAliased) {
  const std::vector<double> x = {5, 7};
  const std::vector<double> y = {2, 10};
  std::vector<double> out(2);
  Subtract(x, y, out);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], -3.0);

  std::vector<double> aliased = {5, 7};
  Subtract(aliased, y, aliased);
  EXPECT_DOUBLE_EQ(aliased[0], 3.0);
  EXPECT_DOUBLE_EQ(aliased[1], -3.0);
}

TEST(VectorOpsTest, Norms) {
  const std::vector<double> x = {3, -4};
  EXPECT_DOUBLE_EQ(SquaredNorm(x), 25.0);
  EXPECT_DOUBLE_EQ(Norm(x), 5.0);
  EXPECT_DOUBLE_EQ(MaxAbs(x), 4.0);
}

TEST(VectorOpsTest, AllFiniteDetectsBadValues) {
  EXPECT_TRUE(AllFinite(std::vector<double>{1, 2, 3}));
  EXPECT_FALSE(AllFinite(std::vector<double>{
      1, std::numeric_limits<double>::quiet_NaN()}));
  EXPECT_FALSE(AllFinite(std::vector<double>{
      std::numeric_limits<double>::infinity()}));
  EXPECT_TRUE(AllFinite(std::vector<double>{}));
}

TEST(VectorOpsTest, FillSetsAll) {
  std::vector<double> x(5, 1.0);
  Fill(x, -2.5);
  for (double v : x) EXPECT_DOUBLE_EQ(v, -2.5);
}

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-15);
  EXPECT_NEAR(Sigmoid(-1.0), 1.0 - Sigmoid(1.0), 1e-15);
}

TEST(SigmoidTest, SaturatesWithoutNan) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(Sigmoid(710.0)));
  EXPECT_FALSE(std::isnan(Sigmoid(-710.0)));
}

class SigmoidPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SigmoidPropertyTest, SymmetryAndMonotonicity) {
  const double m = GetParam();
  EXPECT_NEAR(Sigmoid(m) + Sigmoid(-m), 1.0, 1e-12);
  // Strict monotonicity only while representable; saturates at ~36.7 where
  // 1 - sigmoid(m) underflows below double epsilon.
  if (std::fabs(m) < 30) {
    EXPECT_GT(Sigmoid(m + 0.1), Sigmoid(m));
    EXPECT_GT(Sigmoid(m), 0.0);
    EXPECT_LT(Sigmoid(m), 1.0);
  } else {
    EXPECT_GE(Sigmoid(m + 0.1), Sigmoid(m));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SigmoidPropertyTest,
                         ::testing::Values(-50.0, -5.0, -1.0, -0.1, 0.0, 0.1,
                                           1.0, 5.0, 50.0));

class Log1pExpPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(Log1pExpPropertyTest, MatchesDefinitionAndLossIdentity) {
  const double m = GetParam();
  if (std::fabs(m) < 30) {
    EXPECT_NEAR(Log1pExp(m), std::log1p(std::exp(m)), 1e-10);
  }
  // -ln sigmoid(m) == log(1 + e^{-m}).
  EXPECT_NEAR(-std::log(Sigmoid(m)), Log1pExp(-m), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Log1pExpPropertyTest,
                         ::testing::Values(-20.0, -2.0, 0.0, 2.0, 20.0, 100.0));

TEST(Log1pExpTest, LargeInputIsLinear) {
  EXPECT_NEAR(Log1pExp(1000.0), 1000.0, 1e-9);
  EXPECT_NEAR(Log1pExp(-1000.0), 0.0, 1e-9);
}

TEST(VectorOpsPropertyTest, DotIsBilinearOnRandomVectors) {
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(8), y(8), z(8);
    for (size_t i = 0; i < 8; ++i) {
      x[i] = rng.Gaussian(0, 1);
      y[i] = rng.Gaussian(0, 1);
      z[i] = rng.Gaussian(0, 1);
    }
    const double a = rng.UniformDouble(-2, 2);
    // <ax + z, y> == a<x,y> + <z,y>
    std::vector<double> axz = z;
    Axpy(a, x, axz);
    EXPECT_NEAR(Dot(axz, y), a * Dot(x, y) + Dot(z, y), 1e-9);
  }
}

}  // namespace
}  // namespace math
}  // namespace reconsume
