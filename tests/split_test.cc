#include "data/split.h"

#include <gtest/gtest.h>

namespace reconsume {
namespace data {
namespace {

Dataset MakeDataset(const std::vector<int>& lengths) {
  DatasetBuilder builder;
  for (size_t u = 0; u < lengths.size(); ++u) {
    for (int t = 0; t < lengths[u]; ++t) {
      EXPECT_TRUE(builder.Add(static_cast<int64_t>(u), t % 3, t).ok());
    }
  }
  return builder.Build().ValueOrDie();
}

TEST(SplitTest, RejectsBadArguments) {
  const Dataset dataset = MakeDataset({10});
  EXPECT_EQ(TrainTestSplit::Temporal(nullptr, 0.7).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TrainTestSplit::Temporal(&dataset, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TrainTestSplit::Temporal(&dataset, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TrainTestSplit::Temporal(&dataset, -0.3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SplitTest, SplitPointIsFloorOfFraction) {
  const Dataset dataset = MakeDataset({10, 7, 1});
  const auto split = TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  EXPECT_EQ(split.split_point(0), 7u);   // 0.7 * 10
  EXPECT_EQ(split.split_point(1), 4u);   // floor(4.9)
  EXPECT_EQ(split.split_point(2), 0u);   // floor(0.7)
  EXPECT_EQ(split.train_size(0), 7u);
  EXPECT_EQ(split.test_size(0), 3u);
  EXPECT_EQ(split.test_size(2), 1u);
}

TEST(SplitTest, TotalsAddUp) {
  const Dataset dataset = MakeDataset({10, 20, 30});
  const auto split = TrainTestSplit::Temporal(&dataset, 0.5).ValueOrDie();
  EXPECT_EQ(split.total_train_events(), 5 + 10 + 15);
  EXPECT_EQ(split.total_test_events(), 5 + 10 + 15);
  EXPECT_EQ(split.total_train_events() + split.total_test_events(),
            dataset.num_interactions());
}

TEST(SplitTest, DatasetAccessor) {
  const Dataset dataset = MakeDataset({5});
  const auto split = TrainTestSplit::Temporal(&dataset, 0.6).ValueOrDie();
  EXPECT_EQ(&split.dataset(), &dataset);
}

}  // namespace
}  // namespace data
}  // namespace reconsume
