// ScoreCache: epoch-keyed hit/miss semantics, invalidate-on-observe,
// prefix-serving coverage, LRU capacity eviction, and the model-epoch
// coherence rules the hot-swap path depends on (stale lookups, insert
// rejection, and the advance/insert race — score_cache.h's audit).

#include "serve/score_cache.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace reconsume {
namespace serve {
namespace {

// The cache starts at model epoch 1 (matching a fresh ModelRegistry); the
// single-model tests below all insert and look up at that epoch.
constexpr int64_t kModel = 1;

std::vector<core::RankedItem> MakeRanking(int n, double base_score) {
  std::vector<core::RankedItem> items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::RankedItem item;
    item.item = static_cast<data::ItemId>(100 + i);
    item.score = base_score - i;
    items.push_back(item);
  }
  return items;
}

TEST(ScoreCacheTest, MissThenHitAtSameEpoch) {
  ScoreCache cache(/*capacity=*/64);
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(/*user=*/3, /*epoch=*/7, kModel, /*top_n=*/5,
                            &out));

  cache.Insert(3, 7, kModel, 5, MakeRanking(5, 10.0));
  ASSERT_TRUE(cache.Lookup(3, 7, kModel, 5, &out));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].item, 100);
  EXPECT_DOUBLE_EQ(out[0].score, 10.0);

  const ScoreCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
}

TEST(ScoreCacheTest, EpochMismatchMisses) {
  ScoreCache cache(64);
  cache.Insert(3, 7, kModel, 5, MakeRanking(5, 10.0));
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(3, /*epoch=*/8, kModel, 5, &out));  // newer window
  EXPECT_FALSE(cache.Lookup(3, /*epoch=*/6, kModel, 5, &out));  // older window
  EXPECT_TRUE(cache.Lookup(3, 7, kModel, 5, &out));
}

TEST(ScoreCacheTest, WiderEntryServesNarrowerRequestAsPrefix) {
  ScoreCache cache(64);
  cache.Insert(1, 0, kModel, /*n_computed=*/10, MakeRanking(10, 20.0));
  std::vector<core::RankedItem> out;
  ASSERT_TRUE(cache.Lookup(1, 0, kModel, /*top_n=*/3, &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].item, 100);
  EXPECT_EQ(out[2].item, 102);
  // ...but a wider request than computed must re-score.
  EXPECT_FALSE(cache.Lookup(1, 0, kModel, /*top_n=*/11, &out));
}

TEST(ScoreCacheTest, ExhaustedCandidatesServeAnyWidth) {
  ScoreCache cache(64);
  // Asked for 10, got 4: the candidate set is exhausted, so any top-n
  // request sees the complete ranking.
  cache.Insert(1, 0, kModel, /*n_computed=*/10, MakeRanking(4, 20.0));
  std::vector<core::RankedItem> out;
  ASSERT_TRUE(cache.Lookup(1, 0, kModel, /*top_n=*/50, &out));
  EXPECT_EQ(out.size(), 4u);
}

TEST(ScoreCacheTest, InvalidateDropsOnlyThatUser) {
  ScoreCache cache(64);
  cache.Insert(1, 0, kModel, 5, MakeRanking(5, 1.0));
  cache.Insert(2, 0, kModel, 5, MakeRanking(5, 2.0));
  cache.Invalidate(1);  // the serve path calls this on Observe
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(1, 0, kModel, 5, &out));
  EXPECT_TRUE(cache.Lookup(2, 0, kModel, 5, &out));
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.size(), 1u);

  cache.Invalidate(1);  // absent: a no-op, not an error
  EXPECT_EQ(cache.stats().invalidations, 1);
}

TEST(ScoreCacheTest, InsertRefreshesExistingUserInPlace) {
  ScoreCache cache(64);
  cache.Insert(5, 0, kModel, 5, MakeRanking(5, 1.0));
  cache.Insert(5, 1, kModel, 5, MakeRanking(5, 9.0));  // epoch advanced
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(5, 0, kModel, 5, &out));
  ASSERT_TRUE(cache.Lookup(5, 1, kModel, 5, &out));
  EXPECT_DOUBLE_EQ(out[0].score, 9.0);
  EXPECT_EQ(cache.size(), 1u);  // one entry per user, not one per epoch
}

TEST(ScoreCacheTest, CapacityEvictsLeastRecentlyUsed) {
  // One shard so the LRU order is globally observable.
  ScoreCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Insert(1, 0, kModel, 5, MakeRanking(5, 1.0));
  cache.Insert(2, 0, kModel, 5, MakeRanking(5, 2.0));

  // Touch user 1 so user 2 becomes the LRU victim.
  std::vector<core::RankedItem> out;
  ASSERT_TRUE(cache.Lookup(1, 0, kModel, 5, &out));

  cache.Insert(3, 0, kModel, 5, MakeRanking(5, 3.0));
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.Lookup(1, 0, kModel, 5, &out));
  EXPECT_FALSE(cache.Lookup(2, 0, kModel, 5, &out));  // evicted
  EXPECT_TRUE(cache.Lookup(3, 0, kModel, 5, &out));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ScoreCacheTest, ClearEmptiesEveryShard) {
  ScoreCache cache(64, /*num_shards=*/4);
  for (data::UserId u = 0; u < 16; ++u) {
    cache.Insert(u, 0, kModel, 5, MakeRanking(5, 1.0));
  }
  EXPECT_EQ(cache.size(), 16u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(0, 0, kModel, 5, &out));
}

TEST(ScoreCacheTest, HitRateAggregates) {
  ScoreCache cache(64);
  cache.Insert(1, 0, kModel, 5, MakeRanking(5, 1.0));
  std::vector<core::RankedItem> out;
  EXPECT_TRUE(cache.Lookup(1, 0, kModel, 5, &out));
  EXPECT_TRUE(cache.Lookup(1, 0, kModel, 5, &out));
  EXPECT_FALSE(cache.Lookup(9, 0, kModel, 5, &out));
  EXPECT_NEAR(cache.stats().HitRate(), 2.0 / 3.0, 1e-12);
}

// --- model-epoch coherence (hot-swap support) ---

TEST(ScoreCacheTest, AdvanceModelEpochDropsEverything) {
  ScoreCache cache(64);
  EXPECT_EQ(cache.model_epoch(), 1);
  cache.Insert(1, 0, kModel, 5, MakeRanking(5, 1.0));
  cache.Insert(2, 3, kModel, 5, MakeRanking(5, 2.0));

  cache.AdvanceModelEpoch(2);
  EXPECT_EQ(cache.model_epoch(), 2);
  EXPECT_EQ(cache.size(), 0u);
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(1, 0, 2, 5, &out));
  // The new model's rankings cache normally.
  cache.Insert(1, 0, 2, 5, MakeRanking(5, 7.0));
  EXPECT_TRUE(cache.Lookup(1, 0, 2, 5, &out));
}

TEST(ScoreCacheTest, StaleModelInsertIsRejected) {
  ScoreCache cache(64);
  cache.AdvanceModelEpoch(2);
  // A worker that grabbed the old snapshot finishes scoring after the swap:
  // its insert must not land.
  cache.Insert(1, 0, /*model_epoch=*/1, 5, MakeRanking(5, 1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().rejected_inserts, 1);
  EXPECT_EQ(cache.stats().insertions, 0);
}

TEST(ScoreCacheTest, LookupNeverCrossesModelEpochs) {
  ScoreCache cache(64);
  cache.Insert(1, 0, kModel, 5, MakeRanking(5, 1.0));
  std::vector<core::RankedItem> out;
  // Same user+epoch, wrong model: must miss (fresh and stale alike).
  EXPECT_FALSE(cache.Lookup(1, 0, /*model_epoch=*/2, 5, &out));
  int64_t stale_epoch = -1;
  EXPECT_FALSE(cache.LookupStale(1, /*model_epoch=*/2, 5, &out,
                                 &stale_epoch));
}

TEST(ScoreCacheTest, LookupStaleServesOlderEpochSameModel) {
  ScoreCache cache(64);
  cache.Insert(1, /*epoch=*/4, kModel, 5, MakeRanking(5, 1.0));
  std::vector<core::RankedItem> out;
  // The live session moved to epoch 6; the fresh path misses...
  EXPECT_FALSE(cache.Lookup(1, 6, kModel, 5, &out));
  // ...but the degraded tier takes the epoch-4 entry and reports its age.
  int64_t stale_epoch = -1;
  ASSERT_TRUE(cache.LookupStale(1, kModel, 5, &out, &stale_epoch));
  EXPECT_EQ(stale_epoch, 4);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(cache.stats().stale_hits, 1);
}

// The swap race from score_cache.h's header audit, run for real: writers
// keep inserting under whatever model epoch they last read while another
// thread advances it. Invariant: a Lookup at the *new* epoch never returns
// a ranking inserted under an older one. Run under TSan this also proves
// the publish-then-clear ordering is data-race-free.
TEST(ScoreCacheTest, SwapDuringInsertNeverServesOldModelAsFresh) {
  ScoreCache cache(256, /*num_shards=*/4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&cache, &stop, w] {
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t model = cache.model_epoch();
        for (data::UserId u = 0; u < 32; ++u) {
          // Scores encode the model epoch so a cross-epoch leak is visible.
          cache.Insert(u, /*epoch=*/w, model, 3,
                       MakeRanking(3, static_cast<double>(model) * 1000.0));
        }
      }
    });
  }
  std::vector<core::RankedItem> out;
  for (int64_t next = 2; next < 50; ++next) {
    cache.AdvanceModelEpoch(next);
    for (data::UserId u = 0; u < 32; ++u) {
      for (int w = 0; w < 4; ++w) {
        if (cache.Lookup(u, w, next, 3, &out)) {
          ASSERT_FALSE(out.empty());
          // A hit at epoch `next` must carry epoch-`next` scores.
          EXPECT_DOUBLE_EQ(out[0].score, static_cast<double>(next) * 1000.0);
        }
      }
    }
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
}

}  // namespace
}  // namespace serve
}  // namespace reconsume
