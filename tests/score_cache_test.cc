// ScoreCache: epoch-keyed hit/miss semantics, invalidate-on-observe,
// prefix-serving coverage, and LRU capacity eviction.

#include "serve/score_cache.h"

#include <vector>

#include "gtest/gtest.h"

namespace reconsume {
namespace serve {
namespace {

std::vector<core::RankedItem> MakeRanking(int n, double base_score) {
  std::vector<core::RankedItem> items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::RankedItem item;
    item.item = static_cast<data::ItemId>(100 + i);
    item.score = base_score - i;
    items.push_back(item);
  }
  return items;
}

TEST(ScoreCacheTest, MissThenHitAtSameEpoch) {
  ScoreCache cache(/*capacity=*/64);
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(/*user=*/3, /*epoch=*/7, /*top_n=*/5, &out));

  cache.Insert(3, 7, 5, MakeRanking(5, 10.0));
  ASSERT_TRUE(cache.Lookup(3, 7, 5, &out));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].item, 100);
  EXPECT_DOUBLE_EQ(out[0].score, 10.0);

  const ScoreCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
}

TEST(ScoreCacheTest, EpochMismatchMisses) {
  ScoreCache cache(64);
  cache.Insert(3, 7, 5, MakeRanking(5, 10.0));
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(3, /*epoch=*/8, 5, &out));  // newer window state
  EXPECT_FALSE(cache.Lookup(3, /*epoch=*/6, 5, &out));  // older window state
  EXPECT_TRUE(cache.Lookup(3, 7, 5, &out));
}

TEST(ScoreCacheTest, WiderEntryServesNarrowerRequestAsPrefix) {
  ScoreCache cache(64);
  cache.Insert(1, 0, /*n_computed=*/10, MakeRanking(10, 20.0));
  std::vector<core::RankedItem> out;
  ASSERT_TRUE(cache.Lookup(1, 0, /*top_n=*/3, &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].item, 100);
  EXPECT_EQ(out[2].item, 102);
  // ...but a wider request than computed must re-score.
  EXPECT_FALSE(cache.Lookup(1, 0, /*top_n=*/11, &out));
}

TEST(ScoreCacheTest, ExhaustedCandidatesServeAnyWidth) {
  ScoreCache cache(64);
  // Asked for 10, got 4: the candidate set is exhausted, so any top-n
  // request sees the complete ranking.
  cache.Insert(1, 0, /*n_computed=*/10, MakeRanking(4, 20.0));
  std::vector<core::RankedItem> out;
  ASSERT_TRUE(cache.Lookup(1, 0, /*top_n=*/50, &out));
  EXPECT_EQ(out.size(), 4u);
}

TEST(ScoreCacheTest, InvalidateDropsOnlyThatUser) {
  ScoreCache cache(64);
  cache.Insert(1, 0, 5, MakeRanking(5, 1.0));
  cache.Insert(2, 0, 5, MakeRanking(5, 2.0));
  cache.Invalidate(1);  // the serve path calls this on Observe
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(1, 0, 5, &out));
  EXPECT_TRUE(cache.Lookup(2, 0, 5, &out));
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.size(), 1u);

  cache.Invalidate(1);  // absent: a no-op, not an error
  EXPECT_EQ(cache.stats().invalidations, 1);
}

TEST(ScoreCacheTest, InsertRefreshesExistingUserInPlace) {
  ScoreCache cache(64);
  cache.Insert(5, 0, 5, MakeRanking(5, 1.0));
  cache.Insert(5, 1, 5, MakeRanking(5, 9.0));  // epoch advanced
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(5, 0, 5, &out));
  ASSERT_TRUE(cache.Lookup(5, 1, 5, &out));
  EXPECT_DOUBLE_EQ(out[0].score, 9.0);
  EXPECT_EQ(cache.size(), 1u);  // one entry per user, not one per epoch
}

TEST(ScoreCacheTest, CapacityEvictsLeastRecentlyUsed) {
  // One shard so the LRU order is globally observable.
  ScoreCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Insert(1, 0, 5, MakeRanking(5, 1.0));
  cache.Insert(2, 0, 5, MakeRanking(5, 2.0));

  // Touch user 1 so user 2 becomes the LRU victim.
  std::vector<core::RankedItem> out;
  ASSERT_TRUE(cache.Lookup(1, 0, 5, &out));

  cache.Insert(3, 0, 5, MakeRanking(5, 3.0));
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.Lookup(1, 0, 5, &out));
  EXPECT_FALSE(cache.Lookup(2, 0, 5, &out));  // evicted
  EXPECT_TRUE(cache.Lookup(3, 0, 5, &out));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ScoreCacheTest, ClearEmptiesEveryShard) {
  ScoreCache cache(64, /*num_shards=*/4);
  for (data::UserId u = 0; u < 16; ++u) {
    cache.Insert(u, 0, 5, MakeRanking(5, 1.0));
  }
  EXPECT_EQ(cache.size(), 16u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  std::vector<core::RankedItem> out;
  EXPECT_FALSE(cache.Lookup(0, 0, 5, &out));
}

TEST(ScoreCacheTest, HitRateAggregates) {
  ScoreCache cache(64);
  cache.Insert(1, 0, 5, MakeRanking(5, 1.0));
  std::vector<core::RankedItem> out;
  EXPECT_TRUE(cache.Lookup(1, 0, 5, &out));
  EXPECT_TRUE(cache.Lookup(1, 0, 5, &out));
  EXPECT_FALSE(cache.Lookup(9, 0, 5, &out));
  EXPECT_NEAR(cache.stats().HitRate(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace serve
}  // namespace reconsume
