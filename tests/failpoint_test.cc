// Tests for the named-failpoint registry: policy grammar, firing semantics,
// hit/fire accounting, the RECONSUME_FAILPOINTS list format, and the
// RC_FAILPOINT macros. Compiled against the failpoints-enabled build; the
// suite degenerates to the registry API when the macros are compiled out.

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace reconsume {
namespace util {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().Clear(); }
  FailpointRegistry& registry() { return FailpointRegistry::Global(); }
};

TEST_F(FailpointTest, UnknownPointNeverFires) {
  EXPECT_TRUE(registry().Evaluate("nobody/armed/this").ok());
  EXPECT_EQ(registry().fires("nobody/armed/this"), 0);
}

TEST_F(FailpointTest, OffPolicyNeverFires) {
  ASSERT_TRUE(registry().Set("t/off", "off").ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(registry().Evaluate("t/off").ok());
  EXPECT_EQ(registry().hits("t/off"), 5);
  EXPECT_EQ(registry().fires("t/off"), 0);
}

TEST_F(FailpointTest, ErrorOnceFiresExactlyOnce) {
  ASSERT_TRUE(registry().Set("t/once", "error-once").ok());
  const Status first = registry().Evaluate("t/once");
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.message().find("t/once"), std::string::npos);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(registry().Evaluate("t/once").ok());
  EXPECT_EQ(registry().fires("t/once"), 1);
  EXPECT_EQ(registry().hits("t/once"), 5);
}

TEST_F(FailpointTest, ErrorEveryFiresOnEveryNthHit) {
  ASSERT_TRUE(registry().Set("t/every", "error-every(3)").ok());
  int fired = 0;
  for (int i = 1; i <= 9; ++i) {
    const bool fails = !registry().Evaluate("t/every").ok();
    if (fails) ++fired;
    EXPECT_EQ(fails, i % 3 == 0) << "hit " << i;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(registry().fires("t/every"), 3);
}

TEST_F(FailpointTest, ProbZeroNeverProbOneAlwaysFires) {
  ASSERT_TRUE(registry().Set("t/p0", "prob(0.0)").ok());
  ASSERT_TRUE(registry().Set("t/p1", "prob(1.0)").ok());
  registry().SeedProbabilistic(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(registry().Evaluate("t/p0").ok());
    EXPECT_FALSE(registry().Evaluate("t/p1").ok());
  }
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(registry().Set("t/bad", "sometimes").ok());
  EXPECT_FALSE(registry().Set("t/bad", "error-every(0)").ok());
  EXPECT_FALSE(registry().Set("t/bad", "error-every(x)").ok());
  EXPECT_FALSE(registry().Set("t/bad", "prob(1.5)").ok());
  EXPECT_FALSE(registry().Set("t/bad", "prob(-0.1)").ok());
  EXPECT_FALSE(registry().Set("t/bad", "").ok());
  // A rejected spec must not arm the point.
  EXPECT_TRUE(registry().Evaluate("t/bad").ok());
}

TEST_F(FailpointTest, ConfigureParsesCommaSeparatedList) {
  ASSERT_TRUE(
      registry().Configure("t/a=error-once,t/b=error-every(2)").ok());
  EXPECT_FALSE(registry().Evaluate("t/a").ok());
  EXPECT_TRUE(registry().Evaluate("t/a").ok());
  EXPECT_TRUE(registry().Evaluate("t/b").ok());
  EXPECT_FALSE(registry().Evaluate("t/b").ok());
}

TEST_F(FailpointTest, ConfigureRejectsMalformedList) {
  EXPECT_FALSE(registry().Configure("t/a").ok());           // no '='
  EXPECT_FALSE(registry().Configure("t/a=error-once,=x").ok());
}

TEST_F(FailpointTest, DisableDisarmsOnePoint) {
  ASSERT_TRUE(registry().Set("t/d1", "error-every(1)").ok());
  ASSERT_TRUE(registry().Set("t/d2", "error-every(1)").ok());
  registry().Disable("t/d1");
  EXPECT_TRUE(registry().Evaluate("t/d1").ok());
  EXPECT_FALSE(registry().Evaluate("t/d2").ok());
}

TEST_F(FailpointTest, ClearDisarmsEverything) {
  ASSERT_TRUE(registry().Set("t/c", "error-every(1)").ok());
  registry().Clear();
  EXPECT_TRUE(registry().Evaluate("t/c").ok());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnDestruction) {
  {
    ScopedFailpoint fp("t/scoped", "error-every(1)");
    EXPECT_FALSE(registry().Evaluate("t/scoped").ok());
  }
  EXPECT_TRUE(registry().Evaluate("t/scoped").ok());
}

#if RECONSUME_FAILPOINTS_ENABLED

Status FunctionWithFailpoint() {
  RC_FAILPOINT("t/macro");
  return Status::OK();
}

TEST_F(FailpointTest, MacroPropagatesInjectedStatus) {
  ASSERT_TRUE(FunctionWithFailpoint().ok());
  ScopedFailpoint fp("t/macro", "error-once");
  const Status status = FunctionWithFailpoint();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("t/macro"), std::string::npos);
  EXPECT_TRUE(FunctionWithFailpoint().ok());
}

TEST_F(FailpointTest, StatusMacroYieldsInjectedStatusWithoutReturning) {
  ScopedFailpoint fp("t/macro2", "error-every(2)");
  EXPECT_TRUE(RC_FAILPOINT_STATUS("t/macro2").ok());
  EXPECT_FALSE(RC_FAILPOINT_STATUS("t/macro2").ok());
}

TEST_F(FailpointTest, AbortPolicyRoutesThroughCheckHandler) {
  ASSERT_TRUE(
      FailpointRegistry::Global().Set("t/abort", "abort").ok());
  EXPECT_DEATH(FailpointRegistry::Global().Evaluate("t/abort"),
               "failpoint 't/abort' fired in abort mode");
}

#endif  // RECONSUME_FAILPOINTS_ENABLED

}  // namespace
}  // namespace util
}  // namespace reconsume
