// Hand-computed coverage of the kNovel and kUnified evaluation tasks, plus
// protocol invariants checked across all three tasks.

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "eval/evaluator.h"

namespace reconsume {
namespace eval {
namespace {

/// Fixed per-item priors; deterministic and task-agnostic.
class ScriptedRecommender : public Recommender {
 public:
  std::string name() const override { return "Scripted"; }
  void Score(data::UserId, const window::WindowWalker&,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override {
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] = -static_cast<double>(candidates[i]);  // item 0 ranks first
    }
  }
};

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;

  Fixture(const std::vector<std::vector<int>>& sequences,
          double train_fraction) {
    data::DatasetBuilder builder;
    for (size_t u = 0; u < sequences.size(); ++u) {
      for (size_t t = 0; t < sequences[u].size(); ++t) {
        EXPECT_TRUE(builder
                        .Add(static_cast<int64_t>(u), sequences[u][t],
                             static_cast<int64_t>(t))
                        .ok());
      }
    }
    dataset = builder.Build().ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, train_fraction).ValueOrDie());
  }

  AccuracyResult Evaluate(EvalTask task, int window, int min_gap) const {
    EvalOptions options;
    options.window_capacity = window;
    options.min_gap = min_gap;
    options.task = task;
    options.top_ns = {1, 2};
    Evaluator evaluator(split.get(), options);
    ScriptedRecommender scripted;
    return evaluator.Evaluate(&scripted).ValueOrDie();
  }
};

TEST(NovelTaskProtocolTest, HandComputed) {
  // Items: 0 1 0 1 | 2 0 3 2   (train 4, test 4, window 3).
  // t4: next 2; window {1,0,1} -> 2 not in window: novel instance.
  //     candidates = catalog \ window = {2, 3}; scripted ranks 2 first: hit@1.
  // t5: next 0; window {0,1,2} -> 0 in window: not a novel instance.
  // t6: next 3; window {1,2,0} -> novel. candidates = {3}: hit@1 trivially.
  // t7: next 2; window {2,0,3} -> in window: skip.
  Fixture fixture({{0, 1, 0, 1, 2, 0, 3, 2}}, 0.5);
  const auto acc = fixture.Evaluate(EvalTask::kNovel, 3, 0);
  EXPECT_EQ(acc.num_instances, 2);
  EXPECT_DOUBLE_EQ(acc.MaapAt(1), 1.0);
  EXPECT_DOUBLE_EQ(acc.mean_candidates, 1.5);  // {2,3} then {3}
}

TEST(UnifiedTaskProtocolTest, HandComputed) {
  // Same trace; kUnified evaluates all 4 test steps with the full catalog
  // {0,1,2,3} as candidates. Scripted ranks 0 > 1 > 2 > 3 always.
  // Targets: 2, 0, 3, 2 -> top-1 hits: only t5 (target 0) -> 1/4.
  // top-2 = {0,1}: still only t5 -> 1/4.
  Fixture fixture({{0, 1, 0, 1, 2, 0, 3, 2}}, 0.5);
  const auto acc = fixture.Evaluate(EvalTask::kUnified, 3, 0);
  EXPECT_EQ(acc.num_instances, 4);
  EXPECT_DOUBLE_EQ(acc.mean_candidates, 4.0);
  EXPECT_DOUBLE_EQ(acc.MaapAt(1), 0.25);
  EXPECT_DOUBLE_EQ(acc.MaapAt(2), 0.25);
}

TEST(TaskInvariantsTest, InstanceCountsPartition) {
  // Over any trace: kRepeat(min_gap=0) instances + kNovel instances ==
  // kUnified instances (every test step is exactly one of repeat/novel).
  Fixture fixture({{0, 1, 2, 0, 1, 3, 0, 2, 1, 0, 4, 2},
                   {5, 6, 5, 6, 5, 6, 7, 5, 6, 5, 6, 7}},
                  0.5);
  const auto repeat = fixture.Evaluate(EvalTask::kRepeat, 6, 0);
  const auto novel = fixture.Evaluate(EvalTask::kNovel, 6, 0);
  const auto unified = fixture.Evaluate(EvalTask::kUnified, 6, 0);
  EXPECT_EQ(repeat.num_instances + novel.num_instances,
            unified.num_instances);
}

TEST(TaskInvariantsTest, MaapMonotoneInCutoff) {
  Fixture fixture({{0, 1, 2, 0, 1, 3, 0, 2, 1, 0, 4, 2}}, 0.5);
  for (EvalTask task :
       {EvalTask::kRepeat, EvalTask::kNovel, EvalTask::kUnified}) {
    const auto acc = fixture.Evaluate(task, 6, 0);
    if (acc.num_instances == 0) continue;
    EXPECT_LE(acc.MaapAt(1), acc.MaapAt(2));
    EXPECT_LE(acc.MiapAt(1), acc.MiapAt(2));
  }
}

}  // namespace
}  // namespace eval
}  // namespace reconsume
