#include "data/analysis.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace reconsume {
namespace data {
namespace {

Dataset FromSequences(const std::vector<std::vector<int>>& sequences) {
  DatasetBuilder builder;
  for (size_t u = 0; u < sequences.size(); ++u) {
    for (size_t t = 0; t < sequences[u].size(); ++t) {
      EXPECT_TRUE(builder
                      .Add(static_cast<int64_t>(u), sequences[u][t],
                           static_cast<int64_t>(t))
                      .ok());
    }
  }
  return builder.Build().ValueOrDie();
}

TEST(RecencyCurveTest, HandComputedProbabilities) {
  // Sequence: a b a. At t=1: a has gap 1 (opportunity, not converted).
  // At t=2: a has gap 2 (converted), b has gap 1 (not converted).
  const Dataset dataset = FromSequences({{0, 1, 0}});
  const auto curve = ComputeRecencyCurve(dataset, 3);
  EXPECT_EQ(curve.opportunity_counts[0], 2);  // gap 1: a@t1, b@t2
  EXPECT_EQ(curve.opportunity_counts[1], 1);  // gap 2: a@t2
  EXPECT_DOUBLE_EQ(curve.reconsumption_probability[0], 0.0);
  EXPECT_DOUBLE_EQ(curve.reconsumption_probability[1], 1.0);
  EXPECT_EQ(curve.opportunity_counts[2], 0);
}

TEST(RecencyCurveTest, ProbabilitiesAreProbabilities) {
  const Dataset dataset = SyntheticTraceGenerator(GowallaLikeProfile(0.05))
                              .Generate()
                              .ValueOrDie();
  const auto curve = ComputeRecencyCurve(dataset, 30);
  for (double p : curve.reconsumption_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // The generator has a decaying recency kernel: gap-1 conversion should
  // comfortably exceed gap-30 conversion.
  EXPECT_GT(curve.reconsumption_probability[0],
            curve.reconsumption_probability[29]);
}

TEST(PopularityGiniTest, UniformIsZeroSkewedIsHigh) {
  const Dataset uniform = FromSequences({{0, 1, 2, 3, 0, 1, 2, 3}});
  EXPECT_NEAR(PopularityGini(uniform), 0.0, 1e-12);

  // One dominant item.
  const Dataset skewed = FromSequences({{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3}});
  EXPECT_GT(PopularityGini(skewed), 0.4);

  const Dataset generated = SyntheticTraceGenerator(GowallaLikeProfile(0.05))
                                .Generate()
                                .ValueOrDie();
  const double gini = PopularityGini(generated);
  EXPECT_GT(gini, 0.2);  // Zipf-like catalog
  EXPECT_LT(gini, 1.0);
}

TEST(RepeatShareTest, SumsToOneAndHeadHeavy) {
  const Dataset dataset = SyntheticTraceGenerator(GowallaLikeProfile(0.1))
                              .Generate()
                              .ValueOrDie();
  const auto shares = RepeatShareByPopularityDecile(dataset, 100);
  ASSERT_EQ(shares.size(), 10u);
  double total = 0.0;
  for (double s : shares) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Repeats concentrate on popular items (the [7] quality effect).
  EXPECT_GT(shares[0] + shares[1], shares[8] + shares[9]);
}

TEST(GapDistributionTest, NormalizedAndCapped) {
  const Dataset dataset = FromSequences({{0, 0, 1, 0, 1}});
  // Gaps: 0->0 gap 1; 0@t3 gap 2... wait: t1 gap1 (0), t3 gap 2 (0), t4 gap 2 (1).
  const auto dist = InterConsumptionGapDistribution(dataset, 2);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist[0], 1.0 / 3.0);  // one gap-1 out of three
  EXPECT_DOUBLE_EQ(dist[1], 2.0 / 3.0);  // two gaps >= 2 (capped)
}

TEST(GapDistributionTest, NoRepeatsYieldsZeros) {
  const Dataset dataset = FromSequences({{0, 1, 2, 3}});
  const auto dist = InterConsumptionGapDistribution(dataset, 5);
  for (double p : dist) EXPECT_DOUBLE_EQ(p, 0.0);
}

}  // namespace
}  // namespace data
}  // namespace reconsume
