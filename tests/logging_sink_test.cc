#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace reconsume {
namespace util {
namespace {

/// Captured copy of a LogRecord (the record's `file` pointer stays valid —
/// it points into the __FILE__ literal — but we copy it for clarity).
struct Captured {
  LogLevel level;
  std::string file;
  int line;
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;
};

class LoggingSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    records_.clear();
    SetLogLevel(LogLevel::kInfo);
    SetLogSink([this](const LogRecord& record) {
      records_.push_back(Captured{record.level, record.file, record.line,
                                  record.message, record.fields});
    });
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kInfo);
  }

  std::vector<Captured> records_;
};

TEST_F(LoggingSinkTest, SinkReceivesStructuredRecord) {
  RECONSUME_LOG(Warning).With("user", 42).With("score", 0.25)
      << "skipping user " << 42;
  ASSERT_EQ(records_.size(), 1u);
  const Captured& record = records_[0];
  EXPECT_EQ(record.level, LogLevel::kWarning);
  EXPECT_EQ(record.file, "logging_sink_test.cc");  // basename, not full path
  EXPECT_GT(record.line, 0);
  EXPECT_EQ(record.message, "skipping user 42");
  ASSERT_EQ(record.fields.size(), 2u);
  EXPECT_EQ(record.fields[0].first, "user");
  EXPECT_EQ(record.fields[0].second, "42");
  EXPECT_EQ(record.fields[1].first, "score");
  EXPECT_EQ(record.fields[1].second, "0.25");
}

TEST_F(LoggingSinkTest, WithRendersEachValueType) {
  RECONSUME_LOG(Info)
          .With("s", "text")
          .With("i", -3)
          .With("u", 7ull)
          .With("d", 1.5)
          .With("b", true)
      << "typed";
  ASSERT_EQ(records_.size(), 1u);
  const auto& fields = records_[0].fields;
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0].second, "text");
  EXPECT_EQ(fields[1].second, "-3");
  EXPECT_EQ(fields[2].second, "7");
  EXPECT_EQ(fields[3].second, "1.5");
  EXPECT_EQ(fields[4].second, "true");
}

TEST_F(LoggingSinkTest, LevelFilterDropsBelowMinimum) {
  RECONSUME_LOG(Debug) << "filtered out at the default Info level";
  EXPECT_TRUE(records_.empty());

  SetLogLevel(LogLevel::kDebug);
  RECONSUME_LOG(Debug) << "now visible";
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].level, LogLevel::kDebug);

  SetLogLevel(LogLevel::kError);
  RECONSUME_LOG(Warning) << "dropped again";
  EXPECT_EQ(records_.size(), 1u);
}

TEST_F(LoggingSinkTest, NullSinkRestoresStderrDefault) {
  SetLogSink(nullptr);
  // Goes to stderr, not to records_ — just exercising that the default path
  // still works after a custom sink was installed.
  RECONSUME_LOG(Info) << "back to stderr";
  EXPECT_TRUE(records_.empty());
}

TEST(FormatLogRecordTest, Golden) {
  LogRecord record;
  record.level = LogLevel::kWarning;
  record.file = "trainer.cc";
  record.line = 12;
  record.message = "diverged";
  record.fields = {{"step", "100"}, {"lr", "0.05"}};
  EXPECT_EQ(FormatLogRecord(record),
            "[WARN trainer.cc:12] diverged step=100 lr=0.05");
}

}  // namespace
}  // namespace util
}  // namespace reconsume
