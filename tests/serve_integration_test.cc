// End-to-end tests of RecommendService: cached and uncached paths return
// rankings identical to direct RecommendationSession scoring, Observe
// advances the epoch and invalidates, concurrent mixed traffic is TSan-clean,
// failpoints surface as response statuses, and the serve events reach an
// attached sink.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/recommendation_session.h"
#include "core/ts_ppr.h"
#include "data/synthetic.h"
#include "obs/event.h"
#include "util/failpoint.h"

namespace reconsume {
namespace serve {
namespace {

struct ServeFixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<core::TsPpr> pipeline;

  explicit ServeFixture(double scale = 0.05) {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(scale))
                  .Generate()
                  .ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    core::TsPprPipelineConfig config;
    pipeline = std::make_unique<core::TsPpr>(
        core::TsPpr::Fit(*split, config).ValueOrDie());
  }

  ServeConfig Config(int threads = 4) const {
    ServeConfig config;
    config.num_threads = threads;
    config.queue_capacity = 64;
    config.cache_capacity = 256;
    config.window_capacity = 100;
    config.min_gap = 10;
    return config;
  }

  /// Non-owning shared_ptr view: the pipeline outlives the service in every
  /// test here, so the registry shares the fixture's model without a copy.
  std::shared_ptr<eval::Recommender> Model() const {
    return std::shared_ptr<eval::Recommender>(std::shared_ptr<void>(),
                                              pipeline->recommender());
  }
};

void ExpectSameRanking(const std::vector<core::RankedItem>& a,
                       const std::vector<core::RankedItem>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << "rank " << i;
    EXPECT_EQ(a[i].gap, b[i].gap) << "rank " << i;
    EXPECT_EQ(a[i].count_in_window, b[i].count_in_window) << "rank " << i;
  }
}

TEST(ServeIntegrationTest, MatchesDirectSessionCachedAndUncached) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config());

  for (data::UserId user = 0;
       user < std::min<data::UserId>(
                  8, static_cast<data::UserId>(fixture.dataset.num_users()));
       ++user) {
    // Ground truth: a private session over the same model and history.
    core::RecommendationSession direct(fixture.pipeline->recommender(), user,
                                       fixture.dataset.sequence(user), 100,
                                       10);
    const std::vector<core::RankedItem> expected = direct.RecommendTopN(10);

    ServeResponse uncached = service.Recommend(user, 10).get();
    ASSERT_TRUE(uncached.status.ok()) << uncached.status.ToString();
    EXPECT_FALSE(uncached.cache_hit);
    ExpectSameRanking(uncached.items, expected);

    // Same epoch, same request: must be served from cache, bit-identical.
    ServeResponse cached = service.Recommend(user, 10).get();
    ASSERT_TRUE(cached.status.ok());
    EXPECT_TRUE(cached.cache_hit);
    EXPECT_EQ(cached.epoch, uncached.epoch);
    ExpectSameRanking(cached.items, expected);

    // Narrower request: the cached top-10 serves a top-3 as a prefix.
    ServeResponse narrow = service.Recommend(user, 3).get();
    ASSERT_TRUE(narrow.status.ok());
    EXPECT_TRUE(narrow.cache_hit);
    const std::vector<core::RankedItem> expected3 = direct.RecommendTopN(3);
    ExpectSameRanking(narrow.items, expected3);
  }
  EXPECT_GT(service.cache_stats().hits, 0);
}

TEST(ServeIntegrationTest, ObserveAdvancesEpochAndInvalidates) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config());
  const data::UserId user = 0;
  const auto& history = fixture.dataset.sequence(user);
  ASSERT_FALSE(history.empty());

  ServeResponse before = service.Recommend(user, 5).get();
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.epoch, static_cast<int64_t>(history.size()));

  ServeResponse observed = service.Observe(user, history.back()).get();
  ASSERT_TRUE(observed.status.ok());
  EXPECT_EQ(observed.epoch, before.epoch + 1);

  // The old cached ranking must not serve the new window state.
  ServeResponse after = service.Recommend(user, 5).get();
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.epoch, before.epoch + 1);

  // And the post-observe ranking matches a direct session fed the same event.
  core::RecommendationSession direct(fixture.pipeline->recommender(), user,
                                     history, 100, 10);
  direct.Observe(history.back());
  ExpectSameRanking(after.items, direct.RecommendTopN(5));
}

TEST(ServeIntegrationTest, RejectsBadRequests) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config());
  ServeResponse bad_n = service.Recommend(0, 0).get();
  EXPECT_EQ(bad_n.status.code(), StatusCode::kInvalidArgument);
  ServeResponse bad_item = service.Observe(0, data::kInvalidItem).get();
  EXPECT_EQ(bad_item.status.code(), StatusCode::kInvalidArgument);
}

TEST(ServeIntegrationTest, ShutdownResolvesLateRequests) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config());
  ServeResponse ok = service.Recommend(0, 5).get();
  ASSERT_TRUE(ok.status.ok());
  service.Shutdown();
  service.Shutdown();  // idempotent
  ServeResponse late = service.Recommend(0, 5).get();
  EXPECT_EQ(late.status.code(), StatusCode::kFailedPrecondition);
}

// The TSan target: many clients, mixed recommend/observe on overlapping
// users, every response checked for internal consistency.
TEST(ServeIntegrationTest, ConcurrentMixedTrafficIsConsistent) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config(/*threads=*/4));
  const auto num_users =
      static_cast<data::UserId>(fixture.dataset.num_users());

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 40;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const auto user =
            static_cast<data::UserId>((c + i) % std::min<data::UserId>(
                                                    num_users, 6));
        if (i % 7 == 3) {
          const auto& history = fixture.dataset.sequence(user);
          ServeResponse r =
              service.Observe(user, history[static_cast<size_t>(i) %
                                            history.size()])
                  .get();
          EXPECT_TRUE(r.status.ok()) << r.status.ToString();
        } else {
          ServeResponse r = service.Recommend(user, 5).get();
          EXPECT_TRUE(r.status.ok()) << r.status.ToString();
          EXPECT_LE(r.items.size(), 5u);
          for (size_t k = 1; k < r.items.size(); ++k) {
            EXPECT_GE(r.items[k - 1].score, r.items[k].score);
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Shutdown();
  EXPECT_EQ(service.requests_served(), kClients * kRequestsPerClient);
}

#if RECONSUME_FAILPOINTS_ENABLED
TEST(ServeIntegrationTest, FailpointsSurfaceAsResponseStatus) {
  ServeFixture fixture;
  RecommendService service(&fixture.dataset, fixture.Model(),
                           fixture.Config(/*threads=*/1));
  {
    // A scoring failure no longer surfaces raw: the degradation ladder
    // catches it (empty cache -> repeat-history fallback tier).
    util::ScopedFailpoint fp("serve/score", "error-once");
    ServeResponse r = service.Recommend(0, 5).get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.served_by, ServedBy::kFallback);
  }
  {
    util::ScopedFailpoint fp("serve/cache_lookup", "error-once");
    ServeResponse r = service.Recommend(0, 5).get();
    EXPECT_FALSE(r.status.ok());
  }
  {
    util::ScopedFailpoint fp("serve/enqueue", "error-once");
    ServeResponse r = service.Recommend(0, 5).get();
    EXPECT_FALSE(r.status.ok());
  }
  // An injected failure must not poison later requests.
  ServeResponse r = service.Recommend(0, 5).get();
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
}
#endif  // RECONSUME_FAILPOINTS_ENABLED

TEST(ServeIntegrationTest, EmitsServeEvents) {
  obs::CaptureSink sink;
  obs::EventStream::Global().Attach(&sink);
  {
    ServeFixture fixture;
    RecommendService service(&fixture.dataset, fixture.Model(),
                             fixture.Config(/*threads=*/2));
    ASSERT_TRUE(service.Recommend(0, 5).get().status.ok());
    ASSERT_TRUE(service.Recommend(0, 5).get().status.ok());
    service.Shutdown();
  }
  obs::EventStream::Global().Detach(&sink);

  int serve_start = 0, request_done = 0, cache_hits = 0;
  for (const obs::Event& event : sink.events()) {
    if (event.type() == "serve_start") {
      ++serve_start;
      EXPECT_EQ(event.Number("threads"), 2.0);
    } else if (event.type() == "request_done") {
      ++request_done;
      EXPECT_NE(event.Find("kind"), nullptr);
      EXPECT_GE(event.Number("latency_us"), 0.0);
      if (event.Number("cache_hit") != 0.0) ++cache_hits;
    }
  }
  EXPECT_EQ(serve_start, 1);
  EXPECT_EQ(request_done, 2);
  EXPECT_EQ(cache_hits, 1);  // the second identical query hit the cache
}

}  // namespace
}  // namespace serve
}  // namespace reconsume
