#include "obs/event.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/fileio.h"

namespace reconsume {
namespace obs {
namespace {

Event MakeStamped(std::string type, int64_t seq) {
  Event event(std::move(type));
  event.seq = seq;
  event.t_ns = 1000 + seq;
  event.tid = 0;
  return event;
}

TEST(EventTest, ToJsonLineGolden) {
  Event event("epoch");
  event.seq = 3;
  event.t_ns = 123;
  event.tid = 2;
  event.Set("step", int64_t{4200})
      .Set("r_tilde", 0.5)
      .Set("note", "a\"b")
      .Set("converged", false);
  EXPECT_EQ(event.ToJsonLine(),
            "{\"type\":\"epoch\",\"seq\":3,\"t_ns\":123,\"tid\":2,"
            "\"step\":4200,\"r_tilde\":0.5,\"note\":\"a\\\"b\","
            "\"converged\":false}");
}

TEST(EventTest, FindAndNumber) {
  Event event("x");
  event.Set("i", int64_t{7}).Set("d", 2.5).Set("s", "text").Set("b", true);
  ASSERT_NE(event.Find("i"), nullptr);
  EXPECT_EQ(event.Find("i")->i, 7);
  EXPECT_EQ(event.Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(event.Number("i"), 7.0);
  EXPECT_DOUBLE_EQ(event.Number("d"), 2.5);
  EXPECT_DOUBLE_EQ(event.Number("b"), 1.0);
  // Strings and absent keys fall back.
  EXPECT_DOUBLE_EQ(event.Number("s", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(event.Number("missing", -1.0), -1.0);
}

TEST(EventStreamTest, StampsAndFansOutWhileAttached) {
  CaptureSink sink;
  EventStream& stream = EventStream::Global();
  EXPECT_FALSE(stream.enabled());
  stream.Attach(&sink);
  EXPECT_TRUE(stream.enabled());

  stream.Emit(Event("first"));
  stream.Emit(Event("second"));
  stream.Detach(&sink);
  EXPECT_FALSE(stream.enabled());
  stream.Emit(Event("after_detach"));  // dropped: no sink attached

  const std::vector<Event> events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type(), "first");
  EXPECT_EQ(events[1].type(), "second");
  // The stream stamps seq/t_ns/tid; seq is strictly monotonic.
  EXPECT_GE(events[0].seq, 0);
  EXPECT_EQ(events[1].seq, events[0].seq + 1);
  EXPECT_GE(events[0].t_ns, 0);
  EXPECT_GE(events[0].tid, 0);
}

TEST(EventStreamTest, PreStampedFieldsAreKept) {
  CaptureSink sink;
  EventStream& stream = EventStream::Global();
  stream.Attach(&sink);
  stream.Emit(MakeStamped("golden", /*seq=*/99));
  stream.Detach(&sink);

  const std::vector<Event> events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 99);
  EXPECT_EQ(events[0].t_ns, 1099);
  EXPECT_EQ(events[0].tid, 0);
}

TEST(EventStreamTest, EmitMacroSkipsEvaluationWithoutSink) {
  ASSERT_FALSE(EventStream::Global().enabled());
  int calls = 0;
  auto make_event = [&calls]() {
    ++calls;
    return Event("expensive");
  };
  RC_EMIT_EVENT(make_event());
  EXPECT_EQ(calls, 0);

  CaptureSink sink;
  EventStream::Global().Attach(&sink);
  RC_EMIT_EVENT(make_event());
  EventStream::Global().Detach(&sink);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(JsonlFileSinkTest, GoldenRoundTrip) {
  const std::string path = ::testing::TempDir() + "/events_test.jsonl";
  JsonlFileSink sink(path);
  sink.Emit(MakeStamped("a", 0));
  Event second = MakeStamped("b", 1);
  second.Set("k", int64_t{5});
  sink.Emit(second);
  ASSERT_TRUE(sink.Flush().ok());

  const auto contents = util::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.ValueOrDie(),
            "{\"type\":\"a\",\"seq\":0,\"t_ns\":1000,\"tid\":0}\n"
            "{\"type\":\"b\",\"seq\":1,\"t_ns\":1001,\"tid\":0,\"k\":5}\n");

  // A second Flush with nothing new leaves the file untouched and still OK.
  ASSERT_TRUE(sink.Flush().ok());
  EXPECT_EQ(util::ReadFileToString(path).ValueOrDie(),
            contents.ValueOrDie());
}

}  // namespace
}  // namespace obs
}  // namespace reconsume
