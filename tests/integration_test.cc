// End-to-end integration tests: the full paper pipeline on small synthetic
// traces, with accuracy floors and determinism guarantees.

#include <gtest/gtest.h>

#include "baselines/simple_recommenders.h"
#include "core/ppr.h"
#include "core/ts_ppr.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/table.h"

namespace reconsume {
namespace {

struct Pipeline {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;

  explicit Pipeline(const data::SyntheticProfile& profile) {
    dataset = data::SyntheticTraceGenerator(profile)
                  .Generate()
                  .ValueOrDie()
                  .FilterByMinTrainLength(0.7, 100);
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
  }

  eval::AccuracyResult Evaluate(eval::Recommender* method) const {
    eval::EvalOptions options;
    options.window_capacity = 100;
    options.min_gap = 10;
    eval::Evaluator evaluator(split.get(), options);
    return evaluator.Evaluate(method).ValueOrDie();
  }
};

TEST(IntegrationTest, TsPprBeatsRandomAndPopOnGowallaLike) {
  Pipeline pipeline(data::GowallaLikeProfile(0.2));
  core::TsPprPipelineConfig config;
  auto ts_ppr = core::TsPpr::Fit(*pipeline.split, config).ValueOrDie();
  baselines::RandomRecommender random_rec;
  baselines::PopRecommender pop(pipeline.table.get());

  const auto ts_acc = pipeline.Evaluate(ts_ppr.recommender());
  const auto random_acc = pipeline.Evaluate(&random_rec);
  const auto pop_acc = pipeline.Evaluate(&pop);

  // The paper's headline: TS-PPR dominates; require comfortable margins over
  // Random and a win over Pop on this profile.
  EXPECT_GT(ts_acc.MaapAt(10), 1.5 * random_acc.MaapAt(10));
  EXPECT_GT(ts_acc.MaapAt(1), 2.0 * random_acc.MaapAt(1));
  EXPECT_GT(ts_acc.MaapAt(1), pop_acc.MaapAt(1));
  EXPECT_GT(ts_acc.MiapAt(5), pop_acc.MiapAt(5));
}

TEST(IntegrationTest, TsPprWinsOnLastfmLikeAtTopTen) {
  Pipeline pipeline(data::LastfmLikeProfile(0.3));
  core::TsPprPipelineConfig config;
  config.model.lambda = 0.001;
  config.model.gamma = 0.1;
  auto ts_ppr = core::TsPpr::Fit(*pipeline.split, config).ValueOrDie();
  baselines::RandomRecommender random_rec;
  const auto ts_acc = pipeline.Evaluate(ts_ppr.recommender());
  const auto random_acc = pipeline.Evaluate(&random_rec);
  EXPECT_GT(ts_acc.MaapAt(10), random_acc.MaapAt(10));
}

TEST(IntegrationTest, FullPipelineIsDeterministic) {
  auto run = [] {
    Pipeline pipeline(data::GowallaLikeProfile(0.05));
    core::TsPprPipelineConfig config;
    auto ts_ppr = core::TsPpr::Fit(*pipeline.split, config).ValueOrDie();
    return pipeline.Evaluate(ts_ppr.recommender());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.MaapAt(1), b.MaapAt(1));
  EXPECT_DOUBLE_EQ(a.MaapAt(10), b.MaapAt(10));
  EXPECT_EQ(a.num_instances, b.num_instances);
}

TEST(IntegrationTest, TsPprBeatsStaticPprOnAverage) {
  // The time-sensitive term should help at Top-5/Top-10 (the static model
  // can tie at Top-1 where its affinity signal dominates).
  Pipeline pipeline(data::GowallaLikeProfile(0.2));
  core::TsPprPipelineConfig config;
  auto ts_ppr = core::TsPpr::Fit(*pipeline.split, config).ValueOrDie();

  features::FeatureExtractor extractor(pipeline.table.get(),
                                       features::FeatureConfig::AllFeatures());
  auto training_set =
      sampling::TrainingSet::Build(*pipeline.split, extractor, {})
          .ValueOrDie();
  core::PprConfig ppr_config;
  auto ppr = core::PprModel::Fit(training_set, pipeline.dataset.num_users(),
                                 pipeline.dataset.num_items(), ppr_config)
                 .ValueOrDie();

  const auto ts_acc = pipeline.Evaluate(ts_ppr.recommender());
  const auto ppr_acc = pipeline.Evaluate(&ppr);
  EXPECT_GT(ts_acc.MaapAt(5) + ts_acc.MaapAt(10),
            ppr_acc.MaapAt(5) + ppr_acc.MaapAt(10));
}

TEST(IntegrationTest, FeatureAblationKeepsPipelineWorking) {
  Pipeline pipeline(data::GowallaLikeProfile(0.05));
  for (const auto& feature_config :
       {features::FeatureConfig::WithoutItemQuality(),
        features::FeatureConfig::WithoutReconsumptionRatio(),
        features::FeatureConfig::WithoutRecency(),
        features::FeatureConfig::WithoutFamiliarity()}) {
    core::TsPprPipelineConfig config;
    config.features = feature_config;
    auto ts_ppr = core::TsPpr::Fit(*pipeline.split, config).ValueOrDie();
    EXPECT_EQ(ts_ppr.model().feature_dim(), 3);
    const auto acc = pipeline.Evaluate(ts_ppr.recommender());
    EXPECT_GT(acc.MaapAt(10), 0.0) << feature_config.Label();
  }
}

TEST(IntegrationTest, TextTableRendersResults) {
  eval::TextTable table({"method", "MaAP@1"});
  table.AddRow({"TS-PPR", eval::TextTable::Cell(0.12345)});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("TS-PPR"), std::string::npos);
  EXPECT_NE(out.find("0.1235"), std::string::npos);  // default 4 decimals
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(IntegrationTest, OmegaSweepShrinksInstanceCount) {
  Pipeline pipeline(data::GowallaLikeProfile(0.1));
  core::TsPprPipelineConfig config;
  auto ts_ppr = core::TsPpr::Fit(*pipeline.split, config).ValueOrDie();

  int64_t prev_instances = -1;
  for (int omega : {5, 15, 25}) {
    eval::EvalOptions options;
    options.window_capacity = 100;
    options.min_gap = omega;
    eval::Evaluator evaluator(pipeline.split.get(), options);
    const auto acc = evaluator.Evaluate(ts_ppr.recommender()).ValueOrDie();
    if (prev_instances >= 0) {
      EXPECT_LT(acc.num_instances, prev_instances)
          << "larger Omega must evaluate fewer instances";
    }
    prev_instances = acc.num_instances;
  }
}

}  // namespace
}  // namespace reconsume
