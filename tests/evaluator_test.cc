#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "data/dataset.h"
#include "eval/recommender.h"
#include "util/failpoint.h"

namespace reconsume {
namespace eval {
namespace {

TEST(SelectTopNTest, OrdersByScoreThenIndex) {
  std::vector<int> top;
  SelectTopN(std::vector<double>{0.5, 0.9, 0.5, 0.1}, 3, &top);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 0);  // tie with index 2 broken by lower index
  EXPECT_EQ(top[2], 2);
}

TEST(SelectTopNTest, ClampsToSize) {
  std::vector<int> top;
  SelectTopN(std::vector<double>{1.0, 2.0}, 10, &top);
  EXPECT_EQ(top.size(), 2u);
  SelectTopN(std::vector<double>{1.0, 2.0}, 0, &top);
  EXPECT_TRUE(top.empty());
  SelectTopN(std::vector<double>{}, 3, &top);
  EXPECT_TRUE(top.empty());
}

TEST(SelectTopNHeapTest, MatchesSelectTopNOrder) {
  std::vector<int> top;
  SelectTopNHeap(std::vector<double>{0.5, 0.9, 0.5, 0.1}, 3, &top);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 0);  // same tie-break as SelectTopN: lower index first
  EXPECT_EQ(top[2], 2);

  SelectTopNHeap(std::vector<double>{1.0, 2.0}, 10, &top);
  EXPECT_EQ(top.size(), 2u);
  SelectTopNHeap(std::vector<double>{1.0, 2.0}, 0, &top);
  EXPECT_TRUE(top.empty());
  SelectTopNHeap(std::vector<double>{}, 3, &top);
  EXPECT_TRUE(top.empty());
}

// Bit-identical parity on adversarial inputs: heavy ties, every n, and the
// serving path's assumption that top-n is a prefix of top-m for n <= m.
TEST(SelectTopNHeapTest, ParityWithPartialSortOnTieHeavyInputs) {
  // Deterministic pseudo-random scores drawn from few distinct values.
  std::vector<double> scores;
  uint64_t state = 0x243F6A8885A308D3ull;
  for (int i = 0; i < 200; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    scores.push_back(static_cast<double>((state >> 59) % 7) * 0.25);
  }
  std::vector<int> expected, actual;
  for (int n = 0; n <= 210; n += 3) {
    SelectTopN(scores, n, &expected);
    SelectTopNHeap(scores, n, &actual);
    ASSERT_EQ(actual, expected) << "n=" << n;
  }
  // Prefix property across widths (what ScoreCache relies on).
  std::vector<int> top5, top20;
  SelectTopNHeap(scores, 5, &top5);
  SelectTopNHeap(scores, 20, &top20);
  ASSERT_EQ(std::vector<int>(top20.begin(), top20.begin() + 5), top5);
}

/// Scripted recommender: ranks candidates by a fixed per-item priority.
class ScriptedRecommender : public Recommender {
 public:
  explicit ScriptedRecommender(std::unordered_map<data::ItemId, double> priors)
      : priors_(std::move(priors)) {}

  std::string name() const override { return "Scripted"; }

  void Score(data::UserId, const window::WindowWalker&,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override {
    for (size_t i = 0; i < candidates.size(); ++i) {
      const auto it = priors_.find(candidates[i]);
      scores[i] = it == priors_.end() ? 0.0 : it->second;
    }
  }

 private:
  std::unordered_map<data::ItemId, double> priors_;
};

/// Oracle: always puts the true next item first (needs the sequence).
class OracleRecommender : public Recommender {
 public:
  std::string name() const override { return "Oracle"; }

  void Score(data::UserId, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override {
    const data::ItemId target = walker.NextItem();
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] = candidates[i] == target ? 1.0 : 0.0;
    }
  }
};

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;

  explicit Fixture(const std::vector<std::vector<int>>& sequences,
                   double train_fraction = 0.5) {
    data::DatasetBuilder builder;
    for (size_t u = 0; u < sequences.size(); ++u) {
      for (size_t t = 0; t < sequences[u].size(); ++t) {
        EXPECT_TRUE(builder
                        .Add(static_cast<int64_t>(u), sequences[u][t],
                             static_cast<int64_t>(t))
                        .ok());
      }
    }
    dataset = builder.Build().ValueOrDie();
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, train_fraction).ValueOrDie());
  }
};

TEST(EvaluatorTest, OracleGetsPerfectPrecision) {
  // One user; test half contains eligible repeats.
  Fixture fixture({{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4}});
  EvalOptions options;
  options.window_capacity = 10;
  options.min_gap = 1;
  Evaluator evaluator(fixture.split.get(), options);
  OracleRecommender oracle;
  const auto result = evaluator.Evaluate(&oracle).ValueOrDie();
  ASSERT_GT(result.num_instances, 0);
  EXPECT_DOUBLE_EQ(result.MaapAt(1), 1.0);
  EXPECT_DOUBLE_EQ(result.MiapAt(1), 1.0);
}

TEST(EvaluatorTest, HandComputedPrecision) {
  // Items cycle a,b (0,1) then a c appears. Window 10, min_gap 0 means every
  // windowed repeat in the test half is evaluated.
  //                 train          | test
  //            t: 0  1  2  3  4    | 5  6  7  8  9
  Fixture fixture({{0, 1, 0, 1, 2, 0, 1, 0, 1, 2}});
  EvalOptions options;
  options.window_capacity = 10;
  options.min_gap = 0;
  options.top_ns = {1, 2};
  Evaluator evaluator(fixture.split.get(), options);

  // Prior ranks: item0 > item1 > item2 always.
  ScriptedRecommender scripted({{0, 3.0}, {1, 2.0}, {2, 1.0}});
  const auto result = evaluator.Evaluate(&scripted).ValueOrDie();
  // Test events (targets): t5=0, t6=1, t7=0, t8=1, t9=2; all are repeats in
  // window. Candidates always include {0,1} and eventually 2.
  EXPECT_EQ(result.num_instances, 5);
  // Top-1 hits: targets equal to 0: t5, t7 -> 2/5.
  EXPECT_DOUBLE_EQ(result.MaapAt(1), 0.4);
  // Top-2 hits: targets in {0,1}: t5..t8 -> 4/5.
  EXPECT_DOUBLE_EQ(result.MaapAt(2), 0.8);
  // Single user: MiAP == MaAP.
  EXPECT_DOUBLE_EQ(result.MiapAt(1), result.MaapAt(1));
  EXPECT_DOUBLE_EQ(result.MiapAt(2), result.MaapAt(2));
  EXPECT_EQ(result.num_users_evaluated, 1);
}

TEST(EvaluatorTest, MinGapExcludesRecentRepeats) {
  //                        train      | test: b a b a
  Fixture fixture({{0, 1, 0, 1, 1, 0, 1, 0}});
  EvalOptions options;
  options.window_capacity = 8;
  options.min_gap = 2;  // exclude repeats whose gap <= 2
  Evaluator evaluator(fixture.split.get(), options);
  OracleRecommender oracle;
  const auto result = evaluator.Evaluate(&oracle).ValueOrDie();
  // Test events: t4=1 (gap 3? last 1 at t3 -> gap 1: excluded),
  // t5=0 (last 0 at t2 -> gap 3 > 2: counted),
  // t6=1 (last 1 at t4 -> gap 2: excluded),
  // t7=0 (last 0 at t5 -> gap 2: excluded).
  EXPECT_EQ(result.num_instances, 1);
}

TEST(EvaluatorTest, MiapWeighsUsersEqually) {
  // User 0 has many eligible test events; user 1 exactly one. A recommender
  // that is perfect for user 1 and wrong for user 0 gets MiAP 0.5 regardless
  // of the instance imbalance, while MaAP is dominated by user 0.
  Fixture fixture(
      {{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1},  // user 0: alternates
       {2, 3, 2, 3, 2, 3, 2, 3, 2, 3, 2, 3}},
      0.5);
  EvalOptions options;
  options.window_capacity = 12;
  options.min_gap = 0;  // keep both items in every candidate set
  options.top_ns = {1};
  Evaluator evaluator(fixture.split.get(), options);

  // Wrong for user 0 (prefers the item NOT about to repeat, i.e. the one
  // just consumed — gap 1) and right for user 1? Both users alternate, so
  // use priors: for user0's items {0,1} prefer lower gap... Scripted priors
  // are static per item, so pick priors that are right for items 2/3 order
  // and wrong for 0/1: impossible statically — instead verify the averaging
  // identity numerically.
  ScriptedRecommender scripted({{0, 1.0}, {1, 0.0}, {2, 1.0}, {3, 0.0}});
  const auto result = evaluator.Evaluate(&scripted).ValueOrDie();
  ASSERT_EQ(result.num_users_evaluated, 2);
  // Alternating sequences: targets alternate 0,1,0,... so the static prior
  // hits exactly half the instances for each user => MaAP == MiAP == 0.5.
  EXPECT_DOUBLE_EQ(result.MaapAt(1), 0.5);
  EXPECT_DOUBLE_EQ(result.MiapAt(1), 0.5);
}

TEST(EvaluatorTest, InstanceFilterGatesEvaluation) {
  Fixture fixture({{0, 1, 0, 1, 0, 1, 0, 1}});
  EvalOptions options;
  options.window_capacity = 8;
  options.min_gap = 1;
  int filter_calls = 0;
  options.instance_filter = [&filter_calls](data::UserId,
                                            const window::WindowWalker&) {
    ++filter_calls;
    return false;  // reject everything
  };
  Evaluator evaluator(fixture.split.get(), options);
  OracleRecommender oracle;
  const auto result = evaluator.Evaluate(&oracle).ValueOrDie();
  EXPECT_EQ(result.num_instances, 0);
  EXPECT_GT(filter_calls, 0);
  EXPECT_EQ(result.num_users_evaluated, 0);
}

TEST(EvaluatorTest, NullRecommenderIsError) {
  Fixture fixture({{0, 1, 0, 1}});
  EvalOptions options;
  options.window_capacity = 4;
  options.min_gap = 0;
  Evaluator evaluator(fixture.split.get(), options);
  EXPECT_EQ(evaluator.Evaluate(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EvaluatorTest, LatencyMeasurementPopulatesField) {
  Fixture fixture({{0, 1, 0, 1, 0, 1, 0, 1}});
  EvalOptions options;
  options.window_capacity = 8;
  options.min_gap = 0;
  options.measure_latency = true;
  Evaluator evaluator(fixture.split.get(), options);
  OracleRecommender oracle;
  const auto result = evaluator.Evaluate(&oracle).ValueOrDie();
  EXPECT_GT(result.num_instances, 0);
  EXPECT_GT(result.mean_score_latency_ms, 0.0);
  EXPECT_GT(result.mean_candidates, 0.0);
}

// Omega-gap regression (PAPER.md SS5): a window configuration whose
// train/test minimum gap cannot fit inside the window must be rejected via
// Status — with Omega >= |W| no candidate could ever satisfy Eq. 9 and the
// protocol would silently evaluate nothing.
TEST(EvaluatorValidationTest, RejectsGapViolatingWindowConfiguration) {
  Fixture fixture({{1, 2, 3, 1, 2, 3, 1, 2, 3}});
  EvalOptions options;
  options.window_capacity = 10;
  options.min_gap = 10;  // Omega == |W|: violates Omega < |W|
  EXPECT_EQ(Evaluator::ValidateOptions(options).code(),
            StatusCode::kInvalidArgument);

  auto equal_gap = Evaluator::Create(fixture.split.get(), options);
  ASSERT_FALSE(equal_gap.ok());
  EXPECT_EQ(equal_gap.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(equal_gap.status().message().find("Omega"), std::string::npos);

  options.min_gap = 25;  // Omega > |W|
  EXPECT_FALSE(Evaluator::Create(fixture.split.get(), options).ok());

  options.min_gap = -1;  // negative gap
  EXPECT_FALSE(Evaluator::Create(fixture.split.get(), options).ok());

  options.min_gap = 9;  // largest legal gap for |W| = 10
  ASSERT_TRUE(Evaluator::Create(fixture.split.get(), options).ok());
}

TEST(EvaluatorValidationTest, RejectsDegenerateOptions) {
  Fixture fixture({{1, 2, 1, 2}});
  EvalOptions options;
  options.top_ns = {};
  EXPECT_EQ(Evaluator::Create(fixture.split.get(), options).status().code(),
            StatusCode::kInvalidArgument);
  options.top_ns = {0};
  EXPECT_FALSE(Evaluator::Create(fixture.split.get(), options).ok());
  options.top_ns = {1};
  options.window_capacity = 1;
  EXPECT_FALSE(Evaluator::Create(fixture.split.get(), options).ok());
  EXPECT_EQ(Evaluator::Create(nullptr, EvalOptions{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EvaluatorValidationTest, CreatedEvaluatorEvaluates) {
  Fixture fixture({{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4}});
  EvalOptions options;
  options.window_capacity = 10;
  options.min_gap = 1;
  auto evaluator = Evaluator::Create(fixture.split.get(), options);
  ASSERT_TRUE(evaluator.ok());
  OracleRecommender oracle;
  const auto result =
      evaluator.ValueOrDie().Evaluate(&oracle).ValueOrDie();
  EXPECT_GT(result.num_instances, 0);
  EXPECT_DOUBLE_EQ(result.MaapAt(1), 1.0);
}

TEST(AccuracyResultDeathTest, UnknownCutoffDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AccuracyResult result;
  result.top_ns = {1, 5};
  result.maap = {0.1, 0.2};
  result.miap = {0.1, 0.2};
  EXPECT_DEATH(result.MaapAt(10), "not evaluated");
}

#if RECONSUME_FAILPOINTS_ENABLED

TEST(EvaluatorSkipPolicyTest, InvalidUserFailsEvaluationByDefault) {
  Fixture fixture({{1, 2, 1, 2, 1, 2, 1, 2}, {3, 4, 3, 4, 3, 4, 3, 4}});
  EvalOptions options;
  options.window_capacity = 10;
  options.min_gap = 0;
  Evaluator evaluator(fixture.split.get(), options);
  OracleRecommender oracle;
  util::ScopedFailpoint fp("eval/user", "error-once");
  EXPECT_FALSE(evaluator.Evaluate(&oracle).ok());
}

TEST(EvaluatorSkipPolicyTest, SkipAndAccountKeepsTheRemainingUsers) {
  Fixture fixture({{1, 2, 1, 2, 1, 2, 1, 2}, {3, 4, 3, 4, 3, 4, 3, 4}});
  EvalOptions options;
  options.window_capacity = 10;
  options.min_gap = 0;
  options.skip_invalid_users = true;
  Evaluator evaluator(fixture.split.get(), options);
  OracleRecommender oracle;
  util::ScopedFailpoint fp("eval/user", "error-once");
  const auto result = evaluator.Evaluate(&oracle).ValueOrDie();
  // The first user's walk failed and was skipped; aggregates cover the rest.
  EXPECT_EQ(result.num_users_skipped, 1);
  EXPECT_EQ(result.num_users_evaluated, 1);
  EXPECT_GT(result.num_instances, 0);
  EXPECT_DOUBLE_EQ(result.MaapAt(1), 1.0);
}

TEST(EvaluatorSkipPolicyTest, SkippedCountIsZeroWithoutFaults) {
  Fixture fixture({{1, 2, 1, 2, 1, 2, 1, 2}});
  EvalOptions options;
  options.window_capacity = 10;
  options.min_gap = 0;
  options.skip_invalid_users = true;
  Evaluator evaluator(fixture.split.get(), options);
  OracleRecommender oracle;
  const auto result = evaluator.Evaluate(&oracle).ValueOrDie();
  EXPECT_EQ(result.num_users_skipped, 0);
}

#endif  // RECONSUME_FAILPOINTS_ENABLED

}  // namespace
}  // namespace eval
}  // namespace reconsume
