#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/dyrc.h"
#include "baselines/fpmc.h"
#include "baselines/simple_recommenders.h"
#include "baselines/survival_recommender.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace reconsume {
namespace baselines {
namespace {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<features::StaticFeatureTable> table;

  explicit Fixture(double scale = 0.05) {
    dataset = data::SyntheticTraceGenerator(data::GowallaLikeProfile(scale))
                  .Generate()
                  .ValueOrDie()
                  .FilterByMinTrainLength(0.7, 100);
    split = std::make_unique<data::TrainTestSplit>(
        data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie());
    table = std::make_unique<features::StaticFeatureTable>(
        features::StaticFeatureTable::Compute(*split, 100).ValueOrDie());
  }

  window::WindowWalker WarmWalker(data::UserId u, int steps) const {
    window::WindowWalker walker(&dataset.sequence(u), 100);
    for (int i = 0; i < steps; ++i) walker.Advance();
    return walker;
  }
};

eval::AccuracyResult Evaluate(const Fixture& fixture,
                              eval::Recommender* method) {
  eval::EvalOptions options;
  options.window_capacity = 100;
  options.min_gap = 10;
  eval::Evaluator evaluator(fixture.split.get(), options);
  return evaluator.Evaluate(method).ValueOrDie();
}

TEST(SimpleRecommendersTest, PopRanksByTrainingFrequency) {
  Fixture fixture;
  PopRecommender pop(fixture.table.get());
  auto walker = fixture.WarmWalker(0, 120);
  std::vector<data::ItemId> candidates;
  walker.EligibleCandidates(0, &candidates);
  ASSERT_GE(candidates.size(), 2u);
  std::vector<double> scores(candidates.size());
  pop.Score(0, walker, candidates, scores);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        scores[i],
        std::log1p(static_cast<double>(fixture.table->frequency(candidates[i]))));
  }
}

TEST(SimpleRecommendersTest, RecencyPrefersSmallerGap) {
  Fixture fixture;
  RecencyRecommender recency;
  auto walker = fixture.WarmWalker(0, 120);
  std::vector<data::ItemId> candidates;
  walker.EligibleCandidates(0, &candidates);
  ASSERT_GE(candidates.size(), 2u);
  std::vector<double> scores(candidates.size());
  recency.Score(0, walker, candidates, scores);
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (walker.GapSince(candidates[i]) < walker.GapSince(candidates[j])) {
        EXPECT_GT(scores[i], scores[j]);
      }
    }
  }
}

TEST(SimpleRecommendersTest, RandomIsSeededAndNonDegenerate) {
  Fixture fixture;
  RandomRecommender a(5), b(5), c(6);
  auto walker = fixture.WarmWalker(0, 120);
  std::vector<data::ItemId> candidates;
  walker.EligibleCandidates(0, &candidates);
  std::vector<double> sa(candidates.size()), sb(candidates.size()),
      sc(candidates.size());
  a.Score(0, walker, candidates, sa);
  b.Score(0, walker, candidates, sb);
  c.Score(0, walker, candidates, sc);
  EXPECT_EQ(sa, sb);  // same seed, same stream
  EXPECT_NE(sa, sc);
  EXPECT_NE(sa[0], sa[1]);  // actually random, not constant
}

TEST(BaselineAccuracyTest, OrderingPopBeatsRandom) {
  Fixture fixture(0.1);
  RandomRecommender random_rec;
  PopRecommender pop(fixture.table.get());
  const auto random_acc = Evaluate(fixture, &random_rec);
  const auto pop_acc = Evaluate(fixture, &pop);
  EXPECT_GT(pop_acc.MaapAt(10), random_acc.MaapAt(10));
  EXPECT_GT(pop_acc.MaapAt(1), random_acc.MaapAt(1));
}

TEST(DyrcTest, FitsPositiveWeightsOnGeneratorData) {
  Fixture fixture(0.1);
  DyrcOptions options;
  const auto dyrc =
      DyrcRecommender::Fit(*fixture.split, fixture.table.get(), options)
          .ValueOrDie();
  // The generator rewards both quality and recency on average, and the DYRC
  // recency weight multiplies -log(gap) (positive weight = prefers recent).
  EXPECT_GT(dyrc.quality_weight(), 0.0);
  EXPECT_GT(dyrc.recency_weight(), 0.0);
  EXPECT_LT(dyrc.train_log_likelihood(), 0.0);  // it is a log-probability
}

TEST(DyrcTest, BeatsRandomAndRespondsToBothSignals) {
  Fixture fixture(0.1);
  DyrcOptions options;
  auto dyrc =
      DyrcRecommender::Fit(*fixture.split, fixture.table.get(), options)
          .ValueOrDie();
  RandomRecommender random_rec;
  const auto dyrc_acc = Evaluate(fixture, &dyrc);
  const auto random_acc = Evaluate(fixture, &random_rec);
  EXPECT_GT(dyrc_acc.MaapAt(10), random_acc.MaapAt(10));
}

TEST(DyrcTest, NullTableRejected) {
  Fixture fixture;
  EXPECT_EQ(DyrcRecommender::Fit(*fixture.split, nullptr, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FpmcTest, FitValidatesConfig) {
  Fixture fixture;
  FpmcConfig config;
  config.latent_dim = 0;
  EXPECT_FALSE(FpmcRecommender::Fit(*fixture.split, config).ok());
  config = FpmcConfig();
  config.basket_cap = 0;
  EXPECT_FALSE(FpmcRecommender::Fit(*fixture.split, config).ok());
}

TEST(FpmcTest, ScoreAgreesWithScoreWithBasket) {
  Fixture fixture;
  FpmcConfig config;
  config.epochs = 2;
  auto fpmc = FpmcRecommender::Fit(*fixture.split, config).ValueOrDie();
  auto walker = fixture.WarmWalker(0, 120);
  std::vector<data::ItemId> candidates;
  walker.EligibleCandidates(10, &candidates);
  ASSERT_GE(candidates.size(), 1u);
  std::vector<double> scores(candidates.size());
  fpmc.Score(0, walker, candidates, scores);

  std::vector<data::ItemId> basket;
  for (const auto& [item, entry] : walker.window_counts()) {
    (void)entry;
    basket.push_back(item);
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_NEAR(scores[i], fpmc.ScoreWithBasket(0, candidates[i], basket),
                1e-9);
  }
}

TEST(FpmcTest, BeatsRandomOnGeneratorData) {
  Fixture fixture(0.1);
  FpmcConfig config;
  auto fpmc = FpmcRecommender::Fit(*fixture.split, config).ValueOrDie();
  RandomRecommender random_rec;
  EXPECT_GT(Evaluate(fixture, &fpmc).MaapAt(10),
            Evaluate(fixture, &random_rec).MaapAt(10));
}

TEST(SurvivalRecommenderTest, TimeWeightedAverageReturnTimeHandValues) {
  //          t: 0  1  2  3  4  5
  const data::ConsumptionSequence seq = {7, 8, 7, 8, 8, 7};
  // Item 7 gaps: 2 (t0->t2), 3 (t2->t5); weights 1, 2 -> (2 + 6) / 3.
  EXPECT_DOUBLE_EQ(
      SurvivalRecommender::TimeWeightedAverageReturnTime(seq, 6, 7, -1.0),
      8.0 / 3.0);
  // Item 8 gaps: 2 (t1->t3), 1 (t3->t4); weights 1, 2 -> 4/3.
  EXPECT_DOUBLE_EQ(
      SurvivalRecommender::TimeWeightedAverageReturnTime(seq, 6, 8, -1.0),
      4.0 / 3.0);
  // Prefix end=3 sees only one consumption of 8: fallback.
  EXPECT_DOUBLE_EQ(
      SurvivalRecommender::TimeWeightedAverageReturnTime(seq, 3, 8, -1.0),
      -1.0);
  // Unknown item: fallback.
  EXPECT_DOUBLE_EQ(
      SurvivalRecommender::TimeWeightedAverageReturnTime(seq, 6, 99, 5.0),
      5.0);
}

TEST(SurvivalRecommenderTest, FitsAndScores) {
  Fixture fixture;
  SurvivalOptions options;
  auto survival = SurvivalRecommender::Fit(*fixture.split, fixture.table.get(),
                                           options)
                      .ValueOrDie();
  auto walker = fixture.WarmWalker(0, 120);
  std::vector<data::ItemId> candidates;
  walker.EligibleCandidates(10, &candidates);
  ASSERT_GE(candidates.size(), 1u);
  std::vector<double> scores(candidates.size());
  survival.Score(0, walker, candidates, scores);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
  EXPECT_EQ(survival.cox_model().coefficients().size(), 3u);
}

TEST(SurvivalRecommenderTest, NullTableRejected) {
  Fixture fixture;
  EXPECT_EQ(SurvivalRecommender::Fit(*fixture.split, nullptr, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace baselines
}  // namespace reconsume
