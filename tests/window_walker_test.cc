#include "window/window_walker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "util/random.h"

namespace reconsume {
namespace window {
namespace {

using data::ConsumptionSequence;
using data::ItemId;

/// O(|W|) reference implementation recomputed from scratch at each step.
struct NaiveWindow {
  const ConsumptionSequence& seq;
  int capacity;
  int t = 0;

  std::unordered_map<ItemId, int> Counts() const {
    std::unordered_map<ItemId, int> counts;
    const int begin = std::max(0, t - capacity);
    for (int p = begin; p < t; ++p) ++counts[seq[static_cast<size_t>(p)]];
    return counts;
  }
  int LastSeen(ItemId v) const {
    for (int p = t - 1; p >= 0; --p) {
      if (seq[static_cast<size_t>(p)] == v) return p;
    }
    return -1;
  }
};

TEST(WindowWalkerTest, EmptyStateBeforeAdvance) {
  const ConsumptionSequence seq = {1, 2, 3};
  WindowWalker walker(&seq, 2);
  EXPECT_EQ(walker.step(), 0);
  EXPECT_FALSE(walker.Done());
  EXPECT_EQ(walker.WindowSize(), 0);
  EXPECT_FALSE(walker.Contains(1));
  EXPECT_EQ(walker.NextItem(), 1);
  EXPECT_FALSE(walker.NextIsRepeat());
}

TEST(WindowWalkerTest, BasicEvictionAtCapacity) {
  const ConsumptionSequence seq = {1, 2, 3, 4};
  WindowWalker walker(&seq, 2);
  walker.Advance();  // window {1}
  walker.Advance();  // window {1,2}
  EXPECT_TRUE(walker.Contains(1));
  walker.Advance();  // window {2,3}: 1 evicted
  EXPECT_FALSE(walker.Contains(1));
  EXPECT_TRUE(walker.Contains(2));
  EXPECT_TRUE(walker.Contains(3));
  EXPECT_EQ(walker.WindowSize(), 2);
}

TEST(WindowWalkerTest, CountTracksMultiplicity) {
  const ConsumptionSequence seq = {5, 5, 5, 6};
  WindowWalker walker(&seq, 3);
  walker.Advance();
  walker.Advance();
  walker.Advance();
  EXPECT_EQ(walker.CountInWindow(5), 3);
  walker.Advance();  // evicts one 5, adds 6
  EXPECT_EQ(walker.CountInWindow(5), 2);
  EXPECT_EQ(walker.CountInWindow(6), 1);
  EXPECT_EQ(walker.NumDistinctInWindow(), 2u);
}

TEST(WindowWalkerTest, LastSeenUsesFullHistoryBeyondWindow) {
  const ConsumptionSequence seq = {9, 1, 2, 3};
  WindowWalker walker(&seq, 2);
  for (int i = 0; i < 4; ++i) walker.Advance();
  // 9 left the window long ago but history remembers it.
  EXPECT_FALSE(walker.Contains(9));
  EXPECT_EQ(walker.LastSeenStep(9), 0);
  EXPECT_EQ(walker.GapSince(9), 4);
  EXPECT_EQ(walker.LastSeenStep(42), -1);
}

TEST(WindowWalkerTest, NextIsRepeatAndEligibility) {
  //            t: 0  1  2  3
  const ConsumptionSequence seq = {7, 8, 7, 7};
  WindowWalker walker(&seq, 10);
  walker.Advance();  // consumed 7
  walker.Advance();  // consumed 8; next is 7, last seen t=0, gap 2
  EXPECT_TRUE(walker.NextIsRepeat());
  EXPECT_TRUE(walker.NextIsEligibleRepeat(1));
  EXPECT_FALSE(walker.NextIsEligibleRepeat(2));  // gap not > 2
  walker.Advance();  // consumed 7 again; next is 7 with gap 1
  EXPECT_TRUE(walker.NextIsRepeat());
  EXPECT_FALSE(walker.NextIsEligibleRepeat(1));
}

TEST(WindowWalkerTest, EligibleCandidatesFilterByGap) {
  //            t: 0  1  2  3  4
  const ConsumptionSequence seq = {1, 2, 3, 2, 9};
  WindowWalker walker(&seq, 10);
  for (int i = 0; i < 4; ++i) walker.Advance();
  // At t=4: gaps are 1->4, 2->1 (reconsumed at t=3), 3->2.
  std::vector<ItemId> candidates;
  walker.EligibleCandidates(0, &candidates);
  std::sort(candidates.begin(), candidates.end());
  EXPECT_EQ(candidates, (std::vector<ItemId>{1, 2, 3}));
  walker.EligibleCandidates(1, &candidates);
  std::sort(candidates.begin(), candidates.end());
  EXPECT_EQ(candidates, (std::vector<ItemId>{1, 3}));
  walker.EligibleCandidates(3, &candidates);
  EXPECT_EQ(candidates, (std::vector<ItemId>{1}));
}

TEST(WindowWalkerTest, CapacityOneWindow) {
  const ConsumptionSequence seq = {1, 1, 2};
  WindowWalker walker(&seq, 1);
  walker.Advance();
  EXPECT_TRUE(walker.NextIsRepeat());  // next 1, window {1}
  walker.Advance();
  EXPECT_FALSE(walker.NextIsRepeat());  // next 2, window {1}
  walker.Advance();
  EXPECT_TRUE(walker.Done());
}

TEST(WindowWalkerDeathTest, AdvancePastEndDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const ConsumptionSequence seq = {1};
  WindowWalker walker(&seq, 2);
  walker.Advance();
  EXPECT_DEATH(walker.Advance(), "past end");
}

class WindowWalkerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WindowWalkerPropertyTest, MatchesNaiveReferenceOnRandomTraces) {
  const auto [capacity, alphabet] = GetParam();
  util::Rng rng(static_cast<uint64_t>(capacity * 1000 + alphabet));
  ConsumptionSequence seq(400);
  for (auto& v : seq) {
    v = static_cast<ItemId>(rng.Uniform(static_cast<uint64_t>(alphabet)));
  }

  WindowWalker walker(&seq, capacity);
  NaiveWindow naive{seq, capacity};
  while (!walker.Done()) {
    const auto expected = naive.Counts();
    ASSERT_EQ(walker.window_counts().size(), expected.size())
        << "t=" << walker.step();
    for (const auto& [item, count] : expected) {
      EXPECT_EQ(walker.CountInWindow(item), count);
    }
    // Spot-check last-seen agreement for the next item.
    const ItemId next = walker.NextItem();
    EXPECT_EQ(walker.LastSeenStep(next), naive.LastSeen(next));
    EXPECT_EQ(walker.NextIsRepeat(), expected.count(next) > 0);

    walker.Advance();
    ++naive.t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowWalkerPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 50, 100, 500),
                       ::testing::Values(2, 10, 100)));

}  // namespace
}  // namespace window
}  // namespace reconsume
