#include "baselines/markov_if.h"

#include <gtest/gtest.h>

#include "baselines/simple_recommenders.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace reconsume {
namespace baselines {
namespace {

data::Dataset FromSequences(const std::vector<std::vector<int>>& sequences) {
  data::DatasetBuilder builder;
  for (size_t u = 0; u < sequences.size(); ++u) {
    for (size_t t = 0; t < sequences[u].size(); ++t) {
      EXPECT_TRUE(builder
                      .Add(static_cast<int64_t>(u), sequences[u][t],
                           static_cast<int64_t>(t))
                      .ok());
    }
  }
  return builder.Build().ValueOrDie();
}

TEST(MarkovIfTest, RejectsBadConfig) {
  const data::Dataset dataset = FromSequences({{0, 1, 0, 1}});
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  MarkovIfConfig config;
  config.personalization = 1.5;
  EXPECT_FALSE(MarkovIfRecommender::Fit(split, config).ok());
  config = MarkovIfConfig();
  config.smoothing = -1.0;
  EXPECT_FALSE(MarkovIfRecommender::Fit(split, config).ok());
  config = MarkovIfConfig();
  config.context_cap = 0;
  EXPECT_FALSE(MarkovIfRecommender::Fit(split, config).ok());
}

TEST(MarkovIfTest, TransitionProbabilitiesHandComputed) {
  // Train prefix (0.8 * 5 = 4 events): 0 1 0 2 -> transitions 0->1, 1->0,
  // 0->2. Row 0 has counts {1:1, 2:1}; with smoothing 0 both get 0.5.
  const data::Dataset dataset = FromSequences({{0, 1, 0, 2, 0}});
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.8).ValueOrDie();
  MarkovIfConfig config;
  config.smoothing = 0.0;
  const auto model = MarkovIfRecommender::Fit(split, config).ValueOrDie();
  EXPECT_DOUBLE_EQ(model.GlobalTransition(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(model.GlobalTransition(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(model.GlobalTransition(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.GlobalTransition(2, 0), 0.0);  // unseen row
  EXPECT_DOUBLE_EQ(model.GlobalTransition(0, 0), 0.0);  // unseen cell
}

TEST(MarkovIfTest, PersonalizationSeparatesUsers) {
  // User 0 always follows 0 with 1; user 1 always follows 0 with 2.
  const data::Dataset dataset = FromSequences(
      {{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}, {0, 2, 0, 2, 0, 2, 0, 2, 0, 2}});
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.8).ValueOrDie();
  MarkovIfConfig config;
  config.smoothing = 0.0;
  const auto model = MarkovIfRecommender::Fit(split, config).ValueOrDie();
  EXPECT_DOUBLE_EQ(model.UserTransition(0, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.UserTransition(0, 0, 2), 0.0);
  EXPECT_DOUBLE_EQ(model.UserTransition(1, 0, 2), 1.0);
  // Global blends both users roughly evenly.
  EXPECT_NEAR(model.GlobalTransition(0, 1), 0.5, 0.1);
}

TEST(MarkovIfTest, BeatsRandomOnGeneratorData) {
  data::Dataset dataset =
      data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.1))
          .Generate()
          .ValueOrDie();
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  auto markov =
      MarkovIfRecommender::Fit(split, MarkovIfConfig()).ValueOrDie();
  RandomRecommender random_rec;

  eval::EvalOptions options;
  options.window_capacity = 100;
  options.min_gap = 10;
  eval::Evaluator evaluator(&split, options);
  const auto markov_acc = evaluator.Evaluate(&markov).ValueOrDie();
  const auto random_acc = evaluator.Evaluate(&random_rec).ValueOrDie();
  EXPECT_GT(markov_acc.MaapAt(10), random_acc.MaapAt(10));
}

TEST(MarkovIfTest, CloneIsIndependentAndEquivalent) {
  data::Dataset dataset =
      data::SyntheticTraceGenerator(data::GowallaLikeProfile(0.05))
          .Generate()
          .ValueOrDie();
  const auto split = data::TrainTestSplit::Temporal(&dataset, 0.7).ValueOrDie();
  auto markov =
      MarkovIfRecommender::Fit(split, MarkovIfConfig()).ValueOrDie();
  auto clone = markov.Clone();
  ASSERT_NE(clone, nullptr);

  window::WindowWalker walker(&dataset.sequence(0), 100);
  for (int i = 0; i < 150; ++i) walker.Advance();
  std::vector<data::ItemId> candidates;
  walker.EligibleCandidates(10, &candidates);
  ASSERT_FALSE(candidates.empty());
  std::vector<double> a(candidates.size()), b(candidates.size());
  markov.Score(0, walker, candidates, a);
  clone->Score(0, walker, candidates, b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace baselines
}  // namespace reconsume
