// Training set D of quadruples (u, v_i, v_j, t) — Eq. (8)–(9) — with the
// paper's pre-sample strategy: S negatives per positive, behavioral features
// extracted once, in advance of SGD (§4.2.2).
//
// Layout: features live in one flat pool (stride F); each eligible repeat
// event stores its positive feature offset and a contiguous range of
// negatives, so Algorithm 1's hierarchical draw (user → event → negative) is
// three uniform integer draws.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/split.h"
#include "features/feature_extractor.h"
#include "util/check.h"
#include "util/random.h"
#include "util/status.h"

namespace reconsume {
namespace sampling {

/// \brief One pre-sampled negative: the item and its feature offset.
struct NegativeSample {
  data::ItemId item = data::kInvalidItem;
  uint32_t feature_offset = 0;
};

/// \brief One positive (repeat) event with its negative block.
struct PositiveEvent {
  data::UserId user = data::kInvalidUser;
  data::ItemId item = data::kInvalidItem;  ///< v_i = x_t^u
  data::Step t = 0;                        ///< consumption step (diagnostics)
  uint32_t feature_offset = 0;
  uint32_t negatives_begin = 0;  ///< index into negatives()
  uint32_t negatives_count = 0;
};

/// \brief How ShardUsers partitions users across parallel SGD workers.
///
/// Both strategies assign every user to exactly one shard, which is what the
/// Hogwild trainer relies on: a user's latent row u and mapping A_u are then
/// touched by a single worker and need no synchronization.
enum class ShardStrategy {
  /// Consecutive blocks of users_with_events(); shard sizes differ by at most
  /// one. Cache-friendly (a worker's user rows are contiguous in U).
  kContiguous,
  /// Round-robin: user index i goes to shard i % N. Smooths out datasets
  /// whose event counts drift along the user-id axis.
  kInterleaved,
};

/// \brief Which recommendation task the quadruples train for.
enum class TrainingTask {
  /// RRC (the paper's main task): positives are eligible windowed repeats,
  /// negatives are other eligible window items.
  kRepeat,
  /// Novel-item recommendation (§4.3): positives are consumptions of items
  /// *not* in the current window; negatives are drawn uniformly from the
  /// catalog excluding window items. min_gap is ignored.
  kNovel,
};

/// \brief Options for building the training set.
struct TrainingSetOptions {
  int window_capacity = 100;    ///< |W|
  int min_gap = 10;             ///< Omega; positives and negatives need gap > Omega
  int negatives_per_positive = 10;  ///< S
  uint64_t seed = 1;            ///< for the without-replacement negative draw
  TrainingTask task = TrainingTask::kRepeat;
};

/// \brief Immutable pre-sampled training data for TS-PPR.
class TrainingSet {
 public:
  /// Builds D over the training segments of `split`, extracting features with
  /// `extractor` (whose StaticFeatureTable must already be computed on the
  /// same split).
  static Result<TrainingSet> Build(const data::TrainTestSplit& split,
                                   const features::FeatureExtractor& extractor,
                                   const TrainingSetOptions& options);

  int feature_dim() const { return feature_dim_; }

  size_t num_users() const { return user_event_ranges_.size(); }
  /// Users that actually have >= 1 positive event (Algorithm 1 draws only
  /// from these; a user whose training segment has no eligible repeats cannot
  /// contribute gradients).
  const std::vector<data::UserId>& users_with_events() const {
    return users_with_events_;
  }

  /// Events of user u as [begin, end) indices into events().
  std::pair<uint32_t, uint32_t> user_events(data::UserId u) const {
    RC_CHECK_INDEX(u, user_event_ranges_.size());
    return user_event_ranges_[static_cast<size_t>(u)];
  }

  const std::vector<PositiveEvent>& events() const { return events_; }
  const std::vector<NegativeSample>& negatives() const { return negatives_; }

  /// Feature vector at a stored offset.
  std::span<const double> feature(uint32_t offset) const {
    RC_DCHECK(offset + static_cast<size_t>(feature_dim_) <=
              feature_pool_.size())
        << "feature offset " << offset << " overruns pool of "
        << feature_pool_.size();
    return {feature_pool_.data() + offset, static_cast<size_t>(feature_dim_)};
  }

  /// Total number of quadruples |D| (sum of negative counts).
  int64_t num_quadruples() const { return num_quadruples_; }

  /// Hierarchically draws one quadruple: uniform user (among users with
  /// events), uniform event of that user, uniform negative of that event.
  /// Returns {event index, negative index}. Precondition: num_quadruples()>0.
  std::pair<uint32_t, uint32_t> SampleQuadruple(util::Rng* rng) const;

  /// \brief Algorithm 1's hierarchical draw restricted to a user subset.
  ///
  /// Same three uniform draws as SampleQuadruple, but the user comes from
  /// `users` instead of the full users_with_events() list. This is the shard
  /// view the Hogwild trainer samples through: each worker passes its own
  /// shard, so the draw sequence of a worker depends only on its RNG stream
  /// and its shard, never on other workers. Precondition: `users` is
  /// non-empty and every listed user has at least one event.
  std::pair<uint32_t, uint32_t> SampleQuadrupleFrom(
      std::span<const data::UserId> users, util::Rng* rng) const;

  /// \brief Partitions users_with_events() into per-worker shards.
  ///
  /// Returns min(num_shards, num users) non-empty shards; together they cover
  /// every user with events exactly once (the per-user ownership invariant of
  /// the Hogwild trainer). With one shard, the shard equals
  /// users_with_events() in its original order, which is what makes the
  /// single-worker parallel path sample-for-sample identical to the
  /// sequential trainer. Precondition: num_shards >= 1.
  std::vector<std::vector<data::UserId>> ShardUsers(
      int num_shards, ShardStrategy strategy) const;

  /// The small-batch convergence subset (§4.2.2): each user's first
  /// ceil(fraction * #events) events, one fixed negative each (the first).
  /// Returned as {event index, negative index} pairs.
  std::vector<std::pair<uint32_t, uint32_t>> SmallBatch(double fraction) const;

  const TrainingSetOptions& options() const { return options_; }

 private:
  TrainingSetOptions options_;
  int feature_dim_ = 0;
  int64_t num_quadruples_ = 0;
  std::vector<double> feature_pool_;
  std::vector<PositiveEvent> events_;
  std::vector<NegativeSample> negatives_;
  std::vector<std::pair<uint32_t, uint32_t>> user_event_ranges_;  // per user
  std::vector<data::UserId> users_with_events_;
};

}  // namespace sampling
}  // namespace reconsume

