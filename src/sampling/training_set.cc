#include "sampling/training_set.h"

#include <algorithm>
#include <cmath>

#include "window/window_walker.h"

namespace reconsume {
namespace sampling {

Result<TrainingSet> TrainingSet::Build(
    const data::TrainTestSplit& split,
    const features::FeatureExtractor& extractor,
    const TrainingSetOptions& options) {
  if (options.window_capacity < 2) {
    return Status::InvalidArgument("window_capacity must be >= 2");
  }
  if (options.min_gap < 0 || options.min_gap >= options.window_capacity) {
    return Status::InvalidArgument("require 0 <= min_gap < window_capacity");
  }
  if (options.negatives_per_positive < 1) {
    return Status::InvalidArgument("negatives_per_positive must be >= 1");
  }

  TrainingSet out;
  out.options_ = options;
  out.feature_dim_ = extractor.dimension();

  const data::Dataset& dataset = split.dataset();
  util::Rng rng(options.seed);
  std::vector<data::ItemId> candidates;
  std::vector<double> feature_scratch(static_cast<size_t>(out.feature_dim_));

  auto push_feature = [&](const window::WindowWalker& walker,
                          data::ItemId v) -> uint32_t {
    const uint32_t offset = static_cast<uint32_t>(out.feature_pool_.size());
    extractor.Extract(walker, v, feature_scratch);
    out.feature_pool_.insert(out.feature_pool_.end(), feature_scratch.begin(),
                             feature_scratch.end());
    return offset;
  };

  out.user_event_ranges_.reserve(dataset.num_users());
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const uint32_t events_begin = static_cast<uint32_t>(out.events_.size());
    const auto& seq = dataset.sequence(static_cast<data::UserId>(u));
    const size_t train_end = split.split_point(static_cast<data::UserId>(u));
    window::WindowWalker walker(&seq, options.window_capacity);
    while (static_cast<size_t>(walker.step()) < train_end) {
      bool is_positive;
      if (options.task == TrainingTask::kRepeat) {
        is_positive = walker.NextIsEligibleRepeat(options.min_gap);
      } else {
        // Novel task: an out-of-window consumption after warm-up.
        is_positive = walker.step() > 0 && !walker.NextIsRepeat();
      }
      if (is_positive) {
        const data::ItemId positive = walker.NextItem();
        if (options.task == TrainingTask::kRepeat) {
          // Eligibility (Eq. 9) already encodes the Omega gap: the walker
          // only returns window items whose last consumption is > min_gap
          // steps old, for the positive and every candidate negative.
          RC_DCHECK(walker.NextIsEligibleRepeat(options.min_gap));
          walker.EligibleCandidates(options.min_gap, &candidates);
          // Negatives are eligible candidates other than the positive.
          std::erase(candidates, positive);
          RC_DCHECK(std::find(candidates.begin(), candidates.end(),
                              positive) == candidates.end());
        } else {
          // Negatives: uniform catalog items outside the window. Rejection
          // sampling; windows are small relative to the catalog.
          candidates.clear();
          const size_t num_items = dataset.num_items();
          const size_t want = std::min(
              static_cast<size_t>(options.negatives_per_positive) * 2,
              num_items);
          for (int attempt = 0;
               attempt < 50 * options.negatives_per_positive &&
               candidates.size() < want;
               ++attempt) {
            const data::ItemId v =
                static_cast<data::ItemId>(rng.Uniform(num_items));
            if (v == positive || walker.Contains(v)) continue;
            candidates.push_back(v);
          }
          std::sort(candidates.begin(), candidates.end());
          candidates.erase(std::unique(candidates.begin(), candidates.end()),
                           candidates.end());
        }
        if (!candidates.empty()) {
          PositiveEvent event;
          event.user = static_cast<data::UserId>(u);
          event.item = positive;
          event.t = walker.step();
          event.feature_offset = push_feature(walker, positive);
          event.negatives_begin = static_cast<uint32_t>(out.negatives_.size());

          // Without-replacement draw of up to S negatives: partial
          // Fisher-Yates over the candidate vector.
          const size_t take = std::min(
              candidates.size(),
              static_cast<size_t>(options.negatives_per_positive));
          for (size_t k = 0; k < take; ++k) {
            const size_t j =
                k + static_cast<size_t>(rng.Uniform(candidates.size() - k));
            std::swap(candidates[k], candidates[j]);
            NegativeSample neg;
            neg.item = candidates[k];
            neg.feature_offset = push_feature(walker, candidates[k]);
            out.negatives_.push_back(neg);
          }
          event.negatives_count = static_cast<uint32_t>(take);
          out.num_quadruples_ += static_cast<int64_t>(take);
          out.events_.push_back(event);
        }
      }
      walker.Advance();
    }
    const uint32_t events_end = static_cast<uint32_t>(out.events_.size());
    out.user_event_ranges_.emplace_back(events_begin, events_end);
    if (events_end > events_begin) {
      out.users_with_events_.push_back(static_cast<data::UserId>(u));
    }
  }

  // One stored negative == one quadruple of D; the counters must agree, and
  // every user range must nest inside events().
  RC_CHECK(out.num_quadruples_ ==
           static_cast<int64_t>(out.negatives_.size()))
      << "quadruple count " << out.num_quadruples_ << " != stored negatives "
      << out.negatives_.size();
  RC_CHECK(out.user_event_ranges_.size() == dataset.num_users());

  if (out.num_quadruples_ == 0) {
    return Status::FailedPrecondition(
        "no eligible repeat events in the training data; check |W| and Omega");
  }
  return out;
}

std::pair<uint32_t, uint32_t> TrainingSet::SampleQuadruple(
    util::Rng* rng) const {
  return SampleQuadrupleFrom(users_with_events_, rng);
}

std::pair<uint32_t, uint32_t> TrainingSet::SampleQuadrupleFrom(
    std::span<const data::UserId> users, util::Rng* rng) const {
  RC_DCHECK(!users.empty());
  const data::UserId u = users[rng->Uniform(users.size())];
  const auto [begin, end] = user_events(u);
  RC_DCHECK(end > begin) << "user " << u << " listed without events";
  const uint32_t event_index =
      begin + static_cast<uint32_t>(rng->Uniform(end - begin));
  RC_DCHECK_INDEX(event_index, events_.size());
  const PositiveEvent& event = events_[event_index];
  RC_DCHECK(event.user == u) << "event/user ownership mismatch";
  const uint32_t neg_index =
      event.negatives_begin +
      static_cast<uint32_t>(rng->Uniform(event.negatives_count));
  RC_DCHECK_INDEX(neg_index, negatives_.size());
  // Quadruple validity (Eq. 8): the negative must be a different item than
  // the positive of the same event.
  RC_DCHECK(negatives_[neg_index].item != event.item)
      << "negative equals positive item " << event.item;
  return {event_index, neg_index};
}

std::vector<std::vector<data::UserId>> TrainingSet::ShardUsers(
    int num_shards, ShardStrategy strategy) const {
  RC_DCHECK(num_shards >= 1);
  const size_t n = users_with_events_.size();
  const size_t shards_count =
      std::max<size_t>(1, std::min<size_t>(static_cast<size_t>(num_shards), n));
  std::vector<std::vector<data::UserId>> shards(shards_count);
  if (strategy == ShardStrategy::kInterleaved) {
    for (size_t i = 0; i < n; ++i) {
      shards[i % shards_count].push_back(users_with_events_[i]);
    }
  } else {
    for (size_t w = 0; w < shards_count; ++w) {
      const size_t begin = n * w / shards_count;
      const size_t end = n * (w + 1) / shards_count;
      shards[w].assign(users_with_events_.begin() + begin,
                       users_with_events_.begin() + end);
    }
  }
  return shards;
}

std::vector<std::pair<uint32_t, uint32_t>> TrainingSet::SmallBatch(
    double fraction) const {
  std::vector<std::pair<uint32_t, uint32_t>> batch;
  for (const auto& [begin, end] : user_event_ranges_) {
    if (begin == end) continue;
    const uint32_t count = end - begin;
    const uint32_t take = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               std::ceil(fraction * static_cast<double>(count))));
    for (uint32_t e = begin; e < begin + std::min(take, count); ++e) {
      batch.emplace_back(e, events_[e].negatives_begin);
    }
  }
  return batch;
}

}  // namespace sampling
}  // namespace reconsume
