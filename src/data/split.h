// Per-user temporal train/test split (paper §5.1: first 70% train, rest test).

#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/check.h"
#include "util/status.h"

namespace reconsume {
namespace data {

/// \brief A temporal split of a Dataset.
///
/// Holds a reference to the dataset plus, per user, the index of the first
/// test event. Training code touches positions t < split_point(u);
/// evaluation touches t >= split_point(u) and its windows are allowed to look
/// back across the boundary (the paper evaluates sliding windows over the
/// full sequence).
class TrainTestSplit {
 public:
  /// Splits each user's sequence at floor(train_fraction * |S_u|).
  static Result<TrainTestSplit> Temporal(const Dataset* dataset,
                                         double train_fraction);

  const Dataset& dataset() const { return *dataset_; }

  /// First test position for user u (== train length).
  size_t split_point(UserId u) const {
    RC_CHECK_INDEX(u, split_points_.size());
    return split_points_[static_cast<size_t>(u)];
  }
  size_t train_size(UserId u) const { return split_point(u); }
  size_t test_size(UserId u) const {
    return dataset_->sequence(u).size() - split_point(u);
  }

  int64_t total_train_events() const;
  int64_t total_test_events() const;

 private:
  TrainTestSplit(const Dataset* dataset, std::vector<size_t> split_points)
      : dataset_(dataset), split_points_(std::move(split_points)) {}

  const Dataset* dataset_;
  std::vector<size_t> split_points_;
};

}  // namespace data
}  // namespace reconsume

