// Dataset summary statistics: the Table 2 report plus the repeat-behaviour
// profile numbers the experiment logs print.

#pragma once

#include <string>

#include "data/dataset.h"

namespace reconsume {
namespace data {

/// \brief Summary statistics of a dataset (Table 2 of the paper, extended).
struct DatasetStats {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_interactions = 0;
  double mean_sequence_length = 0.0;
  int64_t min_sequence_length = 0;
  int64_t max_sequence_length = 0;
  /// Fraction of events that repeat an item already present in the trailing
  /// window of size `window` used to compute these stats.
  double repeat_fraction = 0.0;
  /// Mean distinct items per user.
  double mean_user_item_pool = 0.0;
  /// Input lines the loader skipped under LoaderOptions::max_bad_lines.
  /// Not derivable from the Dataset itself — callers that load from disk
  /// copy it in from the loader's LoadReport; 0 for generated datasets.
  int64_t num_bad_lines = 0;
};

/// Computes stats; `window` is the time-window capacity |W| used for the
/// repeat fraction (0 means "ever consumed before" instead of windowed).
DatasetStats ComputeDatasetStats(const Dataset& dataset, int window);

/// Renders a Table-2-style row block.
std::string FormatDatasetStats(const std::string& name,
                               const DatasetStats& stats);

}  // namespace data
}  // namespace reconsume

