// Exploratory dataset analysis: the statistics the repeat-consumption
// literature (Anderson et al. [7], the STREC paper [13]) characterizes
// traces by. Used by bench_ext_dataset_analysis to show that the synthetic
// profiles exhibit the qualitative structure the paper's datasets have.

#pragma once

#include <vector>

#include "data/dataset.h"

namespace reconsume {
namespace data {

/// \brief P(next consumption of an item | gap since its last consumption):
/// the empirical recency curve. Entry g (1-based gap) holds the fraction of
/// moments at which an item last consumed g steps ago was consumed next.
struct RecencyCurve {
  /// reconsumption_probability[g-1] for g in [1, max_gap].
  std::vector<double> reconsumption_probability;
  std::vector<int64_t> opportunity_counts;  ///< denominator per gap
};

/// Computes the curve over the whole dataset with gaps up to `max_gap`.
/// An "opportunity" at gap g is an event at whose time some item had last
/// been consumed exactly g steps earlier; it converts at gap g if that item
/// was the one consumed.
RecencyCurve ComputeRecencyCurve(const Dataset& dataset, int max_gap);

/// Gini coefficient of the item-popularity distribution in [0, 1); higher =
/// more skewed (the Zipf-like head the paper's traces have).
double PopularityGini(const Dataset& dataset);

/// \brief Repeat share as a function of item popularity rank decile: entry d
/// is the fraction of all (windowed) repeat events whose item falls in the
/// d-th popularity decile (0 = most popular 10% of items).
std::vector<double> RepeatShareByPopularityDecile(const Dataset& dataset,
                                                  int window);

/// Distribution of same-item inter-consumption gaps, capped at `max_gap`
/// (the last bucket absorbs larger gaps). Normalized to sum to 1 (empty if
/// the dataset has no repeats at all).
std::vector<double> InterConsumptionGapDistribution(const Dataset& dataset,
                                                    int max_gap);

}  // namespace data
}  // namespace reconsume

