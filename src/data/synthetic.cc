#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace reconsume {
namespace data {

SyntheticProfile GowallaLikeProfile(double scale) {
  SyntheticProfile p;
  p.name = "gowalla-like";
  p.num_users = std::max(1, static_cast<int>(150 * scale));
  p.min_sequence_length = 150;
  p.max_sequence_length = 600;
  p.catalog_size = std::max(50, static_cast<int>(4000 * scale));
  p.popularity_zipf_exponent = 1.1;
  p.user_pool_min = 60;
  p.user_pool_max = 220;
  p.repeat_probability = 0.5;
  // High per-user variance (some users even anti-popularity / anti-recency):
  // the personalized mapping A_u is what can exploit this; global weighting
  // baselines average it away. This is the regime behind the paper's large
  // Gowalla margins.
  p.recency_weight_mean = 1.8;
  p.recency_weight_std = 2.2;
  p.quality_weight_mean = 1.2;
  p.quality_weight_std = 1.8;
  p.familiarity_weight_mean = 1.0;
  p.familiarity_weight_std = 1.2;
  p.affinity_std = 1.2;
  p.softmax_temperature = 0.55;  // sharp choices => steep Fig. 4 curves
  p.recency_exponent = 1.2;
  p.history_window = 100;
  p.seed = 20170228;
  p.user_pool_max = std::min(p.user_pool_max, p.catalog_size);
  p.user_pool_min = std::min(p.user_pool_min, p.user_pool_max);
  return p;
}

SyntheticProfile LastfmLikeProfile(double scale) {
  SyntheticProfile p;
  p.name = "lastfm-like";
  p.num_users = std::max(1, static_cast<int>(40 * scale));
  p.min_sequence_length = 500;
  p.max_sequence_length = 1600;
  p.catalog_size = std::max(100, static_cast<int>(12000 * scale));
  p.popularity_zipf_exponent = 0.9;
  p.user_pool_min = 120;
  p.user_pool_max = 420;
  p.repeat_probability = 0.77;  // the paper's 77% repeat-listening share
  p.recency_weight_mean = 1.2;
  p.recency_weight_std = 0.6;
  p.quality_weight_mean = 0.8;
  p.quality_weight_std = 0.5;
  p.familiarity_weight_mean = 0.8;
  p.familiarity_weight_std = 0.5;
  p.affinity_std = 0.7;
  p.softmax_temperature = 1.5;  // noisy choices => flat Fig. 4 curves
  p.recency_exponent = 0.6;
  p.history_window = 100;
  p.seed = 19850506;
  p.user_pool_max = std::min(p.user_pool_max, p.catalog_size);
  p.user_pool_min = std::min(p.user_pool_min, p.user_pool_max);
  return p;
}

Status SyntheticTraceGenerator::Validate() const {
  const SyntheticProfile& p = profile_;
  if (p.num_users <= 0) return Status::InvalidArgument("num_users <= 0");
  if (p.catalog_size <= 1) return Status::InvalidArgument("catalog_size <= 1");
  if (p.min_sequence_length < 2 ||
      p.max_sequence_length < p.min_sequence_length) {
    return Status::InvalidArgument("bad sequence length range");
  }
  if (p.user_pool_min < 2 || p.user_pool_max < p.user_pool_min) {
    return Status::InvalidArgument("bad user pool range");
  }
  if (p.user_pool_max > p.catalog_size) {
    return Status::InvalidArgument("user_pool_max exceeds catalog_size");
  }
  if (!(p.repeat_probability >= 0.0 && p.repeat_probability <= 1.0)) {
    return Status::InvalidArgument("repeat_probability out of [0,1]");
  }
  if (p.softmax_temperature <= 0.0) {
    return Status::InvalidArgument("softmax_temperature <= 0");
  }
  if (p.history_window < 1) return Status::InvalidArgument("history_window < 1");
  return Status::OK();
}

namespace {

// Per-user generation state; item indices below are catalog ids.
struct UserModel {
  std::vector<int> pool;                       // catalog ids this user touches
  std::unordered_map<int, double> affinity;    // static u-v preference
  std::unordered_map<int, double> pool_weight; // novel-draw weight
  double w_recency = 0.0;
  double w_quality = 0.0;
  double w_familiarity = 0.0;
};

}  // namespace

Result<Dataset> SyntheticTraceGenerator::Generate(
    std::vector<UserTraits>* traits_out) const {
  RECONSUME_RETURN_NOT_OK(Validate());
  const SyntheticProfile& p = profile_;
  util::Rng rng(p.seed);

  // Global catalog popularity: Zipf over a random permutation of ranks, so
  // that item id does not encode popularity.
  std::vector<double> popularity(static_cast<size_t>(p.catalog_size));
  {
    std::vector<int> rank(popularity.size());
    for (size_t i = 0; i < rank.size(); ++i) rank[i] = static_cast<int>(i) + 1;
    rng.Shuffle(&rank);
    for (size_t i = 0; i < popularity.size(); ++i) {
      popularity[i] =
          1.0 / std::pow(static_cast<double>(rank[i]), p.popularity_zipf_exponent);
    }
  }
  util::AliasSampler catalog_sampler(popularity);

  // Normalized log-popularity stands in for the "quality" signal users react
  // to; matches the paper's ln(1 + n_v) feature up to scale.
  const double max_pop = *std::max_element(popularity.begin(), popularity.end());
  auto quality_of = [&](int item) {
    return std::log1p(popularity[static_cast<size_t>(item)] / max_pop * 100.0) /
           std::log1p(100.0);
  };

  DatasetBuilder builder;
  std::vector<int> window_items;      // reusable scratch
  std::vector<double> window_scores;  // reusable scratch

  if (traits_out != nullptr) {
    traits_out->assign(static_cast<size_t>(p.num_users), UserTraits{});
  }
  for (int u = 0; u < p.num_users; ++u) {
    UserModel model;
    model.w_recency = rng.Gaussian(p.recency_weight_mean, p.recency_weight_std);
    model.w_quality = rng.Gaussian(p.quality_weight_mean, p.quality_weight_std);
    model.w_familiarity =
        rng.Gaussian(p.familiarity_weight_mean, p.familiarity_weight_std);
    if (traits_out != nullptr) {
      (*traits_out)[static_cast<size_t>(u)] = UserTraits{
          model.w_recency, model.w_quality, model.w_familiarity};
    }

    const int pool_size =
        static_cast<int>(rng.UniformInt(p.user_pool_min, p.user_pool_max));
    std::unordered_set<int> pool_set;
    while (static_cast<int>(pool_set.size()) < pool_size) {
      pool_set.insert(static_cast<int>(catalog_sampler.Sample(&rng)));
    }
    model.pool.assign(pool_set.begin(), pool_set.end());
    std::sort(model.pool.begin(), model.pool.end());
    for (int item : model.pool) {
      model.affinity[item] = rng.Gaussian(0.0, p.affinity_std);
      // Novel draws prefer popular, liked items.
      model.pool_weight[item] =
          popularity[static_cast<size_t>(item)] *
          std::exp(std::clamp(model.affinity[item], -4.0, 4.0));
    }
    util::AliasSampler pool_sampler([&] {
      std::vector<double> w;
      w.reserve(model.pool.size());
      for (int item : model.pool) w.push_back(model.pool_weight[item]);
      return w;
    }());

    const int length = static_cast<int>(
        rng.UniformInt(p.min_sequence_length, p.max_sequence_length));
    std::vector<int> history;
    history.reserve(static_cast<size_t>(length));
    std::unordered_map<int, int> window_count;
    std::unordered_map<int, int> last_seen;  // catalog id -> step

    for (int t = 0; t < length; ++t) {
      int chosen = -1;
      const bool try_repeat =
          !window_count.empty() && rng.Bernoulli(p.repeat_probability);
      if (try_repeat) {
        // Score every distinct item in the trailing window and softmax-draw.
        window_items.clear();
        window_scores.clear();
        double max_score = -1e300;
        for (const auto& [item, count] : window_count) {
          const int gap = t - last_seen[item];
          const double recency =
              1.0 / std::pow(static_cast<double>(std::max(gap, 1)),
                             p.recency_exponent);
          const double familiarity =
              static_cast<double>(count) /
              static_cast<double>(std::min<size_t>(history.size(),
                                                   static_cast<size_t>(p.history_window)));
          const double score =
              (model.w_recency * recency + model.w_quality * quality_of(item) +
               model.w_familiarity * familiarity + model.affinity[item]) /
              p.softmax_temperature;
          window_items.push_back(item);
          window_scores.push_back(score);
          max_score = std::max(max_score, score);
        }
        double total = 0.0;
        for (double& s : window_scores) {
          s = std::exp(s - max_score);
          total += s;
        }
        double pick = rng.NextDouble() * total;
        for (size_t i = 0; i < window_items.size(); ++i) {
          pick -= window_scores[i];
          if (pick <= 0) {
            chosen = window_items[i];
            break;
          }
        }
        if (chosen < 0) chosen = window_items.back();
      } else {
        // Novel draw: prefer items outside the current window so that the
        // windowed repeat fraction tracks repeat_probability instead of
        // drifting up when pools are small.
        chosen = model.pool[pool_sampler.Sample(&rng)];
        for (int attempt = 0; attempt < 20 && window_count.count(chosen) > 0;
             ++attempt) {
          chosen = model.pool[pool_sampler.Sample(&rng)];
        }
      }

      history.push_back(chosen);
      ++window_count[chosen];
      last_seen[chosen] = t;
      if (static_cast<int>(history.size()) > p.history_window) {
        const int leaving =
            history[history.size() - 1 - static_cast<size_t>(p.history_window)];
        auto it = window_count.find(leaving);
        if (--it->second == 0) window_count.erase(it);
      }
      RECONSUME_RETURN_NOT_OK(builder.Add(u, chosen, t));
    }
  }
  return builder.Build();
}

}  // namespace data
}  // namespace reconsume
