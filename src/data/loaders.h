// Loaders for the two public traces the paper evaluates on.
//
// The real files are not bundled with this repository (they are multi-GB
// downloads); these loaders accept the published formats so that real traces
// drop in, while the experiments default to SyntheticTraceGenerator profiles
// calibrated to the same statistics (see DESIGN.md §1).

#pragma once

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace reconsume {
namespace data {

/// \brief SNAP Gowalla check-in format:
///   user \t check-in-time(ISO-8601) \t latitude \t longitude \t location_id
///
/// Latitude/longitude are ignored; (user, location, time) becomes the event.
class GowallaLoader {
 public:
  /// `max_events` > 0 truncates the read (useful for smoke tests).
  static Result<Dataset> Load(const std::string& path, int64_t max_events = 0);
};

/// \brief Last.fm 1K-user format (userid-timestamp-artid-artname-traid-traname):
///   user \t timestamp(ISO-8601) \t artist-id \t artist \t track-id \t track
///
/// The track id is the item; rows with an empty track id fall back to
/// "artist||track" as the key. Durations are not in this file, so the paper's
/// sub-30-second skip filter must be applied upstream if desired.
class LastfmLoader {
 public:
  static Result<Dataset> Load(const std::string& path, int64_t max_events = 0);
};

/// Parses "YYYY-MM-DDTHH:MM:SSZ" into seconds since an arbitrary fixed epoch.
/// Only ordering matters for this library. Returns InvalidArgument on
/// malformed input.
Result<int64_t> ParseIso8601(std::string_view text);

}  // namespace data
}  // namespace reconsume

