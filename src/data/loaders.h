// Loaders for the two public traces the paper evaluates on.
//
// The real files are not bundled with this repository (they are multi-GB
// downloads); these loaders accept the published formats so that real traces
// drop in, while the experiments default to SyntheticTraceGenerator profiles
// calibrated to the same statistics (see DESIGN.md §1).
//
// Robustness contract (docs/robustness.md): a malformed or out-of-order line
// fails the load with a Status carrying "path:line:" — unless the caller
// budgets for dirt with LoaderOptions::max_bad_lines, in which case up to
// that many offending lines are skipped and counted in LoadReport.

#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace reconsume {
namespace data {

/// \brief Expected per-user timestamp order of the input file.
enum class TimestampOrder {
  kAny,         ///< no ordering requirement (the dataset builder sorts)
  kAscending,   ///< each user's timestamps must be non-decreasing
  kDescending,  ///< non-increasing (SNAP Gowalla / Last.fm dump order)
};

/// \brief Tolerance and validation knobs shared by the trace loaders.
struct LoaderOptions {
  /// > 0 truncates the read after this many accepted events (smoke tests).
  int64_t max_events = 0;
  /// Number of malformed / out-of-order lines to skip (and count) before the
  /// load fails. 0 (the default) = strict: first bad line fails with its
  /// line number.
  int64_t max_bad_lines = 0;
  /// When not kAny, a line whose timestamp breaks the per-user order counts
  /// as a bad line.
  TimestampOrder timestamp_order = TimestampOrder::kAny;
};

/// \brief What a loader saw while reading (bad-line accounting).
struct LoadReport {
  int64_t num_lines = 0;      ///< data lines consumed
  int64_t num_bad_lines = 0;  ///< lines skipped under max_bad_lines
  int64_t num_events = 0;     ///< interactions accepted into the dataset
};

/// \brief SNAP Gowalla check-in format:
///   user \t check-in-time(ISO-8601) \t latitude \t longitude \t location_id
///
/// Latitude/longitude are ignored; (user, location, time) becomes the event.
class GowallaLoader {
 public:
  /// `max_events` > 0 truncates the read (useful for smoke tests).
  static Result<Dataset> Load(const std::string& path, int64_t max_events = 0);

  /// Full-control overload; `report` (optional) receives the line accounting
  /// even when the load fails.
  static Result<Dataset> Load(const std::string& path,
                              const LoaderOptions& options,
                              LoadReport* report = nullptr);
};

/// \brief Last.fm 1K-user format (userid-timestamp-artid-artname-traid-traname):
///   user \t timestamp(ISO-8601) \t artist-id \t artist \t track-id \t track
///
/// The track id is the item; rows with an empty track id fall back to
/// "artist||track" as the key. Durations are not in this file, so the paper's
/// sub-30-second skip filter must be applied upstream if desired.
class LastfmLoader {
 public:
  static Result<Dataset> Load(const std::string& path, int64_t max_events = 0);

  /// Full-control overload; `report` (optional) receives the line accounting
  /// even when the load fails.
  static Result<Dataset> Load(const std::string& path,
                              const LoaderOptions& options,
                              LoadReport* report = nullptr);
};

/// Parses "YYYY-MM-DDTHH:MM:SSZ" into seconds since an arbitrary fixed epoch.
/// Only ordering matters for this library. Returns InvalidArgument on
/// malformed input.
Result<int64_t> ParseIso8601(std::string_view text);

}  // namespace data
}  // namespace reconsume
