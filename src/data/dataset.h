// The Dataset: id-compacted per-user consumption sequences, plus the builder
// that assembles one from raw interaction streams.

#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/types.h"
#include "util/check.h"
#include "util/status.h"

namespace reconsume {
namespace data {

/// \brief Immutable collection of per-user consumption sequences.
///
/// Sequences are sorted time-ascending; ids are dense. External string keys
/// are retained for reporting and round-tripping.
class Dataset {
 public:
  Dataset() = default;

  size_t num_users() const { return sequences_.size(); }
  size_t num_items() const { return item_keys_.size(); }

  /// Total number of consumption events.
  int64_t num_interactions() const;

  const ConsumptionSequence& sequence(UserId u) const {
    RC_CHECK_INDEX(u, sequences_.size());
    return sequences_[static_cast<size_t>(u)];
  }
  const std::vector<ConsumptionSequence>& sequences() const {
    return sequences_;
  }

  const std::string& user_key(UserId u) const {
    RC_CHECK_INDEX(u, user_keys_.size());
    return user_keys_[static_cast<size_t>(u)];
  }
  const std::string& item_key(ItemId v) const {
    RC_CHECK_INDEX(v, item_keys_.size());
    return item_keys_[static_cast<size_t>(v)];
  }

  /// Dense id for an external key, or kInvalidUser / kInvalidItem.
  UserId FindUser(const std::string& key) const;
  ItemId FindItem(const std::string& key) const;

  /// Keeps only users whose sequence satisfies `keep(sequence)`; items that
  /// lose every occurrence are re-compacted away.
  Dataset FilterUsers(
      const std::function<bool(const ConsumptionSequence&)>& keep) const;

  /// The paper's filter: 70% of the sequence must hold >= min_train events
  /// (|S_u| * train_fraction >= min_train, Section 5.1).
  Dataset FilterByMinTrainLength(double train_fraction, int min_train) const;

  /// Keeps only each user's first `lengths[u]` events (clamped to the
  /// sequence length); items that lose every occurrence are compacted away.
  /// Used for nested validation: truncating at the outer training boundary
  /// guarantees hyperparameter selection never sees test events.
  Dataset TruncatePerUser(const std::vector<size_t>& lengths) const;

 private:
  friend class DatasetBuilder;

  std::vector<ConsumptionSequence> sequences_;
  std::vector<std::string> user_keys_;
  std::vector<std::string> item_keys_;
  std::unordered_map<std::string, UserId> user_index_;
  std::unordered_map<std::string, ItemId> item_index_;
};

/// \brief Accumulates raw interactions, then sorts/compacts into a Dataset.
class DatasetBuilder {
 public:
  /// Adds one event. Keys may be arbitrary non-empty strings.
  Status Add(RawInteraction interaction);

  /// Convenience overload for already-numeric traces.
  Status Add(int64_t user_key, int64_t item_key, int64_t timestamp);

  /// Sorts each user's events by (timestamp, arrival order) and compacts ids.
  /// The builder is left empty afterwards.
  Result<Dataset> Build();

  int64_t num_pending() const { return num_pending_; }

 private:
  struct PendingEvent {
    ItemId item;
    int64_t timestamp;
    int64_t arrival;  ///< tie-breaker preserving input order
  };

  std::vector<std::vector<PendingEvent>> pending_;  // per dense user
  std::vector<std::string> user_keys_;
  std::vector<std::string> item_keys_;
  std::unordered_map<std::string, UserId> user_index_;
  std::unordered_map<std::string, ItemId> item_index_;
  int64_t num_pending_ = 0;
  int64_t arrival_counter_ = 0;
};

}  // namespace data
}  // namespace reconsume

