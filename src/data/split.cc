#include "data/split.h"

#include <cmath>

namespace reconsume {
namespace data {

Result<TrainTestSplit> TrainTestSplit::Temporal(const Dataset* dataset,
                                                double train_fraction) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("TrainTestSplit: null dataset");
  }
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    return Status::InvalidArgument(
        "TrainTestSplit: train_fraction must be in (0, 1)");
  }
  std::vector<size_t> split_points(dataset->num_users());
  for (size_t u = 0; u < dataset->num_users(); ++u) {
    const size_t len = dataset->sequence(static_cast<UserId>(u)).size();
    split_points[u] = static_cast<size_t>(
        std::floor(train_fraction * static_cast<double>(len)));
    RC_DCHECK(split_points[u] <= len)
        << "split point past end of user " << u << "'s sequence";
  }
  return TrainTestSplit(dataset, std::move(split_points));
}

int64_t TrainTestSplit::total_train_events() const {
  int64_t total = 0;
  for (size_t p : split_points_) total += static_cast<int64_t>(p);
  return total;
}

int64_t TrainTestSplit::total_test_events() const {
  return dataset_->num_interactions() - total_train_events();
}

}  // namespace data
}  // namespace reconsume
