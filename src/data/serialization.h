// Plain-text round-tripping of datasets: one "user_key \t item_key \t step"
// row per event. Used to cache generated traces and to feed external tools.

#pragma once

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace reconsume {
namespace data {

/// Writes `dataset` to `path` in the TSV event format. Events are emitted in
/// per-user sequence order with the step index as the timestamp, so a reload
/// reproduces identical sequences. The write is atomic (temp file + fsync +
/// rename): a crash mid-save never leaves a partial file at `path`.
/// Failpoint: "data/serialization/save".
Status SaveDatasetTsv(const Dataset& dataset, const std::string& path);

/// Loads a TSV event file written by SaveDatasetTsv (or any
/// "user \t item \t integer-time" file). Strict: the first malformed line
/// fails the load with its line number.
/// Failpoint: "data/serialization/load".
Result<Dataset> LoadDatasetTsv(const std::string& path);

}  // namespace data
}  // namespace reconsume

