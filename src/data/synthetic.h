// Synthetic consumption-trace generator.
//
// Stand-in for the Gowalla and Last.fm traces (DESIGN.md §1). The generator
// reproduces the statistics the TS-PPR method and its baselines are sensitive
// to: power-law item popularity, per-user repeat propensity, a recency-decay
// repeat kernel, per-user personalized weighting of recency vs quality vs
// familiarity (this is what the personalized mapping A_u can exploit), and
// stable per-(user, item) affinities (what the static term u^T v can exploit).

#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace reconsume {
namespace data {

/// \brief Knobs of the generative model for one dataset profile.
struct SyntheticProfile {
  std::string name = "synthetic";

  int num_users = 100;
  int min_sequence_length = 150;  ///< keeps 0.7|S_u| >= 100 after the filter
  int max_sequence_length = 600;
  int catalog_size = 4000;        ///< |V| before per-user pooling
  double popularity_zipf_exponent = 1.1;  ///< catalog popularity skew

  int user_pool_min = 30;   ///< distinct items a user can ever consume
  int user_pool_max = 120;

  /// Probability that a step is generated as a repeat draw (when history
  /// makes one possible). Gowalla-like ~0.55; Lastfm-like ~0.77 (the paper
  /// cites 77% repeat listening on Last.fm).
  double repeat_probability = 0.55;

  /// Per-user behavioural weights w ~ N(mean, std^2); the repeat-draw score is
  ///   w_rec * recency + w_qual * quality + w_fam * familiarity + affinity.
  double recency_weight_mean = 2.0, recency_weight_std = 1.0;
  double quality_weight_mean = 1.5, quality_weight_std = 0.8;
  double familiarity_weight_mean = 1.0, familiarity_weight_std = 0.6;

  /// Std-dev of the static per-(user, item) affinity term.
  double affinity_std = 1.0;

  /// Softmax temperature of the repeat choice; higher = noisier = flatter
  /// feature-rank curves (the Lastfm-like regime in Fig. 4).
  double softmax_temperature = 0.6;

  /// Hyperbolic recency decay power: recency(v) = 1 / gap^exponent.
  double recency_exponent = 1.2;

  /// How many trailing events a repeat draw can come from.
  int history_window = 100;

  uint64_t seed = 20170228;  ///< default arbitrary but fixed for reproducibility
};

/// Profile calibrated to the paper's Gowalla regime: shorter sequences, small
/// per-user venue pools, steep recency, highly discriminative features.
/// `scale` multiplies user and catalog counts.
SyntheticProfile GowallaLikeProfile(double scale = 1.0);

/// Profile calibrated to the paper's Last.fm regime: long listening
/// sequences, large per-user pools, high repeat share, flat (noisy) features.
SyntheticProfile LastfmLikeProfile(double scale = 1.0);

/// \brief The hidden per-user behavioural weights a generated trace was
/// driven by. Exposed so experiments can test whether a model's personalized
/// parameters (e.g. TS-PPR's A_u^T u) recover them.
struct UserTraits {
  double recency_weight = 0.0;
  double quality_weight = 0.0;
  double familiarity_weight = 0.0;
};

/// \brief Generates datasets from a SyntheticProfile.
class SyntheticTraceGenerator {
 public:
  explicit SyntheticTraceGenerator(SyntheticProfile profile)
      : profile_(std::move(profile)) {}

  /// Validates the profile and generates a full dataset. When `traits_out`
  /// is non-null it receives one UserTraits per generated user (indexed like
  /// the dataset's dense user ids).
  Result<Dataset> Generate(std::vector<UserTraits>* traits_out = nullptr) const;

  const SyntheticProfile& profile() const { return profile_; }

 private:
  Status Validate() const;

  SyntheticProfile profile_;
};

}  // namespace data
}  // namespace reconsume

