#include "data/serialization.h"

#include <sstream>

#include "util/csv.h"
#include "util/failpoint.h"
#include "util/fileio.h"
#include "util/string_util.h"

namespace reconsume {
namespace data {

Status SaveDatasetTsv(const Dataset& dataset, const std::string& path) {
  RC_FAILPOINT("data/serialization/save");
  std::ostringstream out;
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<UserId>(u));
    for (size_t t = 0; t < seq.size(); ++t) {
      out << dataset.user_key(static_cast<UserId>(u)) << '\t'
          << dataset.item_key(seq[t]) << '\t' << t << '\n';
    }
  }
  return util::AtomicWriteFile(path, out.str());
}

Result<Dataset> LoadDatasetTsv(const std::string& path) {
  RC_FAILPOINT("data/serialization/load");
  RECONSUME_ASSIGN_OR_RETURN(
      util::DelimitedReader reader,
      util::DelimitedReader::Open(path, {.delimiter = '\t'}));
  DatasetBuilder builder;
  std::vector<std::string_view> fields;
  while (reader.Next(&fields)) {
    if (fields.size() != 3) {
      return reader.Error("expected 3 tab-separated fields, got " +
                          std::to_string(fields.size()));
    }
    auto ts = util::ParseInt64(fields[2]);
    if (!ts.ok()) return reader.Error(ts.status().message());
    RECONSUME_RETURN_NOT_OK(builder.Add(RawInteraction{
        std::string(fields[0]), std::string(fields[1]), ts.ValueOrDie()}));
  }
  if (builder.num_pending() == 0) {
    return Status::InvalidArgument("no events in '" + path + "'");
  }
  return builder.Build();
}

}  // namespace data
}  // namespace reconsume
