// Core identifier and event types shared across the library.
//
// Users and items are compacted to dense 32-bit indices at dataset build time
// so that model tables (U, V, A_u) can be flat arrays.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reconsume {
namespace data {

/// Dense user index in [0, num_users).
using UserId = int32_t;
/// Dense item index in [0, num_items).
using ItemId = int32_t;
/// Position of a consumption inside a user's time-ascending sequence.
/// The paper represents "time" by this discrete step (Section 3).
using Step = int32_t;

constexpr UserId kInvalidUser = -1;
constexpr ItemId kInvalidItem = -1;

/// \brief One raw implicit-feedback event before id compaction.
struct RawInteraction {
  std::string user_key;   ///< external user identifier (string form)
  std::string item_key;   ///< external item identifier (string form)
  int64_t timestamp = 0;  ///< seconds (or any monotone unit); ties keep input order
};

/// \brief A user's full consumption sequence S_u: a time-ascending list of
/// item ids where repetition is expected.
using ConsumptionSequence = std::vector<ItemId>;

}  // namespace data
}  // namespace reconsume

