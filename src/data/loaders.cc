#include "data/loaders.h"

#include <unordered_map>
#include <utility>

#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace reconsume {
namespace data {

namespace {

// Days in each month of a non-leap year.
constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeapYear(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

/// Shared loader skeleton: tab-delimited rows, per-row parse callback, bad-
/// line budget, and per-user timestamp-order validation.
///
/// `parse_row` turns a field vector of the expected arity into a
/// RawInteraction or an error. Any row failure — wrong arity, parse error,
/// order violation, rejection by the builder, or an injected
/// "data/loaders/line" failpoint — consumes one unit of
/// options.max_bad_lines; past the budget the load fails via reader.Error,
/// which carries "path:line:".
template <typename ParseRow>
Result<Dataset> LoadTrace(const std::string& path, size_t expected_fields,
                          const LoaderOptions& options, LoadReport* report,
                          const ParseRow& parse_row) {
  if (options.max_bad_lines < 0) {
    return Status::InvalidArgument("max_bad_lines must be >= 0");
  }
  RC_TRACE_SPAN("data/load");
  const util::Stopwatch watch;
  RECONSUME_ASSIGN_OR_RETURN(
      util::DelimitedReader reader,
      util::DelimitedReader::Open(path, {.delimiter = '\t'}));
  DatasetBuilder builder;
  LoadReport counts;
  // Last accepted timestamp per user (order validation only).
  std::unordered_map<std::string, int64_t> last_timestamp;
  std::vector<std::string_view> fields;
  // Cleanup-free single point of truth for the out-param, error or not.
  auto publish = [&] {
    if (report != nullptr) *report = counts;
    if (counts.num_bad_lines > 0) {
      obs::MetricsRegistry::Global()
          .GetCounter("data.bad_lines")
          ->Increment(counts.num_bad_lines);
    }
    RC_EMIT_EVENT(obs::Event("dataset_load")
                      .Set("path", path)
                      .Set("lines", counts.num_lines)
                      .Set("events", counts.num_events)
                      .Set("bad_lines", counts.num_bad_lines)
                      .Set("ms", watch.ElapsedMillis()));
  };

  while (reader.Next(&fields)) {
    if (options.max_events > 0 && builder.num_pending() >= options.max_events) {
      break;
    }
    ++counts.num_lines;

    std::string why;
    RawInteraction interaction;
    const Status injected = RC_FAILPOINT_STATUS("data/loaders/line");
    if (!injected.ok()) {
      why = injected.message();
    } else if (fields.size() != expected_fields) {
      why = "expected " + std::to_string(expected_fields) +
            " tab-separated fields, got " + std::to_string(fields.size());
    } else {
      Result<RawInteraction> parsed = parse_row(fields);
      if (!parsed.ok()) {
        why = parsed.status().message();
      } else {
        interaction = std::move(parsed).ValueOrDie();
        if (options.timestamp_order != TimestampOrder::kAny) {
          const auto it = last_timestamp.find(interaction.user_key);
          if (it != last_timestamp.end()) {
            const bool in_order =
                options.timestamp_order == TimestampOrder::kAscending
                    ? interaction.timestamp >= it->second
                    : interaction.timestamp <= it->second;
            if (!in_order) {
              why = "out-of-order timestamp for user '" +
                    interaction.user_key + "' (" +
                    std::to_string(interaction.timestamp) + " after " +
                    std::to_string(it->second) + ")";
            }
          }
        }
      }
    }

    if (why.empty()) {
      const int64_t timestamp = interaction.timestamp;
      std::string user_key = interaction.user_key;  // Add consumes the struct
      const Status added = builder.Add(std::move(interaction));
      if (added.ok()) {
        ++counts.num_events;
        if (options.timestamp_order != TimestampOrder::kAny) {
          last_timestamp[std::move(user_key)] = timestamp;
        }
        continue;
      }
      why = added.message();
    }

    ++counts.num_bad_lines;
    if (counts.num_bad_lines > options.max_bad_lines) {
      publish();
      return reader.Error(why);
    }
  }

  publish();
  if (builder.num_pending() == 0) {
    return Status::InvalidArgument("no events in '" + path + "'");
  }
  return builder.Build();
}

}  // namespace

Result<int64_t> ParseIso8601(std::string_view text) {
  // Expected: YYYY-MM-DDTHH:MM:SSZ (20 chars; trailing Z optional).
  if (text.size() < 19) {
    return Status::InvalidArgument("timestamp too short: '" +
                                   std::string(text) + "'");
  }
  auto digits = [&](size_t pos, size_t len) -> Result<int64_t> {
    return util::ParseInt64(text.substr(pos, len));
  };
  if (text[4] != '-' || text[7] != '-' ||
      (text[10] != 'T' && text[10] != ' ') || text[13] != ':' ||
      text[16] != ':') {
    return Status::InvalidArgument("malformed timestamp: '" +
                                   std::string(text) + "'");
  }
  RECONSUME_ASSIGN_OR_RETURN(const int64_t year, digits(0, 4));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t month, digits(5, 2));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t day, digits(8, 2));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t hour, digits(11, 2));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t minute, digits(14, 2));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t second, digits(17, 2));
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {
    return Status::InvalidArgument("timestamp field out of range: '" +
                                   std::string(text) + "'");
  }

  // Days since 1970-01-01 (proleptic, ignores leap seconds).
  int64_t days = 0;
  if (year >= 1970) {
    for (int64_t y = 1970; y < year; ++y) days += IsLeapYear(static_cast<int>(y)) ? 366 : 365;
  } else {
    for (int64_t y = year; y < 1970; ++y) days -= IsLeapYear(static_cast<int>(y)) ? 366 : 365;
  }
  for (int64_t m = 1; m < month; ++m) {
    days += kDaysInMonth[m - 1];
    if (m == 2 && IsLeapYear(static_cast<int>(year))) ++days;
  }
  days += day - 1;
  return ((days * 24 + hour) * 60 + minute) * 60 + second;
}

Result<Dataset> GowallaLoader::Load(const std::string& path,
                                    int64_t max_events) {
  return Load(path, LoaderOptions{.max_events = max_events});
}

Result<Dataset> GowallaLoader::Load(const std::string& path,
                                    const LoaderOptions& options,
                                    LoadReport* report) {
  return LoadTrace(
      path, 5, options, report,
      [](const std::vector<std::string_view>& fields)
          -> Result<RawInteraction> {
        RECONSUME_ASSIGN_OR_RETURN(const int64_t ts, ParseIso8601(fields[1]));
        return RawInteraction{std::string(fields[0]), std::string(fields[4]),
                              ts};
      });
}

Result<Dataset> LastfmLoader::Load(const std::string& path,
                                   int64_t max_events) {
  return Load(path, LoaderOptions{.max_events = max_events});
}

Result<Dataset> LastfmLoader::Load(const std::string& path,
                                   const LoaderOptions& options,
                                   LoadReport* report) {
  return LoadTrace(
      path, 6, options, report,
      [](const std::vector<std::string_view>& fields)
          -> Result<RawInteraction> {
        RECONSUME_ASSIGN_OR_RETURN(const int64_t ts, ParseIso8601(fields[1]));
        std::string item_key(fields[4]);  // musicbrainz track id
        if (item_key.empty()) {
          item_key = std::string(fields[3]) + "||" + std::string(fields[5]);
        }
        if (item_key.empty() || item_key == "||") {
          return Status::InvalidArgument("row has neither track id nor names");
        }
        return RawInteraction{std::string(fields[0]), std::move(item_key),
                              ts};
      });
}

}  // namespace data
}  // namespace reconsume
