#include "data/loaders.h"

#include "util/csv.h"
#include "util/string_util.h"

namespace reconsume {
namespace data {

namespace {

// Days in each month of a non-leap year.
constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeapYear(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

}  // namespace

Result<int64_t> ParseIso8601(std::string_view text) {
  // Expected: YYYY-MM-DDTHH:MM:SSZ (20 chars; trailing Z optional).
  if (text.size() < 19) {
    return Status::InvalidArgument("timestamp too short: '" +
                                   std::string(text) + "'");
  }
  auto digits = [&](size_t pos, size_t len) -> Result<int64_t> {
    return util::ParseInt64(text.substr(pos, len));
  };
  if (text[4] != '-' || text[7] != '-' ||
      (text[10] != 'T' && text[10] != ' ') || text[13] != ':' ||
      text[16] != ':') {
    return Status::InvalidArgument("malformed timestamp: '" +
                                   std::string(text) + "'");
  }
  RECONSUME_ASSIGN_OR_RETURN(const int64_t year, digits(0, 4));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t month, digits(5, 2));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t day, digits(8, 2));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t hour, digits(11, 2));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t minute, digits(14, 2));
  RECONSUME_ASSIGN_OR_RETURN(const int64_t second, digits(17, 2));
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {
    return Status::InvalidArgument("timestamp field out of range: '" +
                                   std::string(text) + "'");
  }

  // Days since 1970-01-01 (proleptic, ignores leap seconds).
  int64_t days = 0;
  if (year >= 1970) {
    for (int64_t y = 1970; y < year; ++y) days += IsLeapYear(static_cast<int>(y)) ? 366 : 365;
  } else {
    for (int64_t y = year; y < 1970; ++y) days -= IsLeapYear(static_cast<int>(y)) ? 366 : 365;
  }
  for (int64_t m = 1; m < month; ++m) {
    days += kDaysInMonth[m - 1];
    if (m == 2 && IsLeapYear(static_cast<int>(year))) ++days;
  }
  days += day - 1;
  return ((days * 24 + hour) * 60 + minute) * 60 + second;
}

Result<Dataset> GowallaLoader::Load(const std::string& path,
                                    int64_t max_events) {
  RECONSUME_ASSIGN_OR_RETURN(
      util::DelimitedReader reader,
      util::DelimitedReader::Open(path, {.delimiter = '\t'}));
  DatasetBuilder builder;
  std::vector<std::string_view> fields;
  while (reader.Next(&fields)) {
    if (max_events > 0 && builder.num_pending() >= max_events) break;
    if (fields.size() != 5) {
      return reader.Error("expected 5 tab-separated fields, got " +
                          std::to_string(fields.size()));
    }
    auto ts = ParseIso8601(fields[1]);
    if (!ts.ok()) return reader.Error(ts.status().message());
    RECONSUME_RETURN_NOT_OK(builder.Add(RawInteraction{
        std::string(fields[0]), std::string(fields[4]), ts.ValueOrDie()}));
  }
  if (builder.num_pending() == 0) {
    return Status::InvalidArgument("no events in '" + path + "'");
  }
  return builder.Build();
}

Result<Dataset> LastfmLoader::Load(const std::string& path,
                                   int64_t max_events) {
  RECONSUME_ASSIGN_OR_RETURN(
      util::DelimitedReader reader,
      util::DelimitedReader::Open(path, {.delimiter = '\t'}));
  DatasetBuilder builder;
  std::vector<std::string_view> fields;
  while (reader.Next(&fields)) {
    if (max_events > 0 && builder.num_pending() >= max_events) break;
    if (fields.size() != 6) {
      return reader.Error("expected 6 tab-separated fields, got " +
                          std::to_string(fields.size()));
    }
    auto ts = ParseIso8601(fields[1]);
    if (!ts.ok()) return reader.Error(ts.status().message());
    std::string item_key(fields[4]);  // musicbrainz track id
    if (item_key.empty()) {
      item_key = std::string(fields[3]) + "||" + std::string(fields[5]);
    }
    if (item_key.empty() || item_key == "||") {
      return reader.Error("row has neither track id nor names");
    }
    RECONSUME_RETURN_NOT_OK(builder.Add(RawInteraction{
        std::string(fields[0]), std::move(item_key), ts.ValueOrDie()}));
  }
  if (builder.num_pending() == 0) {
    return Status::InvalidArgument("no events in '" + path + "'");
  }
  return builder.Build();
}

}  // namespace data
}  // namespace reconsume
