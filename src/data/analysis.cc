#include "data/analysis.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace reconsume {
namespace data {

RecencyCurve ComputeRecencyCurve(const Dataset& dataset, int max_gap) {
  RECONSUME_CHECK(max_gap >= 1);
  RecencyCurve curve;
  curve.reconsumption_probability.assign(static_cast<size_t>(max_gap), 0.0);
  curve.opportunity_counts.assign(static_cast<size_t>(max_gap), 0);
  std::vector<int64_t> conversions(static_cast<size_t>(max_gap), 0);

  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<UserId>(u));
    std::unordered_map<ItemId, int> last_seen;
    for (size_t t = 0; t < seq.size(); ++t) {
      // Every item with a recorded last consumption offers an opportunity at
      // its current gap; the consumed item converts its own.
      for (const auto& [item, last] : last_seen) {
        const int gap = static_cast<int>(t) - last;
        if (gap >= 1 && gap <= max_gap) {
          ++curve.opportunity_counts[static_cast<size_t>(gap - 1)];
          if (item == seq[t]) {
            ++conversions[static_cast<size_t>(gap - 1)];
          }
        }
      }
      last_seen[seq[t]] = static_cast<int>(t);
    }
  }
  for (int g = 0; g < max_gap; ++g) {
    if (curve.opportunity_counts[static_cast<size_t>(g)] > 0) {
      curve.reconsumption_probability[static_cast<size_t>(g)] =
          static_cast<double>(conversions[static_cast<size_t>(g)]) /
          static_cast<double>(curve.opportunity_counts[static_cast<size_t>(g)]);
    }
  }
  return curve;
}

double PopularityGini(const Dataset& dataset) {
  std::vector<int64_t> counts(dataset.num_items(), 0);
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    for (ItemId v : dataset.sequence(static_cast<UserId>(u))) {
      ++counts[static_cast<size_t>(v)];
    }
  }
  if (counts.empty()) return 0.0;
  std::sort(counts.begin(), counts.end());
  const double n = static_cast<double>(counts.size());
  double weighted = 0.0, total = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) *
                static_cast<double>(counts[i]);
    total += static_cast<double>(counts[i]);
  }
  if (total <= 0.0) return 0.0;
  return weighted / (n * total);
}

std::vector<double> RepeatShareByPopularityDecile(const Dataset& dataset,
                                                  int window) {
  RECONSUME_CHECK(window >= 1);
  // Popularity ranking.
  std::vector<int64_t> counts(dataset.num_items(), 0);
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    for (ItemId v : dataset.sequence(static_cast<UserId>(u))) {
      ++counts[static_cast<size_t>(v)];
    }
  }
  std::vector<ItemId> by_popularity(dataset.num_items());
  for (size_t v = 0; v < by_popularity.size(); ++v) {
    by_popularity[v] = static_cast<ItemId>(v);
  }
  std::sort(by_popularity.begin(), by_popularity.end(),
            [&](ItemId a, ItemId b) {
              return counts[static_cast<size_t>(a)] >
                     counts[static_cast<size_t>(b)];
            });
  std::vector<int> decile_of(dataset.num_items(), 9);
  for (size_t rank = 0; rank < by_popularity.size(); ++rank) {
    decile_of[static_cast<size_t>(by_popularity[rank])] = std::min<int>(
        9, static_cast<int>(10 * rank / std::max<size_t>(1, by_popularity.size())));
  }

  std::vector<int64_t> repeats_per_decile(10, 0);
  int64_t total_repeats = 0;
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<UserId>(u));
    // Incremental windowed membership (same technique as dataset_stats).
    std::unordered_map<ItemId, int> in_window;
    for (size_t t = 0; t < seq.size(); ++t) {
      if (t > 0 && in_window.count(seq[t]) > 0) {
        ++repeats_per_decile[static_cast<size_t>(
            decile_of[static_cast<size_t>(seq[t])])];
        ++total_repeats;
      }
      ++in_window[seq[t]];
      if (t + 1 > static_cast<size_t>(window)) {
        const ItemId leaving = seq[t - static_cast<size_t>(window)];
        auto it = in_window.find(leaving);
        if (--it->second == 0) in_window.erase(it);
      }
    }
  }
  std::vector<double> shares(10, 0.0);
  if (total_repeats > 0) {
    for (int d = 0; d < 10; ++d) {
      shares[static_cast<size_t>(d)] =
          static_cast<double>(repeats_per_decile[static_cast<size_t>(d)]) /
          static_cast<double>(total_repeats);
    }
  }
  return shares;
}

std::vector<double> InterConsumptionGapDistribution(const Dataset& dataset,
                                                    int max_gap) {
  RECONSUME_CHECK(max_gap >= 1);
  std::vector<int64_t> counts(static_cast<size_t>(max_gap), 0);
  int64_t total = 0;
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<UserId>(u));
    std::unordered_map<ItemId, int> last_seen;
    for (size_t t = 0; t < seq.size(); ++t) {
      const auto it = last_seen.find(seq[t]);
      if (it != last_seen.end()) {
        const int gap = std::min<int>(static_cast<int>(t) - it->second,
                                      max_gap);
        ++counts[static_cast<size_t>(gap - 1)];
        ++total;
      }
      last_seen[seq[t]] = static_cast<int>(t);
    }
  }
  std::vector<double> distribution(static_cast<size_t>(max_gap), 0.0);
  if (total > 0) {
    for (int g = 0; g < max_gap; ++g) {
      distribution[static_cast<size_t>(g)] =
          static_cast<double>(counts[static_cast<size_t>(g)]) /
          static_cast<double>(total);
    }
  }
  return distribution;
}

}  // namespace data
}  // namespace reconsume
