#include "data/dataset_stats.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace reconsume {
namespace data {

DatasetStats ComputeDatasetStats(const Dataset& dataset, int window) {
  DatasetStats stats;
  stats.num_users = static_cast<int64_t>(dataset.num_users());
  stats.num_items = static_cast<int64_t>(dataset.num_items());
  stats.num_interactions = dataset.num_interactions();

  int64_t min_len = std::numeric_limits<int64_t>::max();
  int64_t max_len = 0;
  int64_t repeats = 0;
  int64_t considered = 0;
  double pool_total = 0.0;

  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<UserId>(u));
    const int64_t len = static_cast<int64_t>(seq.size());
    min_len = std::min(min_len, len);
    max_len = std::max(max_len, len);

    std::unordered_set<ItemId> pool(seq.begin(), seq.end());
    pool_total += static_cast<double>(pool.size());

    // Windowed repeat detection with an incremental multiset of counts.
    std::unordered_map<ItemId, int> in_window;
    for (size_t t = 0; t < seq.size(); ++t) {
      if (t > 0) {
        ++considered;
        // With window <= 0 nothing is ever evicted, so the same membership
        // test degrades to "ever consumed before".
        if (in_window.count(seq[t]) > 0) ++repeats;
      }
      ++in_window[seq[t]];
      if (window > 0 && t + 1 > static_cast<size_t>(window)) {
        const ItemId leaving = seq[t - static_cast<size_t>(window)];
        auto it = in_window.find(leaving);
        if (--it->second == 0) in_window.erase(it);
      }
    }
  }

  if (stats.num_users > 0) {
    stats.mean_sequence_length =
        static_cast<double>(stats.num_interactions) /
        static_cast<double>(stats.num_users);
    stats.mean_user_item_pool =
        pool_total / static_cast<double>(stats.num_users);
    stats.min_sequence_length = min_len;
    stats.max_sequence_length = max_len;
  }
  if (considered > 0) {
    stats.repeat_fraction =
        static_cast<double>(repeats) / static_cast<double>(considered);
  }
  return stats;
}

std::string FormatDatasetStats(const std::string& name,
                               const DatasetStats& stats) {
  std::ostringstream out;
  out << name << ": users=" << util::FormatWithCommas(stats.num_users)
      << " items=" << util::FormatWithCommas(stats.num_items)
      << " consumption=" << util::FormatWithCommas(stats.num_interactions)
      << util::StringPrintf(
             " mean|S_u|=%.1f [%lld..%lld] repeat%%=%.1f pool=%.1f",
             stats.mean_sequence_length,
             static_cast<long long>(stats.min_sequence_length),
             static_cast<long long>(stats.max_sequence_length),
             100.0 * stats.repeat_fraction, stats.mean_user_item_pool);
  if (stats.num_bad_lines > 0) {
    out << " bad_lines=" << util::FormatWithCommas(stats.num_bad_lines);
  }
  return out.str();
}

}  // namespace data
}  // namespace reconsume
