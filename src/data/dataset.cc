#include "data/dataset.h"

#include <algorithm>

#include "util/logging.h"

namespace reconsume {
namespace data {

int64_t Dataset::num_interactions() const {
  int64_t total = 0;
  for (const auto& seq : sequences_) total += static_cast<int64_t>(seq.size());
  return total;
}

UserId Dataset::FindUser(const std::string& key) const {
  const auto it = user_index_.find(key);
  return it == user_index_.end() ? kInvalidUser : it->second;
}

ItemId Dataset::FindItem(const std::string& key) const {
  const auto it = item_index_.find(key);
  return it == item_index_.end() ? kInvalidItem : it->second;
}

Dataset Dataset::FilterUsers(
    const std::function<bool(const ConsumptionSequence&)>& keep) const {
  Dataset out;
  // First pass: surviving users and the set of surviving items.
  std::vector<ItemId> item_remap(num_items(), kInvalidItem);
  for (size_t u = 0; u < sequences_.size(); ++u) {
    if (!keep(sequences_[u])) continue;
    out.user_index_.emplace(user_keys_[u], static_cast<UserId>(out.user_keys_.size()));
    out.user_keys_.push_back(user_keys_[u]);
    out.sequences_.push_back(sequences_[u]);
    for (ItemId v : sequences_[u]) {
      if (item_remap[static_cast<size_t>(v)] == kInvalidItem) {
        item_remap[static_cast<size_t>(v)] =
            static_cast<ItemId>(out.item_keys_.size());
        out.item_keys_.push_back(item_keys_[static_cast<size_t>(v)]);
      }
    }
  }
  for (size_t v = 0; v < out.item_keys_.size(); ++v) {
    out.item_index_.emplace(out.item_keys_[v], static_cast<ItemId>(v));
  }
  // Second pass: rewrite sequences with compacted item ids.
  for (auto& seq : out.sequences_) {
    for (ItemId& v : seq) {
      RC_DCHECK_INDEX(v, item_remap.size());
      v = item_remap[static_cast<size_t>(v)];
      RC_DCHECK(v != kInvalidItem) << "survivor item lost its dense id";
    }
  }
  return out;
}

Dataset Dataset::TruncatePerUser(const std::vector<size_t>& lengths) const {
  RECONSUME_CHECK(lengths.size() == num_users());
  Dataset out;
  std::vector<ItemId> item_remap(num_items(), kInvalidItem);
  for (size_t u = 0; u < sequences_.size(); ++u) {
    const size_t keep = std::min(lengths[u], sequences_[u].size());
    if (keep == 0) continue;
    out.user_index_.emplace(user_keys_[u],
                            static_cast<UserId>(out.user_keys_.size()));
    out.user_keys_.push_back(user_keys_[u]);
    ConsumptionSequence prefix(sequences_[u].begin(),
                               sequences_[u].begin() +
                                   static_cast<ptrdiff_t>(keep));
    for (ItemId& v : prefix) {
      RC_DCHECK_INDEX(v, item_remap.size());
      if (item_remap[static_cast<size_t>(v)] == kInvalidItem) {
        item_remap[static_cast<size_t>(v)] =
            static_cast<ItemId>(out.item_keys_.size());
        out.item_keys_.push_back(item_keys_[static_cast<size_t>(v)]);
      }
      v = item_remap[static_cast<size_t>(v)];
    }
    out.sequences_.push_back(std::move(prefix));
  }
  for (size_t v = 0; v < out.item_keys_.size(); ++v) {
    out.item_index_.emplace(out.item_keys_[v], static_cast<ItemId>(v));
  }
  return out;
}

Dataset Dataset::FilterByMinTrainLength(double train_fraction,
                                        int min_train) const {
  return FilterUsers([&](const ConsumptionSequence& seq) {
    return static_cast<double>(seq.size()) * train_fraction >=
           static_cast<double>(min_train);
  });
}

Status DatasetBuilder::Add(RawInteraction interaction) {
  if (interaction.user_key.empty()) {
    return Status::InvalidArgument("empty user key");
  }
  if (interaction.item_key.empty()) {
    return Status::InvalidArgument("empty item key");
  }

  const auto [uit, user_inserted] = user_index_.try_emplace(
      interaction.user_key, static_cast<UserId>(user_keys_.size()));
  if (user_inserted) {
    user_keys_.push_back(interaction.user_key);
    pending_.emplace_back();
  }
  const auto [iit, item_inserted] = item_index_.try_emplace(
      interaction.item_key, static_cast<ItemId>(item_keys_.size()));
  if (item_inserted) {
    item_keys_.push_back(interaction.item_key);
  }

  pending_[static_cast<size_t>(uit->second)].push_back(
      PendingEvent{iit->second, interaction.timestamp, arrival_counter_++});
  ++num_pending_;
  return Status::OK();
}

Status DatasetBuilder::Add(int64_t user_key, int64_t item_key,
                           int64_t timestamp) {
  return Add(RawInteraction{std::to_string(user_key), std::to_string(item_key),
                            timestamp});
}

Result<Dataset> DatasetBuilder::Build() {
  if (num_pending_ == 0) {
    return Status::FailedPrecondition("DatasetBuilder::Build with no events");
  }
  Dataset out;
  out.user_keys_ = std::move(user_keys_);
  out.item_keys_ = std::move(item_keys_);
  out.user_index_ = std::move(user_index_);
  out.item_index_ = std::move(item_index_);
  out.sequences_.resize(pending_.size());
  for (size_t u = 0; u < pending_.size(); ++u) {
    auto& events = pending_[u];
    std::sort(events.begin(), events.end(),
              [](const PendingEvent& a, const PendingEvent& b) {
                if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
                return a.arrival < b.arrival;
              });
    // The dataset contract: per-user timestamps are non-decreasing after the
    // sort, and every stored item id is dense in [0, num_items).
    RC_DCHECK(std::is_sorted(events.begin(), events.end(),
                             [](const PendingEvent& a, const PendingEvent& b) {
                               return a.timestamp < b.timestamp;
                             }))
        << "user " << u << " timestamps not monotone after sort";
    auto& seq = out.sequences_[u];
    seq.reserve(events.size());
    for (const PendingEvent& e : events) {
      RC_DCHECK_INDEX(e.item, out.item_keys_.size());
      seq.push_back(e.item);
    }
  }
  pending_.clear();
  num_pending_ = 0;
  arrival_counter_ = 0;
  return out;
}

}  // namespace data
}  // namespace reconsume
