// Deterministic, fast random number generation for training and simulation.
//
// We keep our own engine (xoshiro256**) instead of std::mt19937 so that all
// sampled quantities are reproducible across standard libraries, which
// matters for experiment scripts that must print identical tables on rerun.

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace reconsume {
namespace util {

/// \brief SplitMix64; used to seed larger-state generators.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Complete serializable state of an Rng (checkpoint/resume).
///
/// Covers the xoshiro256** words plus the Box–Muller Gaussian cache, so
/// restoring a state resumes the exact draw sequence — including a pending
/// cached normal deviate.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  double cached = 0.0;
  bool has_cached = false;

  bool operator==(const RngState& other) const {
    return s[0] == other.s[0] && s[1] == other.s[1] && s[2] == other.s[2] &&
           s[3] == other.s[3] && cached == other.cached &&
           has_cached == other.has_cached;
  }
};

/// \brief xoshiro256** 1.0 — the library-wide PRNG.
///
/// Satisfies UniformRandomBitGenerator, so it also plugs into <random>
/// distributions when needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
    has_cached_ = false;
    cached_ = 0.0;
  }

  /// Snapshot / restore of the full generator state (bit-exact resume).
  RngState GetState() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.cached = cached_;
    st.has_cached = has_cached_;
    return st;
  }
  void SetState(const RngState& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    cached_ = st.cached;
    has_cached_ = st.has_cached;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) {
    RECONSUME_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased, one division at most.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (-bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    RECONSUME_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via polar Box–Muller (cached second deviate).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * factor;
    has_cached_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda) {
    RECONSUME_DCHECK(lambda > 0);
    return -std::log(1.0 - NextDouble()) / lambda;
  }

  /// Geometric number of failures before first success; p in (0, 1].
  uint64_t Geometric(double p) {
    RECONSUME_DCHECK(p > 0 && p <= 1.0);
    if (p >= 1.0) return 0;
    return static_cast<uint64_t>(std::log(1.0 - NextDouble()) /
                                 std::log(1.0 - p));
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// \brief O(1) sampling from a fixed discrete distribution (Walker/Vose).
///
/// Built once from unnormalized non-negative weights; used for popularity-
/// biased item draws in the synthetic trace generator.
class AliasSampler {
 public:
  /// Precondition: weights non-empty with a positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to weight.
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace util
}  // namespace reconsume

