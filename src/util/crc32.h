// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum the
// checkpoint format uses to detect truncated or corrupted snapshots.

#pragma once

#include <cstdint>
#include <string_view>

namespace reconsume {
namespace util {

/// CRC-32 of `bytes`. Pass a previous result as `seed` to checksum a stream
/// incrementally: Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

}  // namespace util
}  // namespace reconsume
