#include "util/flags.h"

#include "util/string_util.h"

namespace reconsume {
namespace util {

Result<FlagSet> FlagSet::Parse(int argc, const char* const* argv) {
  FlagSet flags;
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (flags_done || !StartsWith(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    const std::string_view body = arg.substr(2);
    const size_t eq = body.find('=');
    std::string name, value;
    if (eq != std::string_view::npos) {
      name = std::string(body.substr(0, eq));
      value = std::string(body.substr(eq + 1));
    } else {
      name = std::string(body);
      // `--key value` if the next token is not itself a flag; else bare bool.
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (name.empty()) {
      return Status::InvalidArgument("malformed flag '" + std::string(arg) +
                                     "'");
    }
    flags.flags_[name] = value;
  }
  return flags;
}

Result<std::string> FlagSet::GetString(const std::string& name,
                                       std::string fallback) const {
  used_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::move(fallback) : it->second;
}

Result<int64_t> FlagSet::GetInt(const std::string& name,
                                int64_t fallback) const {
  used_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto parsed = ParseInt64(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("--" + name + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<double> FlagSet::GetDouble(const std::string& name,
                                  double fallback) const {
  used_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("--" + name + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<bool> FlagSet::GetBool(const std::string& name, bool fallback) const {
  used_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string lower = ToLower(it->second);
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  return Status::InvalidArgument("--" + name + ": expected a boolean, got '" +
                                 it->second + "'");
}

Status FlagSet::CheckNoUnusedFlags() const {
  std::string unknown;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!used_.count(name)) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + name;
    }
  }
  if (!unknown.empty()) {
    return Status::InvalidArgument("unknown flag(s): " + unknown);
  }
  return Status::OK();
}

}  // namespace util
}  // namespace reconsume
