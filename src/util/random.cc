#include "util/random.h"

#include <numeric>

namespace reconsume {
namespace util {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  RECONSUME_CHECK(!weights.empty()) << "AliasSampler needs at least one weight";
  const size_t n = weights.size();
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  RECONSUME_CHECK(total > 0) << "AliasSampler weights must have a positive sum";

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; > 1 means the bucket overflows and donates mass.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    RECONSUME_CHECK(weights[i] >= 0) << "negative weight at index " << i;
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are 1.0 up to rounding.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng* rng) const {
  const size_t bucket = rng->Uniform(prob_.size());
  return rng->NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace util
}  // namespace reconsume
