#include "util/crc32.h"

#include <array>

namespace reconsume {
namespace util {

namespace {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = kCrc32Table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace util
}  // namespace reconsume
