#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace reconsume {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace reconsume
