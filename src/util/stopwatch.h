// Wall-clock stopwatch used by the latency experiments (Fig. 13) and for
// reporting training time.

#pragma once

#include <chrono>
#include <cstdint>

namespace reconsume {
namespace util {

/// \brief Monotonic stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace reconsume

