// Status / Result error handling for the reconsume library.
//
// Follows the Arrow/Abseil convention: fallible functions return a Status (or
// a Result<T> when they produce a value) instead of throwing. Exceptions are
// reserved for programming errors (checked via RECONSUME_DCHECK).

#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace reconsume {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kNumericalError = 9,  ///< divergence, non-finite values, singular systems
  kDeadlineExceeded = 10,  ///< request deadline elapsed before completion
  kUnavailable = 11,       ///< transient overload: request was shed, retry
};

/// \brief Returns a human-readable name for a StatusCode (e.g. "IOError").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: OK, or a code plus message.
///
/// The OK state carries no allocation; error states share an immutable
/// heap-allocated payload, so copying a Status is cheap.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief A value of type T, or the Status explaining why it is absent.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return my_t;`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::IoError(...);`.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  /// Precondition: ok(). Checked in all build modes.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(payload_));
  }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    return ok() ? std::move(std::get<T>(payload_)) : std::move(fallback);
  }

 private:
  void CheckOk() const;
  std::variant<Status, T> payload_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) internal::DieOnBadResult(status());
}

/// Propagates a non-OK Status from the current function.
#define RECONSUME_RETURN_NOT_OK(expr)                   \
  do {                                                  \
    ::reconsume::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                          \
  } while (0)

/// Evaluates a Result<T> expression and assigns its value, or propagates.
#define RECONSUME_ASSIGN_OR_RETURN(lhs, rexpr)          \
  RECONSUME_ASSIGN_OR_RETURN_IMPL(                      \
      RECONSUME_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define RECONSUME_CONCAT_IMPL_(a, b) a##b
#define RECONSUME_CONCAT_(a, b) RECONSUME_CONCAT_IMPL_(a, b)
#define RECONSUME_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).ValueOrDie();

}  // namespace reconsume

