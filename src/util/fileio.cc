#include "util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/failpoint.h"

namespace reconsume {
namespace util {

namespace {

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream.is_open()) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream contents;
  contents << stream.rdbuf();
  if (stream.bad()) {
    return Status::IoError("read error on '" + path + "'");
  }
  return contents.str();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  stream.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!stream.good()) {
    return Status::IoError("write error on '" + path + "'");
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  RC_FAILPOINT("util/atomic_write");
  const std::string temp_path =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(temp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(Errno("cannot create temp file", temp_path));
  }
  // Any failure from here on must remove the temp file so a retried write
  // (or an unrelated later one) never sees a stale partial sibling.
  auto fail = [&](std::string message) {
    ::close(fd);
    ::unlink(temp_path.c_str());
    return Status::IoError(std::move(message));
  };

  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + written,
                              contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(Errno("write error on", temp_path));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    return fail(Errno("fsync error on", temp_path));
  }
  if (::close(fd) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IoError(Errno("close error on", temp_path));
  }
  {
    // Simulated crash between "temp file durable" and "rename published":
    // the destination must be left untouched.
    const Status injected = RC_FAILPOINT_STATUS("util/atomic_write/rename");
    if (!injected.ok()) {
      ::unlink(temp_path.c_str());
      return injected;
    }
  }
  if (::rename(temp_path.c_str(), path.c_str()) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IoError(Errno("cannot rename temp file over", path));
  }
  return Status::OK();
}

}  // namespace util
}  // namespace reconsume
