#include "util/csv.h"

#include <sstream>

#include "util/string_util.h"

namespace reconsume {
namespace util {

Result<DelimitedReader> DelimitedReader::Open(std::string path,
                                              Options options) {
  std::ifstream stream(path);
  if (!stream.is_open()) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  return DelimitedReader(std::move(path), options, std::move(stream));
}

bool DelimitedReader::Next(std::vector<std::string_view>* fields) {
  while (std::getline(stream_, line_)) {
    ++line_number_;
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    if (options_.skip_blank_lines && Trim(line_).empty()) continue;
    if (options_.comment_char != 0 && !line_.empty() &&
        line_[0] == options_.comment_char) {
      continue;
    }
    *fields = Split(line_, options_.delimiter);
    return true;
  }
  return false;
}

Status DelimitedReader::Error(std::string_view message) const {
  std::ostringstream out;
  out << path_ << ":" << line_number_ << ": " << message;
  return Status::InvalidArgument(out.str());
}

}  // namespace util
}  // namespace reconsume
