// Threading primitives: a fixed-size FIFO pool (parallel per-user
// evaluation, benchmark parameter sweeps) and the ParallelShards fork-join
// used by the Hogwild TS-PPR trainer, which hands each shard worker its own
// deterministic RNG stream.
//
// Lock discipline is machine-checked: every member touched by more than one
// thread declares its lock with RC_GUARDED_BY, and a Clang build with
// -DRECONSUME_THREAD_SAFETY=ON proves the contracts (docs/static_analysis.md).

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/random.h"
#include "util/sync.h"

namespace reconsume {
namespace util {

/// \brief A simple FIFO thread pool.
///
/// Task-exception contract (load-bearing for the trainer and evaluator):
/// tasks are `std::function<void()>` and exceptions must NOT escape a task —
/// a throw would unwind a worker thread and terminate the process. Fallible
/// work captures a Status into its own pre-allocated slot and the caller
/// inspects the slots after Wait(); the same rule applies to the function
/// run by ParallelFor and ParallelShards.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() has begun from another
  /// thread unless externally synchronized.
  void Submit(std::function<void()> task) RC_EXCLUDES(mutex_);

  /// Blocks until all submitted tasks have finished.
  void Wait() RC_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& fn);

  /// \brief Fork-join over long-lived shard workers with private RNG streams.
  ///
  /// Runs `fn(shard, &rng)` once per shard in [0, num_shards), each call on
  /// its own dedicated thread (shard 0 runs on the calling thread), and
  /// blocks until every shard returns. Unlike ParallelFor this guarantees
  /// one *concurrent* thread per shard, so `fn` may contain barriers that
  /// all shards must reach — the Hogwild trainer's convergence-check rounds
  /// depend on exactly that.
  ///
  /// Each shard's Rng is seeded deterministically from `base_seed` and the
  /// shard index alone (a SplitMix64 stream over base_seed), never from
  /// thread scheduling: shard w sees the same draw sequence on every run and
  /// on every machine. `fn` must not throw (see the class contract above).
  static void ParallelShards(size_t num_shards, uint64_t base_seed,
                             const std::function<void(size_t, Rng*)>& fn);

 private:
  void WorkerLoop() RC_EXCLUDES(mutex_);

  /// Written only by the constructor, joined by the destructor; the worker
  /// threads themselves never touch this vector. rc:unguarded(init-only)
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ RC_GUARDED_BY(mutex_);
  size_t in_flight_ RC_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ RC_GUARDED_BY(mutex_) = false;
};

}  // namespace util
}  // namespace reconsume
