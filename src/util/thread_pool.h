// Fixed-size thread pool used for parallel per-user evaluation and for the
// parameter sweeps in the benchmark harness.

#ifndef RECONSUME_UTIL_THREAD_POOL_H_
#define RECONSUME_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reconsume {
namespace util {

/// \brief A simple FIFO thread pool.
///
/// Tasks are `std::function<void()>`; exceptions must not escape a task
/// (fallible work should capture a Status into its own slot).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() has begun from another
  /// thread unless externally synchronized.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace util
}  // namespace reconsume

#endif  // RECONSUME_UTIL_THREAD_POOL_H_
