#include "util/thread_pool.h"

#include <atomic>

#include "util/logging.h"

namespace reconsume {
namespace util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    RECONSUME_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(&mutex_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(&mutex_);
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(&mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelShards(size_t num_shards, uint64_t base_seed,
                                const std::function<void(size_t, Rng*)>& fn) {
  if (num_shards == 0) return;
  // Seeds are drawn up front from a single SplitMix64 stream so that shard
  // w's Rng depends only on (base_seed, w).
  SplitMix64 mixer(base_seed);
  std::vector<uint64_t> seeds(num_shards);
  for (uint64_t& seed : seeds) seed = mixer.Next();

  std::vector<std::thread> threads;
  threads.reserve(num_shards - 1);
  for (size_t w = 1; w < num_shards; ++w) {
    threads.emplace_back([&fn, seed = seeds[w], w] {
      Rng rng(seed);
      fn(w, &rng);
    });
  }
  Rng rng0(seeds[0]);
  fn(0, &rng0);
  for (std::thread& thread : threads) thread.join();
}

void ThreadPool::ParallelFor(size_t n, size_t num_threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < pool.num_threads(); ++w) {
    pool.Submit([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace util
}  // namespace reconsume
