// Line-oriented delimited-file reading used by the Gowalla / Last.fm loaders.
//
// These traces are simple TSV/CSV without quoting, so the reader is a thin
// streaming splitter with good error messages (file:line) rather than a full
// RFC-4180 parser.

#pragma once

#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace reconsume {
namespace util {

/// \brief Streaming reader over a delimited text file.
class DelimitedReader {
 public:
  struct Options {
    char delimiter = '\t';
    bool skip_blank_lines = true;
    char comment_char = '#';  ///< lines starting with this are skipped; 0 = off
  };

  /// Opens `path`; fails with IoError if unreadable.
  static Result<DelimitedReader> Open(std::string path, Options options);
  static Result<DelimitedReader> Open(std::string path) {
    return Open(std::move(path), Options{});
  }

  /// Reads the next record. Returns false at end of file.
  /// The string_views in `*fields` point into an internal buffer that is
  /// invalidated by the next call.
  bool Next(std::vector<std::string_view>* fields);

  /// 1-based line number of the record returned by the last Next().
  int64_t line_number() const { return line_number_; }
  const std::string& path() const { return path_; }

  /// Formats "path:line: message" for loader diagnostics.
  Status Error(std::string_view message) const;

 private:
  DelimitedReader(std::string path, Options options, std::ifstream stream)
      : path_(std::move(path)), options_(options), stream_(std::move(stream)) {}

  std::string path_;
  Options options_;
  std::ifstream stream_;
  std::string line_;
  int64_t line_number_ = 0;
};

}  // namespace util
}  // namespace reconsume

