#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>

#include "util/check.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/sync.h"

namespace reconsume {
namespace util {

namespace {

enum class Mode { kOff, kErrorOnce, kErrorEveryN, kProbability, kAbort };

struct Point {
  Mode mode = Mode::kOff;
  int64_t every_n = 0;   ///< kErrorEveryN period
  double probability = 0.0;
  int64_t hits = 0;      ///< lifetime evaluations
  int64_t fires = 0;     ///< lifetime injected faults
  bool disarmed = false; ///< set after kErrorOnce fires
};

Result<Point> ParseSpec(std::string_view spec) {
  Point point;
  const std::string text(Trim(spec));
  auto numeric_arg = [&](std::string_view prefix) -> Result<std::string> {
    // "prefix(arg)" -> "arg"
    if (text.size() < prefix.size() + 2 || text.back() != ')') {
      return Status::InvalidArgument("malformed failpoint spec '" + text +
                                     "'");
    }
    return text.substr(prefix.size() + 1,
                       text.size() - prefix.size() - 2);
  };
  if (text == "off") {
    point.mode = Mode::kOff;
  } else if (text == "error-once") {
    point.mode = Mode::kErrorOnce;
  } else if (text == "abort") {
    point.mode = Mode::kAbort;
  } else if (text.rfind("error-every(", 0) == 0) {
    point.mode = Mode::kErrorEveryN;
    RECONSUME_ASSIGN_OR_RETURN(const std::string arg,
                               numeric_arg("error-every"));
    RECONSUME_ASSIGN_OR_RETURN(point.every_n, ParseInt64(arg));
    if (point.every_n < 1) {
      return Status::InvalidArgument("error-every(N) needs N >= 1, got " +
                                     arg);
    }
  } else if (text.rfind("prob(", 0) == 0) {
    point.mode = Mode::kProbability;
    RECONSUME_ASSIGN_OR_RETURN(const std::string arg, numeric_arg("prob"));
    RECONSUME_ASSIGN_OR_RETURN(point.probability, ParseDouble(arg));
    if (point.probability < 0.0 || point.probability > 1.0) {
      return Status::InvalidArgument("prob(P) needs P in [0, 1], got " + arg);
    }
  } else {
    return Status::InvalidArgument(
        "unknown failpoint spec '" + text +
        "' (want off | error-once | error-every(N) | prob(P) | abort)");
  }
  return point;
}

}  // namespace

struct FailpointRegistry::Impl {
  mutable Mutex mutex;
  std::map<std::string, Point, std::less<>> points RC_GUARDED_BY(mutex);
  Rng rng RC_GUARDED_BY(mutex){0x5EEDFA11ULL};
  /// Number of registered names; lets Evaluate skip the lock entirely while
  /// the registry is empty, keeping failpoint sites in SGD-step-grade hot
  /// loops at the cost of one relaxed atomic load.
  std::atomic<size_t> num_points{0};
  /// Fire observer, swapped under `mutex` but invoked outside it (the
  /// listener may grab other locks — e.g. the telemetry event stream's).
  std::shared_ptr<const std::function<void(const char*, int64_t)>> on_fire
      RC_GUARDED_BY(mutex);
};

FailpointRegistry::FailpointRegistry() : impl_(new Impl) {}
FailpointRegistry::~FailpointRegistry() { delete impl_; }

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* env = std::getenv("RECONSUME_FAILPOINTS");
        env != nullptr && *env != '\0') {
      const Status status = r->Configure(env);
      if (!status.ok()) {
        RECONSUME_LOG(Warning)
            << "ignoring invalid RECONSUME_FAILPOINTS entries: "
            << status.ToString();
      }
    }
    return r;
  }();
  return *registry;
}

Status FailpointRegistry::Set(std::string_view name, std::string_view spec) {
  const std::string key(Trim(name));
  if (key.empty()) {
    return Status::InvalidArgument("failpoint name must be non-empty");
  }
  RECONSUME_ASSIGN_OR_RETURN(Point parsed, ParseSpec(spec));
  MutexLock lock(&impl_->mutex);
  Point& point = impl_->points[key];
  // Preserve lifetime counters across re-arming; reset the firing state.
  parsed.hits = point.hits;
  parsed.fires = point.fires;
  point = parsed;
  impl_->num_points.store(impl_->points.size(), std::memory_order_release);
  return Status::OK();
}

Status FailpointRegistry::Configure(std::string_view config) {
  std::string first_error;
  int bad_entries = 0;
  for (const std::string_view entry : Split(config, ',')) {
    const std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    Status status =
        eq == std::string_view::npos
            ? Status::InvalidArgument("failpoint entry '" +
                                      std::string(trimmed) +
                                      "' is not name=spec")
            : Set(trimmed.substr(0, eq), trimmed.substr(eq + 1));
    if (!status.ok()) {
      ++bad_entries;
      if (first_error.empty()) first_error = status.message();
    }
  }
  if (bad_entries > 0) {
    return Status::InvalidArgument(std::to_string(bad_entries) +
                                   " bad failpoint entr" +
                                   (bad_entries == 1 ? "y" : "ies") + ": " +
                                   first_error);
  }
  return Status::OK();
}

void FailpointRegistry::Disable(std::string_view name) {
  MutexLock lock(&impl_->mutex);
  const auto it = impl_->points.find(name);
  if (it != impl_->points.end()) {
    it->second.mode = Mode::kOff;
    it->second.disarmed = false;
  }
}

void FailpointRegistry::Clear() {
  MutexLock lock(&impl_->mutex);
  impl_->points.clear();
  impl_->num_points.store(0, std::memory_order_release);
}

Status FailpointRegistry::Evaluate(const char* name) {
  // Fast path: nothing registered, no lock taken.
  if (impl_->num_points.load(std::memory_order_acquire) == 0) {
    return Status::OK();
  }
  bool abort_requested = false;
  int64_t fire_count = 0;
  std::shared_ptr<const std::function<void(const char*, int64_t)>> listener;
  {
    MutexLock lock(&impl_->mutex);
    const auto it = impl_->points.find(std::string_view(name));
    if (it == impl_->points.end()) return Status::OK();
    Point& point = it->second;
    ++point.hits;
    bool fire = false;
    switch (point.mode) {
      case Mode::kOff:
        break;
      case Mode::kErrorOnce:
        fire = !point.disarmed;
        point.disarmed = true;
        break;
      case Mode::kErrorEveryN:
        fire = point.hits % point.every_n == 0;
        break;
      case Mode::kProbability:
        fire = impl_->rng.Bernoulli(point.probability);
        break;
      case Mode::kAbort:
        fire = true;
        abort_requested = true;
        break;
    }
    if (!fire) return Status::OK();
    fire_count = ++point.fires;
    listener = impl_->on_fire;
  }
  if (abort_requested) {
    // Simulated hard crash: route through the pluggable RC_CHECK failure
    // handler so death-style tests can intercept it like any contract
    // failure. (Outside tests this aborts the process.)
    RC_CHECK(false) << "failpoint '" << name << "' fired in abort mode";
  }
  if (listener != nullptr) (*listener)(name, fire_count);
  return Status::Internal(std::string("failpoint '") + name + "' fired");
}

int64_t FailpointRegistry::hits(std::string_view name) const {
  MutexLock lock(&impl_->mutex);
  const auto it = impl_->points.find(name);
  return it == impl_->points.end() ? 0 : it->second.hits;
}

int64_t FailpointRegistry::fires(std::string_view name) const {
  MutexLock lock(&impl_->mutex);
  const auto it = impl_->points.find(name);
  return it == impl_->points.end() ? 0 : it->second.fires;
}

void FailpointRegistry::SeedProbabilistic(uint64_t seed) {
  MutexLock lock(&impl_->mutex);
  impl_->rng.Seed(seed);
}

void FailpointRegistry::SetFireListener(
    std::function<void(const char* name, int64_t fires)> listener) {
  MutexLock lock(&impl_->mutex);
  impl_->on_fire =
      listener == nullptr
          ? nullptr
          : std::make_shared<const std::function<void(const char*, int64_t)>>(
                std::move(listener));
}

ScopedFailpoint::ScopedFailpoint(std::string name, std::string_view spec)
    : name_(std::move(name)) {
  RC_CHECK_OK(FailpointRegistry::Global().Set(name_, spec));
}

ScopedFailpoint::~ScopedFailpoint() {
  FailpointRegistry::Global().Disable(name_);
}

}  // namespace util
}  // namespace reconsume
