#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace reconsume {
namespace util {

std::vector<std::string_view> Split(std::string_view input, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view input) {
  std::vector<std::string_view> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    const size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.push_back(input.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1])))
    --end;
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty floating-point field");
  // std::from_chars<double> is available in libstdc++ 11+, but strtod keeps us
  // portable; the copy bounds the input for strtod's NUL requirement.
  const std::string buf(s);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return value;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatWithCommas(int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace util
}  // namespace reconsume
