// Minimal leveled logging plus debug-check macros.
//
// Usage:
//   RECONSUME_LOG(INFO) << "trained " << n << " epochs";
//   RECONSUME_CHECK(x > 0) << "x must be positive, got " << x;

#pragma once

#include <sstream>
#include <string>

#include "util/check.h"

namespace reconsume {
namespace util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

const char* LogLevelName(LogLevel level);

namespace internal {

/// One in-flight log statement; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the log level filters it out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace util
}  // namespace reconsume

#define RECONSUME_LOG_INTERNAL(level)                                      \
  ::reconsume::util::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define RECONSUME_LOG(severity)                                            \
  RECONSUME_LOG_INTERNAL(::reconsume::util::LogLevel::k##severity)

// Invariant checks are aliases for the RC_CHECK contract layer (util/check.h)
// so every failure in the tree routes through the same pluggable handler.
// New code should use RC_CHECK / RC_DCHECK and the domain macros directly.
#define RECONSUME_CHECK(condition) RC_CHECK(condition)
#define RECONSUME_CHECK_OK(expr) RC_CHECK_OK(expr)
#define RECONSUME_DCHECK(condition) RC_DCHECK(condition)
