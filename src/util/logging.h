// Minimal leveled logging plus debug-check macros.
//
// Usage:
//   RECONSUME_LOG(INFO) << "trained " << n << " epochs";
//   RECONSUME_CHECK(x > 0) << "x must be positive, got " << x;

#ifndef RECONSUME_UTIL_LOGGING_H_
#define RECONSUME_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace reconsume {
namespace util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

const char* LogLevelName(LogLevel level);

namespace internal {

/// One in-flight log statement; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the log level filters it out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lets the ternary in RECONSUME_CHECK produce void while still allowing
/// `<< extra` on the failure branch (`&` binds looser than `<<`).
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace util
}  // namespace reconsume

#define RECONSUME_LOG_INTERNAL(level)                                      \
  ::reconsume::util::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define RECONSUME_LOG(severity)                                            \
  RECONSUME_LOG_INTERNAL(::reconsume::util::LogLevel::k##severity)

/// Always-on invariant check; logs and aborts on failure. Supports streaming
/// extra context: RECONSUME_CHECK(n > 0) << "n was " << n;
#define RECONSUME_CHECK(condition)                                         \
  (condition) ? (void)0                                                    \
              : ::reconsume::util::internal::LogMessageVoidify() &         \
                    RECONSUME_LOG_INTERNAL(                                \
                        ::reconsume::util::LogLevel::kFatal)               \
                        << "Check failed: " #condition " "

#define RECONSUME_CHECK_OK(expr)                                           \
  do {                                                                     \
    ::reconsume::Status _st = (expr);                                      \
    RECONSUME_CHECK(_st.ok()) << _st.ToString();                           \
  } while (0)

#ifdef NDEBUG
// `true || (c)` keeps the expression well-formed (and streamable) while
// letting the optimizer drop both the check and its operands.
#define RECONSUME_DCHECK(condition) RECONSUME_CHECK(true || (condition))
#else
#define RECONSUME_DCHECK(condition) RECONSUME_CHECK(condition)
#endif

#endif  // RECONSUME_UTIL_LOGGING_H_
