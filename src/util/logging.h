// Minimal leveled logging plus debug-check macros.
//
// Usage:
//   RECONSUME_LOG(INFO) << "trained " << n << " epochs";
//   RECONSUME_LOG(Warning).With("user", user).With("gap", gap)
//       << "skipping user";
//   RECONSUME_CHECK(x > 0) << "x must be positive, got " << x;
//
// Every statement renders as "[LEVEL file:line] message key=value ..." on
// stderr by default. SetLogSink replaces that destination with a pluggable
// consumer that receives the structured LogRecord (level, site, message,
// typed-as-text fields), so telemetry layers can mirror warnings into an
// event stream without reparsing formatted text. Fatal messages abort after
// the sink runs regardless of which sink is installed.

#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"

namespace reconsume {
namespace util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

const char* LogLevelName(LogLevel level);

/// \brief One emitted log statement, as handed to the sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";  ///< basename of the emitting source file
  int line = 0;
  std::string message;  ///< streamed text, without the [LEVEL file:line] prefix
  /// With(key, value) pairs in call order, values already rendered as text.
  std::vector<std::pair<std::string, std::string>> fields;
};

/// The stderr rendering: "[LEVEL file:line] message key=value ...".
std::string FormatLogRecord(const LogRecord& record);

/// \brief Process-wide log consumer. Must be thread-safe; called without any
/// logging-internal lock held, on the emitting thread.
using LogSink = std::function<void(const LogRecord&)>;

/// Replaces the process-wide sink; nullptr restores the stderr default.
/// The previous sink is dropped once every in-flight statement finishes.
void SetLogSink(LogSink sink);

namespace internal {

/// One in-flight log statement; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Attaches a structured key=value field (kept separate from the streamed
  /// message so sinks see it typed-as-text instead of embedded prose).
  LogMessage& With(std::string_view key, std::string_view value);
  LogMessage& With(std::string_view key, const char* value);
  LogMessage& With(std::string_view key, long long value);
  LogMessage& With(std::string_view key, unsigned long long value);
  LogMessage& With(std::string_view key, int value);
  LogMessage& With(std::string_view key, long value);
  LogMessage& With(std::string_view key, unsigned long value);
  LogMessage& With(std::string_view key, double value);
  LogMessage& With(std::string_view key, bool value);

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* base_;
  int line_;
  std::ostringstream stream_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Swallows the streamed expression when the log level filters it out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace util
}  // namespace reconsume

#define RECONSUME_LOG_INTERNAL(level)                                      \
  ::reconsume::util::internal::LogMessage(level, __FILE__, __LINE__)

#define RECONSUME_LOG(severity)                                            \
  RECONSUME_LOG_INTERNAL(::reconsume::util::LogLevel::k##severity)

// Invariant checks are aliases for the RC_CHECK contract layer (util/check.h)
// so every failure in the tree routes through the same pluggable handler.
// New code should use RC_CHECK / RC_DCHECK and the domain macros directly.
#define RECONSUME_CHECK(condition) RC_CHECK(condition)
#define RECONSUME_CHECK_OK(expr) RC_CHECK_OK(expr)
#define RECONSUME_DCHECK(condition) RC_DCHECK(condition)
