// Named-failpoint fault injection for testing the robustness layer.
//
// A failpoint is a named site in library code where an artificial fault can
// be injected at runtime. Sites are declared with RC_FAILPOINT("area/op"):
//
//   Status SaveModel(...) {
//     RC_FAILPOINT("model_io/save");   // may return an injected IoError here
//     ...
//   }
//
// Each point carries a per-point policy, configured either through the API
// (FailpointRegistry::Set / ScopedFailpoint in tests) or the
// RECONSUME_FAILPOINTS environment variable, a comma-separated list parsed
// on first registry access:
//
//   RECONSUME_FAILPOINTS="model_io/save=error-once,trainer/round=error-every(3)"
//
// Policies (spec grammar accepted by Set):
//   off             never fires (the default for every point)
//   error-once      fires on the first hit only, then disarms
//   error-every(N)  fires on every N-th hit (N >= 1)
//   prob(P)         fires with probability P per hit (deterministic registry
//                   RNG; reseed with SeedProbabilistic for reproducible runs)
//   abort           routes through the RC_CHECK failure handler (simulated
//                   hard crash; death-testable like any contract failure)
//
// A fired point returns Status::Internal("failpoint '<name>' fired"), which
// the enclosing function propagates like any real fault — so every recovery
// path (checkpoint resume, bad-line tolerance, eval skip policy) is testable
// deterministically.
//
// Build gating: the whole mechanism compiles away unless
// RECONSUME_FAILPOINTS_ENABLED is 1 (CMake option RECONSUME_FAILPOINTS,
// default ON except for Release builds). When compiled out, RC_FAILPOINT
// expands to nothing and RC_FAILPOINT_STATUS to Status::OK().

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/status.h"

#ifndef RECONSUME_FAILPOINTS_ENABLED
#define RECONSUME_FAILPOINTS_ENABLED 0
#endif

namespace reconsume {
namespace util {

/// \brief Process-wide registry of named failpoints. Thread-safe.
class FailpointRegistry {
 public:
  /// The singleton used by RC_FAILPOINT. Loads RECONSUME_FAILPOINTS from the
  /// environment on first access (invalid entries are logged and skipped).
  static FailpointRegistry& Global();

  /// Arms `name` with a policy spec (see the header comment for the
  /// grammar). InvalidArgument on a malformed spec.
  Status Set(std::string_view name, std::string_view spec);

  /// Parses a comma-separated "name=spec,name=spec" list (the
  /// RECONSUME_FAILPOINTS format) and arms every entry.
  Status Configure(std::string_view config);

  /// Disarms one point / every point.
  void Disable(std::string_view name);
  void Clear();

  /// Evaluates the point: counts the hit and returns non-OK iff the armed
  /// policy fires. Called by RC_FAILPOINT; OK for unknown/disarmed names.
  Status Evaluate(const char* name);

  /// Lifetime hit / fire counters of a point (0 for unknown names).
  int64_t hits(std::string_view name) const;
  int64_t fires(std::string_view name) const;

  /// Reseeds the RNG behind prob(P) policies (default seed is fixed).
  void SeedProbabilistic(uint64_t seed);

  /// \brief Observer invoked after a point fires (not on mere hits), with
  /// the point's name and its lifetime fire count.
  ///
  /// Called outside the registry lock, on the thread that hit the point; the
  /// listener must be thread-safe. One listener at a time (telemetry owns
  /// it — see obs::TelemetrySession); nullptr removes it. Not invoked for
  /// abort-mode fires (those route through the RC_CHECK failure handler
  /// before returning).
  void SetFireListener(
      std::function<void(const char* name, int64_t fires)> listener);

  FailpointRegistry();
  ~FailpointRegistry();
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

/// \brief RAII failpoint arming for tests: arms on construction, disarms on
/// destruction. Dies on a malformed spec (test setup error).
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, std::string_view spec);
  ~ScopedFailpoint();
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace util
}  // namespace reconsume

#if RECONSUME_FAILPOINTS_ENABLED
/// Evaluates the named failpoint and, when it fires, propagates the injected
/// Status out of the enclosing Status/Result-returning function.
#define RC_FAILPOINT(name)                                                  \
  do {                                                                      \
    ::reconsume::Status rc_fp_status =                                      \
        ::reconsume::util::FailpointRegistry::Global().Evaluate(name);      \
    if (!rc_fp_status.ok()) return rc_fp_status;                            \
  } while (0)
/// Expression form for contexts that cannot early-return (worker lambdas):
/// yields the injected Status, or OK when the point does not fire.
#define RC_FAILPOINT_STATUS(name) \
  (::reconsume::util::FailpointRegistry::Global().Evaluate(name))
#else
#define RC_FAILPOINT(name) \
  do {                     \
  } while (0)
#define RC_FAILPOINT_STATUS(name) (::reconsume::Status::OK())
#endif
