// Small string helpers shared by the dataset loaders and table writers.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace reconsume {
namespace util {

/// Splits `input` on `delim`; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view input, char delim);

/// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string_view> SplitWhitespace(std::string_view input);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view input);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer parse of the entire string.
Result<int64_t> ParseInt64(std::string_view s);

/// Strict floating-point parse of the entire string.
Result<double> ParseDouble(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// Formats like printf into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a count with thousands separators, e.g. 4031705 -> "4,031,705".
std::string FormatWithCommas(int64_t value);

}  // namespace util
}  // namespace reconsume

