#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace reconsume {
namespace util {

namespace {

void DefaultCheckFailureHandler(const CheckFailure& failure) {
  // Basename only, mirroring the logging layer's format.
  const char* base = failure.file;
  for (const char* p = failure.file; p != nullptr && *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[FATAL %s:%d] Check failed: %s %s\n",
               base == nullptr ? "?" : base, failure.line,
               failure.expression == nullptr ? "?" : failure.expression,
               failure.message.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<CheckFailureHandler> g_handler{&DefaultCheckFailureHandler};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  if (handler == nullptr) handler = &DefaultCheckFailureHandler;
  return g_handler.exchange(handler);
}

namespace internal {

void FailCheck(const CheckFailure& failure) {
  g_handler.load()(failure);
  // A handler must abort or throw; guard against one that returns.
  DefaultCheckFailureHandler(failure);
  std::abort();  // unreachable; DefaultCheckFailureHandler aborts
}

}  // namespace internal
}  // namespace util
}  // namespace reconsume
