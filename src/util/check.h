// Project-wide contract/invariant layer.
//
// Every runtime invariant in reconsume is expressed through one of the
// RC_CHECK_* macros below instead of <cassert> (tools/lint_reconsume.py bans
// naked assert in src/). All failures route through a single pluggable
// failure handler, which makes the macros death-testable: tests install a
// throwing handler via SetCheckFailureHandler and assert on the exception
// instead of forking a subprocess.
//
//   RC_CHECK(cond)            always-on; streams extra context:
//                             RC_CHECK(n > 0) << "n was " << n;
//   RC_CHECK_OK(status_expr)  always-on; fails with the Status message
//   RC_DCHECK(cond)           debug-only; compiles out when NDEBUG is set
//                             (RC_DCHECK_IS_ON tells you which mode you got)
//
// Domain macros for the paper's numeric invariants (each has a debug-only
// RC_DCHECK_* twin for hot paths):
//
//   RC_CHECK_FINITE(x)        std::isfinite(x) — SGD gradients, r~, norms
//   RC_CHECK_PROB(p)          p in [0, 1] — AP@N, MaAP/MiAP, p-values
//   RC_CHECK_INDEX(i, n)      0 <= i < n with sign-safe comparison — dense ids
//   RC_CHECK_SORTED(range)    std::is_sorted — per-user timestamp monotonicity
//
// On failure the condition's operands may be evaluated a second time to
// format the message; side-effecting expressions inside a check are a bug.

#pragma once

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

#include "util/status.h"

namespace reconsume {
namespace util {

/// \brief Everything known about one failed check, handed to the handler.
struct CheckFailure {
  const char* file = nullptr;
  int line = 0;
  /// The macro-stringified expression, e.g. "RC_CHECK_INDEX(u, num_users())".
  const char* expression = nullptr;
  /// Formatted context streamed at the call site (may be empty).
  std::string message;
};

/// \brief Receives every failed RC_CHECK_*. Must not return normally; it
/// either terminates the process or throws (death-style tests). If it does
/// return, the caller aborts anyway.
using CheckFailureHandler = void (*)(const CheckFailure& failure);

/// \brief Installs a failure handler; returns the previous one. Passing
/// nullptr restores the default (print file:line + message to stderr, abort).
/// Thread-safe, but intended for test setup, not concurrent reinstallation.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

namespace internal {

/// Invokes the installed handler; aborts if the handler returns.
[[noreturn]] void FailCheck(const CheckFailure& failure);

/// One in-flight failing check; collects streamed context, then fires the
/// handler from its destructor (noexcept(false) so a test handler may throw).
class CheckFailMessage {
 public:
  CheckFailMessage(const char* file, int line, const char* expression)
      : file_(file), line_(line), expression_(expression) {}
  CheckFailMessage(const CheckFailMessage&) = delete;
  CheckFailMessage& operator=(const CheckFailMessage&) = delete;

  ~CheckFailMessage() noexcept(false) {
    FailCheck(CheckFailure{file_, line_, expression_, stream_.str()});
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* expression_;
  std::ostringstream stream_;
};

/// Lets the ternary in RC_CHECK produce void while still allowing `<< extra`
/// on the failure branch (`&` binds looser than `<<`).
struct CheckVoidify {
  void operator&(std::ostream&) {}
};

template <typename T>
constexpr bool CheckIsFinite(T value) {
  static_assert(std::is_arithmetic_v<T>,
                "RC_CHECK_FINITE takes a scalar; use math::AllFinite for "
                "spans inside RC_CHECK");
  return std::isfinite(static_cast<double>(value));
}

template <typename T>
constexpr bool CheckIsProb(T value) {
  static_assert(std::is_arithmetic_v<T>, "RC_CHECK_PROB takes a scalar");
  const double p = static_cast<double>(value);
  return p >= 0.0 && p <= 1.0;
}

/// 0 <= i < n without signed/unsigned comparison surprises.
template <typename I, typename N>
constexpr bool IndexInBounds(I i, N n) {
  static_assert(std::is_integral_v<I> && std::is_integral_v<N>,
                "RC_CHECK_INDEX takes integral index and size");
  if constexpr (std::is_signed_v<I>) {
    if (i < I{0}) return false;
  }
  return std::cmp_less(i, n);
}

template <typename Range>
bool IsSortedRange(const Range& range) {
  return std::is_sorted(std::begin(range), std::end(range));
}

}  // namespace internal
}  // namespace util
}  // namespace reconsume

/// Core expansion shared by every RC_CHECK_* macro: `expr_text` is what the
/// failure report names, `cond` is what actually gets evaluated.
#define RC_CHECK_IMPL(cond, expr_text)                                     \
  (cond) ? (void)0                                                         \
         : ::reconsume::util::internal::CheckVoidify() &                   \
               ::reconsume::util::internal::CheckFailMessage(              \
                   __FILE__, __LINE__, expr_text)                          \
                   .stream()

/// Always-on invariant check; supports streaming extra context.
#define RC_CHECK(condition) RC_CHECK_IMPL((condition), #condition)

/// Always-on check that a Status-returning expression is OK.
#define RC_CHECK_OK(expr)                                                  \
  do {                                                                     \
    const ::reconsume::Status rc_internal_status = (expr);                 \
    RC_CHECK_IMPL(rc_internal_status.ok(), "RC_CHECK_OK(" #expr ")")       \
        << rc_internal_status.ToString() << " ";                          \
  } while (0)

#define RC_CHECK_FINITE(val)                                               \
  RC_CHECK_IMPL(::reconsume::util::internal::CheckIsFinite(val),           \
                "RC_CHECK_FINITE(" #val ")")                               \
      << "value=" << static_cast<double>(val) << " "

#define RC_CHECK_PROB(val)                                                 \
  RC_CHECK_IMPL(::reconsume::util::internal::CheckIsProb(val),             \
                "RC_CHECK_PROB(" #val ")")                                 \
      << "value=" << static_cast<double>(val) << " "

#define RC_CHECK_INDEX(i, n)                                               \
  RC_CHECK_IMPL(::reconsume::util::internal::IndexInBounds((i), (n)),      \
                "RC_CHECK_INDEX(" #i ", " #n ")")                          \
      << "index=" << (i) << " size=" << (n) << " "

#define RC_CHECK_SORTED(range)                                             \
  RC_CHECK_IMPL(::reconsume::util::internal::IsSortedRange(range),         \
                "RC_CHECK_SORTED(" #range ")")

// Debug-only variants. In NDEBUG builds the whole expression folds away
// (`true || (...)` keeps it well-formed and streamable while letting the
// optimizer drop the operands), so they are free on hot paths.
#ifdef NDEBUG
#define RC_DCHECK_IS_ON 0
#define RC_DCHECK(condition) RC_CHECK(true || (condition))
#define RC_DCHECK_FINITE(val) RC_CHECK(true || ((void)(val), true))
#define RC_DCHECK_PROB(val) RC_CHECK(true || ((void)(val), true))
#define RC_DCHECK_INDEX(i, n) RC_CHECK(true || ((void)(i), (void)(n), true))
#define RC_DCHECK_SORTED(range) RC_CHECK(true || ((void)(range), true))
#else
#define RC_DCHECK_IS_ON 1
#define RC_DCHECK(condition) RC_CHECK(condition)
#define RC_DCHECK_FINITE(val) RC_CHECK_FINITE(val)
#define RC_DCHECK_PROB(val) RC_CHECK_PROB(val)
#define RC_DCHECK_INDEX(i, n) RC_CHECK_INDEX(i, n)
#define RC_DCHECK_SORTED(range) RC_CHECK_SORTED(range)
#endif
