// Whole-file I/O helpers, including the project's single durable-write
// primitive.
//
// Every write of a model, checkpoint, or dataset artifact in src/ must go
// through AtomicWriteFile (tools/lint_reconsume.py bans raw std::ofstream in
// library code outside this helper): a crash mid-write then leaves either
// the complete previous file or the complete new file — never a truncated
// hybrid that a later load would have to disentangle.

#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

namespace reconsume {
namespace util {

/// Reads an entire file into memory; IoError on failure.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file. NOT crash-safe:
/// an interrupted write leaves a truncated file. Reserved for scratch and
/// test fixtures; durable artifacts go through AtomicWriteFile.
Status WriteStringToFile(const std::string& path, std::string_view contents);

/// \brief Crash-safe whole-file replacement: temp file + fsync + rename.
///
/// Writes `contents` to a temporary sibling of `path`, fsyncs it, then
/// atomically renames it over `path` (POSIX rename within one directory).
/// On any failure the temporary is removed and an existing `path` is left
/// untouched. Failpoints: "util/atomic_write" (fails before any bytes are
/// written), "util/atomic_write/rename" (fails after the temp file is
/// complete but before it replaces `path` — the crash window atomicity
/// protects against).
Status AtomicWriteFile(const std::string& path, std::string_view contents);

}  // namespace util
}  // namespace reconsume
