// Annotated synchronization primitives: the only sanctioned way to lock in
// this tree (docs/static_analysis.md).
//
// Every wrapper carries Clang Thread Safety Analysis capability attributes,
// so a Clang build with -DRECONSUME_THREAD_SAFETY=ON proves the locking
// contracts at compile time: a member declared RC_GUARDED_BY(mu_) cannot be
// touched without holding mu_, a method declared RC_REQUIRES(mu_) cannot be
// called without it, and a MutexLock cannot leak past its scope. Off-Clang
// (GCC, MSVC) the attributes expand to nothing and the wrappers compile down
// to the raw std primitives they hold — zero overhead either way.
//
//   class ScoreBoard {
//    public:
//     void Add(int v) {
//       MutexLock lock(&mu_);
//       total_ += v;
//     }
//    private:
//     util::Mutex mu_;
//     int total_ RC_GUARDED_BY(mu_) = 0;
//   };
//
// Raw std::mutex / std::lock_guard / std::condition_variable are banned
// outside this header by tools/static_analysis/rc_analyze.py and the
// raw-sync-include rule in tools/lint_reconsume.py.
//
// CondVar deliberately has no predicate-wait overload: TSA analyzes a lambda
// body as a separate function that does not hold the caller's locks, so the
// idiomatic form here is an explicit while loop around CondVar::Wait — every
// guarded access then stays lexically inside the scope that holds the lock:
//
//   MutexLock lock(&mu_);
//   while (queue_.empty() && !shutdown_) not_empty_.Wait(&mu_);

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

// --- Thread safety attribute macros (RC_* spellings of the Clang TSA
// attribute set). Active on any Clang; no-ops elsewhere. The CMake option
// RECONSUME_THREAD_SAFETY only controls whether violations are *errors*
// (-Wthread-safety -Werror=thread-safety-analysis); the annotations
// themselves are always visible to Clang so IDEs and clang-tidy see them.
#if defined(__clang__)
#define RC_TSA_ATTR_(x) __attribute__((x))
#else
#define RC_TSA_ATTR_(x)  // no-op off-Clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex").
#define RC_CAPABILITY(x) RC_TSA_ATTR_(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define RC_SCOPED_CAPABILITY RC_TSA_ATTR_(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define RC_GUARDED_BY(x) RC_TSA_ATTR_(guarded_by(x))
/// Pointer / smart-pointer member whose *pointee* is protected by `x`.
#define RC_PT_GUARDED_BY(x) RC_TSA_ATTR_(pt_guarded_by(x))
/// Function may only be called while holding the listed capabilities.
#define RC_REQUIRES(...) RC_TSA_ATTR_(requires_capability(__VA_ARGS__))
#define RC_REQUIRES_SHARED(...) \
  RC_TSA_ATTR_(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the listed capabilities.
#define RC_ACQUIRE(...) RC_TSA_ATTR_(acquire_capability(__VA_ARGS__))
#define RC_ACQUIRE_SHARED(...) \
  RC_TSA_ATTR_(acquire_shared_capability(__VA_ARGS__))
#define RC_RELEASE(...) RC_TSA_ATTR_(release_capability(__VA_ARGS__))
#define RC_RELEASE_SHARED(...) \
  RC_TSA_ATTR_(release_shared_capability(__VA_ARGS__))
/// Function conditionally acquires; `b` is the success return value.
#define RC_TRY_ACQUIRE(b, ...) \
  RC_TSA_ATTR_(try_acquire_capability(b, __VA_ARGS__))
#define RC_TRY_ACQUIRE_SHARED(b, ...) \
  RC_TSA_ATTR_(try_acquire_shared_capability(b, __VA_ARGS__))
/// Function must NOT be called while holding the listed capabilities
/// (deadlock guard for self-locking public methods).
#define RC_EXCLUDES(...) RC_TSA_ATTR_(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trust boundary).
#define RC_ASSERT_CAPABILITY(x) RC_TSA_ATTR_(assert_capability(x))
/// Accessor returning a reference/pointer to the named capability.
#define RC_RETURN_CAPABILITY(x) RC_TSA_ATTR_(lock_returned(x))
/// Last-resort opt-out for one function. Policy (docs/static_analysis.md):
/// every use needs a comment justifying why the analysis cannot see the
/// synchronization; blanket suppression of whole classes is forbidden.
#define RC_NO_THREAD_SAFETY_ANALYSIS RC_TSA_ATTR_(no_thread_safety_analysis)

namespace reconsume {
namespace util {

class CondVar;

/// \brief Annotated exclusive mutex (wraps std::mutex).
class RC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RC_ACQUIRE() { mu_.lock(); }
  void Unlock() RC_RELEASE() { mu_.unlock(); }
  bool TryLock() RC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Annotated reader/writer mutex (wraps std::shared_mutex).
class RC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() RC_ACQUIRE() { mu_.lock(); }
  void Unlock() RC_RELEASE() { mu_.unlock(); }
  bool TryLock() RC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() RC_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RC_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() RC_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// \brief Scoped exclusive lock on a Mutex (the std::lock_guard shape).
class RC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Scoped exclusive lock on a SharedMutex.
class RC_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) RC_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() RC_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Scoped shared (read) lock on a SharedMutex.
class RC_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) RC_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RC_RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Condition variable bound to util::Mutex.
///
/// Wait atomically releases the mutex while sleeping and reacquires it
/// before returning, exactly like std::condition_variable::wait — callers
/// hold the mutex across the call, which is what RC_REQUIRES expresses.
/// Spurious wakeups happen; always wait in a while loop (see the header
/// comment for the sanctioned idiom).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) RC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  /// Bounded wait: sleeps at most `timeout_ns` nanoseconds. Returns false on
  /// timeout, true when woken by a notify (or spuriously — re-check the
  /// predicate either way, in the same while loop as an untimed Wait). The
  /// mutex is held again before returning in both cases. A non-positive
  /// timeout degrades to an immediate timed-out return, so callers can pass
  /// a remaining-budget computation without clamping.
  bool WaitFor(Mutex* mu, int64_t timeout_ns) RC_REQUIRES(mu) {
    if (timeout_ns <= 0) return false;
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns));
    lock.release();  // the caller's MutexLock still owns the mutex
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace reconsume
