// Minimal --name=value command-line flag parsing for the CLI tool and
// experiment drivers. No global registry: parse argv into a FlagSet, then
// pull typed values with defaults.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace reconsume {
namespace util {

/// \brief Parsed command line: positional arguments plus --key=value flags.
///
/// Accepted forms: `--key=value`, `--key value`, and bare `--key` (stored as
/// "true"). `--` ends flag parsing. Unknown flags are kept; callers can
/// reject leftovers via CheckNoUnusedFlags().
class FlagSet {
 public:
  /// Parses argv[1..argc); returns InvalidArgument for malformed input
  /// (e.g. `--=x`).
  static Result<FlagSet> Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// Typed getters; return `fallback` when the flag is absent and an error
  /// Status only when the flag is present but unparsable.
  Result<std::string> GetString(const std::string& name,
                                std::string fallback) const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  Result<bool> GetBool(const std::string& name, bool fallback) const;

  /// InvalidArgument listing any flag never read by a getter (typo guard).
  Status CheckNoUnusedFlags() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace util
}  // namespace reconsume

