#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "util/sync.h"

namespace reconsume {
namespace util {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
Mutex g_log_mutex;  ///< serializes stderr writes and sink swaps

std::shared_ptr<const LogSink> g_sink RC_GUARDED_BY(g_log_mutex);

void StderrSink(const LogRecord& record) {
  const std::string line = FormatLogRecord(record);
  MutexLock lock(&g_log_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
  std::fflush(stderr);
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

std::string FormatLogRecord(const LogRecord& record) {
  std::string line = "[";
  line += LogLevelName(record.level);
  line += ' ';
  line += record.file;
  line += ':';
  line += std::to_string(record.line);
  line += "] ";
  line += record.message;
  for (const auto& [key, value] : record.fields) {
    line += ' ';
    line += key;
    line += '=';
    line += value;
  }
  return line;
}

void SetLogSink(LogSink sink) {
  MutexLock lock(&g_log_mutex);
  g_sink = sink == nullptr
               ? nullptr
               : std::make_shared<const LogSink>(std::move(sink));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), base_(file), line_(line) {
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base_ = p + 1;
  }
}

LogMessage::~LogMessage() {
  const bool fatal = level_ == LogLevel::kFatal;
  if (fatal || static_cast<int>(level_) >= g_min_level.load()) {
    LogRecord record;
    record.level = level_;
    record.file = base_;
    record.line = line_;
    record.message = stream_.str();
    record.fields = std::move(fields_);
    std::shared_ptr<const LogSink> sink;
    {
      MutexLock lock(&g_log_mutex);
      sink = g_sink;
    }
    // Invoked outside g_log_mutex: custom sinks may take their own locks
    // (e.g. the telemetry event stream's) or log themselves.
    if (sink != nullptr) {
      (*sink)(record);
    } else {
      StderrSink(record);
    }
  }
  if (fatal) std::abort();
}

LogMessage& LogMessage::With(std::string_view key, std::string_view value) {
  fields_.emplace_back(std::string(key), std::string(value));
  return *this;
}

LogMessage& LogMessage::With(std::string_view key, const char* value) {
  return With(key, std::string_view(value));
}

LogMessage& LogMessage::With(std::string_view key, long long value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

LogMessage& LogMessage::With(std::string_view key, unsigned long long value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

LogMessage& LogMessage::With(std::string_view key, int value) {
  return With(key, static_cast<long long>(value));
}

LogMessage& LogMessage::With(std::string_view key, long value) {
  return With(key, static_cast<long long>(value));
}

LogMessage& LogMessage::With(std::string_view key, unsigned long value) {
  return With(key, static_cast<unsigned long long>(value));
}

LogMessage& LogMessage::With(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  fields_.emplace_back(std::string(key), buf);
  return *this;
}

LogMessage& LogMessage::With(std::string_view key, bool value) {
  fields_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

}  // namespace internal
}  // namespace util
}  // namespace reconsume
