#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace reconsume {
namespace util {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool fatal = level_ == LogLevel::kFatal;
  if (fatal || static_cast<int>(level_) >= g_min_level.load()) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal) std::abort();
}

}  // namespace internal
}  // namespace util
}  // namespace reconsume
