// Static (per-item) behavioral features of §4.4.1: item quality and item
// reconsumption ratio, both computed once over the training portion.

#pragma once

#include <vector>

#include "data/split.h"
#include "util/status.h"

namespace reconsume {
namespace features {

/// \brief Per-item static feature table.
///
/// quality(v)    — q̄_v = (ln(1+n_v) - q_min) / (q_max - q_min)   (Eq. 16–17)
/// reconsumption_ratio(v) — fraction of v's training observations that were
///                 windowed repeats (Eq. 18)
class StaticFeatureTable {
 public:
  /// Computes the table over the training segments of `split` using windows
  /// of the given capacity. Items never seen in training get zeros.
  static Result<StaticFeatureTable> Compute(const data::TrainTestSplit& split,
                                            int window_capacity);

  double quality(data::ItemId v) const {
    return quality_.at(static_cast<size_t>(v));
  }
  double reconsumption_ratio(data::ItemId v) const {
    return reconsumption_ratio_.at(static_cast<size_t>(v));
  }
  /// Raw training frequency n_v (the Pop baseline ranks by ln(1+n_v)).
  int64_t frequency(data::ItemId v) const {
    return frequency_.at(static_cast<size_t>(v));
  }

  size_t num_items() const { return quality_.size(); }

 private:
  std::vector<double> quality_;
  std::vector<double> reconsumption_ratio_;
  std::vector<int64_t> frequency_;
};

}  // namespace features
}  // namespace reconsume

