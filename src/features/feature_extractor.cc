#include "features/feature_extractor.h"

#include <cmath>

namespace reconsume {
namespace features {

FeatureConfig FeatureConfig::WithoutItemQuality() {
  FeatureConfig c;
  c.use_item_quality = false;
  return c;
}
FeatureConfig FeatureConfig::WithoutReconsumptionRatio() {
  FeatureConfig c;
  c.use_reconsumption_ratio = false;
  return c;
}
FeatureConfig FeatureConfig::WithoutRecency() {
  FeatureConfig c;
  c.use_recency = false;
  return c;
}
FeatureConfig FeatureConfig::WithoutFamiliarity() {
  FeatureConfig c;
  c.use_familiarity = false;
  return c;
}

std::string FeatureConfig::Label() const {
  if (use_item_quality && use_reconsumption_ratio && use_recency &&
      use_familiarity) {
    return "All";
  }
  std::string label;
  if (!use_item_quality) label += "-IP";
  if (!use_reconsumption_ratio) label += "-IR";
  if (!use_recency) label += "-RE";
  if (!use_familiarity) label += "-DF";
  return label;
}

double FeatureExtractor::Recency(const window::WindowWalker& walker,
                                 data::ItemId v) const {
  // Items the user never consumed have no recency signal at all — this makes
  // the extractor total, so the same f_uvt serves the novel-item task (§4.3).
  const int last = walker.LastSeenStep(v);
  if (last < 0) return 0.0;
  return RecencyFromGap(walker.step() - last);  // gap >= 1 for seen items
}

double FeatureExtractor::RecencyFromGap(int gap) const {
  switch (config_.recency_kernel) {
    case RecencyKernel::kHyperbolic:
      return 1.0 / static_cast<double>(gap);
    case RecencyKernel::kExponential:
      return std::exp(-static_cast<double>(gap));
    case RecencyKernel::kPowerLaw:
      return 1.0 /
             std::pow(static_cast<double>(gap), config_.power_law_exponent);
  }
  return 0.0;
}

double FeatureExtractor::Familiarity(const window::WindowWalker& walker,
                                     data::ItemId v) const {
  const int window_size = walker.WindowSize();
  if (window_size == 0) return 0.0;
  return static_cast<double>(walker.CountInWindow(v)) /
         static_cast<double>(window_size);
}

void FeatureExtractor::Extract(const window::WindowWalker& walker,
                               data::ItemId v, std::span<double> out) const {
  RC_DCHECK(out.size() == static_cast<size_t>(dimension()))
      << "out=" << out.size() << " dim=" << dimension();
  size_t i = 0;
  if (config_.use_item_quality) out[i++] = table_->quality(v);
  if (config_.use_reconsumption_ratio) {
    out[i++] = table_->reconsumption_ratio(v);
  }
  if (config_.use_recency) out[i++] = Recency(walker, v);
  if (config_.use_familiarity) out[i++] = Familiarity(walker, v);
  // Every behavioral feature of SS4.1 is a bounded ratio; non-finite values
  // here would silently poison the SGD gradients downstream.
  for (size_t j = 0; j < i; ++j) RC_DCHECK_FINITE(out[j]);
}

void FeatureExtractor::ExtractFromWindowState(data::ItemId v, int gap,
                                              int count, int window_size,
                                              std::span<double> out) const {
  RC_DCHECK(out.size() == static_cast<size_t>(dimension()))
      << "out=" << out.size() << " dim=" << dimension();
  // Mirrors Extract feature-for-feature: same ordering, same formulas, same
  // rounding — callers may mix the two paths and get bit-identical f_uvt.
  size_t i = 0;
  if (config_.use_item_quality) out[i++] = table_->quality(v);
  if (config_.use_reconsumption_ratio) {
    out[i++] = table_->reconsumption_ratio(v);
  }
  if (config_.use_recency) out[i++] = gap < 0 ? 0.0 : RecencyFromGap(gap);
  if (config_.use_familiarity) {
    out[i++] = window_size == 0 ? 0.0
                                : static_cast<double>(count) /
                                      static_cast<double>(window_size);
  }
  for (size_t j = 0; j < i; ++j) RC_DCHECK_FINITE(out[j]);
}

}  // namespace features
}  // namespace reconsume
