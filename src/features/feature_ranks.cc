#include "features/feature_ranks.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/string_util.h"
#include "window/window_walker.h"

namespace reconsume {
namespace features {

const char* FeatureRankReport::FeatureName(int f) {
  switch (f) {
    case kItemQuality:
      return "item quality (IP)";
    case kReconsumptionRatio:
      return "reconsumption ratio (IR)";
    case kRecency:
      return "recency (RE)";
    case kFamiliarity:
      return "dynamic familiarity (DF)";
  }
  return "?";
}

Result<FeatureRankReport> ComputeFeatureRanks(const data::TrainTestSplit& split,
                                              int window_capacity, int min_gap,
                                              int histogram_buckets) {
  if (min_gap < 0 || min_gap >= window_capacity) {
    return Status::InvalidArgument("require 0 <= min_gap < window_capacity");
  }
  RECONSUME_ASSIGN_OR_RETURN(
      StaticFeatureTable table,
      StaticFeatureTable::Compute(split, window_capacity));
  FeatureExtractor extractor(&table, FeatureConfig::AllFeatures());

  FeatureRankReport report{
      {math::CountHistogram(static_cast<size_t>(histogram_buckets)),
       math::CountHistogram(static_cast<size_t>(histogram_buckets)),
       math::CountHistogram(static_cast<size_t>(histogram_buckets)),
       math::CountHistogram(static_cast<size_t>(histogram_buckets))},
      {0, 0, 0, 0},
      0};
  std::array<int64_t, 4> top10 = {0, 0, 0, 0};

  const data::Dataset& dataset = split.dataset();
  std::vector<data::ItemId> candidates;
  std::vector<std::pair<double, data::ItemId>> scored;

  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<data::UserId>(u));
    const size_t train_end = split.split_point(static_cast<data::UserId>(u));
    window::WindowWalker walker(&seq, window_capacity);
    while (static_cast<size_t>(walker.step()) < train_end) {
      if (walker.NextIsEligibleRepeat(min_gap)) {
        const data::ItemId target = walker.NextItem();
        walker.EligibleCandidates(min_gap, &candidates);
        for (int f = 0; f < 4; ++f) {
          scored.clear();
          for (data::ItemId v : candidates) {
            double value = 0.0;
            switch (f) {
              case kItemQuality:
                value = extractor.ItemQuality(v);
                break;
              case kReconsumptionRatio:
                value = extractor.ReconsumptionRatio(v);
                break;
              case kRecency:
                value = extractor.Recency(walker, v);
                break;
              case kFamiliarity:
                value = extractor.Familiarity(walker, v);
                break;
            }
            scored.emplace_back(value, v);
          }
          std::sort(scored.begin(), scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
          for (size_t rank = 0; rank < scored.size(); ++rank) {
            if (scored[rank].second == target) {
              report.histograms[static_cast<size_t>(f)].Add(rank);
              if (rank < 10) ++top10[static_cast<size_t>(f)];
              break;
            }
          }
        }
        ++report.num_events;
      }
      walker.Advance();
    }
  }

  if (report.num_events > 0) {
    for (int f = 0; f < 4; ++f) {
      report.top10_fraction[static_cast<size_t>(f)] =
          static_cast<double>(top10[static_cast<size_t>(f)]) /
          static_cast<double>(report.num_events);
    }
  }
  return report;
}

std::string FormatRankHistogram(const FeatureRankReport& report, int feature,
                                int max_rows) {
  const auto& hist = report.histograms.at(static_cast<size_t>(feature));
  std::ostringstream out;
  out << FeatureRankReport::FeatureName(feature)
      << util::StringPrintf("  (top-10 share %.1f%%)\n",
                            100.0 * report.top10_fraction[static_cast<size_t>(
                                        feature)]);
  int64_t max_count = 1;
  for (size_t b = 0; b < hist.num_buckets(); ++b) {
    max_count = std::max(max_count, hist.count(b));
  }
  const int rows = std::min<int>(max_rows, static_cast<int>(hist.num_buckets()));
  for (int b = 0; b < rows; ++b) {
    const int64_t count = hist.count(static_cast<size_t>(b));
    // Log-scale bar like the paper's log-scale y axis.
    const int width =
        count == 0 ? 0
                   : 1 + static_cast<int>(40.0 * std::log1p(static_cast<double>(count)) /
                                          std::log1p(static_cast<double>(max_count)));
    out << util::StringPrintf("  rank %3d | %-40s %lld\n", b + 1,
                              std::string(static_cast<size_t>(width), '#').c_str(),
                              static_cast<long long>(count));
  }
  return out.str();
}

}  // namespace features
}  // namespace reconsume
