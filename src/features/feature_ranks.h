// Fig. 4: distribution of repeat consumptions by the rank of the reconsumed
// item inside its time window when the window is sorted by one feature.
// A steep (head-heavy) distribution means the feature is discriminative.

#pragma once

#include <array>
#include <string>

#include "data/split.h"
#include "features/feature_extractor.h"
#include "math/stats.h"
#include "util/status.h"

namespace reconsume {
namespace features {

/// Index order of the four features in FeatureRankReport.
enum FeatureIndex {
  kItemQuality = 0,       // IP
  kReconsumptionRatio = 1,  // IR
  kRecency = 2,           // RE
  kFamiliarity = 3,       // DF
};

/// \brief Rank histograms for all four features plus summary steepness.
struct FeatureRankReport {
  /// histogram[f].count(r) = number of eligible repeat events whose target
  /// item ranked r-th (0-based) in its window by feature f.
  std::array<math::CountHistogram, 4> histograms;
  /// Fraction of repeat events whose target ranked in the top 10 by feature f;
  /// the scalar "steepness" the experiment logs compare across datasets.
  std::array<double, 4> top10_fraction = {0, 0, 0, 0};
  int64_t num_events = 0;

  static const char* FeatureName(int f);
};

/// Scans the training segments of `split` with windows of `window_capacity`,
/// collecting ranks of eligible repeat targets (gap > min_gap) under each
/// feature. Ties rank by item id for determinism.
Result<FeatureRankReport> ComputeFeatureRanks(const data::TrainTestSplit& split,
                                              int window_capacity, int min_gap,
                                              int histogram_buckets = 100);

/// Renders one feature's histogram as a small text bar chart.
std::string FormatRankHistogram(const FeatureRankReport& report, int feature,
                                int max_rows = 20);

}  // namespace features
}  // namespace reconsume

