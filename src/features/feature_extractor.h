// The behavioral feature vector f_uvt of §4.4, with configurable recency
// kernel and per-feature masking (the Fig. 7 ablation removes one feature at
// a time).

#pragma once

#include <span>
#include <string>
#include <vector>

#include "features/static_features.h"
#include "window/window_walker.h"

namespace reconsume {
namespace features {

/// Interest-decay kernel for the recency feature (Eq. 19 vs Eq. 20, plus the
/// generalized interest-forgetting power law of ref. [14]).
enum class RecencyKernel {
  kHyperbolic,   ///< c_vt = 1 / (t - l_ut(v)); the paper's default per [14]
  kExponential,  ///< c_vt = e^{-(t - l_ut(v))}
  kPowerLaw,     ///< c_vt = 1 / (t - l_ut(v))^p with configurable exponent p
};

/// \brief Which of the four behavioral features are active.
struct FeatureConfig {
  bool use_item_quality = true;        ///< IP in Fig. 7
  bool use_reconsumption_ratio = true; ///< IR
  bool use_recency = true;             ///< RE
  bool use_familiarity = true;         ///< DF
  RecencyKernel recency_kernel = RecencyKernel::kHyperbolic;
  /// Exponent for kPowerLaw (p = 1 reproduces kHyperbolic).
  double power_law_exponent = 1.0;

  /// Active feature count F.
  int dimension() const {
    return (use_item_quality ? 1 : 0) + (use_reconsumption_ratio ? 1 : 0) +
           (use_recency ? 1 : 0) + (use_familiarity ? 1 : 0);
  }

  /// All four features on (the paper's default).
  static FeatureConfig AllFeatures() { return FeatureConfig{}; }
  /// Configs with exactly one feature removed, for the Fig. 7 ablation.
  static FeatureConfig WithoutItemQuality();
  static FeatureConfig WithoutReconsumptionRatio();
  static FeatureConfig WithoutRecency();
  static FeatureConfig WithoutFamiliarity();

  /// Short label like "All" or "-IR" for reports.
  std::string Label() const;
};

/// \brief Extracts f_uvt for candidate items against a window state.
///
/// The walker state must represent W_{u,t-1} (i.e. `walker.step()` events
/// consumed); all features are in [0, 1].
class FeatureExtractor {
 public:
  /// `table` must outlive the extractor.
  FeatureExtractor(const StaticFeatureTable* table, FeatureConfig config)
      : table_(table), config_(config) {
    RECONSUME_CHECK(table != nullptr);
    RECONSUME_CHECK(config.dimension() > 0) << "no active features";
  }

  int dimension() const { return config_.dimension(); }
  const FeatureConfig& config() const { return config_; }

  /// Writes f_uvt into `out` (size must equal dimension()). Total over all
  /// items: never-consumed items get zero recency and zero familiarity, so
  /// the same extraction serves both the RRC and the novel-item task (§4.3).
  void Extract(const window::WindowWalker& walker, data::ItemId v,
               std::span<double> out) const;

  /// Convenience allocating overload.
  std::vector<double> Extract(const window::WindowWalker& walker,
                              data::ItemId v) const {
    std::vector<double> out(static_cast<size_t>(dimension()));
    Extract(walker, v, out);
    return out;
  }

  /// \brief Same f_uvt from precomputed window state instead of walker
  /// lookups: `gap` is t - l_ut(v) (< 0 when the user never consumed v) and
  /// `count` is v's occurrence count in the current window.
  ///
  /// This is the batched-scoring fast path (core/scoring_view.h): the engine
  /// resolves gap/count for every in-window item in one pass over the window
  /// multiset, then fills feature tiles without per-candidate hash lookups.
  /// Bit-identical to Extract — both paths share the same feature formulas.
  void ExtractFromWindowState(data::ItemId v, int gap, int count,
                              int window_size, std::span<double> out) const;

  /// Individual feature values (used by Fig. 4 and by simple baselines).
  double ItemQuality(data::ItemId v) const { return table_->quality(v); }
  double ReconsumptionRatio(data::ItemId v) const {
    return table_->reconsumption_ratio(v);
  }
  double Recency(const window::WindowWalker& walker, data::ItemId v) const;
  double Familiarity(const window::WindowWalker& walker, data::ItemId v) const;

  /// The recency kernel applied to a known gap >= 1 (Eq. 19/20, ref. [14]).
  double RecencyFromGap(int gap) const;

 private:
  const StaticFeatureTable* table_;
  FeatureConfig config_;
};

}  // namespace features
}  // namespace reconsume

