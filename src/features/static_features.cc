#include "features/static_features.h"

#include <algorithm>
#include <cmath>

#include "window/window_walker.h"

namespace reconsume {
namespace features {

Result<StaticFeatureTable> StaticFeatureTable::Compute(
    const data::TrainTestSplit& split, int window_capacity) {
  if (window_capacity < 1) {
    return Status::InvalidArgument("window_capacity must be >= 1");
  }
  const data::Dataset& dataset = split.dataset();
  const size_t num_items = dataset.num_items();

  StaticFeatureTable table;
  table.frequency_.assign(num_items, 0);
  table.quality_.assign(num_items, 0.0);
  table.reconsumption_ratio_.assign(num_items, 0.0);

  std::vector<int64_t> repeat_count(num_items, 0);
  std::vector<int64_t> observation_count(num_items, 0);

  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.sequence(static_cast<data::UserId>(u));
    const size_t train_end = split.split_point(static_cast<data::UserId>(u));
    window::WindowWalker walker(&seq, window_capacity);
    while (static_cast<size_t>(walker.step()) < train_end) {
      const data::ItemId next = walker.NextItem();
      table.frequency_[static_cast<size_t>(next)] += 1;
      if (walker.step() > 0) {
        observation_count[static_cast<size_t>(next)] += 1;
        if (walker.Contains(next)) repeat_count[static_cast<size_t>(next)] += 1;
      }
      walker.Advance();
    }
  }

  // Quality: min-max normalized ln(1 + n_v) over items seen in training.
  double q_min = 1e300, q_max = -1e300;
  for (size_t v = 0; v < num_items; ++v) {
    if (table.frequency_[v] == 0) continue;
    const double q = std::log1p(static_cast<double>(table.frequency_[v]));
    table.quality_[v] = q;
    q_min = std::min(q_min, q);
    q_max = std::max(q_max, q);
  }
  const double q_range = q_max - q_min;
  for (size_t v = 0; v < num_items; ++v) {
    if (table.frequency_[v] == 0) {
      table.quality_[v] = 0.0;
    } else if (q_range > 0) {
      table.quality_[v] = (table.quality_[v] - q_min) / q_range;
    } else {
      table.quality_[v] = 1.0;  // all items equally frequent
    }
    if (observation_count[v] > 0) {
      table.reconsumption_ratio_[v] =
          static_cast<double>(repeat_count[v]) /
          static_cast<double>(observation_count[v]);
    }
  }
  return table;
}

}  // namespace features
}  // namespace reconsume
