// Atomic model hot-swap for the serving layer (docs/serving.md §8.4).
//
// A ModelRegistry holds the *current* model as an epoch-stamped, immutable
// snapshot behind a shared_ptr. Workers grab one snapshot per request and
// use only it — prototype, clonability, epoch — so a ranking is always the
// product of exactly one model epoch, even while a swap is in flight; the
// shared_ptr keeps a superseded model alive until its last in-flight
// request drops it.
//
// Promotion is gated: the candidate must pass a caller-supplied validation
// probe (smoke-scoring a probe set, see RecommendService::SwapModel) before
// it becomes current. A failed validation is a *rollback* — the old
// snapshot stays current, the candidate is discarded, and the failure is
// reported through Status and a `model_swap` event. The `serve/swap_validate`
// failpoint injects exactly this path for tests and chaos benches.
//
// Cache coherence: every promotion bumps the model epoch; the serving layer
// forwards that epoch into ScoreCache::AdvanceModelEpoch, which atomically
// invalidates every ranking computed under older models (score_cache.h).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "eval/recommender.h"
#include "util/status.h"
#include "util/sync.h"

namespace reconsume {
namespace serve {

/// \brief One immutable, epoch-stamped model generation.
struct ModelSnapshot {
  /// Monotonic model generation; bumps on every successful promotion.
  int64_t epoch = 0;
  /// Label for telemetry (file path, "initial", ...).
  std::string name;
  /// The prototype recommender workers clone per user session. Immutable
  /// for the snapshot's lifetime; kept alive by every in-flight request
  /// that grabbed this snapshot.
  std::shared_ptr<eval::Recommender> prototype;
  /// Probed once at promotion: Clone() != nullptr. When false, scoring
  /// through this snapshot serializes behind SessionMap::prototype_mu().
  bool clonable = false;
};

/// \brief Holds the current model snapshot; swaps are validated and atomic.
///
/// Thread-safe: Current() may be called from every worker on every request
/// (one mutex-protected shared_ptr copy); Promote serializes swaps.
class ModelRegistry {
 public:
  /// Registers the initial model at epoch 1. `initial` must not be null.
  ModelRegistry(std::shared_ptr<eval::Recommender> initial, std::string name);

  /// The current snapshot (never null). Grab once per request.
  std::shared_ptr<const ModelSnapshot> Current() const RC_EXCLUDES(mu_);
  int64_t current_epoch() const RC_EXCLUDES(mu_);

  /// Validation-gated atomic swap. Runs `validate` on the candidate (plus
  /// the `serve/swap_validate` failpoint); on success the candidate becomes
  /// current at a bumped epoch which is returned. On failure the previous
  /// snapshot stays current (rollback) and the validation error is
  /// returned. Concurrent Promotes serialize; Current() is never blocked
  /// behind a validation run.
  Result<int64_t> Promote(
      std::shared_ptr<eval::Recommender> candidate, std::string name,
      const std::function<Status(eval::Recommender&)>& validate)
      RC_EXCLUDES(swap_mu_, mu_);

  /// Lifetime successful promotions (the initial model counts as 0).
  int64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  /// Lifetime validation failures that rolled back.
  int64_t rollbacks() const {
    return rollbacks_.load(std::memory_order_relaxed);
  }

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

 private:
  /// Serializes promotions end to end (validation included) so two swaps
  /// cannot interleave their validate/publish pairs. Never held by readers.
  util::Mutex swap_mu_;
  /// Guards the current-snapshot pointer only; held for one shared_ptr copy.
  mutable util::Mutex mu_;
  std::shared_ptr<const ModelSnapshot> current_ RC_GUARDED_BY(mu_);
  int64_t next_epoch_ RC_GUARDED_BY(mu_) = 2;  // initial model is epoch 1
  std::atomic<int64_t> swaps_{0};
  std::atomic<int64_t> rollbacks_{0};
};

}  // namespace serve
}  // namespace reconsume
