// The serving core (docs/serving.md): ties the pipeline stages together.
//
//   callers ──► BoundedQueue<Request> ──► worker ThreadPool
//                                            │
//                              SessionMap (per-user state, sharded)
//                                            │
//                              ScoreCache (epoch-keyed memoization)
//
// Callers enqueue RecommendRequest / ObserveRequest messages and receive a
// std::future<ServeResponse>; a fixed pool of workers drains the queue.
//
// Resilience (docs/serving.md §8): every request carries an optional
// deadline, checked at enqueue, at dequeue, and again before scoring;
// admission control sheds droppable requests at a queue-depth watermark and
// bounds every enqueue wait (rc_analyze rule R6), so under overload requests
// resolve Unavailable instead of hanging; a per-shard circuit breaker around
// the scoring path sends requests down a degradation ladder
// (full scoring → stale cache → repeat-history fallback); and models
// hot-swap atomically through a validated, epoch-stamped ModelRegistry.
// Every request, on every path, resolves its future exactly once.
//
// Consistency model: per-user linearizability. One mutex per UserSession
// serializes all requests touching that user, so an Observe and the
// Recommends around it apply in a definite order, and a cached ranking is
// always consistent with the epoch it was computed at. Requests for
// *different* users are independent and run concurrently; there is no
// cross-user ordering guarantee. A ranking is additionally the product of
// exactly one model epoch: the worker grabs one ModelSnapshot per request
// and uses only it, even while a swap lands mid-request.

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/recommendation_session.h"
#include "data/dataset.h"
#include "data/types.h"
#include "eval/recommender.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace_context.h"
#include "serve/model_registry.h"
#include "serve/request_queue.h"
#include "serve/resilience.h"
#include "serve/score_cache.h"
#include "serve/session_map.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace reconsume {
namespace serve {

/// \brief Tunables for RecommendService.
struct ServeConfig {
  int num_threads = 4;        ///< worker threads draining the queue
  size_t queue_capacity = 1024;
  size_t cache_capacity = 4096;  ///< max users with a cached ranking
  int window_capacity = 100;     ///< session window size (paper's K)
  int min_gap = 10;              ///< reconsumption gap threshold (Omega)
  ResilienceConfig resilience;   ///< overload & degradation policy (§8)

  /// Request tracing (docs/observability.md, "Request tracing"): ordinary-
  /// request retention rate for the global tail sampler. >= 0 arms the
  /// sampler (degraded / shed / deadline / slow requests are always kept on
  /// top of this rate); < 0 leaves the sampler untouched, so when the trace
  /// recorder is on every trace exports unfiltered.
  double trace_sample = -1.0;

  /// Rolling SLOs surfaced by SloSnapshots() and the `serve stats` verb.
  double slo_objective = 0.999;  ///< good-fraction target for both SLOs
  /// An ok request counts "good" for the latency SLO iff it finished within
  /// this budget (enqueue → resolve).
  int64_t slo_latency_target_us = 50000;
  int slo_window_seconds = 300;        ///< long (budget) window
  int slo_short_window_seconds = 60;   ///< fast-burn detection window
  double slo_alert_burn_rate = 1.0;    ///< slo_burn alert threshold (<=0 off)
};

/// \brief Per-request options.
struct RequestOptions {
  /// Relative deadline; 0 = none. Expired requests resolve with
  /// DeadlineExceeded at the next checkpoint instead of being served.
  int64_t timeout_us = 0;
};

/// \brief Which ladder tier produced a recommend response.
enum class ServedBy {
  kNone = 0,       ///< not a ranking (observe, or an error)
  kFull,           ///< fresh model scoring
  kCache,          ///< exact (epoch, model-epoch) cache hit
  kStaleCache,     ///< degraded: older-epoch cache entry, same model
  kFallback,       ///< degraded: model-free repeat-history ranker
};
const char* ServedByName(ServedBy served_by);

/// \brief Outcome of one request, delivered through the future.
struct ServeResponse {
  Status status = Status::OK();
  /// Ranked recommendations (Recommend only; empty for Observe).
  std::vector<core::RankedItem> items;
  bool cache_hit = false;
  /// True when the response came from a degraded ladder tier.
  bool degraded = false;
  ServedBy served_by = ServedBy::kNone;
  /// The user's window-state epoch the response reflects (for a stale-cache
  /// serving this is the *entry's* epoch, older than the live session's).
  int64_t epoch = -1;
  /// The model generation that computed the ranking.
  int64_t model_epoch = -1;
  int64_t latency_ns = 0;  ///< enqueue → completion
};

/// \brief Resilience counters (racy-exact snapshots) for benches and stats.
struct ResilienceStats {
  int64_t shed_enqueue = 0;      ///< watermark / full-queue / failpoint sheds
  int64_t shed_queue_delay = 0;  ///< dequeue-side queue-delay sheds
  int64_t deadline_exceeded = 0;
  int64_t degraded_stale = 0;     ///< served from a stale cache entry
  int64_t degraded_fallback = 0;  ///< served by the repeat-history ranker
  int64_t breaker_trips = 0;
  int open_breaker_shards = 0;
  int64_t model_swaps = 0;
  int64_t model_rollbacks = 0;
};

/// \brief Multi-threaded TS-PPR serving core.
///
/// Thread-safe: Recommend/Observe/SwapModel may be called from any number of
/// threads. `dataset` must outlive the service; the service shares ownership
/// of every model it serves. The destructor shuts the queue down and joins
/// the workers; in-flight requests complete.
class RecommendService {
 public:
  RecommendService(const data::Dataset* dataset,
                   std::shared_ptr<eval::Recommender> model,
                   ServeConfig config);
  ~RecommendService();

  RecommendService(const RecommendService&) = delete;
  RecommendService& operator=(const RecommendService&) = delete;

  /// Enqueues a top-`top_n` query for `user`. The future always resolves:
  /// with a ranking (possibly degraded), Unavailable when shed,
  /// DeadlineExceeded when `options.timeout_us` elapsed first, or
  /// FailedPrecondition after Shutdown(). Never blocks longer than the
  /// enqueue budget (ResilienceConfig::enqueue_timeout_us).
  std::future<ServeResponse> Recommend(data::UserId user, int top_n,
                                       RequestOptions options = {});

  /// Enqueues one consumption event. Advances the user's epoch and
  /// invalidates their cached ranking. Observes are never watermark-shed
  /// (they mutate state), but a full queue still bounds the wait — on
  /// timeout the future resolves Unavailable and the event is NOT applied.
  std::future<ServeResponse> Observe(data::UserId user, data::ItemId item,
                                     RequestOptions options = {});

  /// Atomic model hot-swap: smoke-scores `candidate` against a probe set of
  /// real users (plus the `serve/swap_validate` failpoint), and on success
  /// publishes it at a new model epoch and invalidates the score cache.
  /// On validation failure the old model keeps serving (rollback) and the
  /// error is returned. In-flight requests finish on whichever snapshot
  /// they grabbed; each ranking reflects exactly one model epoch.
  Result<int64_t> SwapModel(std::shared_ptr<eval::Recommender> candidate,
                            std::string name);

  /// Stops intake, drains queued requests, joins the workers. Idempotent;
  /// also run by the destructor.
  void Shutdown();

  ScoreCacheStats cache_stats() const { return cache_.stats(); }
  ResilienceStats resilience_stats() const;
  size_t num_sessions() const { return sessions_.size(); }
  int64_t requests_served() const;
  int64_t model_epoch() const { return registry_.current_epoch(); }
  /// Snapshot of the enqueue→completion latency histogram (microseconds).
  obs::HistogramSnapshot LatencySnapshot() const;
  /// The service's SLOs (availability, latency), for dashboards — feed to
  /// obs::RenderSloDashboard for the `serve stats` text block.
  std::vector<obs::SloSnapshot> SloSnapshots() const;
  const ServeConfig& config() const { return config_; }

 private:
  struct Request {
    enum class Kind { kRecommend, kObserve };
    Kind kind = Kind::kRecommend;
    data::UserId user = data::kInvalidUser;
    data::ItemId item = data::kInvalidItem;
    int top_n = 0;
    int64_t enqueue_ns = 0;
    int64_t deadline_ns = 0;  ///< absolute monotonic; 0 = none
    /// Trace identity minted at submission and carried across the queue
    /// boundary; workers adopt it so the request's spans form one tree.
    obs::TraceContext trace;
    std::promise<ServeResponse> promise;
  };

  std::future<ServeResponse> Enqueue(Request request);
  void WorkerLoop();
  /// The single funnel every request resolves through: stamps latency,
  /// bumps counters, emits `request_done`, fulfils the promise.
  void Resolve(Request& request, ServeResponse response);
  ServeResponse Handle(Request& request);
  ServeResponse HandleRecommend(const Request& request);
  ServeResponse HandleObserve(const Request& request);
  /// Ladder tiers below full scoring. Requires `state->mu` held.
  ServeResponse Degrade(const Request& request, UserSession* state,
                        int64_t model_epoch, int64_t live_epoch,
                        const char* reason) RC_REQUIRES(state->mu);
  ServeResponse ShedResponse(const Request& request, const char* reason,
                             std::atomic<int64_t>* counter);
  ServeResponse DeadlineResponse(const Request& request, const char* where);
  Status ValidateCandidate(eval::Recommender& candidate) const;

  const ServeConfig config_;
  const data::Dataset* dataset_;
  ModelRegistry registry_;
  SessionMap sessions_;
  ScoreCache cache_;
  AdmissionController admission_;
  BreakerPanel breakers_;
  BoundedQueue<Request> queue_;
  obs::Counter* requests_counter_;      // serve.requests
  obs::Counter* shed_counter_;          // serve.shed
  obs::Counter* deadline_counter_;      // serve.deadline_exceeded
  obs::Counter* degraded_counter_;      // serve.degraded
  obs::Histogram* latency_histogram_;   // serve.request_latency_us
  std::unique_ptr<obs::SloMonitor> slo_availability_;
  std::unique_ptr<obs::SloMonitor> slo_latency_;
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> shed_enqueue_{0};
  std::atomic<int64_t> shed_queue_delay_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> degraded_stale_{0};
  std::atomic<int64_t> degraded_fallback_{0};
  std::atomic<bool> shut_down_{false};
  util::ThreadPool pool_;  ///< last member: workers touch everything above
};

}  // namespace serve
}  // namespace reconsume
