// The serving core (docs/serving.md): ties the pipeline stages together.
//
//   callers ──► BoundedQueue<Request> ──► worker ThreadPool
//                                            │
//                              SessionMap (per-user state, sharded)
//                                            │
//                              ScoreCache (epoch-keyed memoization)
//
// Callers enqueue RecommendRequest / ObserveRequest messages and receive a
// std::future<ServeResponse>; a fixed pool of workers drains the queue. The
// queue is bounded, so a producer that outruns the workers blocks (closed
// loop) — see BoundedQueue for the exact backpressure semantics.
//
// Consistency model: per-user linearizability. One mutex per UserSession
// serializes all requests touching that user, so an Observe and the
// Recommends around it apply in a definite order, and a cached ranking is
// always consistent with the epoch it was computed at. Requests for
// *different* users are independent and run concurrently; there is no
// cross-user ordering guarantee.

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/recommendation_session.h"
#include "data/dataset.h"
#include "data/types.h"
#include "eval/recommender.h"
#include "obs/metrics.h"
#include "serve/request_queue.h"
#include "serve/score_cache.h"
#include "serve/session_map.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace reconsume {
namespace serve {

/// \brief Tunables for RecommendService.
struct ServeConfig {
  int num_threads = 4;        ///< worker threads draining the queue
  size_t queue_capacity = 1024;
  size_t cache_capacity = 4096;  ///< max users with a cached ranking
  int window_capacity = 100;     ///< session window size (paper's K)
  int min_gap = 10;              ///< reconsumption gap threshold (Omega)
};

/// \brief Outcome of one request, delivered through the future.
struct ServeResponse {
  Status status = Status::OK();
  /// Ranked recommendations (Recommend only; empty for Observe).
  std::vector<core::RankedItem> items;
  bool cache_hit = false;
  /// The user's window-state epoch the response reflects.
  int64_t epoch = -1;
  int64_t latency_ns = 0;  ///< enqueue → completion
};

/// \brief Multi-threaded TS-PPR serving core.
///
/// Thread-safe: Recommend/Observe may be called from any number of threads.
/// `dataset` and `prototype` must outlive the service. The destructor shuts
/// the queue down and joins the workers; in-flight requests complete.
class RecommendService {
 public:
  RecommendService(const data::Dataset* dataset, eval::Recommender* prototype,
                   ServeConfig config);
  ~RecommendService();

  RecommendService(const RecommendService&) = delete;
  RecommendService& operator=(const RecommendService&) = delete;

  /// Enqueues a top-`top_n` query for `user`. The future resolves once a
  /// worker has served it (from cache or by scoring). Blocks while the
  /// queue is full; resolves with FailedPrecondition after Shutdown().
  std::future<ServeResponse> Recommend(data::UserId user, int top_n);

  /// Enqueues one consumption event. Advances the user's epoch and
  /// invalidates their cached ranking.
  std::future<ServeResponse> Observe(data::UserId user, data::ItemId item);

  /// Stops intake, drains queued requests, joins the workers. Idempotent;
  /// also run by the destructor.
  void Shutdown();

  ScoreCacheStats cache_stats() const { return cache_.stats(); }
  size_t num_sessions() const { return sessions_.size(); }
  int64_t requests_served() const;
  /// Snapshot of the enqueue→completion latency histogram (microseconds).
  obs::HistogramSnapshot LatencySnapshot() const;
  const ServeConfig& config() const { return config_; }

 private:
  struct Request {
    enum class Kind { kRecommend, kObserve };
    Kind kind = Kind::kRecommend;
    data::UserId user = data::kInvalidUser;
    data::ItemId item = data::kInvalidItem;
    int top_n = 0;
    int64_t enqueue_ns = 0;
    std::promise<ServeResponse> promise;
  };

  std::future<ServeResponse> Enqueue(Request request);
  void WorkerLoop();
  ServeResponse Handle(Request& request);
  ServeResponse HandleRecommend(const Request& request);
  ServeResponse HandleObserve(const Request& request);

  const ServeConfig config_;
  SessionMap sessions_;
  ScoreCache cache_;
  BoundedQueue<Request> queue_;
  obs::Counter* requests_counter_;      // serve.requests
  obs::Histogram* latency_histogram_;   // serve.request_latency_us
  std::atomic<int64_t> served_{0};
  std::atomic<bool> shut_down_{false};
  util::ThreadPool pool_;  ///< last member: workers touch everything above
};

}  // namespace serve
}  // namespace reconsume
