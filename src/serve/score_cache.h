// Stage 3 of the serving pipeline (docs/serving.md): a memoized top-N score
// cache, in the spirit of bcdb's MemoDB Evaluator — results are keyed by the
// *inputs that determine them* and recomputed only when those inputs change.
//
// For TS-PPR the inputs of a ranking are (user, window-state). The window
// state is summarized by the session's **epoch** — the number of events the
// user's stream has absorbed — because the trailing window W_{u,t} (and hence
// candidates, features, and scores) is a pure function of the history prefix.
// A cached ranking is valid exactly while the user's epoch is unchanged; one
// Observe() bumps the epoch and the stale entry simply never matches again
// (and is dropped eagerly by Invalidate so it cannot occupy capacity).
//
// Sharded by user id: each shard holds its own mutex, hash map, and LRU list,
// so concurrent lookups for different users rarely contend. One entry per
// user — an entry for an older epoch is overwritten, never kept alongside.
//
// An entry computed for top-`n_computed` can serve any request with
// n <= n_computed (deterministic tie-breaking makes the top list a total
// order, so a shorter top-N is a prefix of a longer one). It can also serve
// *any* n when it holds fewer than n_computed items — the candidate set was
// exhausted, so no larger request could see more.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/recommendation_session.h"
#include "data/types.h"
#include "util/sync.h"

namespace reconsume {
namespace serve {

/// \brief Counters describing cache effectiveness (racy-exact snapshots).
struct ScoreCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t invalidations = 0;  ///< entries dropped by Invalidate()
  int64_t evictions = 0;      ///< entries dropped by capacity pressure

  double HitRate() const {
    const int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Sharded LRU cache of per-user top-N rankings keyed by epoch.
class ScoreCache {
 public:
  /// `capacity` bounds the total number of cached users across all shards
  /// (split evenly; each shard keeps at least one slot). `num_shards` must
  /// be >= 1; more shards = less lock contention.
  explicit ScoreCache(size_t capacity, size_t num_shards = 16);

  /// Returns true and copies the cached ranking (truncated to `top_n`) when
  /// an entry for (user, epoch) exists and covers a top-`top_n` request.
  bool Lookup(data::UserId user, int64_t epoch, int top_n,
              std::vector<core::RankedItem>* out);

  /// Stores the ranking computed for top-`n_computed` at (user, epoch),
  /// replacing any previous entry for the user and evicting the
  /// least-recently-used user if the shard is at capacity.
  void Insert(data::UserId user, int64_t epoch, int n_computed,
              std::vector<core::RankedItem> items);

  /// Drops the user's entry (called on Observe: the epoch advanced, so the
  /// entry can never hit again).
  void Invalidate(data::UserId user);

  /// Drops everything (model hot-swap, tests).
  void Clear();

  ScoreCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    int64_t epoch = -1;
    int n_computed = 0;
    std::vector<core::RankedItem> items;
    std::list<data::UserId>::iterator lru_it;
  };

  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<data::UserId, Entry> entries RC_GUARDED_BY(mu);
    /// front = most recently used
    std::list<data::UserId> lru RC_GUARDED_BY(mu);
  };

  Shard* ShardFor(data::UserId user) {
    return &shards_[static_cast<size_t>(user) % shards_.size()];
  }

  const size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace serve
}  // namespace reconsume
