// Stage 3 of the serving pipeline (docs/serving.md): a memoized top-N score
// cache, in the spirit of bcdb's MemoDB Evaluator — results are keyed by the
// *inputs that determine them* and recomputed only when those inputs change.
//
// For TS-PPR the inputs of a ranking are (model, user, window-state):
//
//   * The window state is summarized by the session's **epoch** — the number
//     of events the user's stream has absorbed — because the trailing window
//     W_{u,t} (and hence candidates, features, and scores) is a pure
//     function of the history prefix. One Observe() bumps the epoch and the
//     stale entry simply never matches again (and is dropped eagerly by
//     Invalidate so it cannot occupy capacity).
//   * The model is summarized by the registry's **model epoch**
//     (model_registry.h). Every entry records the model epoch its scores
//     were computed under, and a hit requires it to match the model epoch
//     the caller is serving — so a hot-swap can never serve an old model's
//     ranking as fresh.
//
// Hot-swap coherence (the race this layer is audited against): a worker may
// be scoring under model epoch E while AdvanceModelEpoch(E+1) clears the
// cache; its Insert then arrives *after* the clear. Two defenses make the
// race benign: the insert is dropped when its model epoch is no longer
// current (hygiene), and even if a stale-model entry slipped in, Lookup
// matches entries by recorded model epoch, so it could never hit a request
// served at E+1 (correctness). tests/score_cache_test.cc pins both.
//
// Sharded by user id: each shard holds its own mutex, hash map, and LRU list,
// so concurrent lookups for different users rarely contend. One entry per
// user — an entry for an older epoch is overwritten, never kept alongside.
//
// An entry computed for top-`n_computed` can serve any request with
// n <= n_computed (deterministic tie-breaking makes the top list a total
// order, so a shorter top-N is a prefix of a longer one). It can also serve
// *any* n when it holds fewer than n_computed items — the candidate set was
// exhausted, so no larger request could see more.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/recommendation_session.h"
#include "data/types.h"
#include "util/sync.h"

namespace reconsume {
namespace serve {

/// \brief Counters describing cache effectiveness (racy-exact snapshots).
struct ScoreCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t stale_hits = 0;  ///< degraded LookupStale() servings
  int64_t insertions = 0;
  int64_t invalidations = 0;  ///< entries dropped by Invalidate()
  int64_t evictions = 0;      ///< entries dropped by capacity pressure
  int64_t rejected_inserts = 0;  ///< dropped: model epoch moved during scoring

  double HitRate() const {
    const int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Sharded LRU cache of per-user top-N rankings keyed by
/// (session epoch, model epoch).
class ScoreCache {
 public:
  /// `capacity` bounds the total number of cached users across all shards
  /// (split evenly; each shard keeps at least one slot). `num_shards` must
  /// be >= 1; more shards = less lock contention. The cache starts at model
  /// epoch 1, matching a fresh ModelRegistry.
  explicit ScoreCache(size_t capacity, size_t num_shards = 16);

  /// Returns true and copies the cached ranking (truncated to `top_n`) when
  /// an entry for (user, epoch) exists, was computed under `model_epoch`,
  /// and covers a top-`top_n` request.
  bool Lookup(data::UserId user, int64_t epoch, int64_t model_epoch,
              int top_n, std::vector<core::RankedItem>* out);

  /// Degraded-tier lookup (docs/serving.md §8.3): returns the user's entry
  /// regardless of its session epoch — a ranking for a slightly older
  /// window beats no ranking when the scoring path is unhealthy — but still
  /// requires the model epoch to match (a wrong-model ranking is never
  /// acceptable). The entry's own epoch is reported through `stale_epoch`
  /// so the response can carry what it actually reflects. The result may be
  /// shorter than `top_n`.
  bool LookupStale(data::UserId user, int64_t model_epoch, int top_n,
                   std::vector<core::RankedItem>* out, int64_t* stale_epoch);

  /// Stores the ranking computed for top-`n_computed` at (user, epoch)
  /// under `model_epoch`, replacing any previous entry for the user and
  /// evicting the least-recently-used user if the shard is at capacity.
  /// Silently dropped when `model_epoch` is no longer the cache's current
  /// model epoch (a hot-swap landed while the ranking was being computed).
  void Insert(data::UserId user, int64_t epoch, int64_t model_epoch,
              int n_computed, std::vector<core::RankedItem> items);

  /// Drops the user's entry (called on Observe: the epoch advanced, so the
  /// entry can never hit again).
  void Invalidate(data::UserId user);

  /// Hot-swap invalidation: records `model_epoch` as current, then drops
  /// every entry. Entries inserted concurrently under the old model epoch
  /// can never hit afterwards (see the header comment's race audit).
  void AdvanceModelEpoch(int64_t model_epoch);
  int64_t model_epoch() const {
    return model_epoch_.load(std::memory_order_acquire);
  }

  /// Drops everything (tests).
  void Clear();

  ScoreCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    int64_t epoch = -1;
    int64_t model_epoch = -1;
    int n_computed = 0;
    std::vector<core::RankedItem> items;
    std::list<data::UserId>::iterator lru_it;
  };

  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<data::UserId, Entry> entries RC_GUARDED_BY(mu);
    /// front = most recently used
    std::list<data::UserId> lru RC_GUARDED_BY(mu);
  };

  Shard* ShardFor(data::UserId user) {
    return &shards_[static_cast<size_t>(user) % shards_.size()];
  }

  const size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;

  /// The model epoch fresh inserts must carry (release on advance, acquire
  /// on read — the advance happens-before the clears it triggers).
  std::atomic<int64_t> model_epoch_{1};

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> stale_hits_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> rejected_inserts_{0};
};

}  // namespace serve
}  // namespace reconsume
