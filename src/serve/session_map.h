// Stage 2 of the serving pipeline (docs/serving.md): per-user session state
// behind a sharded map.
//
// Each user gets one UserSession: a private clone of the recommender (scoring
// uses mutable scratch, so workers must never share one) plus a
// core::RecommendationSession seeded from the user's historical sequence.
// A per-user mutex serializes requests for the same user — the session's
// window walker and the recommender scratch are single-threaded by design —
// while requests for different users proceed in parallel.
//
// Sessions are created lazily on first touch and live for the map's lifetime
// (pointers handed out stay valid), so memory grows with the number of
// *active* users, not the catalog.

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/recommendation_session.h"
#include "data/dataset.h"
#include "eval/recommender.h"
#include "util/sync.h"

namespace reconsume {
namespace serve {

/// \brief One user's serving state. Lock `mu` around any session access.
struct UserSession {
  util::Mutex mu;
  /// Private recommender clone (null when the prototype cannot clone; the
  /// map then points `session` at the shared prototype and the caller must
  /// hold SessionMap::prototype_mu() while scoring).
  std::unique_ptr<eval::Recommender> recommender RC_GUARDED_BY(mu);
  std::unique_ptr<core::RecommendationSession> session RC_GUARDED_BY(mu);

  /// Window-state epoch: number of events the session has absorbed. This is
  /// the cache key component that invalidates on Observe.
  int64_t epoch() const RC_REQUIRES(mu) { return session->num_events(); }
};

/// \brief Sharded lazy map UserId -> UserSession.
class SessionMap {
 public:
  /// `dataset` seeds each session with the user's full observed sequence;
  /// `prototype` is cloned per user (both must outlive the map).
  SessionMap(const data::Dataset* dataset, eval::Recommender* prototype,
             int window_capacity, int min_gap, size_t num_shards = 16);

  /// The user's session, created on first touch. Never null; the pointer is
  /// stable for the map's lifetime.
  UserSession* GetOrCreate(data::UserId user);

  /// Number of sessions instantiated so far.
  size_t size() const;

  /// Serializes scoring when the prototype is not clone-able (see
  /// UserSession::recommender). Uncontended in the normal cloning path.
  util::Mutex* prototype_mu() RC_RETURN_CAPABILITY(prototype_mu_) {
    return &prototype_mu_;
  }
  bool prototype_shared() const { return prototype_shared_; }

 private:
  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<data::UserId, std::unique_ptr<UserSession>> sessions
        RC_GUARDED_BY(mu);
  };

  const data::Dataset* dataset_;
  eval::Recommender* prototype_;
  const int window_capacity_;
  const int min_gap_;
  bool prototype_shared_ = false;  ///< written once by the constructor
  util::Mutex prototype_mu_;
  /// Sized once in the constructor, never resized; the shards themselves
  /// carry their own locks. rc:unguarded(fixed-after-construction)
  std::vector<Shard> shards_;
};

}  // namespace serve
}  // namespace reconsume
