// Stage 2 of the serving pipeline (docs/serving.md): per-user session state
// behind a sharded map.
//
// Each user gets one UserSession: a private clone of the current model's
// recommender (scoring uses mutable scratch, so workers must never share
// one) plus a core::RecommendationSession seeded from the user's historical
// sequence. A per-user mutex serializes requests for the same user — the
// session's window walker and the recommender scratch are single-threaded by
// design — while requests for different users proceed in parallel.
//
// Hot-swap awareness (docs/serving.md §8.4): sessions are bound to a
// ModelSnapshot, not a raw recommender. The worker grabs one snapshot per
// request and calls RefreshModel under the user lock; when the session's
// snapshot is older it re-clones from the new prototype in place, so the
// very next ranking is computed by the new model while window state and
// history carry over untouched.
//
// Sessions are created lazily on first touch and live for the map's lifetime
// (pointers handed out stay valid), so memory grows with the number of
// *active* users, not the catalog.

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/recommendation_session.h"
#include "data/dataset.h"
#include "eval/recommender.h"
#include "serve/model_registry.h"
#include "util/sync.h"

namespace reconsume {
namespace serve {

/// \brief One user's serving state. Lock `mu` around any session access.
struct UserSession {
  util::Mutex mu;
  /// The model generation this session currently scores with. The
  /// shared_ptr keeps the snapshot (and its prototype) alive even after a
  /// swap supersedes it.
  std::shared_ptr<const ModelSnapshot> model RC_GUARDED_BY(mu);
  /// Private recommender clone (null when the snapshot is not clonable; the
  /// session then points at the shared prototype and the caller must hold
  /// SessionMap::prototype_mu() while scoring).
  std::unique_ptr<eval::Recommender> recommender RC_GUARDED_BY(mu);
  std::unique_ptr<core::RecommendationSession> session RC_GUARDED_BY(mu);

  /// Window-state epoch: number of events the session has absorbed. This is
  /// the cache key component that invalidates on Observe.
  int64_t epoch() const RC_REQUIRES(mu) { return session->num_events(); }
  /// The model epoch the session's next ranking will be computed under.
  int64_t model_epoch() const RC_REQUIRES(mu) { return model->epoch; }

  /// Rebinds the session to `snapshot` if it is a different model epoch:
  /// re-clones the recommender from the new prototype and swaps it into the
  /// RecommendationSession. No-op when the epochs already match. Returns
  /// true when a rebind happened.
  bool RefreshModel(const std::shared_ptr<const ModelSnapshot>& snapshot)
      RC_REQUIRES(mu);
};

/// \brief Sharded lazy map UserId -> UserSession.
class SessionMap {
 public:
  /// `dataset` seeds each session with the user's full observed sequence
  /// and must outlive the map. Model prototypes arrive per call via
  /// snapshots (SessionMap holds no model of its own).
  SessionMap(const data::Dataset* dataset, int window_capacity, int min_gap,
             size_t num_shards = 16);

  /// The user's session, created on first touch and bound to `model`.
  /// Never null; the pointer is stable for the map's lifetime. An existing
  /// session is returned as-is — callers rebind via RefreshModel under the
  /// user lock, which they need to take anyway.
  UserSession* GetOrCreate(data::UserId user,
                           const std::shared_ptr<const ModelSnapshot>& model);

  /// Number of sessions instantiated so far.
  size_t size() const;

  /// Serializes scoring when the bound snapshot is not clone-able (see
  /// UserSession::recommender). Uncontended in the normal cloning path.
  util::Mutex* prototype_mu() RC_RETURN_CAPABILITY(prototype_mu_) {
    return &prototype_mu_;
  }

 private:
  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<data::UserId, std::unique_ptr<UserSession>> sessions
        RC_GUARDED_BY(mu);
  };

  const data::Dataset* dataset_;
  const int window_capacity_;
  const int min_gap_;
  util::Mutex prototype_mu_;
  /// Sized once in the constructor, never resized; the shards themselves
  /// carry their own locks. rc:unguarded(fixed-after-construction)
  std::vector<Shard> shards_;
};

}  // namespace serve
}  // namespace reconsume
