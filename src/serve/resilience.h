// Resilience layer for the serving stack (docs/serving.md §8): the pieces
// that keep the service answering under overload and partial failure instead
// of stalling or cascading.
//
//   * Request deadlines — absolute monotonic deadlines carried on each
//     request and checked at enqueue, dequeue, and pre-score, so expired
//     work resolves with DeadlineExceeded instead of burning a worker.
//   * Admission control — queue-depth watermark shedding at enqueue plus
//     queue-delay shedding at dequeue: under saturation the service trades
//     a bounded fraction of requests (resolved Unavailable, never hung) for
//     tail latency the survivors can live with.
//   * Circuit breaker — a per-user-shard breaker around the scoring path.
//     N consecutive failures trip it open; while open, requests skip full
//     scoring and take the degradation ladder (stale cache → repeat-history
//     fallback); after a cooldown one half-open probe decides whether to
//     close it again.
//
// The ladder itself lives in RecommendService::HandleRecommend — these
// classes are pure policy, deterministic and testable in isolation.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.h"
#include "util/sync.h"

namespace reconsume {
namespace serve {

/// \brief Overload and degradation tunables (embedded in ServeConfig).
struct ResilienceConfig {
  /// Producer-side bounded wait when the queue is full (rc_analyze rule R6:
  /// no unbounded Enqueue on the serve path). On timeout the request is
  /// shed, not blocked.
  int64_t enqueue_timeout_us = 20000;
  /// Queue-depth fraction above which *droppable* requests (recommends) are
  /// shed at enqueue. Observes are state mutations and always admitted.
  /// >= 1.0 disables watermark shedding.
  double shed_watermark = 0.9;
  /// Shed a recommend at dequeue when it already waited longer than this
  /// (its response would be stale and the queue behind it is drowning).
  /// 0 disables queue-delay shedding.
  int64_t max_queue_delay_us = 0;
  /// Consecutive scoring failures that trip a shard's breaker open.
  int breaker_trip_failures = 5;
  /// Open -> half-open cooldown before a probe request is let through.
  int64_t breaker_cooldown_ms = 250;
  /// Breaker shards (users hash onto them; failure domains are isolated).
  int breaker_shards = 16;
  /// Allow the cheap repeat-history fallback ranker as the last ladder
  /// tier. Off, the ladder ends at stale cache and then errors.
  bool enable_fallback = true;
};

/// Absolute monotonic deadline from a relative timeout; 0 = no deadline.
inline int64_t DeadlineFromTimeoutUs(int64_t timeout_us) {
  return timeout_us <= 0 ? 0 : obs::MonotonicNanos() + timeout_us * 1000;
}

/// True iff `deadline_ns` is a real deadline that has already passed.
inline bool DeadlineExpired(int64_t deadline_ns) {
  return deadline_ns > 0 && obs::MonotonicNanos() >= deadline_ns;
}

/// \brief Pure shed policy: watermark at enqueue, queue delay at dequeue.
class AdmissionController {
 public:
  AdmissionController(const ResilienceConfig& config, size_t queue_capacity);

  /// Shed a droppable request before enqueue? (depth at/over watermark)
  bool ShouldShedAtEnqueue(size_t queue_depth) const {
    return queue_depth >= watermark_depth_;
  }

  /// Shed a droppable request at dequeue? (it already waited too long)
  bool ShouldShedAtDequeue(int64_t queue_delay_ns) const {
    return max_queue_delay_ns_ > 0 && queue_delay_ns > max_queue_delay_ns_;
  }

  size_t watermark_depth() const { return watermark_depth_; }

 private:
  size_t watermark_depth_;
  int64_t max_queue_delay_ns_;
};

/// \brief Breaker states, named for telemetry.
enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
const char* BreakerStateName(BreakerState state);

/// \brief One shard's circuit breaker around the scoring path.
///
/// Closed: requests score normally; `trip_failures` *consecutive* failures
/// trip it open. Open: AllowRequest() refuses (callers degrade) until the
/// cooldown elapses, then the breaker goes half-open. Half-open: exactly one
/// in-flight probe is admitted; its success closes the breaker, its failure
/// re-opens it for another cooldown. Thread-safe.
class CircuitBreaker {
 public:
  CircuitBreaker(int trip_failures, int64_t cooldown_ns);

  /// True when the caller may attempt full scoring. In the half-open state
  /// only one caller at a time gets true (the probe).
  bool AllowRequest() RC_EXCLUDES(mu_);
  /// Reports the outcome of a scoring attempt that AllowRequest admitted.
  void RecordSuccess() RC_EXCLUDES(mu_);
  void RecordFailure() RC_EXCLUDES(mu_);

  BreakerState state() const RC_EXCLUDES(mu_);
  /// Lifetime closed->open transitions (including half-open re-opens).
  int64_t trips() const { return trips_.load(std::memory_order_relaxed); }

 private:
  const int trip_failures_;
  const int64_t cooldown_ns_;
  mutable util::Mutex mu_;
  BreakerState state_ RC_GUARDED_BY(mu_) = BreakerState::kClosed;
  int consecutive_failures_ RC_GUARDED_BY(mu_) = 0;
  int64_t opened_at_ns_ RC_GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ RC_GUARDED_BY(mu_) = false;
  std::atomic<int64_t> trips_{0};
};

/// \brief Per-shard breakers; users hash onto shards so one poisoned model
/// slice cannot open the breaker for the whole service.
class BreakerPanel {
 public:
  BreakerPanel(int num_shards, int trip_failures, int64_t cooldown_ns);

  CircuitBreaker* For(int64_t user) {
    return shards_[static_cast<size_t>(user) %
                   shards_.size()].get();
  }

  size_t num_shards() const { return shards_.size(); }
  int64_t total_trips() const;
  /// Number of shards currently not closed (degraded service area).
  int open_shards() const;

 private:
  std::vector<std::unique_ptr<CircuitBreaker>> shards_;
};

}  // namespace serve
}  // namespace reconsume
