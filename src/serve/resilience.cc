#include "serve/resilience.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace reconsume {
namespace serve {

AdmissionController::AdmissionController(const ResilienceConfig& config,
                                         size_t queue_capacity) {
  RC_CHECK(queue_capacity >= 1);
  if (config.shed_watermark >= 1.0) {
    // Disabled: the queue itself (TryEnqueueFor timeout) is the only brake.
    watermark_depth_ = queue_capacity + 1;
  } else {
    const double fraction = std::max(config.shed_watermark, 0.0);
    watermark_depth_ = std::max<size_t>(
        1, static_cast<size_t>(
               std::floor(fraction * static_cast<double>(queue_capacity))));
  }
  max_queue_delay_ns_ = config.max_queue_delay_us > 0
                            ? config.max_queue_delay_us * 1000
                            : 0;
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(int trip_failures, int64_t cooldown_ns)
    : trip_failures_(trip_failures), cooldown_ns_(cooldown_ns) {
  RC_CHECK(trip_failures >= 1) << "breaker must trip on >= 1 failure";
  RC_CHECK(cooldown_ns >= 0);
}

bool CircuitBreaker::AllowRequest() {
  util::MutexLock lock(&mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const int64_t now_ns = obs::MonotonicNanos();
      if (now_ns - opened_at_ns_ < cooldown_ns_) return false;
      // Cooldown elapsed: this caller becomes the half-open probe.
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    }
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;  // one probe at a time
      probe_in_flight_ = true;
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  util::MutexLock lock(&mu_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    probe_in_flight_ = false;
  }
}

void CircuitBreaker::RecordFailure() {
  util::MutexLock lock(&mu_);
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to open for another cooldown.
    state_ = BreakerState::kOpen;
    opened_at_ns_ = obs::MonotonicNanos();
    probe_in_flight_ = false;
    trips_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= trip_failures_) {
    state_ = BreakerState::kOpen;
    opened_at_ns_ = obs::MonotonicNanos();
    trips_.fetch_add(1, std::memory_order_relaxed);
  }
}

BreakerState CircuitBreaker::state() const {
  util::MutexLock lock(&mu_);
  return state_;
}

BreakerPanel::BreakerPanel(int num_shards, int trip_failures,
                           int64_t cooldown_ns) {
  const int shards = std::max(num_shards, 1);
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(
        std::make_unique<CircuitBreaker>(trip_failures, cooldown_ns));
  }
}

int64_t BreakerPanel::total_trips() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->trips();
  return total;
}

int BreakerPanel::open_shards() const {
  int open = 0;
  for (const auto& shard : shards_) {
    if (shard->state() != BreakerState::kClosed) ++open;
  }
  return open;
}

}  // namespace serve
}  // namespace reconsume
