#include "serve/model_registry.h"

#include <utility>

#include "obs/event.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace reconsume {
namespace serve {

namespace {

obs::Counter* SwapCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serve.model_swaps");
  return counter;
}

obs::Counter* RollbackCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serve.model_rollbacks");
  return counter;
}

std::shared_ptr<const ModelSnapshot> MakeSnapshot(
    int64_t epoch, std::string name,
    std::shared_ptr<eval::Recommender> prototype) {
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->epoch = epoch;
  snapshot->name = std::move(name);
  snapshot->clonable = (prototype->Clone() != nullptr);
  snapshot->prototype = std::move(prototype);
  return snapshot;
}

}  // namespace

ModelRegistry::ModelRegistry(std::shared_ptr<eval::Recommender> initial,
                             std::string name) {
  RC_CHECK(initial != nullptr) << "registry needs an initial model";
  util::MutexLock lock(&mu_);
  current_ = MakeSnapshot(1, std::move(name), std::move(initial));
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Current() const {
  util::MutexLock lock(&mu_);
  return current_;
}

int64_t ModelRegistry::current_epoch() const {
  util::MutexLock lock(&mu_);
  return current_->epoch;
}

Result<int64_t> ModelRegistry::Promote(
    std::shared_ptr<eval::Recommender> candidate, std::string name,
    const std::function<Status(eval::Recommender&)>& validate) {
  if (candidate == nullptr) {
    return Status::InvalidArgument("cannot promote a null model");
  }
  util::MutexLock swap_lock(&swap_mu_);
  RC_EMIT_EVENT(obs::Event("model_swap_start").Set("name", name));

  // Validation gate: the injected failpoint and the probe run while the old
  // snapshot is still current, so a crash or failure here is a no-op swap.
  Status validation = RC_FAILPOINT_STATUS("serve/swap_validate");
  if (validation.ok() && validate) validation = validate(*candidate);
  if (!validation.ok()) {
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    RollbackCounter()->Increment();
    RC_EMIT_EVENT(obs::Event("model_swap")
                      .Set("name", name)
                      .Set("ok", false)
                      .Set("error", validation.ToString()));
    return Status(StatusCode::kFailedPrecondition,
                  "model validation failed, swap rolled back: " +
                      validation.ToString());
  }

  int64_t epoch = 0;
  {
    util::MutexLock lock(&mu_);
    epoch = next_epoch_++;
    current_ = MakeSnapshot(epoch, name, std::move(candidate));
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  SwapCounter()->Increment();
  RC_EMIT_EVENT(obs::Event("model_swap")
                    .Set("name", name)
                    .Set("ok", true)
                    .Set("epoch", epoch));
  return epoch;
}

}  // namespace serve
}  // namespace reconsume
