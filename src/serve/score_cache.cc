#include "serve/score_cache.h"

#include <algorithm>

#include "obs/event.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace reconsume {
namespace serve {

namespace {

obs::Counter* HitCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.hits");
  return counter;
}

obs::Counter* MissCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.misses");
  return counter;
}

obs::Counter* StaleHitCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.stale_hits");
  return counter;
}

obs::Counter* EvictionCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.evictions");
  return counter;
}

}  // namespace

ScoreCache::ScoreCache(size_t capacity, size_t num_shards)
    : capacity_(capacity), shards_(std::max<size_t>(num_shards, 1)) {
  RC_CHECK(capacity >= 1) << "cache capacity must be >= 1";
  // Even split, at least one user per shard so a tiny capacity still caches.
  per_shard_capacity_ =
      std::max<size_t>(1, (capacity_ + shards_.size() - 1) / shards_.size());
}

bool ScoreCache::Lookup(data::UserId user, int64_t epoch, int64_t model_epoch,
                        int top_n, std::vector<core::RankedItem>* out) {
  Shard* shard = ShardFor(user);
  {
    util::MutexLock lock(&shard->mu);
    auto it = shard->entries.find(user);
    if (it != shard->entries.end() && it->second.epoch == epoch &&
        it->second.model_epoch == model_epoch) {
      Entry& entry = it->second;
      // The entry covers a top-`top_n` request when it was computed for at
      // least that many, or when it exhausted the candidate set.
      const bool exhausted =
          entry.items.size() < static_cast<size_t>(entry.n_computed);
      if (top_n <= entry.n_computed || exhausted) {
        const size_t take =
            std::min(entry.items.size(),
                     static_cast<size_t>(std::max(top_n, 0)));
        out->assign(entry.items.begin(),
                    entry.items.begin() + static_cast<ptrdiff_t>(take));
        shard->lru.splice(shard->lru.begin(), shard->lru, entry.lru_it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        HitCounter()->Increment();
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  MissCounter()->Increment();
  return false;
}

bool ScoreCache::LookupStale(data::UserId user, int64_t model_epoch,
                             int top_n, std::vector<core::RankedItem>* out,
                             int64_t* stale_epoch) {
  Shard* shard = ShardFor(user);
  {
    util::MutexLock lock(&shard->mu);
    auto it = shard->entries.find(user);
    if (it != shard->entries.end() &&
        it->second.model_epoch == model_epoch) {
      Entry& entry = it->second;
      const size_t take = std::min(
          entry.items.size(), static_cast<size_t>(std::max(top_n, 0)));
      out->assign(entry.items.begin(),
                  entry.items.begin() + static_cast<ptrdiff_t>(take));
      if (stale_epoch != nullptr) *stale_epoch = entry.epoch;
      shard->lru.splice(shard->lru.begin(), shard->lru, entry.lru_it);
      stale_hits_.fetch_add(1, std::memory_order_relaxed);
      StaleHitCounter()->Increment();
      return true;
    }
  }
  return false;
}

void ScoreCache::Insert(data::UserId user, int64_t epoch, int64_t model_epoch,
                        int n_computed, std::vector<core::RankedItem> items) {
  if (model_epoch != model_epoch_.load(std::memory_order_acquire)) {
    // A hot-swap landed between scoring and insert: the ranking belongs to
    // a superseded model. Matching-by-entry-epoch already makes it
    // unservable; dropping it keeps swap invalidation exact.
    rejected_inserts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard* shard = ShardFor(user);
  data::UserId evicted = data::kInvalidUser;
  int64_t evicted_epoch = -1;
  {
    util::MutexLock lock(&shard->mu);
    auto it = shard->entries.find(user);
    if (it != shard->entries.end()) {
      // Refresh in place (newer epoch or a wider n_computed).
      it->second.epoch = epoch;
      it->second.model_epoch = model_epoch;
      it->second.n_computed = n_computed;
      it->second.items = std::move(items);
      shard->lru.splice(shard->lru.begin(), shard->lru, it->second.lru_it);
    } else {
      if (shard->entries.size() >= per_shard_capacity_) {
        const data::UserId victim = shard->lru.back();
        shard->lru.pop_back();
        auto victim_it = shard->entries.find(victim);
        RC_CHECK(victim_it != shard->entries.end());
        evicted = victim;
        evicted_epoch = victim_it->second.epoch;
        shard->entries.erase(victim_it);
      }
      shard->lru.push_front(user);
      Entry entry;
      entry.epoch = epoch;
      entry.model_epoch = model_epoch;
      entry.n_computed = n_computed;
      entry.items = std::move(items);
      entry.lru_it = shard->lru.begin();
      shard->entries.emplace(user, std::move(entry));
    }
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (evicted != data::kInvalidUser) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    EvictionCounter()->Increment();
    RC_EMIT_EVENT(obs::Event("cache_evict")
                      .Set("user", static_cast<int64_t>(evicted))
                      .Set("epoch", evicted_epoch));
  }
}

void ScoreCache::Invalidate(data::UserId user) {
  Shard* shard = ShardFor(user);
  bool dropped = false;
  {
    util::MutexLock lock(&shard->mu);
    auto it = shard->entries.find(user);
    if (it != shard->entries.end()) {
      shard->lru.erase(it->second.lru_it);
      shard->entries.erase(it);
      dropped = true;
    }
  }
  if (dropped) invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void ScoreCache::AdvanceModelEpoch(int64_t model_epoch) {
  // Publish the new epoch FIRST so an Insert racing with this clear is
  // either rejected (it reads the new epoch) or leaves an entry whose
  // recorded model epoch can never match a post-swap Lookup. Clearing
  // before publishing would leave a window where old-model inserts land in
  // an already-"clean" cache and look current.
  model_epoch_.store(model_epoch, std::memory_order_release);
  for (Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    shard.entries.clear();
    shard.lru.clear();
  }
}

void ScoreCache::Clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    shard.entries.clear();
    shard.lru.clear();
  }
}

ScoreCacheStats ScoreCache::stats() const {
  ScoreCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.stale_hits = stale_hits_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.rejected_inserts = rejected_inserts_.load(std::memory_order_relaxed);
  return stats;
}

size_t ScoreCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace serve
}  // namespace reconsume
