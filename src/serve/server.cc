#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/event.h"
#include "obs/tail_sampler.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace reconsume {
namespace serve {

const char* ServedByName(ServedBy served_by) {
  switch (served_by) {
    case ServedBy::kNone:
      return "none";
    case ServedBy::kFull:
      return "full";
    case ServedBy::kCache:
      return "cache";
    case ServedBy::kStaleCache:
      return "stale_cache";
    case ServedBy::kFallback:
      return "fallback";
  }
  return "unknown";
}

RecommendService::RecommendService(const data::Dataset* dataset,
                                   std::shared_ptr<eval::Recommender> model,
                                   ServeConfig config)
    : config_(config),
      dataset_(dataset),
      registry_(std::move(model), "initial"),
      sessions_(dataset, config.window_capacity, config.min_gap),
      cache_(config.cache_capacity),
      admission_(config.resilience, config.queue_capacity),
      breakers_(config.resilience.breaker_shards,
                config.resilience.breaker_trip_failures,
                config.resilience.breaker_cooldown_ms * 1000000),
      queue_(config.queue_capacity),
      requests_counter_(
          obs::MetricsRegistry::Global().GetCounter("serve.requests")),
      shed_counter_(obs::MetricsRegistry::Global().GetCounter("serve.shed")),
      deadline_counter_(obs::MetricsRegistry::Global().GetCounter(
          "serve.deadline_exceeded")),
      degraded_counter_(
          obs::MetricsRegistry::Global().GetCounter("serve.degraded")),
      latency_histogram_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.request_latency_us", obs::ExponentialBuckets(1.0, 2.0, 24))),
      pool_(static_cast<size_t>(std::max(config.num_threads, 1))) {
  RC_CHECK(dataset_ != nullptr);
  if (config_.trace_sample >= 0) {
    obs::TailSamplerConfig sampler_config;
    sampler_config.sample_rate = config_.trace_sample;
    obs::TraceTailSampler::Global().Enable(sampler_config);
  }
  {
    obs::SloConfig slo;
    slo.objective = config_.slo_objective;
    slo.window_seconds = config_.slo_window_seconds;
    slo.short_window_seconds = config_.slo_short_window_seconds;
    slo.alert_burn_rate = config_.slo_alert_burn_rate;
    slo.name = "availability";
    slo_availability_ = std::make_unique<obs::SloMonitor>(slo);
    slo.name = "latency";
    slo_latency_ = std::make_unique<obs::SloMonitor>(slo);
  }
  RC_EMIT_EVENT(obs::Event("serve_start")
                    .Set("threads", config_.num_threads)
                    .Set("queue_capacity",
                         static_cast<int64_t>(config_.queue_capacity))
                    .Set("cache_capacity",
                         static_cast<int64_t>(config_.cache_capacity))
                    .Set("window", config_.window_capacity)
                    .Set("min_gap", config_.min_gap)
                    .Set("shed_watermark", config_.resilience.shed_watermark)
                    .Set("breaker_shards", config_.resilience.breaker_shards));
  for (size_t i = 0; i < pool_.num_threads(); ++i) {
    pool_.Submit([this] { WorkerLoop(); });
  }
}

RecommendService::~RecommendService() { Shutdown(); }

void RecommendService::Shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.Shutdown();
  pool_.Wait();
}

std::future<ServeResponse> RecommendService::Recommend(data::UserId user,
                                                       int top_n,
                                                       RequestOptions options) {
  Request request;
  request.kind = Request::Kind::kRecommend;
  request.user = user;
  request.top_n = top_n;
  request.deadline_ns = DeadlineFromTimeoutUs(options.timeout_us);
  return Enqueue(std::move(request));
}

std::future<ServeResponse> RecommendService::Observe(data::UserId user,
                                                     data::ItemId item,
                                                     RequestOptions options) {
  Request request;
  request.kind = Request::Kind::kObserve;
  request.user = user;
  request.item = item;
  request.deadline_ns = DeadlineFromTimeoutUs(options.timeout_us);
  return Enqueue(std::move(request));
}

ServeResponse RecommendService::ShedResponse(const Request& request,
                                             const char* reason,
                                             std::atomic<int64_t>* counter) {
  counter->fetch_add(1, std::memory_order_relaxed);
  shed_counter_->Increment();
  RC_EMIT_EVENT(obs::Event("request_shed")
                    .Set("user", static_cast<int64_t>(request.user))
                    .Set("reason", reason));
  ServeResponse response;
  response.status =
      Status::Unavailable(std::string("request shed: ") + reason);
  return response;
}

ServeResponse RecommendService::DeadlineResponse(const Request& request,
                                                 const char* where) {
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  deadline_counter_->Increment();
  RC_EMIT_EVENT(obs::Event("deadline_exceeded")
                    .Set("user", static_cast<int64_t>(request.user))
                    .Set("where", where));
  ServeResponse response;
  response.status = Status::DeadlineExceeded(
      std::string("deadline expired at ") + where);
  return response;
}

std::future<ServeResponse> RecommendService::Enqueue(Request request) {
  // Birth of the trace: one context per request, carried inside it across
  // the queue so the worker's spans hang off the same tree.
  if (obs::TraceRecorder::Global().enabled()) {
    request.trace = obs::MintTraceContext();
  }
  RC_TRACE_SPAN_IN(request.trace, "serve/enqueue");
  request.enqueue_ns = obs::MonotonicNanos();
  std::future<ServeResponse> future = request.promise.get_future();
  Status injected = RC_FAILPOINT_STATUS("serve/enqueue");
  if (!injected.ok()) {
    ServeResponse response;
    response.status = std::move(injected);
    Resolve(request, std::move(response));
    return future;
  }
  // Checkpoint 1 of 3: a deadline that expired before we even queued.
  if (DeadlineExpired(request.deadline_ns)) {
    Resolve(request, DeadlineResponse(request, "enqueue"));
    return future;
  }
  const bool droppable = request.kind == Request::Kind::kRecommend;
  if (droppable) {
    // Admission control: recommends are droppable (a retry recomputes the
    // same answer); observes are state mutations and skip the watermark.
    if (!RC_FAILPOINT_STATUS("serve/overload").ok()) {
      Resolve(request, ShedResponse(request, "failpoint", &shed_enqueue_));
      return future;
    }
    if (admission_.ShouldShedAtEnqueue(queue_.size())) {
      Resolve(request, ShedResponse(request, "watermark", &shed_enqueue_));
      return future;
    }
  }
  // Bounded enqueue (rc_analyze R6: no unbounded producer blocking): wait
  // at most the enqueue budget, clipped to whatever deadline remains.
  int64_t wait_ns = config_.resilience.enqueue_timeout_us * 1000;
  if (request.deadline_ns > 0) {
    wait_ns = std::min(wait_ns, request.deadline_ns - request.enqueue_ns);
  }
  if (!queue_.TryEnqueueFor(request, wait_ns)) {
    if (queue_.shut_down()) {
      ServeResponse response;
      response.status = Status::FailedPrecondition("service is shut down");
      Resolve(request, std::move(response));
    } else {
      Resolve(request, ShedResponse(request, "queue_full", &shed_enqueue_));
    }
  }
  return future;
}

void RecommendService::WorkerLoop() {
  Request request;
  while (queue_.Pop(&request)) {
    ServeResponse response;
    const int64_t dequeue_ns = obs::MonotonicNanos();
    if (request.trace.traced()) {
      // The queue wait has no scope of its own — it started on the producer
      // and ended here — so inject it as a pre-timed child of the request.
      obs::TraceRecorder::Global().RecordSpan(
          "serve/queue_wait", request.trace.trace_id, obs::NextSpanId(),
          request.trace.span_id, request.enqueue_ns,
          dequeue_ns - request.enqueue_ns);
    }
    {
      // Cross-thread stitch: adopt the context minted at submission.
      RC_TRACE_SPAN_IN(request.trace, "serve/handle");
      if (DeadlineExpired(request.deadline_ns)) {
        // Checkpoint 2 of 3: the request died in the queue — resolve it
        // instead of burning a worker on an answer nobody is waiting for.
        response = DeadlineResponse(request, "dequeue");
      } else if (request.kind == Request::Kind::kRecommend &&
                 admission_.ShouldShedAtDequeue(dequeue_ns -
                                                request.enqueue_ns)) {
        response = ShedResponse(request, "queue_delay", &shed_queue_delay_);
      } else {
        response = Handle(request);
      }
    }
    Resolve(request, std::move(response));
  }
}

void RecommendService::Resolve(Request& request, ServeResponse response) {
  response.latency_ns = obs::MonotonicNanos() - request.enqueue_ns;
  const double latency_us = static_cast<double>(response.latency_ns) / 1000.0;
  const bool ok = response.status.ok();

  // Tracing epilogue: close the request's root span (it opened at
  // submission, possibly on another thread) and let the tail sampler decide
  // — now that the outcome is known — whether this trace survives export.
  uint64_t exemplar_trace_id = 0;
  bool trace_retained = false;
  if (request.trace.traced()) {
    obs::TraceRecorder::Global().RecordSpan(
        "serve/request", request.trace.trace_id, request.trace.span_id,
        /*parent_span_id=*/0, request.enqueue_ns, response.latency_ns);
    obs::TraceTailSampler& sampler = obs::TraceTailSampler::Global();
    if (sampler.enabled()) {
      const bool always_keep = response.degraded || !ok;
      trace_retained = sampler.RecordOutcome(request.trace.trace_id,
                                             latency_us, always_keep) !=
                       obs::TailSampleVerdict::kDropped;
    } else {
      trace_retained = true;  // no sampler: every trace exports
    }
    // Exemplars must point at traces a reader can still open.
    if (trace_retained) exemplar_trace_id = request.trace.trace_id;
  }

  requests_counter_->Increment();
  latency_histogram_->Observe(latency_us, exemplar_trace_id);
  served_.fetch_add(1, std::memory_order_relaxed);
  if (response.degraded) degraded_counter_->Increment();
  slo_availability_->Record(ok);
  if (ok) {
    // Failures are the availability SLO's job; the latency SLO grades only
    // answered requests against the latency budget.
    slo_latency_->Record(latency_us <=
                         static_cast<double>(config_.slo_latency_target_us));
  }
  RC_EMIT_EVENT(
      obs::Event("request_done")
          .Set("kind", request.kind == Request::Kind::kRecommend
                           ? "recommend"
                           : "observe")
          .Set("user", static_cast<int64_t>(request.user))
          .Set("cache_hit", response.cache_hit)
          .Set("degraded", response.degraded)
          .Set("served_by", ServedByName(response.served_by))
          .Set("epoch", response.epoch)
          .Set("model_epoch", response.model_epoch)
          .Set("latency_us", latency_us)
          .Set("ok", ok)
          .Set("trace_id", static_cast<int64_t>(request.trace.trace_id))
          .Set("trace_retained", trace_retained));
  request.promise.set_value(std::move(response));
}

ServeResponse RecommendService::Handle(Request& request) {
  switch (request.kind) {
    case Request::Kind::kRecommend:
      return HandleRecommend(request);
    case Request::Kind::kObserve:
      return HandleObserve(request);
  }
  ServeResponse response;
  response.status = Status::Internal("unknown request kind");
  return response;
}

ServeResponse RecommendService::HandleRecommend(const Request& request) {
  ServeResponse response;
  if (request.top_n < 1) {
    response.status = Status::InvalidArgument("top_n must be >= 1");
    return response;
  }
  // ONE snapshot per request: everything below — session rebind, cache key,
  // scoring, response stamping — uses this model generation and no other,
  // so the ranking is atomic with respect to concurrent hot-swaps.
  std::shared_ptr<const ModelSnapshot> snapshot = registry_.Current();
  response.model_epoch = snapshot->epoch;
  UserSession* state = sessions_.GetOrCreate(request.user, snapshot);
  util::MutexLock lock(&state->mu);
  state->RefreshModel(snapshot);
  response.epoch = state->epoch();

  Status injected = RC_FAILPOINT_STATUS("serve/cache_lookup");
  if (!injected.ok()) {
    response.status = std::move(injected);
    return response;
  }
  bool cache_hit;
  {
    RC_TRACE_SPAN("serve/cache_lookup");
    cache_hit = cache_.Lookup(request.user, response.epoch, snapshot->epoch,
                              request.top_n, &response.items);
  }
  if (cache_hit) {
    response.cache_hit = true;
    response.served_by = ServedBy::kCache;
    return response;
  }

  // Checkpoint 3 of 3: scoring is the expensive part — last chance to bail.
  if (DeadlineExpired(request.deadline_ns)) {
    return DeadlineResponse(request, "pre_score");
  }

  CircuitBreaker* breaker = breakers_.For(static_cast<int64_t>(request.user));
  bool allow;
  {
    RC_TRACE_SPAN("serve/breaker");
    allow = breaker->AllowRequest();
  }
  if (!allow) {
    return Degrade(request, state, snapshot->epoch, response.epoch,
                   "breaker_open");
  }
  Status score_status = RC_FAILPOINT_STATUS("serve/score");
  if (!score_status.ok()) {
    breaker->RecordFailure();
    return Degrade(request, state, snapshot->epoch, response.epoch,
                   "score_error");
  }
  if (!snapshot->clonable) {
    // The snapshot's prototype cannot clone; scoring funnels through one
    // mutex shared by every session bound to a non-clonable model. The span
    // opens after the lock so it measures scoring, not the queue for it
    // (rc_analyze R5).
    util::MutexLock score_lock(sessions_.prototype_mu());
    RC_TRACE_SPAN("serve/score");
    response.items = state->session->RecommendTopN(request.top_n);
  } else {
    RC_TRACE_SPAN("serve/score");
    response.items = state->session->RecommendTopN(request.top_n);
  }
  breaker->RecordSuccess();
  response.served_by = ServedBy::kFull;
  cache_.Insert(request.user, response.epoch, snapshot->epoch, request.top_n,
                response.items);
  return response;
}

ServeResponse RecommendService::Degrade(const Request& request,
                                        UserSession* state,
                                        int64_t model_epoch,
                                        int64_t live_epoch,
                                        const char* reason) {
  RC_TRACE_SPAN("serve/degrade");
  ServeResponse response;
  response.model_epoch = model_epoch;
  response.degraded = true;
  // Tier 2: a stale cache entry — an older window's ranking from the SAME
  // model beats recomputing through a tripped scoring path.
  int64_t stale_epoch = -1;
  if (cache_.LookupStale(request.user, model_epoch, request.top_n,
                         &response.items, &stale_epoch)) {
    response.epoch = stale_epoch;
    response.served_by = ServedBy::kStaleCache;
    degraded_stale_.fetch_add(1, std::memory_order_relaxed);
    RC_EMIT_EVENT(obs::Event("degraded")
                      .Set("reason", reason)
                      .Set("tier", "stale_cache")
                      .Set("user", static_cast<int64_t>(request.user)));
    return response;
  }
  // Tier 3: the model-free repeat-history ranker — always computable, never
  // touches the recommender, so it cannot re-trip the breaker.
  if (config_.resilience.enable_fallback) {
    response.items = state->session->RecommendFallbackTopN(request.top_n);
    response.epoch = live_epoch;
    response.served_by = ServedBy::kFallback;
    degraded_fallback_.fetch_add(1, std::memory_order_relaxed);
    RC_EMIT_EVENT(obs::Event("degraded")
                      .Set("reason", reason)
                      .Set("tier", "fallback")
                      .Set("user", static_cast<int64_t>(request.user)));
    return response;
  }
  response.degraded = false;
  response.served_by = ServedBy::kNone;
  response.epoch = live_epoch;
  response.status = Status::Unavailable(
      std::string("scoring unavailable (") + reason +
      ") and no degraded tier is enabled");
  return response;
}

ServeResponse RecommendService::HandleObserve(const Request& request) {
  ServeResponse response;
  if (request.item == data::kInvalidItem) {
    response.status = Status::InvalidArgument("observe requires an item");
    return response;
  }
  std::shared_ptr<const ModelSnapshot> snapshot = registry_.Current();
  response.model_epoch = snapshot->epoch;
  UserSession* state = sessions_.GetOrCreate(request.user, snapshot);
  util::MutexLock lock(&state->mu);
  state->RefreshModel(snapshot);
  {
    RC_TRACE_SPAN("serve/observe_apply");
    state->session->Observe(request.item);
    cache_.Invalidate(request.user);
  }
  response.epoch = state->epoch();
  return response;
}

Status RecommendService::ValidateCandidate(eval::Recommender& candidate) const {
  // Smoke-score a probe set of real users: a candidate must prove it can
  // rank before it may serve. Runs under the registry's swap mutex with the
  // old model still current, so a failure here is a clean rollback.
  const size_t num_users = dataset_->num_users();
  int probed = 0;
  for (size_t u = 0; u < num_users && probed < 4; ++u) {
    const data::UserId user = static_cast<data::UserId>(u);
    if (dataset_->sequence(user).size() < 2) continue;
    core::RecommendationSession probe(&candidate, user,
                                      dataset_->sequence(user),
                                      config_.window_capacity,
                                      config_.min_gap);
    for (const core::RankedItem& item : probe.RecommendTopN(10)) {
      if (!std::isfinite(item.score)) {
        return Status::InvalidArgument(
            "candidate produced a non-finite score for user " +
            std::to_string(u));
      }
    }
    ++probed;
  }
  if (probed == 0) {
    return Status::FailedPrecondition(
        "no probe users available to validate the candidate");
  }
  return Status::OK();
}

Result<int64_t> RecommendService::SwapModel(
    std::shared_ptr<eval::Recommender> candidate, std::string name) {
  Result<int64_t> result = registry_.Promote(
      std::move(candidate), std::move(name),
      [this](eval::Recommender& model) { return ValidateCandidate(model); });
  if (result.ok()) {
    // Publish the new epoch into the cache, which invalidates every ranking
    // computed under older models (see score_cache.h's race audit).
    cache_.AdvanceModelEpoch(result.ValueOrDie());
  }
  return result;
}

ResilienceStats RecommendService::resilience_stats() const {
  ResilienceStats stats;
  stats.shed_enqueue = shed_enqueue_.load(std::memory_order_relaxed);
  stats.shed_queue_delay = shed_queue_delay_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.degraded_stale = degraded_stale_.load(std::memory_order_relaxed);
  stats.degraded_fallback =
      degraded_fallback_.load(std::memory_order_relaxed);
  stats.breaker_trips = breakers_.total_trips();
  stats.open_breaker_shards = breakers_.open_shards();
  stats.model_swaps = registry_.swaps();
  stats.model_rollbacks = registry_.rollbacks();
  return stats;
}

int64_t RecommendService::requests_served() const {
  return served_.load(std::memory_order_relaxed);
}

obs::HistogramSnapshot RecommendService::LatencySnapshot() const {
  return latency_histogram_->Snapshot();
}

std::vector<obs::SloSnapshot> RecommendService::SloSnapshots() const {
  return {slo_availability_->snapshot(), slo_latency_->snapshot()};
}

}  // namespace serve
}  // namespace reconsume
