#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "obs/event.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace reconsume {
namespace serve {

RecommendService::RecommendService(const data::Dataset* dataset,
                                   eval::Recommender* prototype,
                                   ServeConfig config)
    : config_(config),
      sessions_(dataset, prototype, config.window_capacity, config.min_gap),
      cache_(config.cache_capacity),
      queue_(config.queue_capacity),
      requests_counter_(
          obs::MetricsRegistry::Global().GetCounter("serve.requests")),
      latency_histogram_(obs::MetricsRegistry::Global().GetHistogram(
          "serve.request_latency_us", obs::ExponentialBuckets(1.0, 2.0, 24))),
      pool_(static_cast<size_t>(std::max(config.num_threads, 1))) {
  RC_EMIT_EVENT(obs::Event("serve_start")
                    .Set("threads", config_.num_threads)
                    .Set("queue_capacity",
                         static_cast<int64_t>(config_.queue_capacity))
                    .Set("cache_capacity",
                         static_cast<int64_t>(config_.cache_capacity))
                    .Set("window", config_.window_capacity)
                    .Set("min_gap", config_.min_gap));
  for (size_t i = 0; i < pool_.num_threads(); ++i) {
    pool_.Submit([this] { WorkerLoop(); });
  }
}

RecommendService::~RecommendService() { Shutdown(); }

void RecommendService::Shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.Shutdown();
  pool_.Wait();
}

std::future<ServeResponse> RecommendService::Recommend(data::UserId user,
                                                       int top_n) {
  Request request;
  request.kind = Request::Kind::kRecommend;
  request.user = user;
  request.top_n = top_n;
  return Enqueue(std::move(request));
}

std::future<ServeResponse> RecommendService::Observe(data::UserId user,
                                                     data::ItemId item) {
  Request request;
  request.kind = Request::Kind::kObserve;
  request.user = user;
  request.item = item;
  return Enqueue(std::move(request));
}

std::future<ServeResponse> RecommendService::Enqueue(Request request) {
  request.enqueue_ns = obs::MonotonicNanos();
  std::future<ServeResponse> future = request.promise.get_future();
  Status injected = RC_FAILPOINT_STATUS("serve/enqueue");
  if (!injected.ok()) {
    ServeResponse response;
    response.status = std::move(injected);
    request.promise.set_value(std::move(response));
    return future;
  }
  if (!queue_.Push(request)) {
    // Only fails after Shutdown(); a failed Push leaves the request (and its
    // promise) with us, so the caller still gets a resolved future.
    ServeResponse response;
    response.status = Status::FailedPrecondition("service is shut down");
    request.promise.set_value(std::move(response));
  }
  return future;
}

void RecommendService::WorkerLoop() {
  Request request;
  while (queue_.Pop(&request)) {
    ServeResponse response = Handle(request);
    const int64_t now_ns = obs::MonotonicNanos();
    response.latency_ns = now_ns - request.enqueue_ns;
    requests_counter_->Increment();
    latency_histogram_->Observe(static_cast<double>(response.latency_ns) /
                                1000.0);
    served_.fetch_add(1, std::memory_order_relaxed);
    RC_EMIT_EVENT(
        obs::Event("request_done")
            .Set("kind", request.kind == Request::Kind::kRecommend
                             ? "recommend"
                             : "observe")
            .Set("user", static_cast<int64_t>(request.user))
            .Set("cache_hit", response.cache_hit)
            .Set("epoch", response.epoch)
            .Set("latency_us",
                 static_cast<double>(response.latency_ns) / 1000.0)
            .Set("ok", response.status.ok()));
    request.promise.set_value(std::move(response));
  }
}

ServeResponse RecommendService::Handle(Request& request) {
  switch (request.kind) {
    case Request::Kind::kRecommend:
      return HandleRecommend(request);
    case Request::Kind::kObserve:
      return HandleObserve(request);
  }
  ServeResponse response;
  response.status = Status::Internal("unknown request kind");
  return response;
}

ServeResponse RecommendService::HandleRecommend(const Request& request) {
  ServeResponse response;
  if (request.top_n < 1) {
    response.status = Status::InvalidArgument("top_n must be >= 1");
    return response;
  }
  UserSession* state = sessions_.GetOrCreate(request.user);
  util::MutexLock lock(&state->mu);
  response.epoch = state->epoch();

  Status injected = RC_FAILPOINT_STATUS("serve/cache_lookup");
  if (!injected.ok()) {
    response.status = std::move(injected);
    return response;
  }
  if (cache_.Lookup(request.user, response.epoch, request.top_n,
                    &response.items)) {
    response.cache_hit = true;
    return response;
  }

  injected = RC_FAILPOINT_STATUS("serve/score");
  if (!injected.ok()) {
    response.status = std::move(injected);
    return response;
  }
  if (sessions_.prototype_shared()) {
    // The prototype cannot clone; all scoring funnels through one mutex.
    util::MutexLock score_lock(sessions_.prototype_mu());
    response.items = state->session->RecommendTopN(request.top_n);
  } else {
    response.items = state->session->RecommendTopN(request.top_n);
  }
  cache_.Insert(request.user, response.epoch, request.top_n, response.items);
  return response;
}

ServeResponse RecommendService::HandleObserve(const Request& request) {
  ServeResponse response;
  if (request.item == data::kInvalidItem) {
    response.status = Status::InvalidArgument("observe requires an item");
    return response;
  }
  UserSession* state = sessions_.GetOrCreate(request.user);
  util::MutexLock lock(&state->mu);
  state->session->Observe(request.item);
  cache_.Invalidate(request.user);
  response.epoch = state->epoch();
  return response;
}

int64_t RecommendService::requests_served() const {
  return served_.load(std::memory_order_relaxed);
}

obs::HistogramSnapshot RecommendService::LatencySnapshot() const {
  return latency_histogram_->Snapshot();
}

}  // namespace serve
}  // namespace reconsume
