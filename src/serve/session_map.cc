#include "serve/session_map.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace reconsume {
namespace serve {

bool UserSession::RefreshModel(
    const std::shared_ptr<const ModelSnapshot>& snapshot) {
  if (model != nullptr && model->epoch == snapshot->epoch) return false;
  model = snapshot;
  recommender = snapshot->prototype->Clone();
  eval::Recommender* scorer =
      recommender ? recommender.get() : snapshot->prototype.get();
  session->set_recommender(scorer);
  return true;
}

SessionMap::SessionMap(const data::Dataset* dataset, int window_capacity,
                       int min_gap, size_t num_shards)
    : dataset_(dataset),
      window_capacity_(window_capacity),
      min_gap_(min_gap),
      shards_(std::max<size_t>(num_shards, 1)) {
  RC_CHECK(dataset_ != nullptr);
  RC_CHECK(window_capacity_ >= 2) << "window capacity must be >= 2";
  RC_CHECK(min_gap_ >= 0 && min_gap_ < window_capacity_)
      << "min gap must be in [0, window)";
}

UserSession* SessionMap::GetOrCreate(
    data::UserId user, const std::shared_ptr<const ModelSnapshot>& model) {
  RC_CHECK_INDEX(user, dataset_->num_users());
  RC_CHECK(model != nullptr);
  Shard& shard = shards_[static_cast<size_t>(user) % shards_.size()];
  util::MutexLock lock(&shard.mu);
  auto it = shard.sessions.find(user);
  if (it != shard.sessions.end()) return it->second.get();

  auto state = std::make_unique<UserSession>();
  {
    // The fresh session is still private to this thread, but its fields are
    // guarded state: initialize under its own (uncontended) mutex so the
    // happens-before edge to future lockers is explicit, not argued. Lock
    // order shard.mu -> UserSession::mu matches the request path.
    util::MutexLock init_lock(&state->mu);
    state->model = model;
    state->recommender = model->prototype->Clone();
    eval::Recommender* scorer =
        state->recommender ? state->recommender.get() : model->prototype.get();
    state->session = std::make_unique<core::RecommendationSession>(
        scorer, user, dataset_->sequence(user), window_capacity_, min_gap_);
  }
  UserSession* raw = state.get();
  shard.sessions.emplace(user, std::move(state));
  return raw;
}

size_t SessionMap::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    total += shard.sessions.size();
  }
  return total;
}

}  // namespace serve
}  // namespace reconsume
