// Stage 1 of the serving pipeline (docs/serving.md): a bounded MPMC queue
// between request producers (API callers, the CLI stdin loop, load-generator
// clients) and the worker pool that drains it.
//
// Semantics, chosen for a closed-loop service:
//   * Push blocks while the queue is full — producers feel backpressure
//     instead of growing an unbounded backlog (the ywci/inn stage shape:
//     small single-purpose stages coupled by bounded buffers).
//   * TryPush never blocks — open-loop callers can shed load themselves.
//   * Pop blocks while the queue is empty. After Shutdown() the remaining
//     items drain in FIFO order, then Pop returns false — a worker loop is
//     simply `while (queue.Pop(&req)) { ... }`.
//   * Push/TryPush after Shutdown() return false without enqueuing.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/check.h"

namespace reconsume {
namespace serve {

/// \brief Bounded multi-producer/multi-consumer FIFO with shutdown draining.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    RC_CHECK(capacity >= 1) << "queue capacity must be >= 1";
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue shuts down.
  /// Returns false — leaving `item` untouched so the caller can still
  /// fulfil any promise it carries — iff the queue was shut down.
  bool Push(T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return items_.size() < capacity_ || shutdown_; });
    if (shutdown_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Rvalue convenience; the item is lost when the push fails.
  bool Push(T&& item) {
    T local = std::move(item);
    return Push(local);
  }

  /// Non-blocking Push. Returns false (leaving `item` untouched) when the
  /// queue is full or shut down.
  bool TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is shut down *and* drained.
  /// Returns false iff shutdown has been requested and nothing remains.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || shutdown_; });
    if (items_.empty()) return false;  // shutdown and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Stops accepting new items and wakes every blocked producer/consumer.
  /// Items already queued still drain through Pop. Idempotent.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool shut_down() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace reconsume
