// Stage 1 of the serving pipeline (docs/serving.md): a bounded MPMC queue
// between request producers (API callers, the CLI stdin loop, load-generator
// clients) and the worker pool that drains it.
//
// Semantics, chosen for a closed-loop service:
//   * Push blocks while the queue is full — producers feel backpressure
//     instead of growing an unbounded backlog (the ywci/inn stage shape:
//     small single-purpose stages coupled by bounded buffers).
//   * TryPush never blocks — open-loop callers can shed load themselves.
//   * TryEnqueueFor blocks for at most the given timeout — the sanctioned
//     form on the serving request path (rc_analyze rule R6 bans unbounded
//     Push there): a producer that cannot enqueue within its budget gets
//     `false` back and sheds the request instead of stalling forever.
//   * Pop blocks while the queue is empty. After Shutdown() the remaining
//     items drain in FIFO order, then Pop returns false — a worker loop is
//     simply `while (queue.Pop(&req)) { ... }`.
//   * Push/TryPush/TryEnqueueFor after Shutdown() return false without
//     enqueuing.
//
// Producer-starvation contract: Shutdown() wakes every producer blocked in
// Push or TryEnqueueFor *promptly* (one NotifyAll under the lock — no
// producer stays parked past the notify), and a timed-out TryEnqueueFor
// always returns within its timeout plus scheduling noise. On every `false`
// return the item is left untouched, so a caller can still resolve any
// promise the item carries.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"
#include "util/sync.h"

namespace reconsume {
namespace serve {

/// \brief Bounded multi-producer/multi-consumer FIFO with shutdown draining.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    RC_CHECK(capacity >= 1) << "queue capacity must be >= 1";
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue shuts down.
  /// Returns false — leaving `item` untouched so the caller can still
  /// fulfil any promise it carries — iff the queue was shut down.
  bool Push(T& item) RC_EXCLUDES(mu_) {
    {
      util::MutexLock lock(&mu_);
      while (items_.size() >= capacity_ && !shutdown_) not_full_.Wait(&mu_);
      if (shutdown_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Rvalue convenience; the item is lost when the push fails.
  bool Push(T&& item) {
    T local = std::move(item);
    return Push(local);
  }

  /// Bounded-wait Push: blocks for at most `timeout_ns` while the queue is
  /// full. Returns false (leaving `item` untouched) when no slot opened
  /// within the timeout or the queue shut down. A non-positive timeout is
  /// an immediate TryPush.
  bool TryEnqueueFor(T& item, int64_t timeout_ns) RC_EXCLUDES(mu_) {
    const int64_t deadline_ns =
        obs::MonotonicNanos() + std::max<int64_t>(timeout_ns, 0);
    {
      util::MutexLock lock(&mu_);
      while (items_.size() >= capacity_ && !shutdown_) {
        const int64_t remaining_ns = deadline_ns - obs::MonotonicNanos();
        if (remaining_ns <= 0) return false;  // timed out, item untouched
        not_full_.WaitFor(&mu_, remaining_ns);
      }
      if (shutdown_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking Push. Returns false (leaving `item` untouched) when the
  /// queue is full or shut down.
  bool TryPush(T& item) RC_EXCLUDES(mu_) {
    {
      util::MutexLock lock(&mu_);
      if (shutdown_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item arrives or the queue is shut down *and* drained.
  /// Returns false iff shutdown has been requested and nothing remains.
  bool Pop(T* out) RC_EXCLUDES(mu_) {
    {
      util::MutexLock lock(&mu_);
      while (items_.empty() && !shutdown_) not_empty_.Wait(&mu_);
      if (items_.empty()) return false;  // shutdown and drained
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return true;
  }

  /// Stops accepting new items and wakes every blocked producer/consumer.
  /// Items already queued still drain through Pop. Idempotent.
  void Shutdown() RC_EXCLUDES(mu_) {
    {
      util::MutexLock lock(&mu_);
      shutdown_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool shut_down() const RC_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return shutdown_;
  }

  size_t size() const RC_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable util::Mutex mu_;
  util::CondVar not_full_;
  util::CondVar not_empty_;
  std::deque<T> items_ RC_GUARDED_BY(mu_);
  bool shutdown_ RC_GUARDED_BY(mu_) = false;
};

}  // namespace serve
}  // namespace reconsume
