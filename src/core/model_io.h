// Binary (de)serialization of trained TS-PPR models.
//
// Format (little-endian, versioned):
//   magic "RCSM" | u32 version | u64 num_users | u64 num_items |
//   u32 latent_dim | u32 feature_dim | config doubles |
//   U row-major | V row-major | A_u blocks row-major per user
// A trailing FNV-1a checksum over the payload detects truncation/corruption.

#pragma once

#include <string>

#include "core/ts_ppr_model.h"
#include "util/status.h"

namespace reconsume {
namespace core {

/// Serializes `model` to `path`, replacing any existing file.
Status SaveModel(const TsPprModel& model, const std::string& path);

/// Loads a model written by SaveModel. Fails with InvalidArgument on
/// malformed input and IoError on unreadable files.
Result<TsPprModel> LoadModel(const std::string& path);

/// In-memory round-trip used by both functions (exposed for tests and for
/// embedding the payload elsewhere).
std::string SerializeModel(const TsPprModel& model);
Result<TsPprModel> DeserializeModel(std::string_view bytes);

}  // namespace core
}  // namespace reconsume

