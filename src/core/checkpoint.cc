#include "core/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "core/model_io.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace reconsume {
namespace core {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'C', 'K'};
constexpr uint32_t kVersion = 1;
// magic + version + total_size.
constexpr size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t);

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}
template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

void AppendRngState(std::string* out, const util::RngState& st) {
  for (uint64_t word : st.s) AppendValue<uint64_t>(out, word);
  AppendValue<double>(out, st.cached);
  AppendValue<uint8_t>(out, st.has_cached ? 1 : 0);
}

/// Bounds-checked sequential reader; errors carry the byte offset within the
/// checkpoint body.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes, size_t base_offset)
      : bytes_(bytes), base_offset_(base_offset) {}

  template <typename T>
  Status Read(T* out) {
    RECONSUME_RETURN_NOT_OK(Require(sizeof(T)));
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadString(size_t size, std::string* out) {
    RECONSUME_RETURN_NOT_OK(Require(size));
    out->assign(bytes_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  Status ReadRngState(util::RngState* st) {
    for (uint64_t& word : st->s) RECONSUME_RETURN_NOT_OK(Read(&word));
    RECONSUME_RETURN_NOT_OK(Read(&st->cached));
    uint8_t has_cached = 0;
    RECONSUME_RETURN_NOT_OK(Read(&has_cached));
    st->has_cached = has_cached != 0;
    return Status::OK();
  }

  size_t pos() const { return pos_; }

 private:
  Status Require(size_t want) {
    if (pos_ + want > bytes_.size()) {
      return Status::InvalidArgument(
          "checkpoint truncated at byte " +
          std::to_string(base_offset_ + pos_) + ": need " +
          std::to_string(want) + " more bytes, have " +
          std::to_string(bytes_.size() - pos_));
    }
    return Status::OK();
  }

  std::string_view bytes_;
  size_t base_offset_;
  size_t pos_ = 0;
};

std::string CheckpointFileName(int64_t steps) {
  std::string digits = std::to_string(steps);
  if (digits.size() < 12) digits.insert(0, 12 - digits.size(), '0');
  return "ckpt_" + digits + ".rck";
}

}  // namespace

std::string SerializeCheckpoint(const TrainerCheckpoint& checkpoint) {
  RC_CHECK(checkpoint.model.has_value())
      << "SerializeCheckpoint: checkpoint has no model snapshot";
  std::string out;
  AppendRaw(&out, kMagic, sizeof(kMagic));
  AppendValue<uint32_t>(&out, kVersion);
  // Total-size placeholder, patched once the payload is assembled.
  AppendValue<uint64_t>(&out, 0);

  AppendValue<int64_t>(&out, checkpoint.steps);
  AppendValue<int32_t>(&out, checkpoint.checks);
  AppendValue<double>(&out, checkpoint.prev_r_tilde);
  AppendValue<double>(&out, checkpoint.lr_scale);
  AppendValue<int32_t>(&out, checkpoint.recoveries_used);
  AppendRngState(&out, checkpoint.rng_state);
  AppendValue<int32_t>(&out, checkpoint.num_workers);
  AppendValue<uint8_t>(&out, static_cast<uint8_t>(checkpoint.shard_strategy));
  AppendValue<uint64_t>(&out, checkpoint.hogwild_base_seed);
  AppendValue<uint32_t>(&out,
                        static_cast<uint32_t>(checkpoint.worker_rng_states.size()));
  for (const util::RngState& st : checkpoint.worker_rng_states) {
    AppendRngState(&out, st);
  }
  AppendValue<uint32_t>(&out, static_cast<uint32_t>(checkpoint.curve.size()));
  for (const ConvergencePoint& point : checkpoint.curve) {
    AppendValue<int64_t>(&out, point.step);
    AppendValue<double>(&out, point.r_tilde);
  }
  AppendValue<uint32_t>(&out,
                        static_cast<uint32_t>(checkpoint.recovery_log.size()));
  for (const RecoveryEvent& event : checkpoint.recovery_log) {
    AppendValue<int64_t>(&out, event.failed_at_step);
    AppendValue<int64_t>(&out, event.resumed_from_step);
    AppendValue<double>(&out, event.lr_scale_after);
    AppendValue<uint32_t>(&out, static_cast<uint32_t>(event.reason.size()));
    AppendRaw(&out, event.reason.data(), event.reason.size());
  }

  const std::string model_bytes = SerializeModel(*checkpoint.model);
  AppendValue<uint64_t>(&out, model_bytes.size());
  out.append(model_bytes);

  const uint64_t total_size = out.size() + sizeof(uint32_t);  // + crc
  std::memcpy(out.data() + sizeof(kMagic) + sizeof(uint32_t), &total_size,
              sizeof(total_size));
  AppendValue<uint32_t>(&out, util::Crc32(out));
  return out;
}

Result<TrainerCheckpoint> DeserializeCheckpoint(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes + sizeof(uint32_t)) {
    return Status::InvalidArgument("checkpoint file too small (" +
                                   std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a reconsume checkpoint file");
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  uint64_t total_size = 0;
  std::memcpy(&total_size, bytes.data() + sizeof(kMagic) + sizeof(uint32_t),
              sizeof(total_size));
  if (total_size < kHeaderBytes + sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "checkpoint header declares impossible size " +
        std::to_string(total_size));
  }
  if (bytes.size() < total_size) {
    return Status::InvalidArgument(
        "checkpoint truncated at byte " + std::to_string(bytes.size()) +
        ": header declares " + std::to_string(total_size) + " bytes");
  }
  if (bytes.size() > total_size) {
    return Status::InvalidArgument("checkpoint file has trailing bytes");
  }

  const std::string_view payload =
      bytes.substr(0, bytes.size() - sizeof(uint32_t));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + payload.size(), sizeof(uint32_t));
  if (util::Crc32(payload) != stored_crc) {
    return Status::InvalidArgument("checkpoint CRC-32 mismatch");
  }

  TrainerCheckpoint checkpoint;
  ByteReader reader(payload.substr(kHeaderBytes), kHeaderBytes);
  int32_t checks = 0, recoveries_used = 0, num_workers = 0;
  RECONSUME_RETURN_NOT_OK(reader.Read(&checkpoint.steps));
  RECONSUME_RETURN_NOT_OK(reader.Read(&checks));
  RECONSUME_RETURN_NOT_OK(reader.Read(&checkpoint.prev_r_tilde));
  RECONSUME_RETURN_NOT_OK(reader.Read(&checkpoint.lr_scale));
  RECONSUME_RETURN_NOT_OK(reader.Read(&recoveries_used));
  RECONSUME_RETURN_NOT_OK(reader.ReadRngState(&checkpoint.rng_state));
  RECONSUME_RETURN_NOT_OK(reader.Read(&num_workers));
  uint8_t shard_strategy = 0;
  RECONSUME_RETURN_NOT_OK(reader.Read(&shard_strategy));
  RECONSUME_RETURN_NOT_OK(reader.Read(&checkpoint.hogwild_base_seed));
  checkpoint.checks = checks;
  checkpoint.recoveries_used = recoveries_used;
  checkpoint.num_workers = num_workers;
  if (shard_strategy > static_cast<uint8_t>(sampling::ShardStrategy::kInterleaved)) {
    return Status::InvalidArgument("checkpoint shard strategy out of range");
  }
  checkpoint.shard_strategy =
      static_cast<sampling::ShardStrategy>(shard_strategy);
  if (checkpoint.steps < 0 || checkpoint.checks < 0 ||
      checkpoint.recoveries_used < 0 || checkpoint.num_workers < 1) {
    return Status::InvalidArgument("checkpoint counters out of range");
  }

  uint32_t num_worker_states = 0;
  RECONSUME_RETURN_NOT_OK(reader.Read(&num_worker_states));
  if (num_worker_states > 1'000'000) {
    return Status::InvalidArgument("checkpoint worker-state count out of range");
  }
  checkpoint.worker_rng_states.resize(num_worker_states);
  for (util::RngState& st : checkpoint.worker_rng_states) {
    RECONSUME_RETURN_NOT_OK(reader.ReadRngState(&st));
  }

  uint32_t curve_size = 0;
  RECONSUME_RETURN_NOT_OK(reader.Read(&curve_size));
  if (curve_size > 100'000'000) {
    return Status::InvalidArgument("checkpoint curve size out of range");
  }
  checkpoint.curve.resize(curve_size);
  for (ConvergencePoint& point : checkpoint.curve) {
    RECONSUME_RETURN_NOT_OK(reader.Read(&point.step));
    RECONSUME_RETURN_NOT_OK(reader.Read(&point.r_tilde));
  }

  uint32_t log_size = 0;
  RECONSUME_RETURN_NOT_OK(reader.Read(&log_size));
  if (log_size > 1'000'000) {
    return Status::InvalidArgument("checkpoint recovery log out of range");
  }
  checkpoint.recovery_log.resize(log_size);
  for (RecoveryEvent& event : checkpoint.recovery_log) {
    RECONSUME_RETURN_NOT_OK(reader.Read(&event.failed_at_step));
    RECONSUME_RETURN_NOT_OK(reader.Read(&event.resumed_from_step));
    RECONSUME_RETURN_NOT_OK(reader.Read(&event.lr_scale_after));
    uint32_t reason_size = 0;
    RECONSUME_RETURN_NOT_OK(reader.Read(&reason_size));
    RECONSUME_RETURN_NOT_OK(reader.ReadString(reason_size, &event.reason));
  }

  uint64_t model_size = 0;
  RECONSUME_RETURN_NOT_OK(reader.Read(&model_size));
  std::string model_bytes;
  RECONSUME_RETURN_NOT_OK(
      reader.ReadString(static_cast<size_t>(model_size), &model_bytes));
  RECONSUME_ASSIGN_OR_RETURN(TsPprModel model, DeserializeModel(model_bytes));
  checkpoint.model = std::move(model);

  if (reader.pos() != payload.size() - kHeaderBytes) {
    return Status::InvalidArgument("checkpoint payload has trailing bytes");
  }
  return checkpoint;
}

Status SaveCheckpoint(const TrainerCheckpoint& checkpoint,
                      const std::string& path) {
  RC_FAILPOINT("checkpoint/write");
  return util::AtomicWriteFile(path, SerializeCheckpoint(checkpoint));
}

Result<TrainerCheckpoint> LoadCheckpoint(const std::string& path) {
  RECONSUME_ASSIGN_OR_RETURN(const std::string bytes,
                             util::ReadFileToString(path));
  return DeserializeCheckpoint(bytes);
}

Result<CheckpointManager> CheckpointManager::Create(const std::string& dir,
                                                    int retention) {
  if (dir.empty()) {
    return Status::InvalidArgument("CheckpointManager: empty directory");
  }
  if (retention < 1) {
    return Status::InvalidArgument("CheckpointManager: retention must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint directory '" + dir +
                           "': " + ec.message());
  }
  return CheckpointManager(dir, retention);
}

Status CheckpointManager::Write(const TrainerCheckpoint& checkpoint) {
  RC_TRACE_SPAN("checkpoint/write");
  const util::Stopwatch watch;
  RECONSUME_RETURN_NOT_OK(SaveCheckpoint(
      checkpoint, dir_ + "/" + CheckpointFileName(checkpoint.steps)));
  ++num_written_;
  const double write_ms = watch.ElapsedMillis();
  obs::MetricsRegistry::Global()
      .GetHistogram("checkpoint.write_ms", obs::ExponentialBuckets(0.1, 2.0, 18))
      ->Observe(write_ms);
  RC_EMIT_EVENT(obs::Event("checkpoint_write")
                    .Set("step", checkpoint.steps)
                    .Set("ms", write_ms));
  // Prune only after the new snapshot is durably in place, so a failure at
  // any point leaves at least the previous good checkpoint on disk.
  std::vector<std::string> files = ListCheckpointFiles(dir_);
  while (files.size() > static_cast<size_t>(retention_)) {
    std::error_code ec;
    std::filesystem::remove(files.front(), ec);
    if (ec) {
      RECONSUME_LOG(Warning) << "failed to prune checkpoint " << files.front()
                             << ": " << ec.message();
      break;
    }
    files.erase(files.begin());
  }
  return Status::OK();
}

Result<TrainerCheckpoint> CheckpointManager::LoadLatestGood() const {
  const std::vector<std::string> files = ListCheckpointFiles(dir_);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    Result<TrainerCheckpoint> loaded = LoadCheckpoint(*it);
    if (loaded.ok()) return loaded;
    RECONSUME_LOG(Warning) << "skipping unusable checkpoint " << *it << ": "
                           << loaded.status().ToString();
  }
  return Status::NotFound("no usable checkpoint in '" + dir_ + "'");
}

std::vector<std::string> ListCheckpointFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return files;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 9 && name.rfind("ckpt_", 0) == 0 &&
        name.compare(name.size() - 4, 4, ".rck") == 0) {
      files.push_back(entry.path().string());
    }
  }
  // Zero-padded step counts: lexicographic order == step order.
  std::sort(files.begin(), files.end());
  return files;
}

Result<std::string> FindLatestGoodCheckpoint(const std::string& dir) {
  const std::vector<std::string> files = ListCheckpointFiles(dir);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    Result<TrainerCheckpoint> loaded = LoadCheckpoint(*it);
    if (loaded.ok()) return *it;
    RECONSUME_LOG(Warning) << "skipping unusable checkpoint " << *it << ": "
                           << loaded.status().ToString();
  }
  return Status::NotFound("no usable checkpoint in '" + dir + "'");
}

}  // namespace core
}  // namespace reconsume
