// The TS-PPR model state: latent user/item features U, V and the per-user
// feature mapping A_u from the F-dimensional observable behavioral space to
// the K-dimensional latent preference space (§4.2.1).
//
// Preference (Eq. 5):  r_uvt = u^T v + u^T A_u f_uvt = u^T (v + A_u f_uvt).
//
// Concurrency contract (the Hogwild trainer's view of this container):
// parameters live in contiguous std::vector<double> storage, so every
// element satisfies std::atomic_ref<double>'s alignment requirement and can
// be read/written lock-free. During parallel training, rows of U and the
// A_u matrices are partitioned per user (one owning worker each, plain
// access), while rows of V are shared and must be accessed through relaxed
// std::atomic_ref by every worker. Outside training the model is treated as
// immutable and all the const accessors below are freely shareable.

#pragma once

#include <span>
#include <vector>

#include "data/types.h"
#include "math/matrix.h"
#include "util/check.h"
#include "util/random.h"
#include "util/status.h"

namespace reconsume {
namespace core {

/// \brief Hyperparameters of TS-PPR (defaults follow Table 4, Gowalla).
struct TsPprConfig {
  int latent_dim = 40;        ///< K
  double learning_rate = 0.05;  ///< alpha
  double gamma = 0.05;        ///< regularization on U, V
  double lambda = 0.01;       ///< regularization on the mappings A_u

  /// Initialization std-devs. Values <= 0 mean "use the paper's choice":
  /// U, V ~ N(0, gamma I) and A_u ~ N(0, lambda I), i.e. std = sqrt(reg).
  double init_std_latent = -1.0;
  double init_std_mapping = -1.0;

  /// §4.2.1 case (2): when K == F, the mapping can be fixed to the identity.
  bool identity_mapping_when_square = false;

  uint64_t seed = 42;
};

/// \brief Parameter container for TS-PPR; scoring only, no learning logic.
class TsPprModel {
 public:
  /// Allocates and Gaussian-initializes parameters for the given shapes.
  static Result<TsPprModel> Create(size_t num_users, size_t num_items,
                                   int feature_dim, const TsPprConfig& config);

  size_t num_users() const { return user_factors_.rows(); }
  size_t num_items() const { return item_factors_.rows(); }
  int latent_dim() const { return static_cast<int>(user_factors_.cols()); }
  int feature_dim() const { return feature_dim_; }
  const TsPprConfig& config() const { return config_; }

  /// \brief Mutable latent row of user u.
  ///
  /// During Hogwild training this row is private to the single worker that
  /// owns user u (per-user sharding), so plain reads/writes are safe there.
  std::span<double> user_factor(data::UserId u) {
    RC_DCHECK_INDEX(u, num_users());
    return user_factors_.Row(static_cast<size_t>(u));
  }
  std::span<const double> user_factor(data::UserId u) const {
    RC_DCHECK_INDEX(u, num_users());
    return user_factors_.Row(static_cast<size_t>(u));
  }
  /// \brief Mutable latent row of item v.
  ///
  /// Shared across Hogwild workers: during parallel training every access to
  /// these elements must go through relaxed std::atomic_ref (the storage is
  /// suitably aligned; see the header comment).
  std::span<double> item_factor(data::ItemId v) {
    RC_DCHECK_INDEX(v, num_items());
    return item_factors_.Row(static_cast<size_t>(v));
  }
  std::span<const double> item_factor(data::ItemId v) const {
    RC_DCHECK_INDEX(v, num_items());
    return item_factors_.Row(static_cast<size_t>(v));
  }
  /// \brief Mutable feature mapping A_u; worker-private under per-user
  /// sharding, like user_factor(u).
  math::Matrix& mapping(data::UserId u) {
    RC_DCHECK_INDEX(u, mappings_.size());
    return mappings_[static_cast<size_t>(u)];
  }
  const math::Matrix& mapping(data::UserId u) const {
    RC_DCHECK_INDEX(u, mappings_.size());
    return mappings_[static_cast<size_t>(u)];
  }

  /// r_uvt for an already extracted behavioral feature vector f (Eq. 5).
  double Score(data::UserId u, data::ItemId v, std::span<const double> f) const;

  /// The static-preference part u^T v alone (diagnostics / plain-PPR mode).
  double StaticScore(data::UserId u, data::ItemId v) const;

  /// w_u = A_u^T u — the user's effective linear weights over the observable
  /// behavioral features (since u^T A_u f = w_u^T f). Diagnostic: on
  /// synthetic traces these recover the generator's hidden per-user traits
  /// (bench_ext_trait_recovery).
  std::vector<double> EffectiveFeatureWeights(data::UserId u) const;

  /// Sum of squared Frobenius norms used by the objective (Eq. 7).
  double SquaredNormU() const { return user_factors_.SquaredFrobeniusNorm(); }
  double SquaredNormV() const { return item_factors_.SquaredFrobeniusNorm(); }
  double SquaredNormMappings() const;

  /// True iff every parameter is finite (divergence guard).
  bool IsFinite() const;

 private:
  TsPprModel() = default;

  TsPprConfig config_;
  int feature_dim_ = 0;
  math::Matrix user_factors_;  ///< |U| x K
  math::Matrix item_factors_;  ///< |V| x K
  std::vector<math::Matrix> mappings_;  ///< per user, K x F
};

}  // namespace core
}  // namespace reconsume

