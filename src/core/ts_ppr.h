// End-to-end TS-PPR pipeline: static feature table -> feature extraction ->
// training-quadruple pre-sampling -> Algorithm 1 SGD -> recommender.
//
// This is the one-call public entry point that the quickstart example and
// every experiment use; the individual stages stay independently usable.

#pragma once

#include <memory>

#include "core/ts_ppr_model.h"
#include "core/ts_ppr_recommender.h"
#include "core/ts_ppr_trainer.h"
#include "data/split.h"
#include "features/feature_extractor.h"
#include "features/static_features.h"
#include "sampling/training_set.h"
#include "util/status.h"

namespace reconsume {
namespace core {

/// \brief Every knob of the pipeline in one place.
struct TsPprPipelineConfig {
  TsPprConfig model;
  TrainOptions train;
  sampling::TrainingSetOptions sampling;
  features::FeatureConfig features;
  /// When non-empty, Fit resumes training from this checkpoint file
  /// (written by a previous run with train.checkpoint_dir set) instead of
  /// starting from a fresh initialization. The checkpoint must have been
  /// taken on the same dataset/split/configuration; shape mismatches fail
  /// with InvalidArgument. See docs/robustness.md.
  std::string resume_from;
};

/// \brief A fitted TS-PPR: owns the feature table, extractor, model, and the
/// recommender view over them.
class TsPpr {
 public:
  /// Fits the full pipeline on the training segments of `split`.
  /// `split` must outlive the returned object (the extractor evaluates
  /// features against windows of the underlying dataset at query time).
  static Result<TsPpr> Fit(const data::TrainTestSplit& split,
                           const TsPprPipelineConfig& config);

  /// The fitted model parameters.
  const TsPprModel& model() const { return *model_; }
  /// The feature extractor bound to the training-time static table.
  const features::FeatureExtractor& extractor() const { return *extractor_; }
  /// The training run report (steps, convergence curve, wall time).
  const TrainReport& train_report() const { return train_report_; }
  /// Size of the pre-sampled training set |D|.
  int64_t num_quadruples() const { return num_quadruples_; }

  /// Recommender implementing eval::Recommender; owned by this object.
  TsPprRecommender* recommender() { return recommender_.get(); }

  TsPpr(TsPpr&&) = default;
  TsPpr& operator=(TsPpr&&) = default;

 private:
  TsPpr() = default;

  // unique_ptrs keep addresses stable across moves (the recommender holds
  // pointers into table/extractor/model).
  std::unique_ptr<features::StaticFeatureTable> table_;
  std::unique_ptr<features::FeatureExtractor> extractor_;
  std::unique_ptr<TsPprModel> model_;
  std::unique_ptr<TsPprRecommender> recommender_;
  TrainReport train_report_;
  int64_t num_quadruples_ = 0;
};

}  // namespace core
}  // namespace reconsume

