#include "core/scoring_view.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace reconsume {
namespace core {

ScoringMode ResolveScoringMode(ScoringMode mode) {
  if (mode != ScoringMode::kAuto) return mode;
  static const ScoringMode env_mode = [] {
    const char* env = std::getenv("RECONSUME_SCORING");
    const std::string choice = env == nullptr ? "auto" : env;
    if (choice == "naive") return ScoringMode::kNaive;
    if (choice == "scalar") return ScoringMode::kScalar;
    if (choice == "simd" || choice == "auto") return ScoringMode::kSimd;
    RECONSUME_LOG(Warning) << "unknown RECONSUME_SCORING value '" << choice
                           << "' (expected auto|naive|scalar|simd); using auto";
    return ScoringMode::kSimd;
  }();
  return env_mode;
}

BlockedItemFactors::BlockedItemFactors(const TsPprModel& model)
    : num_items_(model.num_items()),
      k_(static_cast<size_t>(model.latent_dim())),
      num_blocks_((num_items_ + math::kBlockItems - 1) / math::kBlockItems),
      data_(num_blocks_ * k_ * math::kBlockItems, 0.0) {
  for (size_t v = 0; v < num_items_; ++v) {
    const auto row = model.item_factor(static_cast<data::ItemId>(v));
    double* block = data_.data() + (v / math::kBlockItems) * k_ *
                                       math::kBlockItems;
    const size_t lane = v % math::kBlockItems;
    for (size_t d = 0; d < k_; ++d) {
      block[d * math::kBlockItems + lane] = row[d];
    }
  }
}

ScoringView::ScoringView(const TsPprModel* model,
                         std::shared_ptr<const BlockedItemFactors> blocks,
                         const math::KernelOps* kernels)
    : model_(model), blocks_(std::move(blocks)), kernels_(kernels) {
  RECONSUME_CHECK(model_ != nullptr && blocks_ != nullptr &&
                  kernels_ != nullptr);
  RECONSUME_CHECK(blocks_->num_items() == model_->num_items() &&
                  blocks_->k() == static_cast<size_t>(model_->latent_dim()))
      << "blocked factors were built from a different model shape";
  const size_t k = blocks_->k();
  const size_t f = static_cast<size_t>(model_->feature_dim());
  factor_tile_.resize(k * math::kBlockItems, 0.0);
  feature_tile_.resize(f * math::kBlockItems, 0.0);
  uv_lane_.resize(math::kBlockItems, 0.0);
  wf_lane_.resize(math::kBlockItems, 0.0);
  feature_scratch_.resize(f, 0.0);
  window_stamp_.resize(blocks_->num_items(), 0u);
  window_gap_.resize(blocks_->num_items(), 0);
  window_count_.resize(blocks_->num_items(), 0);
}

bool ScoringView::BuildWindowIndex(const window::WindowWalker& walker,
                                   size_t num_candidates) {
  const auto& counts = walker.window_counts();
  // The pass costs one hash probe per distinct in-window item; the index
  // saves ~2 probes per candidate. Skip it for tiny candidate lists.
  if (2 * num_candidates < counts.size()) return false;
  if (++window_epoch_ == 0) {  // u32 wrap: flush every stale stamp once
    std::fill(window_stamp_.begin(), window_stamp_.end(), 0u);
    window_epoch_ = 1;
  }
  window_size_ = walker.WindowSize();
  const int step = walker.step();
  for (const auto& [item, entry] : counts) {
    const size_t idx = static_cast<size_t>(item);
    RC_DCHECK_INDEX(idx, window_stamp_.size());
    window_stamp_[idx] = window_epoch_;
    window_count_[idx] = entry.count;
    window_gap_[idx] = step - entry.last_seen;  // == GapSince, no hash probe
  }
  return true;
}

void ScoringView::FillFeatures(const features::FeatureExtractor& extractor,
                               const window::WindowWalker& walker,
                               data::ItemId v, bool use_index) {
  const size_t idx = static_cast<size_t>(v);
  if (use_index && idx < window_stamp_.size() &&
      window_stamp_[idx] == window_epoch_) {
    extractor.ExtractFromWindowState(v, window_gap_[idx], window_count_[idx],
                                     window_size_, feature_scratch_);
    return;
  }
  // Off-window candidates (catalog tasks) keep the walker path: recency may
  // still be nonzero for items seen before the window edge.
  extractor.Extract(walker, v, feature_scratch_);
}

void ScoringView::EnsureUserWeights(data::UserId user) {
  if (user == weights_user_) return;
  const math::Matrix& a = model_->mapping(user);
  const auto u = model_->user_factor(user);
  user_weights_.assign(a.cols(), 0.0);
  // w_u[d] = sum_r u[r] * A_u(r, d): K axpys over the F-vector. Element-wise
  // updates round identically in every kernel tier, so w_u — and with it the
  // whole engine — stays bit-identical between scalar and SIMD.
  for (size_t r = 0; r < a.rows(); ++r) {
    math::KernelAxpy(*kernels_, u[r], a.Row(r), user_weights_);
  }
  weights_user_ = user;
}

void ScoringView::ScoreTile(std::span<const double> user_vec,
                            const features::FeatureExtractor& extractor,
                            const window::WindowWalker& walker,
                            std::span<const data::ItemId> candidates,
                            size_t begin, size_t count, bool use_index,
                            std::span<double> scores) {
  const size_t k = user_vec.size();
  const size_t f = feature_scratch_.size();
  // Pack the candidates' factor rows into the dim-major tile. Row reads are
  // contiguous; the strided tile writes stay inside one K x 8 scratch that
  // lives in L1 across the whole request.
  for (size_t lane = 0; lane < count; ++lane) {
    const auto row = model_->item_factor(candidates[begin + lane]);
    for (size_t d = 0; d < k; ++d) {
      factor_tile_[d * math::kBlockItems + lane] = row[d];
    }
  }
  kernels_->score_block(user_vec.data(), k, factor_tile_.data(),
                        uv_lane_.data());
  for (size_t lane = 0; lane < count; ++lane) {
    FillFeatures(extractor, walker, candidates[begin + lane], use_index);
    for (size_t d = 0; d < f; ++d) {
      feature_tile_[d * math::kBlockItems + lane] = feature_scratch_[d];
    }
  }
  kernels_->score_block(user_weights_.data(), f, feature_tile_.data(),
                        wf_lane_.data());
  for (size_t lane = 0; lane < count; ++lane) {
    scores[begin + lane] = uv_lane_[lane] + wf_lane_[lane];
  }
}

void ScoringView::ScoreCandidates(data::UserId user,
                                  const features::FeatureExtractor& extractor,
                                  const window::WindowWalker& walker,
                                  std::span<const data::ItemId> candidates,
                                  std::span<double> scores) {
  RC_DCHECK(candidates.size() == scores.size());
  if (candidates.empty()) return;
  EnsureUserWeights(user);
  const auto u = model_->user_factor(user);
  const bool use_index = BuildWindowIndex(walker, candidates.size());

  // Full-catalog iota lists (the kUnified evaluation task and catalog
  // sweeps) score straight off the prebuilt SoA blocks — no packing at all.
  bool iota = candidates.size() == blocks_->num_items();
  for (size_t i = 0; iota && i < candidates.size(); ++i) {
    iota = candidates[i] == static_cast<data::ItemId>(i);
  }
  if (iota) {
    const size_t f = feature_scratch_.size();
    for (size_t b = 0; b < blocks_->num_blocks(); ++b) {
      kernels_->score_block(u.data(), u.size(), blocks_->Block(b),
                            uv_lane_.data());
      const size_t begin = b * math::kBlockItems;
      const size_t count =
          std::min(math::kBlockItems, candidates.size() - begin);
      for (size_t lane = 0; lane < count; ++lane) {
        FillFeatures(extractor, walker, candidates[begin + lane], use_index);
        for (size_t d = 0; d < f; ++d) {
          feature_tile_[d * math::kBlockItems + lane] = feature_scratch_[d];
        }
      }
      kernels_->score_block(user_weights_.data(), f, feature_tile_.data(),
                            wf_lane_.data());
      for (size_t lane = 0; lane < count; ++lane) {
        scores[begin + lane] = uv_lane_[lane] + wf_lane_[lane];
      }
    }
    return;
  }

  for (size_t begin = 0; begin < candidates.size();
       begin += math::kBlockItems) {
    const size_t count =
        std::min(math::kBlockItems, candidates.size() - begin);
    ScoreTile(u, extractor, walker, candidates, begin, count, use_index,
              scores);
  }
}

}  // namespace core
}  // namespace reconsume
