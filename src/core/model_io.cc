#include "core/model_io.h"

#include <cstring>

#include "util/failpoint.h"
#include "util/fileio.h"

namespace reconsume {
namespace core {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'S', 'M'};
// v2 added the total-size header field right after the version, so a
// truncated file is reported with its byte offset instead of surfacing as a
// bare checksum mismatch.
constexpr uint32_t kVersion = 2;
// magic + version + total_size.
constexpr size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t);

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}
template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}
void AppendSpan(std::string* out, std::span<const double> values) {
  AppendRaw(out, values.data(), values.size() * sizeof(double));
}

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Sequential reader with bounds checking; errors carry the byte offset.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  Status Read(T* out) {
    RECONSUME_RETURN_NOT_OK(Require(sizeof(T)));
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadDoubles(std::span<double> out) {
    const size_t want = out.size() * sizeof(double);
    RECONSUME_RETURN_NOT_OK(Require(want));
    std::memcpy(out.data(), bytes_.data() + pos_, want);
    pos_ += want;
    return Status::OK();
  }

  size_t pos() const { return pos_; }

 private:
  Status Require(size_t want) {
    if (pos_ + want > bytes_.size()) {
      return Status::InvalidArgument(
          "model file truncated at byte " + std::to_string(pos_) + ": need " +
          std::to_string(want) + " more bytes, have " +
          std::to_string(bytes_.size() - pos_));
    }
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeModel(const TsPprModel& model) {
  std::string out;
  AppendRaw(&out, kMagic, sizeof(kMagic));
  AppendValue<uint32_t>(&out, kVersion);
  // Total-size placeholder, patched once the payload is assembled.
  AppendValue<uint64_t>(&out, 0);
  AppendValue<uint64_t>(&out, model.num_users());
  AppendValue<uint64_t>(&out, model.num_items());
  AppendValue<uint32_t>(&out, static_cast<uint32_t>(model.latent_dim()));
  AppendValue<uint32_t>(&out, static_cast<uint32_t>(model.feature_dim()));
  const TsPprConfig& config = model.config();
  AppendValue<double>(&out, config.learning_rate);
  AppendValue<double>(&out, config.gamma);
  AppendValue<double>(&out, config.lambda);
  AppendValue<uint64_t>(&out, config.seed);

  for (size_t u = 0; u < model.num_users(); ++u) {
    AppendSpan(&out, model.user_factor(static_cast<data::UserId>(u)));
  }
  for (size_t v = 0; v < model.num_items(); ++v) {
    AppendSpan(&out, model.item_factor(static_cast<data::ItemId>(v)));
  }
  for (size_t u = 0; u < model.num_users(); ++u) {
    AppendSpan(&out, model.mapping(static_cast<data::UserId>(u)).Data());
  }

  const uint64_t total_size = out.size() + sizeof(uint64_t);  // + checksum
  std::memcpy(out.data() + sizeof(kMagic) + sizeof(uint32_t), &total_size,
              sizeof(total_size));
  AppendValue<uint64_t>(&out, Fnv1a(out));
  return out;
}

Result<TsPprModel> DeserializeModel(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes + sizeof(uint64_t)) {
    return Status::InvalidArgument(
        "model file too small (" + std::to_string(bytes.size()) + " bytes)");
  }
  // Identify the format before trusting anything else, so truncation can be
  // reported with offsets instead of as a blind checksum failure.
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a reconsume model file");
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported model version " +
                                   std::to_string(version));
  }
  uint64_t total_size = 0;
  std::memcpy(&total_size, bytes.data() + sizeof(kMagic) + sizeof(uint32_t),
              sizeof(total_size));
  if (total_size < kHeaderBytes + sizeof(uint64_t)) {
    return Status::InvalidArgument("model header declares impossible size " +
                                   std::to_string(total_size));
  }
  if (bytes.size() < total_size) {
    return Status::InvalidArgument(
        "model file truncated at byte " + std::to_string(bytes.size()) +
        ": header declares " + std::to_string(total_size) + " bytes");
  }
  if (bytes.size() > total_size) {
    return Status::InvalidArgument("model file has trailing bytes");
  }

  // Checksum covers everything before the trailing hash.
  const std::string_view payload =
      bytes.substr(0, bytes.size() - sizeof(uint64_t));
  uint64_t stored_hash = 0;
  std::memcpy(&stored_hash, bytes.data() + payload.size(), sizeof(uint64_t));
  if (Fnv1a(payload) != stored_hash) {
    return Status::InvalidArgument("model file checksum mismatch");
  }

  ByteReader reader(payload.substr(kHeaderBytes));
  uint64_t num_users = 0, num_items = 0;
  uint32_t latent_dim = 0, feature_dim = 0;
  RECONSUME_RETURN_NOT_OK(reader.Read(&num_users));
  RECONSUME_RETURN_NOT_OK(reader.Read(&num_items));
  RECONSUME_RETURN_NOT_OK(reader.Read(&latent_dim));
  RECONSUME_RETURN_NOT_OK(reader.Read(&feature_dim));
  if (num_users == 0 || num_items == 0 || latent_dim == 0 ||
      feature_dim == 0 || latent_dim > 100000 || feature_dim > 100000) {
    return Status::InvalidArgument("model header out of range");
  }

  TsPprConfig config;
  config.latent_dim = static_cast<int>(latent_dim);
  RECONSUME_RETURN_NOT_OK(reader.Read(&config.learning_rate));
  RECONSUME_RETURN_NOT_OK(reader.Read(&config.gamma));
  RECONSUME_RETURN_NOT_OK(reader.Read(&config.lambda));
  RECONSUME_RETURN_NOT_OK(reader.Read(&config.seed));

  RECONSUME_ASSIGN_OR_RETURN(
      TsPprModel model,
      TsPprModel::Create(num_users, num_items, static_cast<int>(feature_dim),
                         config));
  for (size_t u = 0; u < num_users; ++u) {
    RECONSUME_RETURN_NOT_OK(
        reader.ReadDoubles(model.user_factor(static_cast<data::UserId>(u))));
  }
  for (size_t v = 0; v < num_items; ++v) {
    RECONSUME_RETURN_NOT_OK(
        reader.ReadDoubles(model.item_factor(static_cast<data::ItemId>(v))));
  }
  for (size_t u = 0; u < num_users; ++u) {
    RECONSUME_RETURN_NOT_OK(reader.ReadDoubles(
        model.mapping(static_cast<data::UserId>(u)).Data()));
  }
  if (reader.pos() != payload.size() - kHeaderBytes) {
    return Status::InvalidArgument("model payload has trailing bytes");
  }
  if (!model.IsFinite()) {
    return Status::InvalidArgument("model file holds non-finite parameters");
  }
  return model;
}

Status SaveModel(const TsPprModel& model, const std::string& path) {
  RC_FAILPOINT("model_io/save");
  return util::AtomicWriteFile(path, SerializeModel(model));
}

Result<TsPprModel> LoadModel(const std::string& path) {
  RC_FAILPOINT("model_io/load");
  RECONSUME_ASSIGN_OR_RETURN(const std::string bytes,
                             util::ReadFileToString(path));
  return DeserializeModel(bytes);
}

}  // namespace core
}  // namespace reconsume
