#include "core/grid_search.h"

#include "util/logging.h"

namespace reconsume {
namespace core {

Result<GridSearchResult> GridSearchTsPpr(
    const data::TrainTestSplit& outer_split, const TsPprPipelineConfig& base,
    const GridSearchOptions& options) {
  if (options.latent_dims.empty() || options.gammas.empty() ||
      options.lambdas.empty()) {
    return Status::InvalidArgument("GridSearchTsPpr: empty grid axis");
  }
  if (!(options.validation_fraction > 0.0 &&
        options.validation_fraction < 1.0)) {
    return Status::InvalidArgument(
        "GridSearchTsPpr: validation_fraction must be in (0, 1)");
  }

  // Inner dataset = outer training prefixes only; inner split carves the
  // validation tail out of each prefix.
  const data::Dataset& outer = outer_split.dataset();
  std::vector<size_t> prefix_lengths(outer.num_users());
  for (size_t u = 0; u < outer.num_users(); ++u) {
    prefix_lengths[u] = outer_split.split_point(static_cast<data::UserId>(u));
  }
  const data::Dataset inner_dataset = outer.TruncatePerUser(prefix_lengths);
  if (inner_dataset.num_users() == 0) {
    return Status::FailedPrecondition(
        "GridSearchTsPpr: no training data to validate on");
  }
  RECONSUME_ASSIGN_OR_RETURN(
      const data::TrainTestSplit inner_split,
      data::TrainTestSplit::Temporal(&inner_dataset,
                                     1.0 - options.validation_fraction));

  eval::EvalOptions eval_options;
  eval_options.window_capacity = base.sampling.window_capacity;
  eval_options.min_gap = base.sampling.min_gap;
  eval_options.top_ns = {options.selection_top_n};
  RECONSUME_ASSIGN_OR_RETURN(
      const eval::Evaluator evaluator,
      eval::Evaluator::Create(&inner_split, eval_options));

  GridSearchResult result;
  result.best_config = base;
  bool have_best = false;
  for (int k : options.latent_dims) {
    for (double gamma : options.gammas) {
      for (double lambda : options.lambdas) {
        TsPprPipelineConfig config = base;
        config.model.latent_dim = k;
        config.model.gamma = gamma;
        config.model.lambda = lambda;
        RECONSUME_ASSIGN_OR_RETURN(TsPpr fitted,
                                   TsPpr::Fit(inner_split, config));
        RECONSUME_ASSIGN_OR_RETURN(
            const eval::AccuracyResult accuracy,
            evaluator.Evaluate(fitted.recommender()));
        const double maap = accuracy.MaapAt(options.selection_top_n);
        result.trials.push_back(GridTrial{k, gamma, lambda, maap});
        if (!have_best || maap > result.best_validation_maap) {
          have_best = true;
          result.best_validation_maap = maap;
          result.best_config = config;
        }
      }
    }
  }
  return result;
}

}  // namespace core
}  // namespace reconsume
