#include "core/recommendation_session.h"

#include "util/logging.h"

namespace reconsume {
namespace core {

RecommendationSession::RecommendationSession(eval::Recommender* recommender,
                                             data::UserId user,
                                             data::ConsumptionSequence history,
                                             int window_capacity, int min_gap)
    : recommender_(recommender),
      user_(user),
      history_(std::move(history)),
      window_capacity_(window_capacity),
      min_gap_(min_gap) {
  RECONSUME_CHECK(recommender != nullptr);
  RECONSUME_CHECK(window_capacity >= 2);
  RECONSUME_CHECK(min_gap >= 0 && min_gap < window_capacity);
  // Headroom so that Observe rarely invalidates the walker's pointer.
  history_.reserve(history_.size() * 2 + 1024);
}

void RecommendationSession::Observe(data::ItemId item) {
  const data::ItemId* old_data = history_.data();
  history_.push_back(item);
  if (history_.data() != old_data) {
    // Reallocation: the walker's sequence pointer is stale; rebuild lazily.
    walker_.reset();
    walker_events_ = -1;
  }
}

void RecommendationSession::SyncWalker() {
  if (walker_ == nullptr) {
    walker_ = std::make_unique<window::WindowWalker>(&history_,
                                                     window_capacity_);
    walker_events_ = 0;
  }
  while (walker_events_ < static_cast<int64_t>(history_.size())) {
    walker_->Advance();
    ++walker_events_;
  }
}

size_t RecommendationSession::NumCandidates() const {
  // const_cast-free approach: a throwaway walk is wasteful, so the count
  // reuses the lazily synced walker via a non-const helper pattern.
  auto* self = const_cast<RecommendationSession*>(this);
  self->SyncWalker();
  self->walker_->EligibleCandidates(min_gap_, &self->candidates_);
  return self->candidates_.size();
}

std::vector<RankedItem> RecommendationSession::RecommendTopN(int n) {
  SyncWalker();
  walker_->EligibleCandidates(min_gap_, &candidates_);
  std::vector<RankedItem> out;
  if (candidates_.empty() || n <= 0) return out;

  scores_.assign(candidates_.size(), 0.0);
  recommender_->Score(user_, *walker_, candidates_, scores_);
  // Partial selection: n is a small top-N request, candidates_ the whole
  // window — the heap variant avoids sorting scratch the size of the window.
  eval::SelectTopNHeap(scores_, n, &top_);

  out.reserve(top_.size());
  for (int index : top_) {
    const data::ItemId item = candidates_[static_cast<size_t>(index)];
    out.push_back(RankedItem{item, scores_[static_cast<size_t>(index)],
                             walker_->GapSince(item),
                             walker_->CountInWindow(item)});
  }
  return out;
}

std::vector<RankedItem> RecommendationSession::RecommendFallbackTopN(int n) {
  SyncWalker();
  walker_->EligibleCandidates(min_gap_, &candidates_);
  std::vector<RankedItem> out;
  if (candidates_.empty() || n <= 0) return out;

  // Repeat-history score: count dominates, recency breaks ties. Encoding
  // both into one double keeps SelectTopNHeap's deterministic tie-break
  // (descending score, ascending candidate index) intact: gap is bounded by
  // the window capacity, so count * capacity strictly dominates any gap
  // contribution.
  const double capacity = static_cast<double>(window_capacity_ + 1);
  scores_.assign(candidates_.size(), 0.0);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const data::ItemId item = candidates_[i];
    const double count = static_cast<double>(walker_->CountInWindow(item));
    const double gap = static_cast<double>(walker_->GapSince(item));
    scores_[i] = count * capacity - gap;
  }
  eval::SelectTopNHeap(scores_, n, &top_);

  out.reserve(top_.size());
  for (int index : top_) {
    const data::ItemId item = candidates_[static_cast<size_t>(index)];
    out.push_back(RankedItem{item, scores_[static_cast<size_t>(index)],
                             walker_->GapSince(item),
                             walker_->CountInWindow(item)});
  }
  return out;
}

void RecommendationSession::set_recommender(eval::Recommender* recommender) {
  RECONSUME_CHECK(recommender != nullptr);
  recommender_ = recommender;
}

}  // namespace core
}  // namespace reconsume
