// The vectorized read path of TsPprModel: a blocked SoA copy of the item
// factors plus per-request scoring state that turns Eq. 5 from a K x F
// matrix apply per candidate into two dot products per candidate.
//
// Algebra: r_uvt = u^T v + u^T A_u f  =  u^T v + w_u^T f  with
// w_u = A_u^T u. The naive path (TsPprModel::Score) recomputes u^T (A_u f)
// per candidate at K*F multiplies; the engine computes w_u once per user
// (K*F multiplies, cached while the model is immutable) and each candidate
// then costs K + F multiplies — a ~(K*F)/(K+F) algebraic reduction before
// any SIMD (Table 4: K=40, F=4 gives ~4.5x).
//
// Layout: BlockedItemFactors stores V in 64-byte-aligned blocks of
// math::kBlockItems (8) items, dim-major inside each block — for each latent
// dimension d the 8 items' values share one cache line. The score_block
// kernel broadcasts u[d] against that line, vectorizing *across items*, so
// every item's sum accumulates in plain dimension order and the SIMD scores
// are bit-identical to the scalar engine's (see math/kernels.h).
//
// Candidate lists that are not a full-catalog iota (the repeat task's window
// candidates) are packed 8-at-a-time into an aligned K x 8 scratch tile from
// the row-major model and scored with the same kernel; the packed copy is
// linear reads + linear writes and amortizes against the K-dim products.
//
// Feature tails: per-candidate FeatureExtractor::Extract costs ~3 hash-map
// probes into the walker (recency + familiarity), which dominates p99 on
// large candidate sets once the dot products are vectorized. The view builds
// a per-request *window index* — one pass over walker.window_counts()
// resolving (gap, count) for every distinct in-window item into epoch-stamped
// dense arrays — and fills feature tiles from O(1) array reads via
// FeatureExtractor::ExtractFromWindowState. Candidates outside the window
// (catalog tasks) fall back to Extract, so feature values are bit-identical
// either way.
//
// Threading: BlockedItemFactors is immutable and shared (shared_ptr) across
// recommender clones; ScoringView holds per-clone mutable scratch and must
// not be shared between threads without external synchronization.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/ts_ppr_model.h"
#include "features/feature_extractor.h"
#include "math/kernels.h"
#include "window/window_walker.h"

namespace reconsume {
namespace core {

/// How a TsPprRecommender scores its candidate span.
enum class ScoringMode {
  kAuto,    ///< engine with ActiveKernels() unless RECONSUME_SCORING=naive
  kNaive,   ///< per-candidate TsPprModel::Score (the reference path)
  kScalar,  ///< engine with the scalar kernel tier (parity oracle)
  kSimd,    ///< engine with the best runtime-dispatched kernel tier
};

/// Resolves kAuto against the RECONSUME_SCORING env override
/// (naive|scalar|simd|auto); other modes pass through unchanged.
ScoringMode ResolveScoringMode(ScoringMode mode);

/// \brief Immutable blocked SoA copy of a model's item factors.
///
/// Block b holds items [b*8, b*8+8) as a K x 8 dim-major tile; items past
/// num_items() are zero-padded so the last block is always full width.
class BlockedItemFactors {
 public:
  explicit BlockedItemFactors(const TsPprModel& model);

  size_t num_items() const { return num_items_; }
  size_t k() const { return k_; }
  size_t num_blocks() const { return num_blocks_; }

  /// The K x kBlockItems tile of block b (64-byte aligned).
  const double* Block(size_t b) const {
    RC_DCHECK_INDEX(b, num_blocks_);
    return data_.data() + b * k_ * math::kBlockItems;
  }

 private:
  size_t num_items_ = 0;
  size_t k_ = 0;
  size_t num_blocks_ = 0;
  math::AlignedVector data_;
};

/// \brief Per-clone batched scoring engine over a shared model + SoA view.
class ScoringView {
 public:
  /// All pointees must outlive the view. `blocks` is the shared SoA copy of
  /// `model`'s item factors; `kernels` selects the instruction-set tier.
  ScoringView(const TsPprModel* model,
              std::shared_ptr<const BlockedItemFactors> blocks,
              const math::KernelOps* kernels);

  /// Scores every candidate (Eq. 5) against the walker's window state.
  /// Equivalent to the naive per-candidate loop up to floating-point
  /// reassociation of the u^T A_u f term; bit-deterministic for a given
  /// kernel tier, and bit-identical between the scalar and SIMD tiers.
  void ScoreCandidates(data::UserId user,
                       const features::FeatureExtractor& extractor,
                       const window::WindowWalker& walker,
                       std::span<const data::ItemId> candidates,
                       std::span<double> scores);

  const math::KernelOps& kernels() const { return *kernels_; }

 private:
  /// Recomputes w_u = A_u^T u when `user` differs from the cached one.
  /// The model is immutable on the read path, so a user's weights stay
  /// valid across requests (the evaluator and the serving sessions both
  /// score the same user many times in a row).
  void EnsureUserWeights(data::UserId user);

  /// Builds the per-request window index (one walker pass). Returns false —
  /// leaving the index inactive — when the candidate list is small enough
  /// that the pass would cost more than the per-candidate probes it saves.
  bool BuildWindowIndex(const window::WindowWalker& walker,
                        size_t num_candidates);

  /// Writes f_uvt for `v` into feature_scratch_, through the window index
  /// when `v` is stamped and the index is active this request.
  void FillFeatures(const features::FeatureExtractor& extractor,
                    const window::WindowWalker& walker, data::ItemId v,
                    bool use_index);

  /// Scores candidates[begin, begin+count) — one tile of <= 8 candidates.
  void ScoreTile(std::span<const double> user_vec,
                 const features::FeatureExtractor& extractor,
                 const window::WindowWalker& walker,
                 std::span<const data::ItemId> candidates, size_t begin,
                 size_t count, bool use_index, std::span<double> scores);

  const TsPprModel* model_;
  std::shared_ptr<const BlockedItemFactors> blocks_;
  const math::KernelOps* kernels_;

  data::UserId weights_user_ = data::kInvalidUser;
  std::vector<double> user_weights_;  ///< w_u = A_u^T u, size F

  math::AlignedVector factor_tile_;   ///< K x 8 packed candidate factors
  math::AlignedVector feature_tile_;  ///< F x 8 packed candidate features
  math::AlignedVector uv_lane_;       ///< 8 u^T v partials
  math::AlignedVector wf_lane_;       ///< 8 w_u^T f partials
  std::vector<double> feature_scratch_;  ///< one candidate's f_uvt

  // Per-request window index: dense (gap, count) for every distinct item in
  // the current window, valid where stamp == epoch. Rebuilt per request (the
  // walker advances between requests); epoch bump invalidates in O(1).
  std::uint32_t window_epoch_ = 0;
  int window_size_ = 0;
  std::vector<std::uint32_t> window_stamp_;  ///< size num_items
  std::vector<std::int32_t> window_gap_;     ///< t - l_ut(v), stamped only
  std::vector<std::int32_t> window_count_;   ///< in-window count, stamped only
};

}  // namespace core
}  // namespace reconsume
