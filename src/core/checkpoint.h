// Crash-safe checkpointing of TS-PPR training state.
//
// A TrainerCheckpoint is a complete snapshot of Algorithm 1 mid-flight: the
// model parameters plus everything the trainer needs to continue the run as
// if it had never stopped — step/check counters, the Δr̃ history, the
// learning-rate backoff scale, and the exact RNG stream positions (the
// caller's stream for sequential runs; the per-worker streams and the base
// seed for Hogwild runs). Restoring a sequential checkpoint resumes
// bit-identically; restoring a Hogwild checkpoint resumes every worker's
// sample sequence exactly (float values stay scheduling-dependent, as in any
// Hogwild run).
//
// On disk a checkpoint is a single "RCCK" file: versioned header with a
// declared total size (so truncation is reported with byte offsets), the
// serialized state, the embedded RCSM model image, and a trailing CRC-32.
// CheckpointManager writes snapshots atomically (temp file + fsync + rename)
// under a retention policy and loads the newest file that passes
// verification, skipping corrupt or truncated ones. See docs/robustness.md.
//
// Threading contract: CheckpointManager is single-writer by design — the
// trainer calls Save only from the convergence-check barrier, where every
// other worker is quiesced, so the manager needs (and has) no locks and no
// thread-safety annotations (docs/static_analysis.md §limits). Concurrent
// Save calls from multiple threads are a caller bug, not a supported mode.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/ts_ppr_model.h"
#include "core/ts_ppr_trainer.h"
#include "sampling/training_set.h"
#include "util/random.h"
#include "util/status.h"

namespace reconsume {
namespace core {

/// \brief Complete snapshot of a training run at a convergence-check
/// boundary (also used in memory as the divergence-recovery rollback point).
struct TrainerCheckpoint {
  /// SGD steps completed when the snapshot was taken.
  int64_t steps = 0;
  /// Convergence checks completed (min_checks bookkeeping).
  int checks = 0;
  /// Δr̃ reference value of the last completed check.
  double prev_r_tilde = 0.0;
  /// Multiplier on the base learning rate (1.0 until divergence recovery
  /// backs it off).
  double lr_scale = 1.0;
  /// Divergence recoveries consumed so far (bounded by max_recoveries).
  int recoveries_used = 0;
  /// The Fig. 12 curve up to and including this snapshot.
  std::vector<ConvergencePoint> curve;
  /// Recovery events up to this snapshot (carried across resume).
  std::vector<RecoveryEvent> recovery_log;

  /// Caller RNG stream position (sequential path; with Hogwild this is the
  /// caller's stream *after* drawing the base seed).
  util::RngState rng_state;
  /// Worker topology the snapshot was taken under. num_workers == 1 marks a
  /// sequential snapshot; resuming a parallel snapshot requires the same
  /// worker count and shard strategy (per-user ownership must not move).
  int num_workers = 1;
  sampling::ShardStrategy shard_strategy = sampling::ShardStrategy::kContiguous;
  /// Seed the per-worker streams were derived from (Hogwild only).
  uint64_t hogwild_base_seed = 0;
  /// Exact per-worker stream positions at the snapshot's round boundary
  /// (Hogwild only; size num_workers).
  std::vector<util::RngState> worker_rng_states;

  /// Model parameters at the snapshot. Engaged on every deserialized or
  /// manager-written checkpoint; optional only because TsPprModel has no
  /// public default constructor.
  std::optional<TsPprModel> model;
};

/// Serializes a checkpoint (model must be engaged) to the RCCK wire format.
std::string SerializeCheckpoint(const TrainerCheckpoint& checkpoint);

/// Parses and verifies an RCCK image. Truncated files yield InvalidArgument
/// with the byte offset; corrupt files fail the CRC-32 check.
Result<TrainerCheckpoint> DeserializeCheckpoint(std::string_view bytes);

/// Atomically writes `checkpoint` to `path` (temp file + fsync + rename).
/// Failpoint: "checkpoint/write".
Status SaveCheckpoint(const TrainerCheckpoint& checkpoint,
                      const std::string& path);

/// Reads and verifies one checkpoint file.
Result<TrainerCheckpoint> LoadCheckpoint(const std::string& path);

/// \brief Writes versioned checkpoint files into a directory with retention.
///
/// Files are named `ckpt_<000000000steps>.rck`, so lexicographic order is
/// step order. Retention keeps the newest `retention` files; older snapshots
/// are pruned after each successful write — never before, so a crash during
/// a write leaves the previous good checkpoint intact.
class CheckpointManager {
 public:
  /// Creates the directory (and parents) if missing. retention >= 1.
  static Result<CheckpointManager> Create(const std::string& dir,
                                          int retention = 2);

  /// Atomically writes `checkpoint` (model must be engaged), then prunes.
  Status Write(const TrainerCheckpoint& checkpoint);

  /// Loads the newest checkpoint that passes verification, skipping (with a
  /// logged warning) any corrupt or truncated file in favor of the previous
  /// good one. NotFound when no loadable checkpoint exists.
  Result<TrainerCheckpoint> LoadLatestGood() const;

  const std::string& dir() const { return dir_; }
  int num_written() const { return num_written_; }

 private:
  CheckpointManager(std::string dir, int retention)
      : dir_(std::move(dir)), retention_(retention) {}

  std::string dir_;
  int retention_;
  int num_written_ = 0;
};

/// Checkpoint files in `dir` in ascending step order (full paths). Missing
/// directory yields an empty list.
std::vector<std::string> ListCheckpointFiles(const std::string& dir);

/// Path of the newest checkpoint in `dir` that passes verification; NotFound
/// when the directory holds no loadable checkpoint. Convenience for CLI
/// `--resume <dir>` handling.
Result<std::string> FindLatestGoodCheckpoint(const std::string& dir);

}  // namespace core
}  // namespace reconsume
