#include "core/ppr.h"

#include <cmath>

#include "math/vector_ops.h"

namespace reconsume {
namespace core {

Result<PprModel> PprModel::Fit(const sampling::TrainingSet& training_set,
                               size_t num_users, size_t num_items,
                               const PprConfig& config) {
  if (config.latent_dim < 1) {
    return Status::InvalidArgument("PprModel: latent_dim must be >= 1");
  }
  if (training_set.num_quadruples() == 0) {
    return Status::FailedPrecondition("PprModel: empty training set");
  }

  PprModel model;
  const size_t k = static_cast<size_t>(config.latent_dim);
  const double init_std =
      config.init_std > 0 ? config.init_std
                          : std::sqrt(std::max(config.gamma, 1e-4));
  util::Rng rng(config.seed);
  model.user_factors_ = math::Matrix(num_users, k);
  model.user_factors_.FillGaussian(&rng, 0.0, init_std);
  model.item_factors_ = math::Matrix(num_items, k);
  model.item_factors_.FillGaussian(&rng, 0.0, init_std);

  const double alpha = config.learning_rate;
  const double decay = 1.0 - alpha * config.gamma;
  const auto small_batch = training_set.SmallBatch(0.1);
  const int64_t check_every = std::max<int64_t>(
      1, static_cast<int64_t>(config.check_every_fraction *
                              static_cast<double>(
                                  training_set.num_quadruples())));

  auto r_tilde = [&]() {
    double total = 0.0;
    for (const auto& [e, n] : small_batch) {
      const auto& event = training_set.events()[e];
      const auto& neg = training_set.negatives()[n];
      total += model.ScorePair(event.user, event.item) -
               model.ScorePair(event.user, neg.item);
    }
    return small_batch.empty()
               ? 0.0
               : total / static_cast<double>(small_batch.size());
  };

  std::vector<double> u_old(k);
  double prev = r_tilde();
  int checks = 0;
  for (int64_t step = 1; step <= config.max_steps; ++step) {
    const auto [event_index, neg_index] = training_set.SampleQuadruple(&rng);
    const auto& event = training_set.events()[event_index];
    const auto& neg = training_set.negatives()[neg_index];
    auto u = model.user_factors_.Row(static_cast<size_t>(event.user));
    auto vi = model.item_factors_.Row(static_cast<size_t>(event.item));
    auto vj = model.item_factors_.Row(static_cast<size_t>(neg.item));

    const double margin = math::Dot(u, vi) - math::Dot(u, vj);
    const double g = alpha * (1.0 - math::Sigmoid(margin));

    std::copy(u.begin(), u.end(), u_old.begin());
    for (size_t i = 0; i < k; ++i) {
      u[i] = decay * u[i] + g * (vi[i] - vj[i]);
    }
    for (size_t i = 0; i < k; ++i) {
      const double vi_new = decay * vi[i] + g * u_old[i];
      const double vj_new = decay * vj[i] - g * u_old[i];
      vi[i] = vi_new;
      vj[i] = vj_new;
    }
    model.steps_trained_ = step;

    if (step % check_every == 0) {
      const double current = r_tilde();
      if (!std::isfinite(current)) {
        return Status::NumericalError("PPR training diverged");
      }
      if (++checks >= 3 &&
          std::fabs(current - prev) <= config.convergence_tolerance) {
        break;
      }
      prev = current;
    }
  }

  if (!math::AllFinite(model.user_factors_.Data()) ||
      !math::AllFinite(model.item_factors_.Data())) {
    return Status::NumericalError("PPR parameters diverged");
  }
  return model;
}

void PprModel::Score(data::UserId user, const window::WindowWalker& walker,
                     std::span<const data::ItemId> candidates,
                     std::span<double> scores) {
  (void)walker;  // static preference only: this model is time-blind.
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = ScorePair(user, candidates[i]);
  }
}

}  // namespace core
}  // namespace reconsume
