#include "core/ts_ppr_trainer.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>

#include "core/checkpoint.h"
#include "math/vector_ops.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace reconsume {
namespace core {

namespace {

// The Hogwild mode publishes item-factor elements through relaxed
// std::atomic_ref stores; that is only a sane design if those compile to
// plain 8-byte moves.
static_assert(std::atomic_ref<double>::is_always_lock_free,
              "Hogwild TS-PPR training requires lock-free atomic doubles");

/// r_{uv_i t} - r_{uv_j t} = u^T (v_i - v_j + A_u (f_i - f_j)).
///
/// Plain (non-atomic) reads: only called on a quiesced model — either the
/// sequential path, or worker 0 during a barrier-protected convergence check.
double PreferenceDifference(const TsPprModel& model,
                            const sampling::TrainingSet& data,
                            uint32_t event_index, uint32_t neg_index,
                            std::vector<double>* fdiff_scratch,
                            std::vector<double>* d_scratch) {
  const sampling::PositiveEvent& event = data.events()[event_index];
  const sampling::NegativeSample& neg = data.negatives()[neg_index];
  const auto fi = data.feature(event.feature_offset);
  const auto fj = data.feature(neg.feature_offset);
  const auto u = model.user_factor(event.user);
  const auto vi = model.item_factor(event.item);
  const auto vj = model.item_factor(neg.item);

  auto& fdiff = *fdiff_scratch;
  auto& d = *d_scratch;
  math::Subtract(fi, fj, fdiff);
  math::Subtract(vi, vj, d);
  model.mapping(event.user).MultiplyVectorAccumulate(1.0, fdiff, d);
  return math::Dot(u, d);
}

/// Per-worker allocation-free scratch for one SGD step.
struct StepScratch {
  StepScratch(size_t k, size_t f)
      : fdiff(f), d(k), u_old(k), vi_local(k), vj_local(k) {}
  std::vector<double> fdiff, d, u_old, vi_local, vj_local;
};

/// out[i] = relaxed atomic load of row[i]. A per-element-consistent snapshot
/// of a shared item row; other Hogwild workers may be storing concurrently.
void AtomicLoadRow(std::span<double> row, std::span<double> out) {
  for (size_t i = 0; i < row.size(); ++i) {
    out[i] = std::atomic_ref<double>(row[i]).load(std::memory_order_relaxed);
  }
}

/// row[i] = relaxed atomic store of values[i]. Concurrent stores to the same
/// element lose one update (standard Hogwild semantics) but never tear.
void AtomicStoreRow(std::span<const double> values, std::span<double> row) {
  for (size_t i = 0; i < row.size(); ++i) {
    std::atomic_ref<double>(row[i]).store(values[i],
                                          std::memory_order_relaxed);
  }
}

/// Lines 6-10 of Algorithm 1: one SGD update on the sampled quadruple
/// (Eq. 12-15), shared by the sequential and Hogwild paths.
///
/// Sharing discipline: the positive event's user row u and mapping A_u are
/// owned by the calling worker (per-user sharding) and updated with plain
/// arithmetic; the item rows v_i, v_j are shared across workers, so they are
/// snapshotted with atomic loads, updated locally with the exact arithmetic
/// of the sequential implementation, and published with atomic stores. With
/// one worker the atomic round-trips are value-preserving, which is what
/// keeps the num_threads=1 path bit-identical to the original loop.
///
/// Returns false when the step hits non-finite arithmetic — divergence is
/// environmental (it depends on the data and the learning rate), so it is
/// reported for the caller to surface as Status::NumericalError rather than
/// tripping a contract check.
[[nodiscard]] bool SgdStep(const sampling::TrainingSet& data, double alpha,
                           uint32_t event_index, uint32_t neg_index,
                           TsPprModel* model, StepScratch* scratch) {
  const TsPprConfig& config = model->config();
  const double latent_decay = 1.0 - alpha * config.gamma;
  const double mapping_decay = 1.0 - alpha * config.lambda;

  const sampling::PositiveEvent& event = data.events()[event_index];
  const sampling::NegativeSample& neg = data.negatives()[neg_index];
  const auto fi = data.feature(event.feature_offset);
  const auto fj = data.feature(neg.feature_offset);
  auto u = model->user_factor(event.user);
  auto vi = model->item_factor(event.item);
  auto vj = model->item_factor(neg.item);
  math::Matrix& a = model->mapping(event.user);

  auto& fdiff = scratch->fdiff;
  auto& d = scratch->d;
  auto& u_old = scratch->u_old;
  auto& vi_local = scratch->vi_local;
  auto& vj_local = scratch->vj_local;

  AtomicLoadRow(vi, vi_local);
  AtomicLoadRow(vj, vj_local);

  // d = v_i - v_j + A_u (f_i - f_j); the gradient w.r.t. u (Eq. 12).
  math::Subtract(fi, fj, fdiff);
  math::Subtract(vi_local, vj_local, d);
  a.MultiplyVectorAccumulate(1.0, fdiff, d);

  const double margin = math::Dot(u, d);
  // A non-finite margin means the factors already blew up; bail before the
  // update so the caller can fail with NumericalError at the culprit step
  // instead of a round later at the Delta-r~ check, and so the model keeps
  // its last finite state.
  if (!std::isfinite(margin)) {
    return false;
  }
  const double g = alpha * (1.0 - math::Sigmoid(margin));
  // Finite margin => sigmoid in [0, 1] => finite scale; anything else is a
  // programming error in the sigmoid, not data-dependent divergence.
  RC_DCHECK_FINITE(g);

  // All updates read the pre-update parameters, so stash u.
  std::copy(u.begin(), u.end(), u_old.begin());

  math::Scale(latent_decay, u);
  math::Axpy(g, d, u);  // Eq. 12

  math::Scale(latent_decay, vi_local);
  math::Axpy(g, u_old, vi_local);  // Eq. 13
  AtomicStoreRow(vi_local, vi);

  math::Scale(latent_decay, vj_local);
  math::Axpy(-g, u_old, vj_local);  // Eq. 14
  AtomicStoreRow(vj_local, vj);

  a.ScaleInPlace(mapping_decay);
  a.AddOuterProduct(g, u_old, fdiff);  // Eq. 15

  // Post-step bound: with a finite margin the factors can still overflow at
  // the update itself (huge alpha); report that as divergence too.
  return math::AllFinite(u) && math::AllFinite(vi_local) &&
         math::AllFinite(vj_local);
}

/// Debug-only validation of the Hogwild ownership invariant: the shards are
/// pairwise disjoint and together cover users_with_events() exactly once.
bool ShardsPartitionUsers(
    const std::vector<std::vector<data::UserId>>& shards,
    const std::vector<data::UserId>& users_with_events) {
  std::vector<data::UserId> all;
  for (const auto& shard : shards) {
    all.insert(all.end(), shard.begin(), shard.end());
  }
  std::vector<data::UserId> expected = users_with_events;
  std::sort(all.begin(), all.end());
  std::sort(expected.begin(), expected.end());
  return all == expected;
}

}  // namespace

Result<TrainReport> TsPprTrainer::Train(
    const sampling::TrainingSet& training_set, TsPprModel* model,
    util::Rng* rng) const {
  return TrainImpl(training_set, model, rng, nullptr);
}

Result<TrainReport> TsPprTrainer::ResumeFrom(
    const std::string& checkpoint_path,
    const sampling::TrainingSet& training_set, TsPprModel* model,
    util::Rng* rng) const {
  const util::Stopwatch watch;
  RECONSUME_ASSIGN_OR_RETURN(const TrainerCheckpoint checkpoint,
                             LoadCheckpoint(checkpoint_path));
  const double restore_ms = watch.ElapsedMillis();
  obs::MetricsRegistry::Global()
      .GetHistogram("checkpoint.restore_ms",
                    obs::ExponentialBuckets(0.1, 2.0, 18))
      ->Observe(restore_ms);
  RC_EMIT_EVENT(obs::Event("checkpoint_restore")
                    .Set("path", checkpoint_path)
                    .Set("step", checkpoint.steps)
                    .Set("ms", restore_ms));
  return TrainImpl(training_set, model, rng, &checkpoint);
}

Result<TrainReport> TsPprTrainer::TrainImpl(
    const sampling::TrainingSet& training_set, TsPprModel* model,
    util::Rng* rng, const TrainerCheckpoint* resume) const {
  if (model == nullptr || rng == nullptr) {
    return Status::InvalidArgument("Train: null model or rng");
  }
  if (model->feature_dim() != training_set.feature_dim()) {
    return Status::InvalidArgument(
        "Train: model feature_dim != training set feature_dim");
  }
  if (training_set.num_quadruples() == 0) {
    return Status::FailedPrecondition("Train: empty training set");
  }
  if (options_.max_recoveries < 0) {
    return Status::InvalidArgument("Train: max_recoveries must be >= 0");
  }
  if (options_.max_recoveries > 0 &&
      !(options_.lr_backoff > 0.0 && options_.lr_backoff < 1.0)) {
    return Status::InvalidArgument("Train: lr_backoff must be in (0, 1)");
  }
  if (!options_.checkpoint_dir.empty() && options_.checkpoint_every_checks < 1) {
    return Status::InvalidArgument(
        "Train: checkpoint_every_checks must be >= 1");
  }

  const TsPprConfig& config = model->config();
  const double base_alpha = config.learning_rate;
  const double quadruples = static_cast<double>(training_set.num_quadruples());
  const size_t k = static_cast<size_t>(model->latent_dim());
  const size_t f = static_cast<size_t>(model->feature_dim());

  const auto small_batch =
      training_set.SmallBatch(options_.small_batch_fraction);
  const int64_t check_every = std::max<int64_t>(
      1, static_cast<int64_t>(options_.check_every_fraction *
                              static_cast<double>(
                                  training_set.num_quadruples())));

  // Learning-rate scale: 1.0 until divergence recovery backs it off. The
  // multiplication by 1.0 is exact in IEEE arithmetic, so the default path
  // stays bit-identical to the pre-recovery trainer.
  double lr_scale = resume != nullptr ? resume->lr_scale : 1.0;

  // alpha_t for the step with `steps_done` completed steps before it.
  auto alpha_for = [&](int64_t steps_done) {
    const double alpha =
        options_.schedule == LearningRateSchedule::kConstant
            ? base_alpha
            : base_alpha / (1.0 + options_.decay_rate *
                                      static_cast<double>(steps_done) /
                                      quadruples);
    return alpha * lr_scale;
  };

  std::vector<double> fdiff(f), d(k);
  auto compute_r_tilde = [&]() {
    double total = 0.0;
    for (const auto& [e, n] : small_batch) {
      total += PreferenceDifference(*model, training_set, e, n, &fdiff, &d);
    }
    return small_batch.empty()
               ? 0.0
               : total / static_cast<double>(small_batch.size());
  };

  const int num_workers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(std::max(1, options_.num_threads)),
      training_set.users_with_events().size()));

  // --- Resume validation and run-state initialization ---
  if (resume != nullptr) {
    if (!resume->model.has_value()) {
      return Status::InvalidArgument("resume: checkpoint has no model");
    }
    if (resume->model->num_users() != model->num_users() ||
        resume->model->num_items() != model->num_items() ||
        resume->model->latent_dim() != model->latent_dim() ||
        resume->model->feature_dim() != model->feature_dim()) {
      return Status::InvalidArgument(
          "resume: checkpoint model shape does not match the target model");
    }
    if (resume->num_workers != num_workers) {
      return Status::FailedPrecondition(
          "resume: checkpoint was taken with " +
          std::to_string(resume->num_workers) + " workers, options give " +
          std::to_string(num_workers) +
          " (per-user ownership must not move across a resume)");
    }
    if (num_workers > 1 && resume->shard_strategy != options_.shard_strategy) {
      return Status::FailedPrecondition(
          "resume: checkpoint shard strategy differs from options");
    }
    if (num_workers > 1 &&
        resume->worker_rng_states.size() != static_cast<size_t>(num_workers)) {
      return Status::InvalidArgument(
          "resume: checkpoint is missing per-worker RNG states");
    }
    *model = *resume->model;
    rng->SetState(resume->rng_state);
  }

  RC_TRACE_SPAN("trainer/train");
  // Cached metric handles: one registry lookup per run, lock-free recording
  // after that (per check/round granularity, never per SGD step).
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* const steps_counter = registry.GetCounter("trainer.steps");
  obs::Counter* const recoveries_counter =
      registry.GetCounter("trainer.recoveries");
  obs::Histogram* const r_tilde_hist = registry.GetHistogram(
      "trainer.epoch_r_tilde", obs::LinearBuckets(-1.0, 0.25, 60));
  obs::Histogram* const qps_hist = registry.GetHistogram(
      "trainer.quadruples_per_sec", obs::ExponentialBuckets(1e3, 2.0, 22));

  TrainReport report;
  util::Stopwatch stopwatch;
  double prev_r_tilde;
  int checks;
  int recoveries_used;
  if (resume != nullptr) {
    report.steps = resume->steps;
    report.curve = resume->curve;
    report.recovery_log = resume->recovery_log;
    report.resumed_from_step = resume->steps;
    prev_r_tilde = resume->prev_r_tilde;
    checks = resume->checks;
    recoveries_used = resume->recoveries_used;
  } else {
    prev_r_tilde = compute_r_tilde();
    report.curve.push_back({0, prev_r_tilde});
    checks = 0;
    recoveries_used = 0;
  }

  // High-water mark of steps already folded into trainer.steps; rollbacks
  // rewind it so replayed work counts as executed work.
  int64_t steps_counted = report.steps;
  RC_EMIT_EVENT(obs::Event("train_start")
                    .Set("start_step", report.steps)
                    .Set("max_steps", options_.max_steps)
                    .Set("num_workers", num_workers)
                    .Set("num_quadruples",
                         static_cast<int64_t>(training_set.num_quadruples()))
                    .Set("resumed", resume != nullptr));

  std::optional<CheckpointManager> manager;
  if (!options_.checkpoint_dir.empty()) {
    RECONSUME_ASSIGN_OR_RETURN(
        CheckpointManager created,
        CheckpointManager::Create(options_.checkpoint_dir,
                                  options_.checkpoint_retention));
    manager = std::move(created);
  }
  const bool recovery_enabled = options_.max_recoveries > 0;

  // Hogwild stream bookkeeping. `worker_states` always holds the per-worker
  // RNG positions as of the last completed round boundary; it doubles as the
  // restart vector for both on-disk checkpoints and in-memory rollbacks.
  uint64_t hogwild_base_seed = 0;
  std::vector<util::RngState> worker_states;
  if (num_workers > 1) {
    if (resume != nullptr) {
      hogwild_base_seed = resume->hogwild_base_seed;
      worker_states = resume->worker_rng_states;
    } else {
      hogwild_base_seed = rng->Next();
      util::SplitMix64 mixer(hogwild_base_seed);
      worker_states.resize(static_cast<size_t>(num_workers));
      for (util::RngState& st : worker_states) {
        st = util::Rng(mixer.Next()).GetState();
      }
    }
  }

  // Snapshot of the complete run state, taken only on a quiesced model (the
  // sequential loop, or worker 0 between the two barriers of a round).
  auto make_snapshot = [&]() {
    TrainerCheckpoint snap;
    snap.steps = report.steps;
    snap.checks = checks;
    snap.prev_r_tilde = prev_r_tilde;
    snap.lr_scale = lr_scale;
    snap.recoveries_used = recoveries_used;
    snap.curve = report.curve;
    snap.recovery_log = report.recovery_log;
    snap.rng_state = rng->GetState();
    snap.num_workers = num_workers;
    snap.shard_strategy = options_.shard_strategy;
    snap.hogwild_base_seed = hogwild_base_seed;
    snap.worker_rng_states = worker_states;
    snap.model = *model;
    return snap;
  };

  // Rollback point for divergence recovery; refreshed at every finite Δr̃
  // check. Held in memory (not read back from disk) so recovery works with
  // checkpointing off and is immune to checkpoint cadence.
  std::optional<TrainerCheckpoint> last_good;

  // Rolls the run state back to `last_good` and backs off the learning rate.
  // Returns false when the recovery budget is exhausted (caller propagates
  // the original NumericalError).
  auto try_rollback = [&](const Status& failure) {
    if (!recovery_enabled || recoveries_used >= options_.max_recoveries ||
        !last_good.has_value()) {
      return false;
    }
    const int64_t failed_at = report.steps;
    const TrainerCheckpoint& good = *last_good;
    *model = *good.model;
    report.steps = good.steps;
    report.curve = good.curve;
    checks = good.checks;
    prev_r_tilde = good.prev_r_tilde;
    rng->SetState(good.rng_state);
    worker_states = good.worker_rng_states;
    lr_scale *= options_.lr_backoff;
    ++recoveries_used;
    RecoveryEvent event;
    event.failed_at_step = failed_at;
    event.resumed_from_step = good.steps;
    event.lr_scale_after = lr_scale;
    event.reason = failure.message();
    report.recovery_log.push_back(event);
    steps_counted = good.steps;
    recoveries_counter->Increment();
    RC_EMIT_EVENT(obs::Event("recovery")
                      .Set("failed_at_step", failed_at)
                      .Set("resumed_from_step", good.steps)
                      .Set("lr_scale_after", lr_scale)
                      .Set("recoveries_used", recoveries_used)
                      .Set("reason", std::string(failure.message())));
    RECONSUME_LOG(Warning) << "training diverged at step " << failed_at
                           << "; rolling back to step " << good.steps
                           << " with learning-rate scale " << lr_scale << " ("
                           << recoveries_used << "/" << options_.max_recoveries
                           << " recoveries)";
    return true;
  };

  if (num_workers <= 1) {
    // The paper's sequential Algorithm 1, exactly as originally implemented
    // (pinned bitwise by parallel_trainer_test's reference oracle), wrapped
    // in the bounded divergence-recovery loop.
    StepScratch scratch(k, f);
    if (recovery_enabled) last_good = make_snapshot();
    while (true) {
      Status attempt = Status::OK();
      util::Stopwatch check_watch;
      int64_t steps_at_last_check = report.steps;
      while (report.steps < options_.max_steps) {
        const double alpha = alpha_for(report.steps);
        // Lines 3-5: hierarchical uniform draw of (u, v_i, v_j, t).
        const auto [event_index, neg_index] =
            training_set.SampleQuadruple(rng);
        bool step_ok = SgdStep(training_set, alpha, event_index, neg_index,
                               model, &scratch);
#if RECONSUME_FAILPOINTS_ENABLED
        // Injectable divergence for recovery tests: a fired point is treated
        // exactly like a non-finite SGD step.
        if (step_ok &&
            !RC_FAILPOINT_STATUS("trainer/sgd_step_diverge").ok()) {
          step_ok = false;
        }
#endif
        if (!step_ok) {
          attempt = Status::NumericalError(
              "TS-PPR training diverged (non-finite SGD step); lower the "
              "learning rate");
          break;
        }
        ++report.steps;

        if (report.steps % check_every == 0) {
          RC_TRACE_SPAN("trainer/check");
          const double check_secs = check_watch.ElapsedSeconds();
          const double steps_since_check =
              static_cast<double>(report.steps - steps_at_last_check);
          const double qps =
              check_secs > 0.0 ? steps_since_check / check_secs : 0.0;
          const double r_tilde = compute_r_tilde();
          report.curve.push_back({report.steps, r_tilde});
          ++checks;
          r_tilde_hist->Observe(r_tilde);
          if (qps > 0.0) qps_hist->Observe(qps);
          steps_counter->Increment(report.steps - steps_counted);
          steps_counted = report.steps;
          steps_at_last_check = report.steps;
          RC_EMIT_EVENT(obs::Event("epoch")
                            .Set("step", report.steps)
                            .Set("check", checks)
                            .Set("r_tilde", r_tilde)
                            .Set("delta_r_tilde", r_tilde - prev_r_tilde)
                            .Set("quadruples_per_sec", qps)
                            .Set("lr_scale", lr_scale));
          check_watch.Restart();
          if (!std::isfinite(r_tilde)) {
            attempt = Status::NumericalError(
                "TS-PPR training diverged (non-finite r_tilde); lower the "
                "learning rate");
            break;
          }
          const bool converged_now =
              checks >= options_.min_checks &&
              std::fabs(r_tilde - prev_r_tilde) <=
                  options_.convergence_tolerance;
          prev_r_tilde = r_tilde;
          if (recovery_enabled) last_good = make_snapshot();
          if (manager.has_value() &&
              checks % options_.checkpoint_every_checks == 0) {
            RECONSUME_RETURN_NOT_OK(manager->Write(make_snapshot()));
            ++report.checkpoints_written;
          }
          // Simulated crash for kill-and-resume tests: fires after the
          // checkpoint write, like a process dying between rounds.
          RC_FAILPOINT("trainer/round");
          if (converged_now) {
            report.converged = true;
            break;
          }
        }
      }
      if (attempt.ok()) break;
      if (!try_rollback(attempt)) return attempt;
    }
  } else {
    // Hogwild mode: lockstep rounds of `check_every` total steps. Within a
    // round every worker samples only from its own user shard and updates
    // lock-free; at the end of a full round all workers meet at a barrier
    // and worker 0 runs the Δr̃ check of §5.6.1 on the quiesced model.
    // Between the two barriers of a round the model is quiesced, which is
    // also where worker 0 harvests every worker's RNG position and writes
    // checkpoints — a snapshot is therefore always a clean round boundary.
    const auto shards =
        training_set.ShardUsers(num_workers, options_.shard_strategy);
    RC_CHECK(static_cast<int>(shards.size()) == num_workers);
    RC_DCHECK(ShardsPartitionUsers(shards, training_set.users_with_events()))
        << "shards must partition users_with_events (per-user ownership)";

    // Prefix user counts: worker w's share of a round's quota is the w-th
    // slice of a proportional split that sums to the quota exactly, so the
    // user-marginal of the draw stays uniform even with uneven shards.
    std::vector<int64_t> prefix(shards.size() + 1, 0);
    for (size_t w = 0; w < shards.size(); ++w) {
      prefix[w + 1] = prefix[w] + static_cast<int64_t>(shards[w].size());
    }
    const int64_t total_users = prefix.back();

    if (recovery_enabled) last_good = make_snapshot();
    while (true) {
      std::atomic<int64_t> step_counter{report.steps};
      std::atomic<bool> stop{false};
      // Any worker can hit a non-finite step; first one wins the flag.
      std::atomic<bool> step_diverged{false};
      std::barrier<> sync(num_workers);
      // Written by worker 0 between the two barriers of a round, read
      // elsewhere only after the trailing barrier (or after the join).
      bool diverged = false;
      // Checkpoint-write failure or injected round crash (worker 0 only).
      Status round_status;
      // Per-worker stream handles, published before the first barrier and
      // read by worker 0 only on quiesced round boundaries.
      std::vector<util::Rng*> worker_rngs(static_cast<size_t>(num_workers),
                                          nullptr);
      const std::vector<util::RngState> start_states = worker_states;
      const int64_t start_steps = report.steps;

      util::ThreadPool::ParallelShards(
          static_cast<size_t>(num_workers), hogwild_base_seed,
          [&](size_t w, util::Rng* worker_rng) {
            // Fresh runs start from the seed-derived state ParallelShards
            // already gave us; resumes and rollback retries overwrite it
            // with the snapshot's exact stream position.
            worker_rng->SetState(start_states[w]);
            worker_rngs[w] = worker_rng;
            StepScratch scratch(k, f);
            const std::span<const data::UserId> my_users(shards[w]);
            // Identical across workers at round boundaries.
            int64_t done = start_steps;
            while (true) {
              const util::Stopwatch round_watch;
              const int64_t quota = std::max<int64_t>(
                  0,
                  std::min<int64_t>(check_every, options_.max_steps - done));
              const int64_t share = quota * prefix[w + 1] / total_users -
                                    quota * prefix[w] / total_users;
              for (int64_t i = 0; i < share; ++i) {
                const int64_t step_id =
                    step_counter.fetch_add(1, std::memory_order_relaxed);
                const auto [event_index, neg_index] =
                    training_set.SampleQuadrupleFrom(my_users, worker_rng);
                bool step_ok = SgdStep(training_set, alpha_for(step_id),
                                       event_index, neg_index, model,
                                       &scratch);
#if RECONSUME_FAILPOINTS_ENABLED
                if (step_ok &&
                    !RC_FAILPOINT_STATUS("trainer/sgd_step_diverge").ok()) {
                  step_ok = false;
                }
#endif
                if (!step_ok) {
                  // Stop the run; keep arriving at both barriers below so
                  // the other workers drain the round without deadlocking.
                  step_diverged.store(true, std::memory_order_relaxed);
                  stop.store(true, std::memory_order_relaxed);
                  break;
                }
              }
              // Per-worker round throughput into the lock-free histogram
              // (before the barrier, so it measures this worker's SGD time,
              // not its wait).
              const double share_secs = round_watch.ElapsedSeconds();
              if (share > 0 && share_secs > 0.0) {
                qps_hist->Observe(static_cast<double>(share) / share_secs);
              }
              sync.arrive_and_wait();
              if (w == 0) {
                done += quota;
                if (quota == check_every) {  // full round => check point
                  RC_TRACE_SPAN("trainer/check");
                  const double round_secs = round_watch.ElapsedSeconds();
                  const double r_tilde = compute_r_tilde();
                  report.curve.push_back({done, r_tilde});
                  ++checks;
                  r_tilde_hist->Observe(r_tilde);
                  steps_counter->Increment(done - steps_counted);
                  steps_counted = done;
                  RC_EMIT_EVENT(
                      obs::Event("epoch")
                          .Set("step", done)
                          .Set("check", checks)
                          .Set("r_tilde", r_tilde)
                          .Set("delta_r_tilde", r_tilde - prev_r_tilde)
                          .Set("quadruples_per_sec",
                               round_secs > 0.0
                                   ? static_cast<double>(quota) / round_secs
                                   : 0.0)
                          .Set("lr_scale", lr_scale));
                  bool converged_now = false;
                  if (!std::isfinite(r_tilde)) {
                    diverged = true;
                    stop.store(true, std::memory_order_relaxed);
                  } else if (checks >= options_.min_checks &&
                             std::fabs(r_tilde - prev_r_tilde) <=
                                 options_.convergence_tolerance) {
                    converged_now = true;
                  }
                  prev_r_tilde = r_tilde;
                  if (std::isfinite(r_tilde) &&
                      !step_diverged.load(std::memory_order_relaxed)) {
                    report.steps = done;
                    for (int i = 0; i < num_workers; ++i) {
                      worker_states[static_cast<size_t>(i)] =
                          worker_rngs[static_cast<size_t>(i)]->GetState();
                    }
                    if (recovery_enabled) last_good = make_snapshot();
                    if (manager.has_value() &&
                        checks % options_.checkpoint_every_checks == 0) {
                      const Status written = manager->Write(make_snapshot());
                      if (written.ok()) {
                        ++report.checkpoints_written;
                      } else {
                        round_status = written;
                        stop.store(true, std::memory_order_relaxed);
                      }
                    }
                    if (round_status.ok()) {
                      // Simulated crash between rounds (kill-and-resume
                      // tests); fires after the checkpoint write.
                      const Status crash =
                          RC_FAILPOINT_STATUS("trainer/round");
                      if (!crash.ok()) {
                        round_status = crash;
                        stop.store(true, std::memory_order_relaxed);
                      }
                    }
                  }
                  if (converged_now) {
                    report.converged = true;
                    stop.store(true, std::memory_order_relaxed);
                  }
                }
                if (done >= options_.max_steps) {
                  stop.store(true, std::memory_order_relaxed);
                }
              }
              sync.arrive_and_wait();
              if (stop.load(std::memory_order_relaxed)) break;
              if (w != 0) done += quota;
            }
          });

      report.steps = step_counter.load();
      if (!round_status.ok()) {
        // Injected crash or checkpoint-write failure: surface as-is (these
        // are environmental, not divergence, so no rollback).
        return round_status;
      }
      Status attempt = Status::OK();
      if (step_diverged.load(std::memory_order_relaxed)) {
        attempt = Status::NumericalError(
            "TS-PPR training diverged (non-finite SGD step); lower the "
            "learning rate");
      } else if (diverged) {
        attempt = Status::NumericalError(
            "TS-PPR training diverged (non-finite r_tilde); lower the "
            "learning rate");
      }
      if (attempt.ok()) break;
      if (!try_rollback(attempt)) return attempt;
    }
  }

  report.final_r_tilde = prev_r_tilde;
  report.final_lr_scale = lr_scale;
  report.wall_seconds = stopwatch.ElapsedSeconds();
  if (!model->IsFinite()) {
    return Status::NumericalError("TS-PPR parameters diverged");
  }
  steps_counter->Increment(std::max<int64_t>(0, report.steps - steps_counted));
  RC_EMIT_EVENT(obs::Event("train_end")
                    .Set("steps", report.steps)
                    .Set("converged", report.converged)
                    .Set("r_tilde", report.final_r_tilde)
                    .Set("recoveries", recoveries_used)
                    .Set("checkpoints_written", report.checkpoints_written)
                    .Set("wall_seconds", report.wall_seconds));
  return report;
}

}  // namespace core
}  // namespace reconsume
