#include "core/ts_ppr_trainer.h"

#include <algorithm>
#include <cmath>

#include "math/vector_ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace reconsume {
namespace core {

namespace {

/// r_{uv_i t} - r_{uv_j t} = u^T (v_i - v_j + A_u (f_i - f_j)).
double PreferenceDifference(const TsPprModel& model,
                            const sampling::TrainingSet& data,
                            uint32_t event_index, uint32_t neg_index,
                            std::vector<double>* fdiff_scratch,
                            std::vector<double>* d_scratch) {
  const sampling::PositiveEvent& event = data.events()[event_index];
  const sampling::NegativeSample& neg = data.negatives()[neg_index];
  const auto fi = data.feature(event.feature_offset);
  const auto fj = data.feature(neg.feature_offset);
  const auto u = model.user_factor(event.user);
  const auto vi = model.item_factor(event.item);
  const auto vj = model.item_factor(neg.item);

  auto& fdiff = *fdiff_scratch;
  auto& d = *d_scratch;
  math::Subtract(fi, fj, fdiff);
  math::Subtract(vi, vj, d);
  model.mapping(event.user).MultiplyVectorAccumulate(1.0, fdiff, d);
  return math::Dot(u, d);
}

}  // namespace

Result<TrainReport> TsPprTrainer::Train(
    const sampling::TrainingSet& training_set, TsPprModel* model,
    util::Rng* rng) const {
  if (model == nullptr || rng == nullptr) {
    return Status::InvalidArgument("Train: null model or rng");
  }
  if (model->feature_dim() != training_set.feature_dim()) {
    return Status::InvalidArgument(
        "Train: model feature_dim != training set feature_dim");
  }
  if (training_set.num_quadruples() == 0) {
    return Status::FailedPrecondition("Train: empty training set");
  }

  const TsPprConfig& config = model->config();
  const double base_alpha = config.learning_rate;
  const double quadruples = static_cast<double>(training_set.num_quadruples());
  const size_t k = static_cast<size_t>(model->latent_dim());
  const size_t f = static_cast<size_t>(model->feature_dim());

  const auto small_batch =
      training_set.SmallBatch(options_.small_batch_fraction);
  const int64_t check_every = std::max<int64_t>(
      1, static_cast<int64_t>(options_.check_every_fraction *
                              static_cast<double>(
                                  training_set.num_quadruples())));

  std::vector<double> fdiff(f), d(k), u_old(k);

  auto compute_r_tilde = [&]() {
    double total = 0.0;
    for (const auto& [e, n] : small_batch) {
      total += PreferenceDifference(*model, training_set, e, n, &fdiff, &d);
    }
    return small_batch.empty()
               ? 0.0
               : total / static_cast<double>(small_batch.size());
  };

  TrainReport report;
  util::Stopwatch stopwatch;
  double prev_r_tilde = compute_r_tilde();
  report.curve.push_back({0, prev_r_tilde});
  int checks = 0;

  while (report.steps < options_.max_steps) {
    const double alpha =
        options_.schedule == LearningRateSchedule::kConstant
            ? base_alpha
            : base_alpha / (1.0 + options_.decay_rate *
                                      static_cast<double>(report.steps) /
                                      quadruples);
    const double latent_decay = 1.0 - alpha * config.gamma;
    const double mapping_decay = 1.0 - alpha * config.lambda;

    // Lines 3-5: hierarchical uniform draw of (u, v_i, v_j, t).
    const auto [event_index, neg_index] = training_set.SampleQuadruple(rng);
    const sampling::PositiveEvent& event = training_set.events()[event_index];
    const sampling::NegativeSample& neg = training_set.negatives()[neg_index];

    const auto fi = training_set.feature(event.feature_offset);
    const auto fj = training_set.feature(neg.feature_offset);
    auto u = model->user_factor(event.user);
    auto vi = model->item_factor(event.item);
    auto vj = model->item_factor(neg.item);
    math::Matrix& a = model->mapping(event.user);

    // d = v_i - v_j + A_u (f_i - f_j); the gradient w.r.t. u (Eq. 12).
    math::Subtract(fi, fj, fdiff);
    math::Subtract(vi, vj, d);
    a.MultiplyVectorAccumulate(1.0, fdiff, d);

    const double margin = math::Dot(u, d);
    const double g = alpha * (1.0 - math::Sigmoid(margin));

    // Lines 6-10: all updates read the pre-update parameters, so stash u.
    std::copy(u.begin(), u.end(), u_old.begin());

    math::Scale(latent_decay, u);
    math::Axpy(g, d, u);  // Eq. 12

    math::Scale(latent_decay, vi);
    math::Axpy(g, u_old, vi);  // Eq. 13

    math::Scale(latent_decay, vj);
    math::Axpy(-g, u_old, vj);  // Eq. 14

    a.ScaleInPlace(mapping_decay);
    a.AddOuterProduct(g, u_old, fdiff);  // Eq. 15

    ++report.steps;

    if (report.steps % check_every == 0) {
      const double r_tilde = compute_r_tilde();
      report.curve.push_back({report.steps, r_tilde});
      ++checks;
      if (!std::isfinite(r_tilde)) {
        return Status::NumericalError(
            "TS-PPR training diverged (non-finite r_tilde); lower the "
            "learning rate");
      }
      if (checks >= options_.min_checks &&
          std::fabs(r_tilde - prev_r_tilde) <=
              options_.convergence_tolerance) {
        prev_r_tilde = r_tilde;
        report.converged = true;
        break;
      }
      prev_r_tilde = r_tilde;
    }
  }

  report.final_r_tilde = prev_r_tilde;
  report.wall_seconds = stopwatch.ElapsedSeconds();
  if (!model->IsFinite()) {
    return Status::NumericalError("TS-PPR parameters diverged");
  }
  return report;
}

}  // namespace core
}  // namespace reconsume
