#include "core/ts_ppr_recommender.h"

namespace reconsume {
namespace core {

TsPprRecommender::TsPprRecommender(const TsPprModel* model,
                                   const features::FeatureExtractor* extractor,
                                   std::string name, ScoringMode mode)
    : model_(model),
      extractor_(extractor),
      name_(std::move(name)),
      mode_(ResolveScoringMode(mode)),
      feature_scratch_(
          extractor == nullptr ? 0 : static_cast<size_t>(extractor->dimension())) {
  RECONSUME_CHECK(model != nullptr && extractor != nullptr);
  RECONSUME_CHECK(model->feature_dim() == extractor->dimension())
      << "model F=" << model->feature_dim()
      << " != extractor F=" << extractor->dimension();
  if (mode_ != ScoringMode::kNaive) {
    blocks_ = std::make_shared<const BlockedItemFactors>(*model);
    const math::KernelOps& kernels = mode_ == ScoringMode::kScalar
                                         ? math::ScalarKernels()
                                         : math::ActiveKernels();
    view_.emplace(model_, blocks_, &kernels);
  }
}

void TsPprRecommender::Score(data::UserId user,
                             const window::WindowWalker& walker,
                             std::span<const data::ItemId> candidates,
                             std::span<double> scores) {
  RECONSUME_DCHECK(candidates.size() == scores.size());
  if (mode_ == ScoringMode::kNaive) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      extractor_->Extract(walker, candidates[i], feature_scratch_);
      scores[i] = model_->Score(user, candidates[i], feature_scratch_);
    }
    return;
  }
  view_->ScoreCandidates(user, *extractor_, walker, candidates, scores);
}

}  // namespace core
}  // namespace reconsume
