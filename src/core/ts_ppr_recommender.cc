#include "core/ts_ppr_recommender.h"

namespace reconsume {
namespace core {

void TsPprRecommender::Score(data::UserId user,
                             const window::WindowWalker& walker,
                             std::span<const data::ItemId> candidates,
                             std::span<double> scores) {
  RECONSUME_DCHECK(candidates.size() == scores.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    extractor_->Extract(walker, candidates[i], feature_scratch_);
    scores[i] = model_->Score(user, candidates[i], feature_scratch_);
  }
}

}  // namespace core
}  // namespace reconsume
