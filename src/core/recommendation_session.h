// Online serving view of a trained model: follow one user's event stream and
// produce ranked repeat-consumption lists on demand.
//
// This is the integration surface an application embeds (the quickstart and
// evaluation drive the offline protocol instead). The session owns a
// WindowWalker over a *growing* private copy of the user's history, so new
// events can be observed after the dataset snapshot ended.

#pragma once

#include <string>
#include <vector>

#include "data/types.h"
#include "eval/recommender.h"
#include "util/status.h"
#include "window/window_walker.h"

namespace reconsume {
namespace core {

/// \brief One ranked recommendation.
struct RankedItem {
  data::ItemId item = data::kInvalidItem;
  double score = 0.0;
  int gap = 0;              ///< steps since the user last consumed it
  int count_in_window = 0;  ///< how often it appears in the current window
};

/// \brief Tracks one user's stream and serves top-N repeat recommendations.
class RecommendationSession {
 public:
  /// `recommender` must outlive the session. `history` seeds the stream
  /// (typically the user's full observed sequence); it is copied.
  RecommendationSession(eval::Recommender* recommender, data::UserId user,
                        data::ConsumptionSequence history, int window_capacity,
                        int min_gap);

  /// Appends one consumption event to the stream.
  void Observe(data::ItemId item);

  /// Number of events observed so far (seed history included).
  int64_t num_events() const { return static_cast<int64_t>(history_.size()); }

  /// Current reconsumable candidate count (gap > min_gap, in window).
  size_t NumCandidates() const;

  /// Ranks the current candidates and returns the top `n` (may be shorter
  /// when fewer candidates exist). Empty when nothing is reconsumable.
  std::vector<RankedItem> RecommendTopN(int n);

  /// Model-free degraded ranking (docs/serving.md §8.3): orders the same
  /// candidate set by repeat-history evidence alone — window count
  /// descending, then recency (smaller gap first), then item id. In the
  /// RepeatNet repeat/explore decomposition this is the pure repeat head:
  /// much weaker than TS-PPR, but computable when the scoring path is
  /// tripped, and never empty when RecommendTopN would not be.
  std::vector<RankedItem> RecommendFallbackTopN(int n);

  /// Swaps the scorer (model hot-swap). The new recommender must outlive
  /// the session; window state and history are untouched, so the next
  /// RecommendTopN scores the same candidates under the new model.
  void set_recommender(eval::Recommender* recommender);

  data::UserId user() const { return user_; }
  int window_capacity() const { return window_capacity_; }
  int min_gap() const { return min_gap_; }

 private:
  void SyncWalker();

  eval::Recommender* recommender_;
  data::UserId user_;
  data::ConsumptionSequence history_;
  int window_capacity_;
  int min_gap_;
  // Rebuilt lazily: WindowWalker holds a pointer into history_, which can
  // reallocate on Observe. `walker_events_` counts how many events the
  // current walker has consumed; -1 forces a rebuild.
  std::unique_ptr<window::WindowWalker> walker_;
  int64_t walker_events_ = -1;

  std::vector<data::ItemId> candidates_;
  std::vector<double> scores_;
  std::vector<int> top_;
};

}  // namespace core
}  // namespace reconsume

