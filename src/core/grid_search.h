// Hyperparameter grid search with nested temporal validation.
//
// The paper tunes lambda, gamma, K by hand (Table 4). This utility automates
// the selection without test leakage: each user's *outer training prefix* is
// truncated into its own dataset, an inner temporal split carves a
// validation tail out of it, and every grid point is trained on the inner
// prefix and scored (MaAP@N) on the validation tail. Test events are never
// visible to selection.

#pragma once

#include <vector>

#include "core/ts_ppr.h"
#include "eval/evaluator.h"
#include "util/status.h"

namespace reconsume {
namespace core {

struct GridSearchOptions {
  std::vector<int> latent_dims = {20, 40};
  std::vector<double> gammas = {0.01, 0.05, 0.1};
  std::vector<double> lambdas = {0.001, 0.01};
  /// Fraction of the outer training prefix held out for validation.
  double validation_fraction = 0.25;
  /// Selection metric: MaAP at this cutoff on the validation tail.
  int selection_top_n = 10;
};

/// \brief One evaluated grid point.
struct GridTrial {
  int latent_dim = 0;
  double gamma = 0.0;
  double lambda = 0.0;
  double validation_maap = 0.0;
};

struct GridSearchResult {
  TsPprPipelineConfig best_config;  ///< base config with the winning triple
  double best_validation_maap = 0.0;
  std::vector<GridTrial> trials;    ///< in sweep order
};

/// Runs the sweep. `base` supplies everything not swept (window, Omega, S,
/// training options); `outer_split` defines the training prefixes. Returns
/// InvalidArgument for empty grids or a degenerate validation fraction.
Result<GridSearchResult> GridSearchTsPpr(const data::TrainTestSplit& outer_split,
                                         const TsPprPipelineConfig& base,
                                         const GridSearchOptions& options);

}  // namespace core
}  // namespace reconsume

