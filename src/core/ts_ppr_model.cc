#include "core/ts_ppr_model.h"

#include <cmath>

#include "math/vector_ops.h"

namespace reconsume {
namespace core {

Result<TsPprModel> TsPprModel::Create(size_t num_users, size_t num_items,
                                      int feature_dim,
                                      const TsPprConfig& config) {
  if (num_users == 0 || num_items == 0) {
    return Status::InvalidArgument("TsPprModel: empty user or item set");
  }
  if (feature_dim < 1) {
    return Status::InvalidArgument("TsPprModel: feature_dim must be >= 1");
  }
  if (config.latent_dim < 1) {
    return Status::InvalidArgument("TsPprModel: latent_dim must be >= 1");
  }
  if (config.gamma < 0 || config.lambda < 0) {
    return Status::InvalidArgument("TsPprModel: negative regularization");
  }
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("TsPprModel: learning_rate must be > 0");
  }

  TsPprModel model;
  model.config_ = config;
  model.feature_dim_ = feature_dim;
  const size_t k = static_cast<size_t>(config.latent_dim);

  const double std_latent = config.init_std_latent > 0
                                ? config.init_std_latent
                                : std::sqrt(std::max(config.gamma, 1e-4));
  const double std_mapping = config.init_std_mapping > 0
                                 ? config.init_std_mapping
                                 : std::sqrt(std::max(config.lambda, 1e-4));

  util::Rng rng(config.seed);
  model.user_factors_ = math::Matrix(num_users, k);
  model.user_factors_.FillGaussian(&rng, 0.0, std_latent);
  model.item_factors_ = math::Matrix(num_items, k);
  model.item_factors_.FillGaussian(&rng, 0.0, std_latent);

  const bool identity = config.identity_mapping_when_square &&
                        config.latent_dim == feature_dim;
  model.mappings_.reserve(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    if (identity) {
      model.mappings_.push_back(math::Matrix::Identity(k));
    } else {
      math::Matrix a(k, static_cast<size_t>(feature_dim));
      a.FillGaussian(&rng, 0.0, std_mapping);
      model.mappings_.push_back(std::move(a));
    }
  }
  return model;
}

double TsPprModel::Score(data::UserId u, data::ItemId v,
                         std::span<const double> f) const {
  RECONSUME_DCHECK(f.size() == static_cast<size_t>(feature_dim_));
  const auto uvec = user_factor(u);
  const auto vvec = item_factor(v);
  double score = math::Dot(uvec, vvec);
  // u^T (A_u f) computed row-wise without materializing A_u f.
  const math::Matrix& a = mapping(u);
  for (size_t r = 0; r < uvec.size(); ++r) {
    score += uvec[r] * math::Dot(a.Row(r), f);
  }
  return score;
}

double TsPprModel::StaticScore(data::UserId u, data::ItemId v) const {
  return math::Dot(user_factor(u), item_factor(v));
}

std::vector<double> TsPprModel::EffectiveFeatureWeights(data::UserId u) const {
  const auto uvec = user_factor(u);
  const math::Matrix& a = mapping(u);
  std::vector<double> weights(a.cols(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    math::Axpy(uvec[r], a.Row(r), weights);
  }
  return weights;
}

double TsPprModel::SquaredNormMappings() const {
  double total = 0.0;
  for (const auto& a : mappings_) total += a.SquaredFrobeniusNorm();
  return total;
}

bool TsPprModel::IsFinite() const {
  if (!math::AllFinite(user_factors_.Data()) ||
      !math::AllFinite(item_factors_.Data())) {
    return false;
  }
  for (const auto& a : mappings_) {
    if (!math::AllFinite(a.Data())) return false;
  }
  return true;
}

}  // namespace core
}  // namespace reconsume
