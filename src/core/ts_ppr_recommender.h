// Recommendation with a trained TS-PPR model (§4.3): rank the window
// candidates by r_uvt, extracting behavioral features on the fly.
//
// By default scoring runs through the vectorized engine (core/scoring_view.h):
// a shared blocked-SoA copy of the item factors plus a per-clone ScoringView
// that precomputes w_u = A_u^T u once per user and scores candidate tiles
// with the runtime-dispatched SIMD kernels. ScoringMode::kNaive keeps the
// original per-candidate TsPprModel::Score loop as the reference path
// (parity tests, the BM_ScoreCandidates baseline, RECONSUME_SCORING=naive).

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/scoring_view.h"
#include "core/ts_ppr_model.h"
#include "eval/recommender.h"
#include "features/feature_extractor.h"

namespace reconsume {
namespace core {

/// \brief eval::Recommender over a trained TsPprModel.
class TsPprRecommender : public eval::Recommender {
 public:
  /// Both pointees must outlive the recommender. The blocked SoA factor copy
  /// is built once here and shared (immutably) with every Clone().
  TsPprRecommender(const TsPprModel* model,
                   const features::FeatureExtractor* extractor,
                   std::string name = "TS-PPR",
                   ScoringMode mode = ScoringMode::kAuto);

  std::string name() const override { return name_; }

  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<TsPprRecommender>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override;

  /// The resolved mode (never kAuto).
  ScoringMode scoring_mode() const { return mode_; }

 private:
  const TsPprModel* model_;
  const features::FeatureExtractor* extractor_;
  std::string name_;
  ScoringMode mode_;
  std::shared_ptr<const BlockedItemFactors> blocks_;  ///< engine modes only
  std::optional<ScoringView> view_;  ///< per-clone scratch; copied by value
  std::vector<double> feature_scratch_;
};

}  // namespace core
}  // namespace reconsume
