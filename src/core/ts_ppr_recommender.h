// Recommendation with a trained TS-PPR model (§4.3): rank the window
// candidates by r_uvt, extracting behavioral features on the fly.

#pragma once

#include <string>
#include <vector>

#include "core/ts_ppr_model.h"
#include "eval/recommender.h"
#include "features/feature_extractor.h"

namespace reconsume {
namespace core {

/// \brief eval::Recommender over a trained TsPprModel.
class TsPprRecommender : public eval::Recommender {
 public:
  /// Both pointees must outlive the recommender.
  TsPprRecommender(const TsPprModel* model,
                   const features::FeatureExtractor* extractor,
                   std::string name = "TS-PPR")
      : model_(model),
        extractor_(extractor),
        name_(std::move(name)),
        feature_scratch_(static_cast<size_t>(extractor->dimension())) {
    RECONSUME_CHECK(model != nullptr && extractor != nullptr);
    RECONSUME_CHECK(model->feature_dim() == extractor->dimension())
        << "model F=" << model->feature_dim()
        << " != extractor F=" << extractor->dimension();
  }

  std::string name() const override { return name_; }

  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<TsPprRecommender>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override;

 private:
  const TsPprModel* model_;
  const features::FeatureExtractor* extractor_;
  std::string name_;
  std::vector<double> feature_scratch_;
};

}  // namespace core
}  // namespace reconsume

