// Algorithm 1: stochastic gradient descent over pre-sampled training
// quadruples, with the small-batch Δr̃ convergence check of §5.6.1.
//
// Two execution modes share one SGD step kernel (see
// docs/training_internals.md for the full walk-through):
//  - num_threads <= 1: the paper's sequential loop, bit-for-bit identical to
//    the original single-threaded implementation;
//  - num_threads  > 1: Hogwild-style lock-free parallel SGD. Users are
//    sharded across workers (each user's latent row u and mapping A_u are
//    then worker-private), item factors V are updated lock-free through
//    relaxed std::atomic_ref, and the Δr̃ convergence check stays globally
//    coordinated: workers run lockstep rounds of `check_every` total steps
//    (counted by one atomic step counter) separated by barriers at which a
//    single worker evaluates the small batch on the quiesced model.
//
// Threading contract: the trainer holds no mutexes at all — its concurrency
// is atomics plus std::barrier, which Clang Thread Safety Analysis cannot
// model (docs/static_analysis.md §limits). The invariants that substitute
// for lock annotations here: V is touched only through std::atomic_ref,
// per-user rows are partition-private by the sharding, and every cross-round
// read of the quiesced model happens after a barrier arrival. TSan in CI is
// the checker of record for this file, not -Wthread-safety.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ts_ppr_model.h"
#include "sampling/training_set.h"
#include "util/status.h"

namespace reconsume {
namespace core {

struct TrainerCheckpoint;  // core/checkpoint.h

/// \brief Learning-rate schedule for the SGD loop.
enum class LearningRateSchedule {
  kConstant,      ///< alpha_t = alpha (the paper's Algorithm 1)
  kInverseDecay,  ///< alpha_t = alpha / (1 + decay_rate * t / |D|)
};

/// \brief Knobs of the SGD loop (model hyperparameters live in TsPprConfig).
struct TrainOptions {
  LearningRateSchedule schedule = LearningRateSchedule::kConstant;
  /// Decay strength for kInverseDecay, in units of passes over |D|.
  double decay_rate = 1.0;
  /// Stop when |Δr̃| between adjacent check points falls below this (§5.6.1,
  /// the paper uses 1e-3).
  double convergence_tolerance = 1e-3;
  /// Check every `check_every_fraction * |D|` SGD steps, on a small batch of
  /// each user's first `small_batch_fraction` events (the paper sets both
  /// to 1/10).
  double check_every_fraction = 0.1;
  double small_batch_fraction = 0.1;
  /// Hard cap on SGD steps (safety; |D|-proportional caps are set by callers).
  int64_t max_steps = 50'000'000;
  /// Require at least this many check intervals before declaring convergence
  /// (avoids stopping on the initial plateau).
  int min_checks = 3;
  /// \brief Number of Hogwild SGD workers.
  ///
  /// 1 (the default) runs the exact sequential Algorithm 1; values > 1 train
  /// with lock-free parallel updates. The effective count is clamped to the
  /// number of users with events. With more than one worker, results are
  /// statistically but not bitwise reproducible: every worker's *sample
  /// sequence* is deterministic (per-worker RNG streams are derived from the
  /// caller's Rng), but concurrent lock-free item updates make the exact
  /// float values scheduling-dependent.
  int num_threads = 1;
  /// How users are partitioned across workers (ignored when num_threads<=1).
  sampling::ShardStrategy shard_strategy = sampling::ShardStrategy::kContiguous;

  // --- Crash safety and divergence recovery (docs/robustness.md) ---

  /// When non-empty, write a crash-safe checkpoint (atomic rename, CRC-32)
  /// into this directory at convergence-check boundaries. Empty = off.
  std::string checkpoint_dir;
  /// Checkpoint cadence: one snapshot every K convergence checks (the
  /// trainer's "epoch" granularity; checks happen every check_every steps).
  int checkpoint_every_checks = 1;
  /// How many checkpoint files to keep on disk (oldest pruned first).
  int checkpoint_retention = 2;
  /// \brief Bounded divergence recovery.
  ///
  /// When a run hits NumericalError (non-finite SGD step or Δr̃) and
  /// max_recoveries > 0, the trainer rolls the model back to the last good
  /// in-memory snapshot, multiplies the learning rate by lr_backoff, and
  /// retries — up to max_recoveries times, after which the NumericalError is
  /// returned. Every rollback is recorded in TrainReport::recovery_log.
  /// 0 (the default) fails fast exactly like the original trainer.
  int max_recoveries = 0;
  /// Learning-rate multiplier applied at each recovery; must be in (0, 1).
  double lr_backoff = 0.5;
};

/// \brief One convergence check point (the Fig. 12 curve).
struct ConvergencePoint {
  int64_t step = 0;      ///< SGD steps completed
  double r_tilde = 0.0;  ///< average r_{uv_i t} - r_{uv_j t} over small batch
};

/// \brief One divergence rollback performed by the trainer.
struct RecoveryEvent {
  int64_t failed_at_step = 0;     ///< steps completed when divergence hit
  int64_t resumed_from_step = 0;  ///< step of the snapshot rolled back to
  double lr_scale_after = 1.0;    ///< learning-rate scale after the backoff
  std::string reason;             ///< the NumericalError message
};

/// \brief Outcome of a training run.
struct TrainReport {
  int64_t steps = 0;
  bool converged = false;
  double final_r_tilde = 0.0;
  double wall_seconds = 0.0;
  std::vector<ConvergencePoint> curve;
  /// Divergence rollbacks taken during this run (empty when training never
  /// hit a NumericalError or max_recoveries == 0).
  std::vector<RecoveryEvent> recovery_log;
  /// Final learning-rate scale (1.0 unless recovery backed it off).
  double final_lr_scale = 1.0;
  /// Checkpoint files written by this run.
  int checkpoints_written = 0;
  /// Step count of the checkpoint this run resumed from (0 = fresh start).
  int64_t resumed_from_step = 0;
};

/// \brief Runs Algorithm 1 on a model against a pre-sampled training set,
/// sequentially or with Hogwild-parallel workers (TrainOptions::num_threads).
class TsPprTrainer {
 public:
  explicit TsPprTrainer(TrainOptions options = {}) : options_(options) {}

  /// Trains in place. The model's feature_dim must match the training set.
  /// Returns NumericalError if parameters diverge to non-finite values.
  ///
  /// `rng` drives the quadruple sampling when num_threads <= 1; with more
  /// workers it is consumed only to derive the per-worker streams (one
  /// Next() draw), so a fixed caller seed still pins every worker's sample
  /// sequence.
  Result<TrainReport> Train(const sampling::TrainingSet& training_set,
                            TsPprModel* model, util::Rng* rng) const;

  /// \brief Continues a run from a checkpoint file (core/checkpoint.h).
  ///
  /// Overwrites `*model` with the snapshot's parameters and resumes training
  /// exactly where the snapshot was taken: counters, Δr̃ history, learning-
  /// rate scale, and RNG stream positions are all restored, so a sequential
  /// (num_threads <= 1) resume is bit-identical to the uninterrupted run.
  /// Parallel snapshots additionally require the current options to use the
  /// same worker count and shard strategy (the per-user ownership layout is
  /// part of the checkpoint), and resume every worker's sample stream
  /// exactly. `rng` is re-synchronized from the snapshot; its incoming state
  /// is ignored.
  Result<TrainReport> ResumeFrom(const std::string& checkpoint_path,
                                 const sampling::TrainingSet& training_set,
                                 TsPprModel* model, util::Rng* rng) const;

  const TrainOptions& options() const { return options_; }

 private:
  Result<TrainReport> TrainImpl(const sampling::TrainingSet& training_set,
                                TsPprModel* model, util::Rng* rng,
                                const TrainerCheckpoint* resume) const;

  TrainOptions options_;
};

}  // namespace core
}  // namespace reconsume

