// Plain personalized pairwise ranking (§4.1; BPR of Rendle et al.) trained on
// the same repeat-consumption quadruples but *without* the time-sensitive
// term: r_uv = u^T v only.
//
// The paper argues PPR cannot express temporal preference flips; keeping it
// as a runnable model lets the ablation benches quantify exactly how much the
// u^T A_u f_uvt term buys.

#pragma once

#include <string>

#include "eval/recommender.h"
#include "math/matrix.h"
#include "sampling/training_set.h"
#include "util/random.h"
#include "util/status.h"

namespace reconsume {
namespace core {

struct PprConfig {
  int latent_dim = 40;
  double learning_rate = 0.05;
  double gamma = 0.05;         ///< regularization on U and V
  double init_std = -1.0;      ///< <= 0 means sqrt(gamma)
  int64_t max_steps = 2'000'000;
  double convergence_tolerance = 1e-3;
  double check_every_fraction = 0.1;
  uint64_t seed = 42;
};

/// \brief BPR-style matrix factorization over repeat-consumption pairs.
class PprModel : public eval::Recommender {
 public:
  /// Fits on the pre-sampled quadruples (features in `training_set` are
  /// ignored; only (u, v_i, v_j) triples are used).
  static Result<PprModel> Fit(const sampling::TrainingSet& training_set,
                              size_t num_users, size_t num_items,
                              const PprConfig& config);

  std::string name() const override { return "PPR(static)"; }

  /// Deep copy (the factor matrices are owned); supports parallel eval.
  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<PprModel>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override;

  double ScorePair(data::UserId u, data::ItemId v) const {
    return math::Dot(user_factors_.Row(static_cast<size_t>(u)),
                     item_factors_.Row(static_cast<size_t>(v)));
  }

  int64_t steps_trained() const { return steps_trained_; }

 private:
  PprModel() = default;

  math::Matrix user_factors_;
  math::Matrix item_factors_;
  int64_t steps_trained_ = 0;
};

}  // namespace core
}  // namespace reconsume

