#include "core/ts_ppr.h"

#include "obs/trace.h"

namespace reconsume {
namespace core {

Result<TsPpr> TsPpr::Fit(const data::TrainTestSplit& split,
                         const TsPprPipelineConfig& config) {
  RC_TRACE_SPAN("fit/tsppr");
  TsPpr pipeline;

  {
    RC_TRACE_SPAN("tsppr/features");
    RECONSUME_ASSIGN_OR_RETURN(
        features::StaticFeatureTable table,
        features::StaticFeatureTable::Compute(
            split, config.sampling.window_capacity));
    pipeline.table_ =
        std::make_unique<features::StaticFeatureTable>(std::move(table));
    pipeline.extractor_ = std::make_unique<features::FeatureExtractor>(
        pipeline.table_.get(), config.features);
  }

  RECONSUME_ASSIGN_OR_RETURN(
      sampling::TrainingSet training_set, [&] {
        RC_TRACE_SPAN("tsppr/sampling");
        return sampling::TrainingSet::Build(split, *pipeline.extractor_,
                                            config.sampling);
      }());
  pipeline.num_quadruples_ = training_set.num_quadruples();

  RECONSUME_ASSIGN_OR_RETURN(
      TsPprModel model,
      TsPprModel::Create(split.dataset().num_users(),
                         split.dataset().num_items(),
                         pipeline.extractor_->dimension(), config.model));
  pipeline.model_ = std::make_unique<TsPprModel>(std::move(model));

  TsPprTrainer trainer(config.train);
  util::Rng rng(config.model.seed ^ 0x5DEECE66DULL);
  if (config.resume_from.empty()) {
    RECONSUME_ASSIGN_OR_RETURN(
        pipeline.train_report_,
        trainer.Train(training_set, pipeline.model_.get(), &rng));
  } else {
    RECONSUME_ASSIGN_OR_RETURN(
        pipeline.train_report_,
        trainer.ResumeFrom(config.resume_from, training_set,
                           pipeline.model_.get(), &rng));
  }

  pipeline.recommender_ = std::make_unique<TsPprRecommender>(
      pipeline.model_.get(), pipeline.extractor_.get());
  return pipeline;
}

}  // namespace core
}  // namespace reconsume
