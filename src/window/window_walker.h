// Incremental time-window state over one consumption sequence.
//
// The paper defines everything relative to the trailing window W_{ut} of the
// last |W| consumption steps (Definition 1). WindowWalker maintains, in O(1)
// amortized per step: the multiset of items inside the window, each item's
// in-window count, and each item's last consumption step over the *full*
// history (the recency feature looks beyond the window edge only for items
// still inside the window, but keeping full history is simpler and exact).

#pragma once

#include <unordered_map>
#include <vector>

#include "data/types.h"
#include "util/logging.h"

namespace reconsume {
namespace window {

/// \brief Walks a sequence maintaining the trailing window state.
///
/// After construction the state corresponds to time t = 0 (nothing consumed).
/// Each Advance() consumes one event; at any point `step()` events have been
/// consumed and the window covers the last min(step, capacity) of them —
/// i.e. the state *is* W_{u, t-1}, the candidate source for predicting the
/// event at position t = step().
class WindowWalker {
 public:
  /// \brief Per-item state for a distinct item currently inside the window.
  ///
  /// `last_seen` equals LastSeenStep(item): an in-window item's most recent
  /// occurrence is by definition inside the window, so batched consumers
  /// (core/scoring_view.h's window index) read count *and* gap from one map
  /// iteration with no extra hash probes.
  struct WindowEntry {
    int count = 0;      ///< occurrences of the item in the window
    int last_seen = 0;  ///< step of the item's most recent consumption
  };

  /// `sequence` must outlive the walker. capacity >= 1.
  WindowWalker(const data::ConsumptionSequence* sequence, int capacity)
      : sequence_(sequence), capacity_(capacity) {
    RECONSUME_CHECK(sequence != nullptr);
    RECONSUME_CHECK(capacity >= 1) << "window capacity must be >= 1";
  }

  /// Number of events consumed so far (the current prediction step t).
  int step() const { return step_; }
  bool Done() const {
    return static_cast<size_t>(step_) >= sequence_->size();
  }

  /// The event that Advance() would consume (the "next incoming" x_t).
  data::ItemId NextItem() const {
    RECONSUME_DCHECK(!Done());
    return (*sequence_)[static_cast<size_t>(step_)];
  }

  /// Consumes the next event, updating window and history state.
  void Advance();

  /// Current window length |W| = min(step, capacity).
  int WindowSize() const { return std::min(step_, capacity_); }

  /// Whether v appears in the current window.
  bool Contains(data::ItemId v) const { return in_window_.count(v) > 0; }

  /// Number of occurrences of v in the current window.
  int CountInWindow(data::ItemId v) const {
    const auto it = in_window_.find(v);
    return it == in_window_.end() ? 0 : it->second.count;
  }

  /// Step of v's most recent consumption over the whole history, or -1.
  int LastSeenStep(data::ItemId v) const {
    const auto it = last_seen_.find(v);
    return it == last_seen_.end() ? -1 : it->second;
  }

  /// t - LastSeenStep(v); meaningful only if v was seen (>= 1 then).
  int GapSince(data::ItemId v) const {
    const int last = LastSeenStep(v);
    RECONSUME_DCHECK(last >= 0) << "GapSince on never-seen item";
    return step_ - last;
  }

  /// Distinct items currently in the window with their count and last-seen
  /// step (see WindowEntry).
  const std::unordered_map<data::ItemId, WindowEntry>& window_counts() const {
    return in_window_;
  }

  /// Number of distinct items in the window.
  size_t NumDistinctInWindow() const { return in_window_.size(); }

  /// True iff the next event repeats an item from the current window
  /// (the solid-circle condition of Fig. 1).
  bool NextIsRepeat() const { return !Done() && Contains(NextItem()); }

  /// True iff the next event is a repeat whose last consumption is more than
  /// `min_gap` steps ago — the events the paper trains and evaluates on
  /// (0 < Omega < |W|; items within the last Omega steps are excluded).
  bool NextIsEligibleRepeat(int min_gap) const {
    return NextIsRepeat() && GapSince(NextItem()) > min_gap;
  }

  /// Collects the RRC candidate set: distinct items in the window whose gap
  /// exceeds `min_gap`. Appends to *out (cleared first).
  void EligibleCandidates(int min_gap, std::vector<data::ItemId>* out) const;

  int capacity() const { return capacity_; }
  const data::ConsumptionSequence& sequence() const { return *sequence_; }

 private:
  const data::ConsumptionSequence* sequence_;
  int capacity_;
  int step_ = 0;
  std::unordered_map<data::ItemId, WindowEntry> in_window_;
  std::unordered_map<data::ItemId, int> last_seen_;  ///< full history
};

}  // namespace window
}  // namespace reconsume

