#include "window/window_walker.h"

namespace reconsume {
namespace window {

void WindowWalker::Advance() {
  RECONSUME_CHECK(!Done()) << "Advance past end of sequence";
  const data::ItemId entering = (*sequence_)[static_cast<size_t>(step_)];
  WindowEntry& entry = in_window_[entering];
  ++entry.count;
  entry.last_seen = step_;
  last_seen_[entering] = step_;
  ++step_;
  if (step_ > capacity_) {
    const data::ItemId leaving =
        (*sequence_)[static_cast<size_t>(step_ - capacity_ - 1)];
    auto it = in_window_.find(leaving);
    RECONSUME_DCHECK(it != in_window_.end());
    if (--it->second.count == 0) in_window_.erase(it);
  }
}

void WindowWalker::EligibleCandidates(int min_gap,
                                      std::vector<data::ItemId>* out) const {
  out->clear();
  out->reserve(in_window_.size());
  for (const auto& [item, entry] : in_window_) {
    if (step_ - entry.last_seen > min_gap) out->push_back(item);
  }
}

}  // namespace window
}  // namespace reconsume
