// DYRC — "the dynamics of repeat consumption" baseline (Anderson et al.,
// WWW 2014, ref. [7]).
//
// A conditional-logit choice model over the window candidates with two latent
// weights: one on item quality and one on the recency gap. The weights are
// fitted by maximizing the log-likelihood of the observed repeat choices in
// the training data (Newton's method on the concave conditional-logit
// likelihood).
//
//   P(choose v | window) ∝ exp(theta_q * quality(v) + theta_r * logrec(v)),
//   logrec(v) = -ln(gap(v)),  so exp(theta_r * logrec) = gap^{-theta_r}
//
// i.e. the fitted model is exactly the paper's "mixed weighted" form:
// popularity^a * recency-power-law^b.

#pragma once

#include <string>

#include "data/split.h"
#include "eval/recommender.h"
#include "features/static_features.h"
#include "util/status.h"

namespace reconsume {
namespace baselines {

struct DyrcOptions {
  int window_capacity = 100;
  int min_gap = 10;
  int max_newton_iterations = 100;
};

/// \brief Fitted DYRC model.
class DyrcRecommender : public eval::Recommender {
 public:
  /// Fits the two weights on the training segments of `split`.
  /// `table` must be computed on the same split and outlive the recommender.
  static Result<DyrcRecommender> Fit(const data::TrainTestSplit& split,
                                     const features::StaticFeatureTable* table,
                                     const DyrcOptions& options);

  std::string name() const override { return "DYRC"; }

  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<DyrcRecommender>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override;

  double quality_weight() const { return theta_quality_; }
  double recency_weight() const { return theta_recency_; }
  double train_log_likelihood() const { return train_log_likelihood_; }

 private:
  DyrcRecommender(const features::StaticFeatureTable* table, double theta_q,
                  double theta_r, double loglik)
      : table_(table),
        theta_quality_(theta_q),
        theta_recency_(theta_r),
        train_log_likelihood_(loglik) {}

  const features::StaticFeatureTable* table_;
  double theta_quality_ = 0.0;
  double theta_recency_ = 0.0;
  double train_log_likelihood_ = 0.0;
};

}  // namespace baselines
}  // namespace reconsume

