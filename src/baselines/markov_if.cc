#include "baselines/markov_if.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace reconsume {
namespace baselines {

namespace {

uint64_t UserItemKey(data::UserId user, data::ItemId item) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(user)) << 32) |
         static_cast<uint32_t>(item);
}

/// Adds Laplace smoothing and normalizes a count row into probabilities.
void NormalizeRow(std::unordered_map<data::ItemId, double>* row,
                  double smoothing) {
  double total = 0.0;
  for (auto& [item, count] : *row) {
    count += smoothing;
    total += count;
  }
  if (total <= 0.0) return;
  for (auto& [item, count] : *row) count /= total;
}

}  // namespace

Result<MarkovIfRecommender> MarkovIfRecommender::Fit(
    const data::TrainTestSplit& split, const MarkovIfConfig& config) {
  RC_TRACE_SPAN("fit/markov_if");
  if (!(config.personalization >= 0.0 && config.personalization <= 1.0)) {
    return Status::InvalidArgument("MarkovIF: personalization out of [0,1]");
  }
  if (config.smoothing < 0.0) {
    return Status::InvalidArgument("MarkovIF: negative smoothing");
  }
  if (config.context_cap < 1) {
    return Status::InvalidArgument("MarkovIF: context_cap must be >= 1");
  }

  MarkovIfRecommender model;
  model.config_ = config;

  const data::Dataset& dataset = split.dataset();
  int64_t pairs = 0;
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    const data::UserId user = static_cast<data::UserId>(u);
    const auto& seq = dataset.sequence(user);
    const size_t train_end = split.split_point(user);
    for (size_t t = 1; t < train_end; ++t) {
      const data::ItemId from = seq[t - 1];
      const data::ItemId to = seq[t];
      model.global_[from][to] += 1.0;
      model.per_user_[UserItemKey(user, from)][to] += 1.0;
      ++pairs;
    }
  }
  if (pairs == 0) {
    return Status::FailedPrecondition("MarkovIF: no adjacent training pairs");
  }
  for (auto& [from, row] : model.global_) {
    NormalizeRow(&row, config.smoothing);
  }
  for (auto& [key, row] : model.per_user_) {
    NormalizeRow(&row, config.smoothing);
  }
  return model;
}

double MarkovIfRecommender::Lookup(
    const std::unordered_map<data::ItemId, Row>& table, data::ItemId from,
    data::ItemId to) {
  const auto row = table.find(from);
  if (row == table.end()) return 0.0;
  const auto cell = row->second.find(to);
  return cell == row->second.end() ? 0.0 : cell->second;
}

double MarkovIfRecommender::GlobalTransition(data::ItemId from,
                                             data::ItemId to) const {
  return Lookup(global_, from, to);
}

double MarkovIfRecommender::UserTransition(data::UserId user,
                                           data::ItemId from,
                                           data::ItemId to) const {
  const auto row = per_user_.find(UserItemKey(user, from));
  if (row == per_user_.end()) return 0.0;
  const auto cell = row->second.find(to);
  return cell == row->second.end() ? 0.0 : cell->second;
}

void MarkovIfRecommender::Score(data::UserId user,
                                const window::WindowWalker& walker,
                                std::span<const data::ItemId> candidates,
                                std::span<double> scores) {
  const auto& seq = walker.sequence();
  const int t = walker.step();
  const int begin =
      std::max(0, t - std::min(walker.WindowSize(), config_.context_cap));
  const double beta = config_.personalization;

  for (size_t i = 0; i < candidates.size(); ++i) {
    const data::ItemId candidate = candidates[i];
    double score = 0.0;
    for (int p = begin; p < t; ++p) {
      const data::ItemId context = seq[static_cast<size_t>(p)];
      const double weight = 1.0 / static_cast<double>(t - p);  // hyperbolic
      const double transition =
          (1.0 - beta) * GlobalTransition(context, candidate) +
          beta * UserTransition(user, context, candidate);
      score += weight * transition;
    }
    scores[i] = score;
  }
}

}  // namespace baselines
}  // namespace reconsume
