// FPMC — Factorizing Personalized Markov Chains (Rendle et al., WWW 2010,
// ref. [41]) adapted to the RRC setting per §5.2: the "basket" is the set of
// distinct items in the current time window, and the model estimates the
// transition probability from that basket to the incoming item.
//
// Pairwise factorization (the standard FPMC reduction of the Tucker model):
//   x̂(u, B, i) = <UI_u, IU_i> + (1/|B|) Σ_{l∈B} <IL_i, LI_l>
// trained with S-BPR: positives are observed repeat events, negatives drawn
// from the same window.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/split.h"
#include "eval/recommender.h"
#include "math/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace reconsume {
namespace baselines {

struct FpmcConfig {
  int latent_dim = 16;
  double learning_rate = 0.05;
  double regularization = 0.01;
  /// SGD passes over the materialized training events.
  int epochs = 20;
  /// Random subsample cap on basket size per training event (memory and
  /// speed bound; scoring always uses the full basket).
  int basket_cap = 30;
  int window_capacity = 100;
  int min_gap = 10;
  uint64_t seed = 99;
};

/// \brief Fitted FPMC model.
class FpmcRecommender : public eval::Recommender {
 public:
  static Result<FpmcRecommender> Fit(const data::TrainTestSplit& split,
                                     const FpmcConfig& config);

  std::string name() const override { return "FPMC"; }

  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<FpmcRecommender>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override;

  /// x̂(u, B, i) for an explicit basket (exposed for tests).
  double ScoreWithBasket(data::UserId u, data::ItemId i,
                         std::span<const data::ItemId> basket) const;

 private:
  FpmcRecommender() = default;

  math::Matrix ui_;  ///< |U| x K   user->item factors
  math::Matrix iu_;  ///< |V| x K   item->user factors
  math::Matrix il_;  ///< |V| x K   item->basket factors
  math::Matrix li_;  ///< |V| x K   basket->item factors
  std::vector<double> eta_scratch_;  ///< mean basket factor, reused per call
};

}  // namespace baselines
}  // namespace reconsume

