#include "baselines/survival_recommender.h"

#include <cmath>
#include <unordered_map>

#include "obs/trace.h"
#include "util/logging.h"

namespace reconsume {
namespace baselines {

double SurvivalRecommender::TimeWeightedAverageReturnTime(
    const data::ConsumptionSequence& sequence, size_t end, data::ItemId item,
    double fallback) {
  // Full scan: collect consecutive-consumption gaps of `item`, weighting
  // later gaps linearly more (weight = 1-based gap index).
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  int last = -1;
  int gap_index = 0;
  for (size_t t = 0; t < end && t < sequence.size(); ++t) {
    if (sequence[t] != item) continue;
    if (last >= 0) {
      ++gap_index;
      const double w = static_cast<double>(gap_index);
      weighted_sum += w * static_cast<double>(static_cast<int>(t) - last);
      weight_total += w;
    }
    last = static_cast<int>(t);
  }
  if (weight_total == 0.0) return fallback;
  return weighted_sum / weight_total;
}

std::vector<double> SurvivalRecommender::MakeCovariates(
    data::UserId user, data::ItemId item, size_t history_end) const {
  const auto& seq = split_->dataset().sequence(user);
  const double fallback = static_cast<double>(history_end) + 1.0;
  const double wavg =
      TimeWeightedAverageReturnTime(seq, history_end, item, fallback);
  return {table_->quality(item), table_->reconsumption_ratio(item),
          std::log1p(wavg)};
}

Result<SurvivalRecommender> SurvivalRecommender::Fit(
    const data::TrainTestSplit& split,
    const features::StaticFeatureTable* table, const SurvivalOptions& options) {
  RC_TRACE_SPAN("fit/survival");
  if (table == nullptr) {
    return Status::InvalidArgument("Survival: null static feature table");
  }

  const data::Dataset& dataset = split.dataset();
  std::vector<survival::SurvivalRecord> records;

  for (size_t u = 0;
       u < dataset.num_users() && records.size() < options.max_records; ++u) {
    const data::UserId user = static_cast<data::UserId>(u);
    const auto& seq = dataset.sequence(user);
    const size_t train_end = split.split_point(user);

    // Next consumption step of the same item within the training segment.
    std::unordered_map<data::ItemId, int> next_seen;
    std::vector<int> next_step(train_end, -1);
    for (size_t rt = train_end; rt > 0; --rt) {
      const size_t t = rt - 1;
      const auto it = next_seen.find(seq[t]);
      next_step[t] = it == next_seen.end() ? -1 : it->second;
      next_seen[seq[t]] = static_cast<int>(t);
    }

    // Past-gap state for the time-weighted average covariate, maintained
    // incrementally during training-record construction (the O(|S_u|) rescan
    // is reserved for online scoring, mirroring the paper's cost analysis).
    std::unordered_map<data::ItemId, int> last_seen;
    std::unordered_map<data::ItemId, std::pair<double, double>> gap_sums;
    std::unordered_map<data::ItemId, int> gap_counts;

    for (size_t t = 0;
         t < train_end && records.size() < options.max_records; ++t) {
      const data::ItemId item = seq[t];
      survival::SurvivalRecord record;
      if (next_step[t] >= 0) {
        record.duration = static_cast<double>(next_step[t] - static_cast<int>(t));
        record.event = true;
      } else {
        record.duration = static_cast<double>(train_end - t);
        record.event = false;
      }
      if (record.duration > 0.0) {
        const auto gs = gap_sums.find(item);
        const double fallback = static_cast<double>(t) + 1.0;
        const double wavg = (gs == gap_sums.end() || gs->second.second == 0.0)
                                ? fallback
                                : gs->second.first / gs->second.second;
        record.covariates = {table->quality(item),
                             table->reconsumption_ratio(item),
                             std::log1p(wavg)};
        records.push_back(std::move(record));
      }

      const auto ls = last_seen.find(item);
      if (ls != last_seen.end()) {
        const int gap = static_cast<int>(t) - ls->second;
        const double w = static_cast<double>(++gap_counts[item]);
        auto& [sum, total] = gap_sums[item];
        sum += w * static_cast<double>(gap);
        total += w;
      }
      last_seen[item] = static_cast<int>(t);
    }
  }

  if (records.empty()) {
    return Status::FailedPrecondition("Survival: no training records");
  }
  RECONSUME_ASSIGN_OR_RETURN(survival::CoxModel cox,
                             survival::CoxModel::Fit(records));
  return SurvivalRecommender(&split, table, std::move(cox));
}

void SurvivalRecommender::Score(data::UserId user,
                                const window::WindowWalker& walker,
                                std::span<const data::ItemId> candidates,
                                std::span<double> scores) {
  const size_t now = static_cast<size_t>(walker.step());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const data::ItemId item = candidates[i];
    const std::vector<double> covariates = MakeCovariates(user, item, now);
    const double elapsed = static_cast<double>(walker.GapSince(item));
    // Per ref. [30], the model estimates each item's return time; items
    // whose predicted return is soonest (most overdue relative to the
    // elapsed gap) rank first. §5.3 observes that this continuous-time
    // formulation transfers poorly to discrete consumption steps.
    scores[i] = elapsed - cox_.MedianSurvivalTime(covariates);
  }
}

}  // namespace baselines
}  // namespace reconsume
