// The three weighting-scheme baselines of §5.2: Random, Pop, and Recency.

#pragma once

#include <cmath>
#include <string>

#include "eval/recommender.h"
#include "features/static_features.h"
#include "util/random.h"

namespace reconsume {
namespace baselines {

/// \brief Uniform-random ranking of the window candidates.
class RandomRecommender : public eval::Recommender {
 public:
  explicit RandomRecommender(uint64_t seed = 7) : rng_(seed) {}

  std::string name() const override { return "Random"; }

  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<RandomRecommender>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override {
    (void)user;
    (void)walker;
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] = rng_.NextDouble();
    }
  }

 private:
  util::Rng rng_;
};

/// \brief Ranks by item popularity ln(1 + n_v) from the training set.
///
/// The weights are precomputed at construction — online scoring is a table
/// lookup, the cheapest non-trivial method in Fig. 13.
class PopRecommender : public eval::Recommender {
 public:
  /// `table` must outlive the recommender.
  explicit PopRecommender(const features::StaticFeatureTable* table) {
    RECONSUME_CHECK(table != nullptr);
    weights_.resize(table->num_items());
    for (size_t v = 0; v < weights_.size(); ++v) {
      weights_[v] = std::log1p(static_cast<double>(
          table->frequency(static_cast<data::ItemId>(v))));
    }
  }

  std::string name() const override { return "Pop"; }

  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<PopRecommender>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override {
    (void)user;
    (void)walker;
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] = weights_[static_cast<size_t>(candidates[i])];
    }
  }

 private:
  std::vector<double> weights_;
};

/// \brief Ranks by the exponential recency weight e^{-Δt_uv} (§5.2).
///
/// Candidates come from the window, so gaps are bounded by |W| and the exp
/// never underflows to indistinguishable zeros. The per-candidate exp() is
/// why the paper puts this method above Pop in the Fig. 13 latency ordering.
class RecencyRecommender : public eval::Recommender {
 public:
  std::string name() const override { return "Recency"; }

  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<RecencyRecommender>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override {
    (void)user;
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] =
          std::exp(-static_cast<double>(walker.GapSince(candidates[i])));
    }
  }
};

}  // namespace baselines
}  // namespace reconsume

