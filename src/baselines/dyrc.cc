#include "baselines/dyrc.h"

#include <cmath>
#include <vector>

#include "math/newton.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "window/window_walker.h"

namespace reconsume {
namespace baselines {

namespace {

constexpr int kNumWeights = 2;  // theta_quality, theta_recency
// Fitting subsamples at most this many choice events to bound memory.
constexpr size_t kMaxFitEvents = 50'000;

struct ChoiceData {
  // Flat per-candidate features (stride kNumWeights).
  std::vector<double> features;
  struct Event {
    uint32_t begin = 0;   // candidate offset (in candidates, not doubles)
    uint32_t count = 0;
    uint32_t chosen = 0;  // index of the chosen candidate within the event
  };
  std::vector<Event> events;
};

}  // namespace

Result<DyrcRecommender> DyrcRecommender::Fit(
    const data::TrainTestSplit& split,
    const features::StaticFeatureTable* table, const DyrcOptions& options) {
  RC_TRACE_SPAN("fit/dyrc");
  if (table == nullptr) {
    return Status::InvalidArgument("DYRC: null static feature table");
  }

  // Materialize training choice sets.
  ChoiceData data;
  const data::Dataset& dataset = split.dataset();
  std::vector<data::ItemId> candidates;
  for (size_t u = 0;
       u < dataset.num_users() && data.events.size() < kMaxFitEvents; ++u) {
    const auto& seq = dataset.sequence(static_cast<data::UserId>(u));
    const size_t train_end = split.split_point(static_cast<data::UserId>(u));
    window::WindowWalker walker(&seq, options.window_capacity);
    while (static_cast<size_t>(walker.step()) < train_end &&
           data.events.size() < kMaxFitEvents) {
      if (walker.NextIsEligibleRepeat(options.min_gap)) {
        const data::ItemId target = walker.NextItem();
        walker.EligibleCandidates(options.min_gap, &candidates);
        if (candidates.size() >= 2) {
          ChoiceData::Event event;
          event.begin = static_cast<uint32_t>(data.features.size() / kNumWeights);
          event.count = static_cast<uint32_t>(candidates.size());
          event.chosen = 0;
          for (size_t i = 0; i < candidates.size(); ++i) {
            if (candidates[i] == target) {
              event.chosen = static_cast<uint32_t>(i);
            }
            data.features.push_back(table->quality(candidates[i]));
            data.features.push_back(
                -std::log(static_cast<double>(walker.GapSince(candidates[i]))));
          }
          data.events.push_back(event);
        }
      }
      walker.Advance();
    }
  }
  if (data.events.empty()) {
    return Status::FailedPrecondition(
        "DYRC: no eligible repeat events to fit on");
  }

  // Concave conditional-logit log-likelihood; minimize its negation.
  auto objective = [&data](const std::vector<double>& theta)
      -> Result<math::ObjectiveEvaluation> {
    math::ObjectiveEvaluation eval;
    eval.gradient.assign(kNumWeights, 0.0);
    eval.hessian = math::Matrix(kNumWeights, kNumWeights);
    std::vector<double> probs;
    for (const auto& event : data.events) {
      probs.assign(event.count, 0.0);
      double max_score = -1e300;
      for (uint32_t i = 0; i < event.count; ++i) {
        const double* x =
            data.features.data() + (event.begin + i) * kNumWeights;
        probs[i] = theta[0] * x[0] + theta[1] * x[1];
        max_score = std::max(max_score, probs[i]);
      }
      double total = 0.0;
      for (double& p : probs) {
        p = std::exp(p - max_score);
        total += p;
      }
      const double log_z = max_score + std::log(total);
      for (double& p : probs) p /= total;

      const double* chosen_x =
          data.features.data() + (event.begin + event.chosen) * kNumWeights;
      eval.value -=
          theta[0] * chosen_x[0] + theta[1] * chosen_x[1] - log_z;

      // Gradient of -ll: E_p[x] - x_chosen. Hessian: Cov_p[x] (PSD).
      double ex[kNumWeights] = {0, 0};
      double exx[kNumWeights][kNumWeights] = {{0, 0}, {0, 0}};
      for (uint32_t i = 0; i < event.count; ++i) {
        const double* x =
            data.features.data() + (event.begin + i) * kNumWeights;
        for (int a = 0; a < kNumWeights; ++a) {
          ex[a] += probs[i] * x[a];
          for (int b = 0; b < kNumWeights; ++b) {
            exx[a][b] += probs[i] * x[a] * x[b];
          }
        }
      }
      for (int a = 0; a < kNumWeights; ++a) {
        eval.gradient[a] += ex[a] - chosen_x[a];
        for (int b = 0; b < kNumWeights; ++b) {
          eval.hessian(a, b) += exx[a][b] - ex[a] * ex[b];
        }
      }
    }
    return eval;
  };

  math::NewtonOptions newton;
  newton.max_iterations = options.max_newton_iterations;
  newton.gradient_tolerance = 1e-6;
  RECONSUME_ASSIGN_OR_RETURN(
      math::NewtonReport report,
      math::MinimizeNewton(objective, {0.0, 0.0}, newton));

  return DyrcRecommender(table, report.solution[0], report.solution[1],
                         -report.objective_value);
}

void DyrcRecommender::Score(data::UserId user,
                            const window::WindowWalker& walker,
                            std::span<const data::ItemId> candidates,
                            std::span<double> scores) {
  (void)user;
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] =
        theta_quality_ * table_->quality(candidates[i]) -
        theta_recency_ *
            std::log(static_cast<double>(walker.GapSince(candidates[i])));
  }
}

}  // namespace baselines
}  // namespace reconsume
