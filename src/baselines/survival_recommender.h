// Survival — the hazard-based return-time baseline (ref. [30]) adapted to
// discrete consumption steps per §5.2.
//
// Training: every (user, item) consumption in the training segment becomes a
// survival record whose duration is the number of steps until that user's
// next consumption of the same item (right-censored at the end of the
// training segment). Covariates: item quality, item reconsumption ratio, and
// the time-weighted average past return time of the (user, item) pair. A Cox
// proportional-hazards model is fitted on these records.
//
// Scoring: a candidate's preference is its estimated hazard of returning
// right now — log h0(elapsed) + beta^T x — where the time-weighted average
// return-time covariate is recomputed online by scanning the user's full
// consumption history. That scan is what makes this method's per-instance
// latency proportional to |S_u| (the Fig. 13 narrative).

#pragma once

#include <string>
#include <vector>

#include "data/split.h"
#include "eval/recommender.h"
#include "features/static_features.h"
#include "survival/cox_model.h"
#include "util/status.h"

namespace reconsume {
namespace baselines {

struct SurvivalOptions {
  int window_capacity = 100;
  /// Cap on survival records used in the Cox fit (memory/time bound).
  size_t max_records = 200'000;
};

/// \brief Cox-hazard return-time recommender.
class SurvivalRecommender : public eval::Recommender {
 public:
  /// `table` must be computed on the same split and outlive the recommender;
  /// `split` must also outlive it (scoring scans the dataset sequences).
  static Result<SurvivalRecommender> Fit(
      const data::TrainTestSplit& split,
      const features::StaticFeatureTable* table,
      const SurvivalOptions& options);

  std::string name() const override { return "Survival"; }

  std::unique_ptr<eval::Recommender> Clone() const override {
    return std::make_unique<SurvivalRecommender>(*this);
  }

  void Score(data::UserId user, const window::WindowWalker& walker,
             std::span<const data::ItemId> candidates,
             std::span<double> scores) override;

  const survival::CoxModel& cox_model() const { return cox_; }

  /// Time-weighted average gap between consecutive consumptions of `item` in
  /// `sequence[0..end)`; later gaps weigh more. Returns fallback when the
  /// item was consumed fewer than twice. O(end) — deliberately so.
  static double TimeWeightedAverageReturnTime(
      const data::ConsumptionSequence& sequence, size_t end, data::ItemId item,
      double fallback);

 private:
  SurvivalRecommender(const data::TrainTestSplit* split,
                      const features::StaticFeatureTable* table,
                      survival::CoxModel cox)
      : split_(split), table_(table), cox_(std::move(cox)) {}

  std::vector<double> MakeCovariates(data::UserId user, data::ItemId item,
                                     size_t history_end) const;

  const data::TrainTestSplit* split_;
  const features::StaticFeatureTable* table_;
  survival::CoxModel cox_;
};

}  // namespace baselines
}  // namespace reconsume

